// Section 3.5 (ground truth): coverage of dual-stack vantage points by the
// sibling prefix list.
//
// Paper shape: of 5174 dual-stack RIPE Atlas probes, 42.5% fully covered,
// 32.1% partially, 25.3% uncovered; among fully covered probes 89.4% fall
// inside one best-match pair.
#include "bench_common.h"

#include "core/groundtruth.h"

int main() {
  using namespace spbench;
  header("Section 3.5", "ground-truth probe coverage");

  const auto probes = universe().probes();
  const auto& pairs = default_pairs_at(last_month());
  const auto report = sp::core::evaluate_probes(probes, pairs);

  sp::analysis::TextTable table({"category", "paper", "measured"});
  const auto frac = [&](std::size_t n) {
    return pct(static_cast<double>(n) / static_cast<double>(report.total));
  };
  table.add_row({"dual-stack probes", "5174", std::to_string(report.total)});
  table.add_row({"fully covered", "42.5%", frac(report.fully_covered)});
  table.add_row({"partially covered", "32.1%", frac(report.partially_covered)});
  table.add_row({"not covered", "25.3%", frac(report.uncovered)});
  table.add_row({"best match (of fully covered)", "89.4%", pct(report.best_match_share())});
  std::printf("%s\n", table.render().c_str());

  // The paper also validates against 260 dual-stack VPSes (53 best-match
  // vs 13 mismatches among address-matched ones). We emulate with a
  // smaller, disjoint probe sample.
  const auto vps_sample =
      std::vector<sp::core::DualStackProbe>(probes.begin(), probes.begin() + 260);
  const auto vps_report = sp::core::evaluate_probes(vps_sample, pairs);
  std::printf("VPS-style sample (260): best-match %zu vs not-best-match %zu (paper: 53 vs 13)\n",
              vps_report.best_match, vps_report.not_best_match);
  return 0;
}
