// Figure 9: number of sibling prefixes at different points in time.
//
// Paper shape: the pair count roughly doubles over four years, from ~36k
// at day -48 months to >76k at the reference date (Sep 2024).
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 9", "sibling prefix pairs over time");

  const auto& u = universe();
  sp::analysis::TextTable table({"months back", "date", "pairs", "v4 prefixes", "v6 prefixes"});
  std::size_t oldest = 0;
  std::size_t newest = 0;
  for (int back = 48; back >= 0; back -= 6) {
    const int month = u.month_count() - 1 - back;
    const auto& pairs = default_pairs_at(month);
    table.add_row({std::to_string(-back), u.date_of_month(month).to_string(),
                   std::to_string(pairs.size()),
                   std::to_string(sp::core::unique_prefix_count(pairs, sp::Family::v4)),
                   std::to_string(sp::core::unique_prefix_count(pairs, sp::Family::v6))});
    if (back == 48) oldest = pairs.size();
    if (back == 0) newest = pairs.size();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper:    pairs roughly double over four years (36k -> 76k)\n");
  std::printf("measured: %zu -> %zu (%.2fx)\n", oldest, newest,
              static_cast<double>(newest) / static_cast<double>(oldest));
  return 0;
}
