// Figure 13 (and appendix Figures 35/36): distribution of CIDR sizes in
// sibling prefix pairs.
//
// Paper shape (default case): /24 dominates IPv4 and /48 IPv6; the
// /24-/48 combination is the single largest group at 23.41%; the
// /17-/24 × /32-/48 region holds >88% of pairs; hyper-specific prefixes
// (>/24, >/48) are rare. After SP-Tuner at /28-/96, 86.95% of pairs land
// exactly on /28-/96.
#include "bench_common.h"

namespace {

int v4_bin(unsigned length) {
  if (length <= 16) return 0;
  if (length <= 20) return 1;
  if (length <= 23) return 2;
  if (length == 24) return 3;
  return 4;
}
const char* kV4Labels[] = {"<=16", "17-20", "21-23", "24", ">24"};

int v6_bin(unsigned length) {
  if (length <= 32) return 0;
  if (length <= 40) return 1;
  if (length <= 47) return 2;
  if (length == 48) return 3;
  return 4;
}
const char* kV6Labels[] = {"<=32", "33-40", "41-47", "48", ">48"};

}  // namespace

int main() {
  using namespace spbench;
  header("Figure 13", "CIDR size distribution of sibling pairs (default case)");

  const auto& pairs = default_pairs_at(last_month());
  sp::analysis::Heatmap map(std::vector<std::string>(std::begin(kV6Labels), std::end(kV6Labels)),
                            std::vector<std::string>(std::begin(kV4Labels), std::end(kV4Labels)));
  for (const auto& pair : pairs) {
    map.at(static_cast<std::size_t>(v6_bin(pair.v6.length())),
           static_cast<std::size_t>(v4_bin(pair.v4.length()))) += 1.0;
  }
  map.normalize_to_percent();
  std::printf("%% of pairs (rows: IPv6 length, cols: IPv4 length)\n%s\n", map.render(1).c_str());

  std::size_t exact_24_48 = 0;
  std::size_t region = 0;
  for (const auto& pair : pairs) {
    if (pair.v4.length() == 24 && pair.v6.length() == 48) ++exact_24_48;
    if (pair.v4.length() >= 17 && pair.v4.length() <= 24 && pair.v6.length() >= 32 &&
        pair.v6.length() <= 48) {
      ++region;
    }
  }
  std::printf("paper:    /24-/48 combination 23.41%%; /17-/24 x /32-/48 region >88%%\n");
  std::printf("measured: /24-/48 combination %s; region %s\n",
              pct(static_cast<double>(exact_24_48) / pairs.size()).c_str(),
              pct(static_cast<double>(region) / pairs.size()).c_str());

  const auto& tuned = tuned_pairs_at(last_month(), 28, 96);
  std::size_t at_28_96 = 0;
  for (const auto& pair : tuned) {
    if (pair.v4.length() == 28 && pair.v6.length() == 96) ++at_28_96;
  }
  std::printf("paper:    after SP-Tuner 86.95%% of pairs land exactly on /28-/96\n");
  std::printf("measured: %s of tuned pairs at /28-/96\n",
              pct(static_cast<double>(at_28_96) / tuned.size()).c_str());
  return 0;
}
