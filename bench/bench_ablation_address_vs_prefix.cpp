// Ablation: address-level siblings (prior work) vs prefix-level siblings
// (this paper).
//
// Classic sibling detection (Berger et al., Beverly/Berger, Scheitle et
// al.) pairs individual IPv4/IPv6 *addresses*. The paper's contribution is
// lifting the relation to prefixes. This ablation quantifies what the
// lift buys: coverage of the address space, robustness to address churn,
// and the number of objects an operator must manage.
#include "bench_common.h"

#include <unordered_set>

#include "core/groundtruth.h"

int main() {
  using namespace spbench;
  header("Ablation", "address-level siblings vs prefix-level siblings");

  const auto& u = universe();
  const int last = last_month();
  const auto snapshot = u.snapshot_at(last);

  // Address-level siblings: every (v4 address, v6 address) pair serving
  // one dual-stack domain — the prior-work notion.
  std::unordered_set<sp::IPAddress> v4_sibling_addresses;
  std::unordered_set<sp::IPAddress> v6_sibling_addresses;
  std::size_t address_pairs = 0;
  for (const auto& entry : snapshot.entries()) {
    if (!entry.dual_stack()) continue;
    for (const auto& v4 : entry.v4) v4_sibling_addresses.insert(sp::IPAddress(v4));
    for (const auto& v6 : entry.v6) v6_sibling_addresses.insert(sp::IPAddress(v6));
    address_pairs += entry.v4.size() * entry.v6.size();
  }

  const auto& prefix_pairs = default_pairs_at(last);

  sp::analysis::TextTable table({"granularity", "objects", "v4 endpoints", "v6 endpoints"});
  table.add_row({"address-level pairs", std::to_string(address_pairs),
                 std::to_string(v4_sibling_addresses.size()),
                 std::to_string(v6_sibling_addresses.size())});
  table.add_row({"prefix-level pairs", std::to_string(prefix_pairs.size()),
                 std::to_string(sp::core::unique_prefix_count(prefix_pairs, sp::Family::v4)),
                 std::to_string(sp::core::unique_prefix_count(prefix_pairs, sp::Family::v6))});
  std::printf("%s\n", table.render().c_str());

  // Probe coverage: how many dual-stack vantage points does each notion
  // cover? Address-level siblings only cover hosts that appear in the DNS
  // data themselves; prefix-level siblings generalize to the whole block.
  const auto probes = u.probes();
  std::size_t address_covered = 0;
  for (const auto& probe : probes) {
    if (v4_sibling_addresses.contains(probe.v4) && v6_sibling_addresses.contains(probe.v6)) {
      ++address_covered;
    }
  }
  const auto report = sp::core::evaluate_probes(probes, prefix_pairs);
  std::printf("probe coverage (both families): address-level %s, prefix-level %s\n",
              pct(static_cast<double>(address_covered) / probes.size()).c_str(),
              pct(report.fully_covered_share()).c_str());

  // Churn robustness: of the address-level pairs observed a year ago, how
  // many still hold at the end date? Prefix pairs survive address moves
  // inside the prefix.
  const auto old_snapshot = u.snapshot_at(last - 12);
  std::unordered_set<std::string> old_address_pairs;
  for (const auto& entry : old_snapshot.entries()) {
    if (!entry.dual_stack()) continue;
    for (const auto& v4 : entry.v4) {
      for (const auto& v6 : entry.v6) {
        old_address_pairs.insert(v4.to_string() + "|" + v6.to_string());
      }
    }
  }
  std::size_t surviving_addresses = 0;
  std::size_t current_address_pairs = 0;
  for (const auto& entry : snapshot.entries()) {
    if (!entry.dual_stack()) continue;
    for (const auto& v4 : entry.v4) {
      for (const auto& v6 : entry.v6) {
        ++current_address_pairs;
        if (old_address_pairs.contains(v4.to_string() + "|" + v6.to_string())) {
          ++surviving_addresses;
        }
      }
    }
  }
  std::unordered_set<std::string> old_prefix_keys;
  for (const auto& pair : default_pairs_at(last - 12)) {
    old_prefix_keys.insert(pair.v4.to_string() + "|" + pair.v6.to_string());
  }
  std::size_t surviving_prefixes = 0;
  for (const auto& pair : prefix_pairs) {
    if (old_prefix_keys.contains(pair.v4.to_string() + "|" + pair.v6.to_string())) {
      ++surviving_prefixes;
    }
  }
  std::printf("one-year persistence: address pairs %s, prefix pairs %s\n",
              pct(static_cast<double>(surviving_addresses) / current_address_pairs).c_str(),
              pct(static_cast<double>(surviving_prefixes) / prefix_pairs.size()).c_str());

  std::printf("\nreading: prefix-level siblings cover far more of the address space with\n"
              "orders of magnitude fewer objects and survive address churn — the paper's\n"
              "motivation for moving sibling detection from addresses to prefixes.\n");
  return 0;
}
