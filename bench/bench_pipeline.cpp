// Campaign-runner benchmarks (google-benchmark): the same synthetic
// multi-month campaign executed three ways —
//   * serial: a 1-thread pool, the whole DAG inline in topological order;
//   * dag: a multi-worker pool, independent months pipelining so CPU work
//     overlaps the checkpoint fsync waits (on a single-core host the win
//     is exactly that overlap — durability I/O no longer serializes the
//     schedule);
//   * warm_resume: every checkpoint valid, measuring the fixed cost of a
//     no-op resume (universe rebuild + hash validation of every artifact).
//
// `--json out.json` writes google-benchmark JSON (see bench_json_main.h);
// BENCH_pipeline.json at the repo root is a checked-in run of this binary.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_json_main.h"
#include "pipeline/campaign.h"

namespace {

using namespace sp;

pipeline::CampaignConfig bench_config(std::string dir, unsigned threads) {
  pipeline::CampaignConfig config;
  config.synth.months = 6;
  config.synth.organization_count = 80;
  config.synth.probe_count = 100;
  config.threads = threads;
  config.out_dir = std::move(dir);
  return config;
}

void report_counters(benchmark::State& state, const pipeline::CampaignReport& report) {
  state.counters["stages"] =
      static_cast<double>(report.done_count + report.cached_count);
  state.counters["cached"] = static_cast<double>(report.cached_count);
  spbench::record_peak_rss(state);
}

void run_cold(benchmark::State& state, unsigned threads) {
  const std::string dir =
      "/tmp/sp_bench_pipeline_t" + std::to_string(threads);
  pipeline::CampaignReport report;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    report = pipeline::Campaign(bench_config(dir, threads)).run(/*resume=*/false);
    if (!report.ok) {
      state.SkipWithError(report.error.empty() ? "campaign failed" : report.error.c_str());
      return;
    }
  }
  report_counters(state, report);
}

void BM_CampaignSerial(benchmark::State& state) { run_cold(state, 1); }
BENCHMARK(BM_CampaignSerial)->Unit(benchmark::kMillisecond);

void BM_CampaignDag(benchmark::State& state) {
  run_cold(state, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_CampaignDag)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CampaignWarmResume(benchmark::State& state) {
  const std::string dir = "/tmp/sp_bench_pipeline_resume";
  std::filesystem::remove_all(dir);
  const auto primed = pipeline::Campaign(bench_config(dir, 4)).run(/*resume=*/false);
  if (!primed.ok) {
    state.SkipWithError("priming run failed");
    return;
  }
  pipeline::CampaignReport report;
  for (auto _ : state) {
    report = pipeline::Campaign(bench_config(dir, 4)).run(/*resume=*/true);
    if (!report.ok || report.done_count != 0) {
      state.SkipWithError("warm resume re-ran stages");
      return;
    }
  }
  report_counters(state, report);
}
BENCHMARK(BM_CampaignWarmResume)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return spbench::benchmark_json_main(argc, argv); }
