// Ablation: sibling detection from alias-resolution data (paper §6's
// "alias datasets" input).
//
// Infrastructure view: dual-stack routers expose one IPv4 and one IPv6
// interface inside their organization's prefixes and share one IP-ID
// counter. The bench probes the routers, resolves aliases with the
// MIDAR-style monotonic-bounds test, feeds the recovered alias groups into
// the generic SetCorpus detector, and checks the resulting pairs against
// the organization truth.
#include "bench_common.h"

#include "alias/ipid.h"
#include <cmath>

#include "synth/determinism.h"

int main() {
  using namespace spbench;
  header("Ablation", "sibling detection from IP-ID alias resolution");

  const auto& u = universe();

  // Deploy dual-stack routers: up to two per hosting org with prefixes in
  // both families. Velocities are stratified per router (routers differ
  // wildly in traffic volume, which is what makes MIDAR work).
  struct Router {
    sp::IPAddress v4;
    sp::IPAddress v6;
    double base;
    double rate;
  };
  std::vector<Router> routers;
  for (const auto& org : u.orgs()) {
    if (org.eyeball || org.monitoring || org.v4_prefixes.empty() || org.v6_prefixes.empty()) {
      continue;
    }
    if (routers.size() >= 100) break;
    Router router;
    router.v4 = sp::IPAddress(
        sp::synth::v4_host_address(org.v4_prefixes.front(), 15, sp::synth::mix(org.id, 1)));
    router.v6 = sp::IPAddress(
        sp::synth::v6_host_address(org.v6_prefixes.front(), 15, sp::synth::mix(org.id, 2)));
    router.base = static_cast<double>(sp::synth::pick(65536, org.id, 3));
    // Geometric velocity stratification (what MIDAR's estimation stage
    // buys on real routers): every router's counter rate is separated from
    // every other's by more than the matcher's velocity tolerance.
    router.rate = 100.0 * std::pow(1.045, static_cast<double>(routers.size())) *
                  (1.0 + static_cast<double>(sp::synth::pick(10, org.id, 4)) * 0.001);
    routers.push_back(router);
  }

  // Probe each interface 24 times over a minute, phases offset per family.
  sp::alias::ProbeData probes;
  for (std::size_t r = 0; r < routers.size(); ++r) {
    const auto sample = [&](const sp::IPAddress& address, double phase, std::uint64_t salt) {
      std::vector<sp::alias::IpIdSample> samples;
      for (int i = 0; i < 24; ++i) {
        const double t = phase + i * 2.5;
        const double jitter =
            (static_cast<double>(sp::synth::pick(9, r, salt, i)) - 4.0) * 0.5;
        const double value = routers[r].base + routers[r].rate * t + jitter;
        samples.push_back({t, static_cast<std::uint16_t>(
                                  static_cast<std::uint64_t>(value) % 65536)});
      }
      probes[address] = std::move(samples);
    };
    sample(routers[r].v4, 0.0, 11);
    sample(routers[r].v6, 1.1, 12);
  }

  sp::alias::MbtConfig mbt;
  mbt.velocity_tolerance = 0.02;
  const auto groups = sp::alias::resolve_aliases(probes, mbt);
  std::size_t dual_stack_groups = 0;
  std::size_t correct_groups = 0;
  sp::core::SetCorpus corpus;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    bool has_v4 = false;
    bool has_v6 = false;
    for (const auto& address : groups[g]) {
      if (address.is_v4()) has_v4 = true;
      if (address.is_v6()) has_v6 = true;
      const auto route = u.rib().lookup(address);
      if (route) corpus.add(route->prefix, static_cast<sp::core::DomainId>(g));
    }
    if (has_v4 && has_v6) {
      ++dual_stack_groups;
      // A group is correct when it is exactly one router's interface pair.
      for (const auto& router : routers) {
        if (groups[g].size() == 2 && groups[g][0] == router.v4 && groups[g][1] == router.v6) {
          ++correct_groups;
          break;
        }
      }
    }
  }
  corpus.finalize();
  const auto pairs = sp::core::detect_sibling_prefixes(corpus);

  std::size_t same_org = 0;
  for (const auto& pair : pairs) {
    const auto v4_route = u.rib().lookup(pair.v4);
    const auto v6_route = u.rib().lookup(pair.v6);
    if (v4_route && v6_route &&
        u.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as)) {
      ++same_org;
    }
  }

  sp::analysis::TextTable table({"stage", "count"});
  table.add_row({"dual-stack routers deployed", std::to_string(routers.size())});
  table.add_row({"alias groups resolved", std::to_string(groups.size())});
  table.add_row({"dual-stack alias groups", std::to_string(dual_stack_groups)});
  table.add_row({"exactly-correct groups", std::to_string(correct_groups)});
  table.add_row({"sibling pairs from alias input", std::to_string(pairs.size())});
  table.add_row({"of which same organization", std::to_string(same_org)});
  std::printf("%s\n", table.render().c_str());

  std::printf("alias-resolution accuracy: %s of dual-stack routers recovered exactly\n",
              pct(routers.empty() ? 0.0
                                  : static_cast<double>(correct_groups) /
                                        static_cast<double>(routers.size()))
                  .c_str());
  std::printf("pair precision vs org truth: %s\n",
              pct(pairs.empty() ? 0.0
                                : static_cast<double>(same_org) /
                                      static_cast<double>(pairs.size()))
                  .c_str());
  std::printf("\nreading: alias datasets plug into the same detector (section 3.7); the\n"
              "infrastructure view finds org-level siblings even where no domains are\n"
              "hosted — complementary coverage to the DNS input.\n");
  return 0;
}
