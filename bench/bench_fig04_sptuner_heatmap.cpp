// Figure 4 (and appendix Figure 19): SP-Tuner-MS sensitivity — mean and
// standard deviation of Jaccard values across IPv4 × IPv6 length
// thresholds.
//
// Paper shape: mean Jaccard rises monotonically with deeper thresholds on
// either axis, from 0.647 (std 0.410) at /16-/32 to 0.878 (std 0.287) at
// /28-/96.
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 4 / Figure 19", "SP-Tuner threshold sensitivity (mean / std Jaccard)");

  const unsigned v4_thresholds[] = {16, 20, 22, 24, 26, 28};
  const unsigned v6_thresholds[] = {32, 48, 64, 80, 96};

  std::vector<std::string> col_labels;
  for (const unsigned v4 : v4_thresholds) col_labels.push_back("/" + std::to_string(v4));
  std::vector<std::string> row_labels;
  for (const unsigned v6 : v6_thresholds) row_labels.push_back("/" + std::to_string(v6));
  sp::analysis::Heatmap mean_map(row_labels, col_labels);
  sp::analysis::Heatmap std_map(row_labels, col_labels);

  double corner_low_mean = 0;
  double corner_low_std = 0;
  double corner_high_mean = 0;
  double corner_high_std = 0;
  for (std::size_t r = 0; r < std::size(v6_thresholds); ++r) {
    for (std::size_t c = 0; c < std::size(v4_thresholds); ++c) {
      const auto& pairs = tuned_pairs_at(last_month(), v4_thresholds[c], v6_thresholds[r]);
      const auto summary = sp::analysis::summarize(sp::core::similarity_values(pairs));
      mean_map.at(r, c) = summary.mean;
      std_map.at(r, c) = summary.stddev;
      if (r == 0 && c == 0) {
        corner_low_mean = summary.mean;
        corner_low_std = summary.stddev;
      }
      if (r + 1 == std::size(v6_thresholds) && c + 1 == std::size(v4_thresholds)) {
        corner_high_mean = summary.mean;
        corner_high_std = summary.stddev;
      }
    }
  }

  std::printf("mean Jaccard (rows: IPv6 threshold, cols: IPv4 threshold)\n%s\n",
              mean_map.render(3).c_str());
  std::printf("std deviation\n%s\n", std_map.render(3).c_str());
  std::printf("paper:    /16-/32 corner 0.647 (std 0.410); /28-/96 corner 0.878 (std 0.287)\n");
  std::printf("measured: /16-/32 corner %s (std %s); /28-/96 corner %s (std %s)\n",
              num(corner_low_mean).c_str(), num(corner_low_std).c_str(),
              num(corner_high_mean).c_str(), num(corner_high_std).c_str());

  // Monotonicity along both axes (the paper's row/column observation).
  bool monotone = true;
  for (std::size_t r = 0; r < mean_map.rows(); ++r) {
    for (std::size_t c = 1; c < mean_map.cols(); ++c) {
      if (mean_map.at(r, c) + 1e-9 < mean_map.at(r, c - 1)) monotone = false;
    }
  }
  for (std::size_t c = 0; c < mean_map.cols(); ++c) {
    for (std::size_t r = 1; r < mean_map.rows(); ++r) {
      if (mean_map.at(r, c) + 1e-9 < mean_map.at(r - 1, c)) monotone = false;
    }
  }
  std::printf("mean Jaccard monotone non-decreasing along both axes: %s\n",
              monotone ? "yes" : "NO");
  return 0;
}
