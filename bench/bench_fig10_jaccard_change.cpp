// Figure 10: Jaccard distribution of sibling pairs split into unchanged /
// changed / new between the four-year-old snapshot and the newest one.
//
// Paper shape: of the newest pairs 88% are new, 10% unchanged, 2% changed.
// Unchanged pairs are almost all perfect; new pairs 80% perfect; changed
// pairs degrade (21% perfect old → 18% perfect new).
#include "bench_common.h"

#include "core/longitudinal.h"

int main() {
  using namespace spbench;
  header("Figure 10", "pair changes over four years (unchanged/changed/new)");

  const auto& u = universe();
  const auto& old_pairs = default_pairs_at(u.month_count() - 49 < 0 ? 0 : u.month_count() - 49);
  const auto& new_pairs = default_pairs_at(last_month());
  const auto report = sp::core::classify_pair_changes(old_pairs, new_pairs);

  const double total = static_cast<double>(new_pairs.size());
  const auto perfect = [](const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    std::size_t count = 0;
    for (const double v : values) {
      if (v >= 1.0 - 1e-12) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(values.size());
  };

  sp::analysis::TextTable table({"category", "share of pairs", "perfect (jaccard=1)"});
  table.add_row({"new", pct(report.fresh.size() / total), pct(perfect(report.fresh))});
  table.add_row(
      {"unchanged", pct(report.unchanged.size() / total), pct(perfect(report.unchanged))});
  table.add_row({"changed (new value)", pct(report.changed_new.size() / total),
                 pct(perfect(report.changed_new))});
  table.add_row({"changed (old value)", "-", pct(perfect(report.changed_old))});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper:    new 88%% (80%% perfect), unchanged 10%% (~99%% perfect), changed 2%%"
              " (21%% perfect before, 18%% after)\n");
  std::printf("measured: new %s (%s perfect), unchanged %s (%s perfect), changed %s\n",
              pct(report.fresh.size() / total).c_str(), pct(perfect(report.fresh)).c_str(),
              pct(report.unchanged.size() / total).c_str(),
              pct(perfect(report.unchanged)).c_str(),
              pct(report.changed_new.size() / total).c_str());
  return 0;
}
