// Incremental vs from-scratch detection (google-benchmark): the ISSUE 8
// acceptance numbers. BM_DetectScratch re-runs the exact engine on a
// month's corpus; BM_StreamApplyLowChurn applies a single-edge delta to a
// warm StreamDetector — the warm rolling path, which must come out ≥5×
// faster — and BM_StreamApplyMonthDelta applies a real synth month
// boundary. BM_StreamInit prices the cold start a resume gap pays.
//
// `--json out.json` writes google-benchmark JSON (bench_json_main.h);
// BENCH_stream.json at the repo root is a checked-in run of this binary:
//
//   ./build/bench/bench_stream --json BENCH_stream.json
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "bench_json_main.h"
#include "core/corpus_delta.h"
#include "core/detect.h"
#include "stream/stream_detector.h"
#include "synth/universe.h"

namespace {

using namespace sp;

/// The bench fixture: two consecutive monthly indexes plus a synthetic
/// "low churn" month (one fresh domain on one prefix of month 1). Built
/// once, shared by every benchmark.
struct Months {
  core::DetectIndex month0;
  core::DetectIndex month1;
  core::DetectIndex month1_low_churn;
  core::CorpusDelta boundary;       // month0 → month1
  core::CorpusDelta boundary_back;  // month1 → month0
  core::CorpusDelta low_fwd;        // month1 → month1_low_churn
  core::CorpusDelta low_back;
  std::size_t month1_pairs = 0;
};

/// Re-materializes a side's prefix→set map from the flat index, so the
/// low-churn variant can be rebuilt with one edge added.
std::unordered_map<Prefix, core::DomainSet> sets_of(const core::DetectIndex::Side& side) {
  std::unordered_map<Prefix, core::DomainSet> sets;
  sets.reserve(side.prefix_count());
  for (std::uint32_t dense = 0; dense < side.prefix_count(); ++dense) {
    const auto elements = side.elements_of(dense);
    sets.emplace(side.prefixes[dense], core::DomainSet(elements.begin(), elements.end()));
  }
  return sets;
}

const Months& months() {
  static std::unique_ptr<Months> cache;
  if (!cache) {
    cache = std::make_unique<Months>();
    synth::SynthConfig config;
    config.months = 2;
    config.organization_count = 12000;
    const synth::SyntheticInternet universe(config);
    const auto corpus0 = core::DualStackCorpus::build(universe.snapshot_at(0), universe.rib());
    const auto corpus1 = core::DualStackCorpus::build(universe.snapshot_at(1), universe.rib());
    cache->month0 = core::DetectIndex::build(corpus0.prefix_domains(Family::v4),
                                             corpus0.prefix_domains(Family::v6));
    cache->month1 = core::DetectIndex::build(corpus1.prefix_domains(Family::v4),
                                             corpus1.prefix_domains(Family::v6));

    auto v4_sets = sets_of(cache->month1.v4);
    auto v6_sets = sets_of(cache->month1.v6);
    core::DomainId fresh = 0;
    for (const auto& [prefix, set] : v4_sets) {
      for (const core::DomainId id : set) fresh = std::max(fresh, id + 1);
    }
    v4_sets.begin()->second.push_back(fresh);
    core::normalize(v4_sets.begin()->second);
    cache->month1_low_churn = core::DetectIndex::build(v4_sets, v6_sets);

    cache->boundary = core::CorpusDelta::between(cache->month0, cache->month1);
    cache->boundary_back = core::CorpusDelta::between(cache->month1, cache->month0);
    cache->low_fwd = core::CorpusDelta::between(cache->month1, cache->month1_low_churn);
    cache->low_back = core::CorpusDelta::between(cache->month1_low_churn, cache->month1);
  }
  return *cache;
}

/// The from-scratch baseline both stream paths are measured against.
void BM_DetectScratch(benchmark::State& state) {
  const Months& fixture = months();
  std::size_t pairs = 0;
  for (auto _ : state) {
    core::SetCorpus scratch;  // corpus rebuild is part of the cold cost
    for (std::uint32_t d = 0; d < fixture.month1.v4.prefix_count(); ++d) {
      for (const core::DomainId id : fixture.month1.v4.elements_of(d)) {
        scratch.add(fixture.month1.v4.prefixes[d], id);
      }
    }
    for (std::uint32_t d = 0; d < fixture.month1.v6.prefix_count(); ++d) {
      for (const core::DomainId id : fixture.month1.v6.elements_of(d)) {
        scratch.add(fixture.month1.v6.prefixes[d], id);
      }
    }
    scratch.finalize();
    const auto result = core::detect_sibling_prefixes(
        scratch, {.threads = static_cast<unsigned>(state.range(0))});
    pairs = result.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  spbench::record_peak_rss(state);
}
BENCHMARK(BM_DetectScratch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_StreamInit(benchmark::State& state) {
  const Months& fixture = months();
  stream::StreamDetector detector(
      {.threads = static_cast<unsigned>(state.range(0))});
  for (auto _ : state) {
    detector.init(fixture.month1);
    benchmark::DoNotOptimize(detector.pairs().size());
  }
  state.counters["pairs"] = static_cast<double>(detector.pairs().size());
  spbench::record_peak_rss(state);
}
BENCHMARK(BM_StreamInit)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// The warm rolling path on a low-churn month: one changed edge, two
/// applies per iteration (forward + back, so every iteration sees the
/// same state). The per-apply time is it half this benchmark's time.
void BM_StreamApplyLowChurn(benchmark::State& state) {
  const Months& fixture = months();
  stream::StreamDetector detector(
      {.threads = static_cast<unsigned>(state.range(0))});
  detector.init(fixture.month1);
  std::size_t dirty = 0;
  for (auto _ : state) {
    detector.apply(fixture.low_fwd);
    detector.apply(fixture.low_back);
    dirty = detector.last_stats().dirty_v4 + detector.last_stats().dirty_v6;
    benchmark::DoNotOptimize(detector.pairs().size());
  }
  state.counters["pairs"] = static_cast<double>(detector.pairs().size());
  state.counters["dirty_sources"] = static_cast<double>(dirty);
  state.counters["sources_total"] =
      static_cast<double>(detector.last_stats().sources_total);
  state.counters["applies_per_iter"] = 2.0;
  state.counters["apply_index_ms"] = detector.last_stats().apply_index_ms;
  state.counters["rescan_ms"] = detector.last_stats().rescan_ms;
  state.counters["merge_ms"] = detector.last_stats().merge_ms;
  spbench::record_peak_rss(state);
}
BENCHMARK(BM_StreamApplyLowChurn)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// A real synth month boundary (every dataset event of the month).
void BM_StreamApplyMonthDelta(benchmark::State& state) {
  const Months& fixture = months();
  stream::StreamDetector detector(
      {.threads = static_cast<unsigned>(state.range(0))});
  detector.init(fixture.month0);
  bool forward = true;
  std::size_t edges = 0;
  for (auto _ : state) {
    detector.apply(forward ? fixture.boundary : fixture.boundary_back);
    forward = !forward;
    edges = detector.last_stats().delta_edges;
    benchmark::DoNotOptimize(detector.pairs().size());
  }
  state.counters["delta_edges"] = static_cast<double>(edges);
  state.counters["dirty_sources"] = static_cast<double>(
      detector.last_stats().dirty_v4 + detector.last_stats().dirty_v6);
  state.counters["full_rescan"] = detector.last_stats().full_rescan ? 1.0 : 0.0;
  spbench::record_peak_rss(state);
}
BENCHMARK(BM_StreamApplyMonthDelta)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return spbench::benchmark_json_main(argc, argv); }
