// Microbenchmarks for the sp::serve lookup path (google-benchmark).
//
// Measures, over one synthetic published list:
//   * single-address and batched queries/second against a loaded snapshot
//     (batched both inline and sharded over a worker pool);
//   * the CSV-reparse-per-query baseline — what a consumer pays today if
//     it re-reads the published list for every question asked of it;
//   * snapshot load cost: mmap'ing a .sibdb vs re-parsing the CSV.
//
// `--json out.json` writes google-benchmark JSON (see bench_json_main.h);
// BENCH_serve.json at the repo root is a checked-in run of this binary.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench_json_main.h"
#include "core/sibling_list_io.h"
#include "core/worker_pool.h"
#include "serve/lookup.h"
#include "serve/sibdb.h"

namespace {

using namespace sp;

constexpr std::size_t kPairCount = 4096;

core::SiblingPair random_pair(std::mt19937& rng) {
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<unsigned> v4_len(12, 24);
  std::uniform_int_distribution<unsigned> v6_len(32, 48);
  std::uniform_real_distribution<double> sim(0.0, 1.0);

  core::SiblingPair pair;
  pair.v4 = Prefix::of(IPAddress(IPv4Address(0x14000000u | (word(rng) & 0x03FFFFFFu))),
                       v4_len(rng));
  IPv6Address::Bytes bytes{};
  bytes[0] = 0x26;
  bytes[1] = 0x20;
  for (int b = 2; b < 6; ++b) bytes[static_cast<std::size_t>(b)] =
      static_cast<std::uint8_t>(word(rng));
  pair.v6 = Prefix::of(IPAddress(IPv6Address(bytes)), v6_len(rng));
  pair.similarity = sim(rng);
  pair.shared_domains = 1 + (word(rng) % 64);
  pair.v4_domain_count = pair.shared_domains + 1;
  pair.v6_domain_count = pair.shared_domains + 2;
  return pair;
}

struct Dataset {
  std::string csv_path;
  std::string db_path;
  serve::SiblingDB db;
  serve::LookupEngine engine;
  std::vector<IPAddress> probes;  // v4-heavy mix, clustered for ~50% hits

  explicit Dataset(serve::SiblingDB loaded) : db(std::move(loaded)), engine(db) {}
};

const Dataset& dataset() {
  static const Dataset* instance = [] {
    std::mt19937 rng(1234);
    std::vector<core::SiblingPair> pairs;
    pairs.reserve(kPairCount);
    for (std::size_t i = 0; i < kPairCount; ++i) pairs.push_back(random_pair(rng));

    const std::string csv_path = "/tmp/sp_bench_serve.csv";
    const std::string db_path = "/tmp/sp_bench_serve.sibdb";
    if (!core::write_sibling_list(csv_path, pairs)) std::abort();
    if (!serve::convert_sibling_list(csv_path, db_path)) std::abort();
    auto db = serve::SiblingDB::load(db_path);
    if (!db) std::abort();

    auto* made = new Dataset(std::move(*db));
    made->csv_path = csv_path;
    made->db_path = db_path;
    std::uniform_int_distribution<std::uint32_t> word;
    for (int i = 0; i < 8192; ++i) {
      // Half inside the 20.0/6 cluster, half anywhere.
      const std::uint32_t bits = i % 2 == 0
                                     ? 0x14000000u | (word(rng) & 0x03FFFFFFu)
                                     : word(rng);
      made->probes.emplace_back(IPv4Address(bits));
    }
    return made;
  }();
  return *instance;
}

void BM_ServeQuerySingle(benchmark::State& state) {
  const Dataset& data = dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.engine.query(data.probes[i++ % data.probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeQuerySingle);

// Batched lookups; arg is the worker count (0 = inline, no pool).
void BM_ServeQueryBatch(benchmark::State& state) {
  const Dataset& data = dataset();
  std::optional<core::WorkerPool> pool;
  if (state.range(0) > 0) pool.emplace(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data.engine.query_many(data.probes, pool ? &*pool : nullptr));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(data.probes.size()));
}
BENCHMARK(BM_ServeQueryBatch)->Arg(0)->Arg(2)->Arg(4);

// The baseline the .sibdb format exists to retire: answer each query by
// re-reading the published CSV and linearly scanning it.
void BM_CsvReparsePerQuery(benchmark::State& state) {
  const Dataset& data = dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto pairs = core::read_sibling_list(data.csv_path);
    if (!pairs) std::abort();
    const IPAddress& probe = data.probes[i++ % data.probes.size()];
    const core::SiblingPair* best = nullptr;
    for (const auto& pair : *pairs) {
      if (!pair.v4.contains(probe)) continue;
      if (best == nullptr || pair.v4.length() > best->v4.length()) best = &pair;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsvReparsePerQuery);

void BM_SibDbLoad(benchmark::State& state) {
  const Dataset& data = dataset();
  for (auto _ : state) {
    auto db = serve::SiblingDB::load(data.db_path);
    if (!db) std::abort();
    benchmark::DoNotOptimize(db->size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(data.db.size()));
}
BENCHMARK(BM_SibDbLoad);

void BM_CsvLoad(benchmark::State& state) {
  const Dataset& data = dataset();
  for (auto _ : state) {
    const auto pairs = core::read_sibling_list(data.csv_path);
    if (!pairs) std::abort();
    benchmark::DoNotOptimize(pairs->size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(data.db.size()));
}
BENCHMARK(BM_CsvLoad);

// Full snapshot activation: load + index build, the cost of one hot reload.
void BM_SnapshotActivate(benchmark::State& state) {
  const Dataset& data = dataset();
  for (auto _ : state) {
    auto db = serve::SiblingDB::load(data.db_path);
    if (!db) std::abort();
    const serve::LookupEngine engine(*db);
    benchmark::DoNotOptimize(engine.v4_prefix_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotActivate);

}  // namespace

int main(int argc, char** argv) { return spbench::benchmark_json_main(argc, argv); }
