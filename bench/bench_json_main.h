// Custom main for the google-benchmark binaries: accepts a friendlier
// `--json <path>` (or `--json=<path>`) flag and translates it into
// google-benchmark's --benchmark_out / --benchmark_out_format pair, so CI
// and scripts can request machine-readable output uniformly.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

namespace spbench {

inline int benchmark_json_main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      storage.push_back("--benchmark_out=" + std::string(argv[++i]));
      storage.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      storage.push_back("--benchmark_out=" + std::string(arg.substr(7)));
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.emplace_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (auto& s : storage) args.push_back(s.data());
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace spbench
