// Custom main for the google-benchmark binaries: accepts a friendlier
// `--json <path>` (or `--json=<path>`) flag and translates it into
// google-benchmark's --benchmark_out / --benchmark_out_format pair, so CI
// and scripts can request machine-readable output uniformly.
//
// After the run, the process-wide obs::MetricsRegistry scrape is spliced
// into the JSON file as a top-level "sp_metrics" object, so one artifact
// carries both the benchmark timings and the counters/histograms the
// benchmarked code recorded while producing them.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/rss.h"

namespace spbench {

/// Peak resident set size of this process in kilobytes. Recorded into the
/// JSON artifact so scale benchmarks expose memory alongside latency.
inline long peak_rss_kb() { return sp::obs::peak_rss_kb(); }

/// The shared per-benchmark memory counter: call once per benchmark body
/// instead of scraping RSS ad hoc, so every binary reports the same
/// "peak_rss_kb" counter (the top-level "sp_peak_rss_kb" in the JSON
/// artifact is added unconditionally by embed_metrics_json).
inline void record_peak_rss(benchmark::State& state) {
  state.counters["peak_rss_kb"] = static_cast<double>(peak_rss_kb());
}

/// Rewrites the benchmark JSON at `path`, inserting
/// `"sp_metrics": <registry scrape>` and `"sp_peak_rss_kb"` before the
/// closing brace of the top-level object. Best-effort: a malformed/missing
/// file is left alone.
inline bool embed_metrics_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  in.close();

  const std::size_t close = text.find_last_of('}');
  if (close == std::string::npos) return false;
  const std::string metrics = sp::obs::MetricsRegistry::global().scrape().to_json();
  text.insert(close, ",\n  \"sp_metrics\": " + metrics +
                         ",\n  \"sp_peak_rss_kb\": " + std::to_string(peak_rss_kb()) + "\n");

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return out.good();
}

inline int benchmark_json_main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      storage.push_back("--benchmark_out=" + json_path);
      storage.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
      storage.push_back("--benchmark_out=" + json_path);
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.emplace_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (auto& s : storage) args.push_back(s.data());
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty() && !embed_metrics_json(json_path)) {
    std::fprintf(stderr, "warning: could not embed sp_metrics into %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace spbench
