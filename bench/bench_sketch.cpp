// Detection-at-scale benchmarks (google-benchmark): the exact engine vs
// the sketch engine (bottom-k MinHash signatures + LSH banding,
// DESIGN.md §3.7) on the synthetic universe at scale 1 (today's corpus)
// and scale 10 (replicated hypergiant edge clusters — the paper-scale
// regime the sketch filter exists for). Both engines produce
// byte-identical output; BM_Identity asserts it inside the bench so the
// checked-in numbers always come from a verified run.
//
// `--json out.json` writes google-benchmark JSON (see bench_json_main.h);
// BENCH_sketch.json at the repo root is a checked-in run of this binary:
//
//   ./build/bench/bench_sketch --json BENCH_sketch.json
//
// The scale-10 universe takes minutes to build and several GB of RSS, so
// each scale's corpus is built once and shared across benchmarks, and the
// scale-10 timings run a single iteration.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <memory>

#include "bench_json_main.h"
#include "core/detect.h"
#include "sketch/detect_sketch.h"
#include "synth/universe.h"

namespace {

using namespace sp;

/// One corpus + flattened index per scale, built lazily and cached.
/// DualStackCorpus owns its data, so the multi-GB universe is dropped as
/// soon as the build finishes.
struct ScaledCorpus {
  core::DualStackCorpus corpus;
  core::DetectIndex index;
};

const ScaledCorpus& corpus_at(int scale) {
  static std::map<int, std::unique_ptr<ScaledCorpus>> cache;
  auto& slot = cache[scale];
  if (!slot) {
    synth::SynthConfig config;
    config.scale = scale;
    const synth::SyntheticInternet universe(config);
    const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
    auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
    auto index = core::DetectIndex::build(corpus.prefix_domains(Family::v4),
                                          corpus.prefix_domains(Family::v6));
    slot = std::make_unique<ScaledCorpus>(
        ScaledCorpus{std::move(corpus), std::move(index)});
  }
  return *slot;
}

void BM_DetectExact(benchmark::State& state) {
  const auto& corpus = corpus_at(static_cast<int>(state.range(0))).corpus;
  core::DetectStats stats;
  std::size_t pairs = 0;
  for (auto _ : state) {
    const auto result =
        core::detect_sibling_prefixes(corpus, {.threads = 1, .stats = &stats});
    pairs = result.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["candidates_evaluated"] = static_cast<double>(stats.candidates_evaluated);
  spbench::record_peak_rss(state);
}
BENCHMARK(BM_DetectExact)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetectExact)->Arg(10)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_DetectSketch(benchmark::State& state) {
  const auto& corpus = corpus_at(static_cast<int>(state.range(0))).corpus;
  sketch::SketchStats stats;
  std::size_t pairs = 0;
  for (auto _ : state) {
    const auto result = sketch::detect_sibling_prefixes(
        corpus, {.threads = 1, .strategy = core::DetectStrategy::Sketch}, {}, &stats);
    pairs = result.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["signature_build_ms"] = stats.signature_build_ms;
  state.counters["sources_total"] = static_cast<double>(stats.sources_total);
  state.counters["sources_fallback"] = static_cast<double>(stats.sources_fallback);
  state.counters["lsh_candidates"] = static_cast<double>(stats.lsh_candidates);
  state.counters["estimates_skipped"] = static_cast<double>(stats.estimates_skipped);
  state.counters["survivors_verified"] = static_cast<double>(stats.survivors_verified);
  state.counters["max_estimate_error"] = stats.max_estimate_error;
  spbench::record_peak_rss(state);
}
BENCHMARK(BM_DetectSketch)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetectSketch)->Arg(10)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SignatureBuild(benchmark::State& state) {
  const auto& index = corpus_at(static_cast<int>(state.range(0))).index;
  for (auto _ : state) {
    const auto sketch_index = sketch::SketchIndex::build(index, {});
    benchmark::DoNotOptimize(&sketch_index);
  }
  state.counters["v4_prefixes"] = static_cast<double>(index.v4.prefix_count());
  state.counters["v6_prefixes"] = static_cast<double>(index.v6.prefix_count());
}
BENCHMARK(BM_SignatureBuild)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SignatureBuild)->Arg(10)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Not a timing benchmark: runs both engines once at the given scale and
/// fails the bench if any pair (or its similarity, byte-compared) differs,
/// so a checked-in BENCH_sketch.json certifies identity at every scale it
/// reports.
void BM_Identity(benchmark::State& state) {
  const auto& corpus = corpus_at(static_cast<int>(state.range(0))).corpus;
  std::size_t mismatches = 0;
  for (auto _ : state) {
    const auto exact = core::detect_sibling_prefixes(corpus, {.threads = 1});
    const auto sketched = sketch::detect_sibling_prefixes(
        corpus, {.threads = 1, .strategy = core::DetectStrategy::Sketch});
    if (exact.size() != sketched.size()) {
      ++mismatches;
    } else {
      for (std::size_t i = 0; i < exact.size(); ++i) {
        if (sketched[i].v4 != exact[i].v4 || sketched[i].v6 != exact[i].v6 ||
            std::memcmp(&sketched[i].similarity, &exact[i].similarity,
                        sizeof(double)) != 0) {
          ++mismatches;
          break;
        }
      }
    }
  }
  if (mismatches != 0) {
    state.SkipWithError("sketch output diverged from exact");
    return;
  }
  state.counters["mismatches"] = 0.0;
}
BENCHMARK(BM_Identity)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Identity)->Arg(10)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return spbench::benchmark_json_main(argc, argv); }
