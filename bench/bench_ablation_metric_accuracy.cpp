// Ablation: detection accuracy per similarity metric, against the
// synthetic oracle.
//
// The paper justifies Jaccard qualitatively (section 3.2: the overlap
// coefficient saturates on subset relations). The synthetic universe knows
// the true hosting relations, so this ablation quantifies the choice: a
// detected pair is *correct* when both prefixes are originated by the same
// organization or linked by the monitoring domain; the candidate ground
// truth is every (v4 prefix, v6 prefix) combination that co-hosts at
// least one domain.
#include "bench_common.h"

#include <unordered_set>

namespace {

struct PairKey {
  sp::Prefix v4;
  sp::Prefix v6;
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& key) const noexcept {
    return std::hash<sp::Prefix>{}(key.v4) ^ (std::hash<sp::Prefix>{}(key.v6) << 1);
  }
};

}  // namespace

int main() {
  using namespace spbench;
  header("Ablation", "metric choice: precision/recall vs synthetic oracle");

  const auto& u = universe();
  const auto& corpus = corpus_at(last_month());

  // Oracle: all co-hosting (v4 prefix, v6 prefix) combinations — every
  // pair of announced prefixes sharing >= 1 dual-stack domain.
  std::unordered_set<PairKey, PairKeyHash> truth;
  for (const auto& [v4_prefix, domains] : corpus.prefix_domains(sp::Family::v4)) {
    for (const sp::core::DomainId id : domains) {
      for (const sp::Prefix& v6_prefix : corpus.prefixes_of(id, sp::Family::v6)) {
        truth.insert({v4_prefix, v6_prefix});
      }
    }
  }

  // A detected pair is organizationally correct when the two origin ASes
  // belong to one organization, or the pair is induced by the monitoring
  // domain (which legitimately links different orgs).
  const auto is_correct = [&](const sp::core::SiblingPair& pair) {
    const auto v4_route = u.rib().lookup(pair.v4);
    const auto v6_route = u.rib().lookup(pair.v6);
    if (!v4_route || !v6_route) return false;
    if (u.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as)) return true;
    // Monitoring-linked: the pair's shared element includes the monitoring
    // domain, which by construction is the only single domain spanning
    // unrelated orgs.
    const auto monitoring =
        corpus.interner().find(sp::dns::DomainName::must_parse("probe.monitorcorp.example"));
    if (!monitoring) return false;
    const sp::core::DomainSet* v4_domains = corpus.domains_of(pair.v4);
    const sp::core::DomainSet* v6_domains = corpus.domains_of(pair.v6);
    return v4_domains != nullptr && v6_domains != nullptr &&
           sp::core::contains_id(*v4_domains, *monitoring) &&
           sp::core::contains_id(*v6_domains, *monitoring);
  };

  sp::analysis::TextTable table(
      {"metric", "pairs", "org-precision", "truth-recall", "perfect share"});
  for (const auto metric :
       {sp::core::Metric::Jaccard, sp::core::Metric::Dice, sp::core::Metric::Overlap}) {
    const auto pairs = sp::core::detect_sibling_prefixes(corpus, {metric});
    std::size_t correct = 0;
    std::size_t in_truth = 0;
    for (const auto& pair : pairs) {
      if (is_correct(pair)) ++correct;
      if (truth.contains({pair.v4, pair.v6})) ++in_truth;
    }
    table.add_row({std::string(sp::core::metric_name(metric)), std::to_string(pairs.size()),
                   pct(static_cast<double>(correct) / pairs.size()),
                   pct(static_cast<double>(in_truth) / truth.size()),
                   pct(perfect_share(pairs))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("oracle: %zu co-hosting prefix combinations\n\n", truth.size());
  std::printf("reading: Jaccard and Dice pick the same best matches on most prefixes\n"
              "(Dice is a monotone transform of Jaccard, so ordering differences only\n"
              "arise across candidates with different set sizes); the overlap\n"
              "coefficient's subset saturation creates spurious ties and hence more,\n"
              "less precise pairs — the quantitative version of the paper's argument\n"
              "for Jaccard.\n");
  return 0;
}
