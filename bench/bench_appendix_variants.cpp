// Appendix figures: the paper repeats its main analyses for all three
// prefix notions — default BGP-announced, SP-Tuner /24-/48, and SP-Tuner
// /28-/96 — plus two business-type counting variants.
//
//   Figs 23-25: HG/CDN Jaccard distributions per notion
//   Figs 29-32: same/different-organization split and median Jaccard
//   Figs 33-34: domains-per-pair distribution (default, /24-/48)
//   Figs 35-36: CIDR size distribution of tuned pairs
//   Figs 20-21: business types counted by unique AS pair / unfiltered
#include "bench_common.h"

#include <map>
#include <set>

namespace {

struct Notion {
  const char* name;
  const std::vector<sp::core::SiblingPair>* pairs;
};

}  // namespace

int main() {
  using namespace spbench;
  header("Appendix figures 20-36", "main analyses across prefix notions");

  const auto& u = universe();
  const int last = last_month();
  const Notion notions[] = {
      {"default", &default_pairs_at(last)},
      {"sp-tuner /24-/48", &tuned_pairs_at(last, 24, 48)},
      {"sp-tuner /28-/96", &tuned_pairs_at(last, 28, 96)},
  };

  // --- Figures 23-25 + 29-34: one summary row per notion ---
  sp::analysis::TextTable summary({"notion", "pairs", "same-org", "median J same",
                                   "median J diff", "HG/CDN pairs", "HG top-bin",
                                   "single-domain pairs"});
  for (const auto& notion : notions) {
    std::size_t same = 0;
    std::size_t diff = 0;
    std::vector<double> same_j;
    std::vector<double> diff_j;
    std::size_t hg_pairs = 0;
    std::size_t hg_top_bin = 0;
    std::size_t single_domain = 0;
    for (const auto& pair : *notion.pairs) {
      const auto v4_route = u.rib().lookup(pair.v4);
      const auto v6_route = u.rib().lookup(pair.v6);
      if (!v4_route || !v6_route) continue;
      const bool same_org = u.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as);
      (same_org ? same : diff) += 1;
      (same_org ? same_j : diff_j).push_back(pair.similarity);
      const std::string* org = u.as_orgs().org_name(v4_route->origin_as);
      if (same_org && org != nullptr && u.catalog().is_cdn_or_hg(*org)) {
        ++hg_pairs;
        if (pair.similarity >= 0.9) ++hg_top_bin;
      }
      if (pair.v4_domain_count == 1 && pair.v6_domain_count == 1) ++single_domain;
    }
    summary.add_row(
        {notion.name, std::to_string(notion.pairs->size()),
         pct(static_cast<double>(same) / (same + diff)),
         num(sp::analysis::median(same_j), 2), num(sp::analysis::median(diff_j), 2),
         std::to_string(hg_pairs),
         pct(hg_pairs == 0 ? 0.0 : static_cast<double>(hg_top_bin) / hg_pairs),
         pct(static_cast<double>(single_domain) / notion.pairs->size())});
  }
  std::printf("%s", summary.render().c_str());
  std::printf("paper:    same-org share and median Jaccard ~stable across notions;\n"
              "          HG/CDN mass concentrated at 0.9-1.0 for all three;\n"
              "          single-domain share rises with tuning (Figs 33/34)\n\n");

  // --- Figures 35/36: tuned CIDR concentration ---
  for (const auto& [v4_threshold, v6_threshold] : {std::pair{24u, 48u}, std::pair{28u, 96u}}) {
    const auto& pairs = tuned_pairs_at(last, v4_threshold, v6_threshold);
    std::size_t at_threshold = 0;
    for (const auto& pair : pairs) {
      if (pair.v4.length() == v4_threshold && pair.v6.length() == v6_threshold) {
        ++at_threshold;
      }
    }
    std::printf("Fig %s: pairs exactly at /%u-/%u: %s\n",
                v4_threshold == 24 ? "35" : "36", v4_threshold, v6_threshold,
                pct(static_cast<double>(at_threshold) / pairs.size()).c_str());
  }

  // --- Figures 20/21: business-type counting variants ---
  const int jan24 = u.month_index(sp::Date{2024, 1, 11});
  const auto& pairs = default_pairs_at(jan24);
  std::map<std::pair<int, int>, std::size_t> by_as_pair_cell;
  std::map<std::pair<int, int>, std::size_t> unfiltered_cell;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_as_pairs;
  for (const auto& pair : pairs) {
    const auto v4_route = u.rib().lookup(pair.v4);
    const auto v6_route = u.rib().lookup(pair.v6);
    if (!v4_route || !v6_route) continue;
    const auto v4_type = u.asdb().single_category(v4_route->origin_as);
    const auto v6_type = u.asdb().single_category(v6_route->origin_as);
    if (!v4_type || !v6_type) continue;
    const auto cell = std::pair{static_cast<int>(*v4_type), static_cast<int>(*v6_type)};
    ++unfiltered_cell[cell];  // Fig 21: everything, same-ASN pairs included
    if (v4_route->origin_as != v6_route->origin_as &&
        seen_as_pairs.insert({v4_route->origin_as, v6_route->origin_as}).second) {
      ++by_as_pair_cell[cell];  // Fig 20: unique origin-AS pairs
    }
  }
  const auto it_cell = std::pair{static_cast<int>(sp::asinfo::BusinessType::ComputerIT),
                                 static_cast<int>(sp::asinfo::BusinessType::ComputerIT)};
  const auto top_of = [](const std::map<std::pair<int, int>, std::size_t>& cells) {
    std::pair<std::pair<int, int>, std::size_t> best{{0, 0}, 0};
    for (const auto& entry : cells) {
      if (entry.second > best.second) best = entry;
    }
    return best;
  };
  const auto top20 = top_of(by_as_pair_cell);
  const auto top21 = top_of(unfiltered_cell);
  std::printf("\nFig 20 (unique AS pairs): IT×IT = %zu, largest cell is IT×IT: %s\n",
              by_as_pair_cell[it_cell], top20.first == it_cell ? "yes" : "NO");
  std::printf("Fig 21 (unfiltered): IT×IT = %zu, largest cell is IT×IT: %s;"
              " diagonal (same-AS) mass dominates: %s\n",
              unfiltered_cell[it_cell], top21.first == it_cell ? "yes" : "NO",
              [&] {
                std::size_t diagonal = 0;
                std::size_t total = 0;
                for (const auto& [cell, count] : unfiltered_cell) {
                  total += count;
                  if (cell.first == cell.second) diagonal += count;
                }
                return pct(total == 0 ? 0.0 : static_cast<double>(diagonal) / total);
              }()
                  .c_str());
  std::printf("paper:    both variants keep IT×IT as the dominant cell, with the\n"
              "          unfiltered version adding a strong same-business diagonal\n");
  return 0;
}
