// Figure 1: number of all domains (left) and dual-stack domains (right)
// over time in the DNS dataset.
//
// Paper shape: total domains grow ~5M → ~13M over Sep 2020 - Sep 2024 with
// the largest jump at the .fr ccTLD addition (Aug 2022) and a slight drop
// at the Alexa top-list removal (May 2023); the dual-stack share grows
// from 25.2% to 31.8%.
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 1", "domains and dual-stack domains over time");

  const auto& u = universe();
  sp::analysis::TextTable table({"date", "domains", "ds_domains", "ds_share"});
  std::size_t first_total = 0;
  std::size_t last_total = 0;
  double first_share = 0.0;
  double last_share = 0.0;
  for (int month = 0; month < u.month_count(); month += 2) {
    const auto snapshot = u.snapshot_at(month);
    const double share =
        static_cast<double>(snapshot.dual_stack_count()) / snapshot.domain_count();
    table.add_row({snapshot.date().to_string(), std::to_string(snapshot.domain_count()),
                   std::to_string(snapshot.dual_stack_count()), pct(share)});
    if (month == 0) {
      first_total = snapshot.domain_count();
      first_share = share;
    }
    last_total = snapshot.domain_count();
    last_share = share;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("paper:    total grows ~2.6x over the window; DS share 25.2%% -> 31.8%%\n");
  std::printf("measured: total grows %.2fx; DS share %s -> %s\n",
              static_cast<double>(last_total) / static_cast<double>(first_total),
              pct(first_share).c_str(), pct(last_share).c_str());

  // Event check: the .fr addition month must show the largest jump.
  const int fr_month = u.month_index(sp::Date{2022, 8, 10});
  const std::size_t before = u.snapshot_at(fr_month - 1).domain_count();
  const std::size_t after = u.snapshot_at(fr_month).domain_count();
  std::printf("event:    .fr addition %s: %zu -> %zu domains (+%s)\n",
              u.date_of_month(fr_month).to_string().c_str(), before, after,
              pct(static_cast<double>(after - before) / before).c_str());
  const int alexa_month = u.month_index(sp::Date{2023, 5, 10});
  std::printf("event:    Alexa removal %s: %zu -> %zu domains\n",
              u.date_of_month(alexa_month).to_string().c_str(),
              u.snapshot_at(alexa_month - 1).domain_count(),
              u.snapshot_at(alexa_month).domain_count());
  return 0;
}
