// Figures 14 and 15 (and appendix 29-32): sibling pairs originated by the
// same vs different organizations over time, with unique prefix counts and
// the median Jaccard per group.
//
// Paper shape: slightly more than half of pairs have both origin ASes
// under the same organization name; the different-organization series dips
// whenever the site24x7-style monitoring domain is missing from the data;
// the same-org median Jaccard is pinned at 1.0 while the diff-org median
// is 1.0 only when the monitoring domain is present.
#include "bench_common.h"

namespace {

struct OrgSplit {
  std::size_t same = 0;
  std::size_t different = 0;
  std::vector<double> same_jaccard;
  std::vector<double> diff_jaccard;
};

OrgSplit split_pairs(const std::vector<sp::core::SiblingPair>& pairs) {
  OrgSplit split;
  const auto& u = spbench::universe();
  for (const auto& pair : pairs) {
    const auto v4_route = u.rib().lookup(pair.v4);
    const auto v6_route = u.rib().lookup(pair.v6);
    if (!v4_route || !v6_route) continue;
    if (u.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as)) {
      ++split.same;
      split.same_jaccard.push_back(pair.similarity);
    } else {
      ++split.different;
      split.diff_jaccard.push_back(pair.similarity);
    }
  }
  return split;
}

}  // namespace

int main() {
  using namespace spbench;
  header("Figures 14+15", "same-org vs different-org pairs over time");

  const auto& u = universe();
  sp::analysis::TextTable table({"date", "same org", "diff org", "v4 prefixes", "v6 prefixes",
                                 "median J same", "median J diff"});
  // Include the monitoring-domain outage months explicitly (the dips).
  std::vector<int> months;
  for (int back = 48; back >= 0; back -= 8) months.push_back(u.month_count() - 1 - back);
  months.push_back(u.month_index(sp::Date{2023, 5, 11}));
  std::sort(months.begin(), months.end());
  months.erase(std::unique(months.begin(), months.end()), months.end());

  std::size_t newest_same = 0;
  std::size_t newest_diff = 0;
  std::size_t dip_diff = 0;
  for (const int month : months) {
    const auto& pairs = default_pairs_at(month);
    const auto split = split_pairs(pairs);
    table.add_row({u.date_of_month(month).to_string(), std::to_string(split.same),
                   std::to_string(split.different),
                   std::to_string(sp::core::unique_prefix_count(pairs, sp::Family::v4)),
                   std::to_string(sp::core::unique_prefix_count(pairs, sp::Family::v6)),
                   num(sp::analysis::median(split.same_jaccard), 2),
                   num(sp::analysis::median(split.diff_jaccard), 2)});
    if (month == last_month()) {
      newest_same = split.same;
      newest_diff = split.different;
    }
    if (month == u.month_index(sp::Date{2023, 5, 11})) dip_diff = split.different;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("paper:    Sep 2024: ~41k same-org vs ~35k diff-org (54/46); diff-org dips when"
              " the monitoring domain is absent (e.g. May 2023)\n");
  std::printf("measured: %zu same-org vs %zu diff-org (%s same);"
              " diff-org at the May-2023 outage: %zu\n",
              newest_same, newest_diff,
              pct(static_cast<double>(newest_same) / (newest_same + newest_diff)).c_str(),
              dip_diff);
  std::printf("paper:    median Jaccard same-org pinned at 1.0; diff-org sensitive to the"
              " monitoring domain\n");
  return 0;
}
