// Figure 2: comparison of Jaccard, Dice, and overlap-coefficient CDFs for
// sibling prefix pairs.
//
// Paper shape: with the overlap coefficient >90% of pairs sit at exactly
// 1.0 (subset relations saturate it); Jaccard and Dice track each other
// with ~50% of pairs at 1.0, Dice slightly more lenient below 1.
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 2", "similarity metric comparison (CDF)");

  const auto& corpus = corpus_at(last_month());
  struct Series {
    const char* name;
    sp::core::Metric metric;
    sp::analysis::Cdf cdf;
    double at_one = 0.0;
  };
  std::vector<Series> series = {{"jaccard", sp::core::Metric::Jaccard, {}, 0},
                                {"dice", sp::core::Metric::Dice, {}, 0},
                                {"overlap", sp::core::Metric::Overlap, {}, 0}};
  for (auto& s : series) {
    const auto pairs = sp::core::detect_sibling_prefixes(corpus, {s.metric});
    s.cdf = sp::analysis::Cdf(sp::core::similarity_values(pairs));
    s.at_one = s.cdf.fraction_at_least(1.0);
  }

  sp::analysis::TextTable table({"similarity<=", "jaccard", "dice", "overlap"});
  for (int i = 1; i <= 10; ++i) {
    const double x = i / 10.0 - 1e-9;  // strictly-below semantics at the grid point
    table.add_row({num(i / 10.0, 1), pct(series[0].cdf.fraction_at_most(x)),
                   pct(series[1].cdf.fraction_at_most(x)),
                   pct(series[2].cdf.fraction_at_most(x))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("paper:    overlap has >90%% of pairs at exactly 1.0; jaccard/dice ~50%%\n");
  std::printf("measured: at 1.0 — jaccard %s, dice %s, overlap %s\n",
              pct(series[0].at_one).c_str(), pct(series[1].at_one).c_str(),
              pct(series[2].at_one).c_str());
  std::printf("ordering holds: jaccard <= dice <= overlap for every pair (validated in tests)\n");
  return 0;
}
