// Ablation: sibling detection from a non-DNS input (paper section 3.7).
//
// The methodology only needs a prefix→set mapping. Here the input is the
// port scan: each prefix's set is its responsive (host-suffix, port)
// observations, and detection runs unchanged over a SetCorpus. The bench
// measures how well the port-based pairs agree with the DNS-based ones.
#include "bench_common.h"

#include <unordered_set>

int main() {
  using namespace spbench;
  header("Ablation", "detection from port-scan input (section 3.7)");

  const auto& u = universe();
  const auto scan_data = u.port_scan();
  const auto& dns_pairs = default_pairs_at(last_month());

  // Build the port corpus: for every responsive host, one element per
  // (host-hash, port) pair. Host identity must align across families for
  // co-hosted services; dual-stack hosts of one domain share the service,
  // so we key elements on (domain-agnostic) open port plus a short host
  // digest derived from the address's prefix offset — the same scheme a
  // consumer without DNS could apply.
  sp::core::SetCorpus corpus;
  const auto snapshot = u.snapshot_at(last_month());
  for (const auto& entry : snapshot.entries()) {
    if (!entry.dual_stack()) continue;
    // Identify the service by its responsive port set, shared by the v4
    // and v6 side of the same host.
    for (const auto& v4 : entry.v4) {
      const auto route = u.rib().lookup(sp::IPAddress(v4));
      const sp::scan::PortMask mask = scan_data.ports_of(sp::IPAddress(v4));
      if (!route || mask == 0) continue;
      for (unsigned bit = 0; bit < sp::scan::kWellKnownPorts.size(); ++bit) {
        if ((mask >> bit) & 1u) {
          // Element id: port index + a per-entry service salt so distinct
          // services don't collapse into 14 global ids.
          const auto element = static_cast<sp::core::DomainId>(
              (std::hash<std::string>{}(entry.response_name.text()) % 100000) * 16 + bit);
          corpus.add(route->prefix, element);
        }
      }
    }
    for (const auto& v6 : entry.v6) {
      const auto route = u.rib().lookup(sp::IPAddress(v6));
      const sp::scan::PortMask mask = scan_data.ports_of(sp::IPAddress(v6));
      if (!route || mask == 0) continue;
      for (unsigned bit = 0; bit < sp::scan::kWellKnownPorts.size(); ++bit) {
        if ((mask >> bit) & 1u) {
          const auto element = static_cast<sp::core::DomainId>(
              (std::hash<std::string>{}(entry.response_name.text()) % 100000) * 16 + bit);
          corpus.add(route->prefix, element);
        }
      }
    }
  }
  corpus.finalize();

  const auto port_pairs = sp::core::detect_sibling_prefixes(corpus);

  std::unordered_set<std::string> dns_keys;
  for (const auto& pair : dns_pairs) {
    dns_keys.insert(pair.v4.to_string() + "|" + pair.v6.to_string());
  }
  std::size_t agree = 0;
  for (const auto& pair : port_pairs) {
    if (dns_keys.contains(pair.v4.to_string() + "|" + pair.v6.to_string())) ++agree;
  }

  sp::analysis::TextTable table({"input", "pairs", "perfect share"});
  table.add_row({"DNS domains", std::to_string(dns_pairs.size()),
                 pct(perfect_share(dns_pairs))});
  table.add_row({"port scan", std::to_string(port_pairs.size()),
                 pct(perfect_share(port_pairs))});
  std::printf("%s\n", table.render().c_str());

  std::printf("port-based pairs also found by DNS detection: %zu of %zu (%s)\n", agree,
              port_pairs.size(),
              pct(port_pairs.empty() ? 0.0
                                     : static_cast<double>(agree) /
                                           static_cast<double>(port_pairs.size()))
                  .c_str());
  std::printf("\nreading: the same best-match machinery works on any prefix→set input;\n"
              "port-scan coverage is narrower (silent orgs, closed ports), so it finds\n"
              "fewer pairs, but the ones it finds overwhelmingly agree with DNS.\n");
  return 0;
}
