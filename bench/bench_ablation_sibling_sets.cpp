// Ablation (paper section 6, future work): sibling prefix *set* pairs.
//
// IPv4 fragmentation splits one deployment across several prefixes and
// caps the pairwise Jaccard; grouping connected pairs and scoring the
// unioned domain sets recovers similarity. This bench quantifies the
// effect on the synthetic universe.
#include "bench_common.h"

#include "core/sibling_sets.h"

int main() {
  using namespace spbench;
  header("Ablation", "sibling prefix set pairs (section 6 future work)");

  const auto& corpus = corpus_at(last_month());
  const auto& pairs = default_pairs_at(last_month());
  const auto sets = sp::core::build_sibling_sets(corpus, pairs);

  std::size_t multi = 0;
  std::vector<double> pair_values = sp::core::similarity_values(pairs);
  std::vector<double> set_values;
  std::vector<double> multi_set_values;
  for (const auto& set : sets) {
    set_values.push_back(set.similarity);
    if (set.member_pairs > 1) {
      ++multi;
      multi_set_values.push_back(set.similarity);
    }
  }

  sp::analysis::TextTable table({"granularity", "count", "mean jaccard", "perfect share"});
  const auto row = [&](const char* name, const std::vector<double>& values) {
    const auto summary = sp::analysis::summarize(values);
    std::size_t perfect = 0;
    for (const double v : values) {
      if (v >= 1.0 - 1e-12) ++perfect;
    }
    table.add_row({name, std::to_string(values.size()), num(summary.mean),
                   pct(values.empty() ? 0.0 : static_cast<double>(perfect) / values.size())});
  };
  row("pairs (default)", pair_values);
  row("set pairs (all components)", set_values);
  row("set pairs (multi-pair components)", multi_set_values);
  std::printf("%s\n", table.render().c_str());

  std::printf("components: %zu total, %zu spanning more than one pair\n", sets.size(), multi);
  if (!sets.empty()) {
    const auto& largest = sets.front();
    std::printf("largest component: %zu pairs, %zu v4 + %zu v6 prefixes, %zu domains,"
                " jaccard %s\n",
                largest.member_pairs, largest.v4_prefixes.size(), largest.v6_prefixes.size(),
                largest.domain_count, num(largest.similarity).c_str());
  }
  std::printf("expectation: set-pair similarity >= pairwise similarity on fragmented"
              " deployments (the grouping can only merge matching fragments)\n");
  return 0;
}
