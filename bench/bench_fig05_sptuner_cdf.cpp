// Figure 5: CDF of Jaccard similarity for sibling prefixes — default
// BGP-announced sizes vs SP-Tuner at the routable (/24,/48) and optimal
// (/28,/96) thresholds.
//
// Paper shape: perfect matches 52% (default) → 67% (routable) → >82%
// (/28-/96).
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 5", "SP-Tuner CDF: default vs /24-/48 vs /28-/96");

  const auto& default_pairs = default_pairs_at(last_month());
  const auto& routable = tuned_pairs_at(last_month(), 24, 48);
  const auto& optimal = tuned_pairs_at(last_month(), 28, 96);

  const sp::analysis::Cdf default_cdf(sp::core::similarity_values(default_pairs));
  const sp::analysis::Cdf routable_cdf(sp::core::similarity_values(routable));
  const sp::analysis::Cdf optimal_cdf(sp::core::similarity_values(optimal));

  sp::analysis::TextTable table({"jaccard<=", "default", "sp-tuner/24-/48", "sp-tuner/28-/96"});
  for (int i = 0; i <= 10; ++i) {
    const double x = i / 10.0 - 1e-9;
    table.add_row({num(i / 10.0, 1), pct(default_cdf.fraction_at_most(x)),
                   pct(routable_cdf.fraction_at_most(x)),
                   pct(optimal_cdf.fraction_at_most(x))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("pair counts: default %zu, /24-/48 %zu, /28-/96 %zu\n", default_pairs.size(),
              routable.size(), optimal.size());
  std::printf("paper:    perfect matches 52%% -> 67%% -> 82%%\n");
  std::printf("measured: perfect matches %s -> %s -> %s\n",
              pct(perfect_share(default_pairs)).c_str(), pct(perfect_share(routable)).c_str(),
              pct(perfect_share(optimal)).c_str());
  return 0;
}
