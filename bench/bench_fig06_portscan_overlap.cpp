// Figure 6: joint heatmap of sibling-pair Jaccard values from DNS
// (x-axis) and from open-port scans (y-axis), over the /28-/96 SP-Tuner
// pairs.
//
// Paper shape: 70.9% of sibling prefixes respond to scans; the top-right
// cell (both Jaccard >= 0.9) holds the largest mass at ~36%.
#include "bench_common.h"

#include "core/portscan_compare.h"

int main() {
  using namespace spbench;
  header("Figure 6", "DNS Jaccard vs port-scan Jaccard");

  const auto& pairs = tuned_pairs_at(last_month(), 28, 96);
  const auto scan_data = universe().port_scan();
  const auto comparison = sp::core::compare_with_portscan(pairs, scan_data);

  std::vector<std::string> labels;
  for (int i = 0; i < sp::core::kJaccardBins; ++i) {
    labels.push_back(num(i / 10.0, 1) + "-" + num((i + 1) / 10.0, 1));
  }
  sp::analysis::Heatmap joint(labels, labels);  // rows: scan bins, cols: dns bins
  for (int dns = 0; dns < sp::core::kJaccardBins; ++dns) {
    for (int scan_bin = 0; scan_bin < sp::core::kJaccardBins; ++scan_bin) {
      joint.at(static_cast<std::size_t>(scan_bin), static_cast<std::size_t>(dns)) =
          static_cast<double>(comparison.joint[static_cast<std::size_t>(dns)]
                                              [static_cast<std::size_t>(scan_bin)]);
    }
  }
  joint.normalize_to_percent();
  std::printf("%% of responsive pairs (rows: port-scan Jaccard, cols: DNS Jaccard)\n%s\n",
              joint.render(1).c_str());

  const double top_right = joint.at(9, 9);
  std::printf("paper:    70.9%% of pairs responsive; top-right cell (both >=0.9) ~36%%\n");
  std::printf("measured: %s responsive (%zu of %zu); top-right cell %s\n",
              pct(comparison.responsive_share()).c_str(), comparison.responsive_pairs,
              comparison.pair_count, pct(top_right / 100.0).c_str());

  // Quantify the correlation the paper describes qualitatively.
  std::vector<double> dns_values;
  std::vector<double> scan_values;
  for (const auto& pair : pairs) {
    const sp::scan::PortMask ports4 = scan_data.ports_in(pair.v4);
    const sp::scan::PortMask ports6 = scan_data.ports_in(pair.v6);
    if ((ports4 | ports6) == 0) continue;
    dns_values.push_back(pair.similarity);
    scan_values.push_back(sp::scan::port_jaccard(ports4, ports6));
  }
  std::printf("rank correlation (Spearman) between DNS and port Jaccard: %.2f\n",
              sp::analysis::spearman(dns_values, scan_values));

  // Correlation direction: high-DNS pairs should be likelier to be
  // high-scan than low-DNS pairs.
  double high_dns_high_scan = 0;
  double high_dns_total = 0;
  double low_dns_high_scan = 0;
  double low_dns_total = 0;
  for (int scan_bin = 0; scan_bin < 10; ++scan_bin) {
    high_dns_total += joint.at(static_cast<std::size_t>(scan_bin), 9);
    low_dns_total += joint.at(static_cast<std::size_t>(scan_bin), 0);
    if (scan_bin == 9) {
      high_dns_high_scan += joint.at(9, 9);
      low_dns_high_scan += joint.at(9, 0);
    }
  }
  std::printf("P(scan>=0.9 | dns>=0.9) = %s vs P(scan>=0.9 | dns<0.1) = %s\n",
              pct(high_dns_total == 0 ? 0 : high_dns_high_scan / high_dns_total).c_str(),
              pct(low_dns_total == 0 ? 0 : low_dns_high_scan / low_dns_total).c_str());
  return 0;
}
