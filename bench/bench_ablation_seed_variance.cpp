// Ablation: seed robustness of the reproduction.
//
// Every figure bench runs on seed 42. If the paper's shapes only appeared
// under one seed the reproduction would be an artifact of the generator,
// not of the pipeline. This bench regenerates the headline metrics under
// several independent seeds and shows they are stable.
#include "bench_common.h"

#include "core/sptuner.h"
#include "synth/universe.h"

int main() {
  using namespace spbench;
  header("Ablation", "seed robustness of the headline metrics");

  sp::analysis::TextTable table({"seed", "pairs", "default perfect", "tuned /28-/96 perfect",
                                 "same-org share", "SP-Tuner lift (pp)"});
  double min_lift = 1.0;
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull, 987654321ull}) {
    sp::synth::SynthConfig config;
    config.seed = seed;
    config.organization_count = 1200;  // smaller per-seed universes
    config.months = 13;
    config.monitoring_v4_prefixes = 30;
    config.monitoring_v6_prefixes = 12;
    const sp::synth::SyntheticInternet universe(config);
    const auto corpus = sp::core::DualStackCorpus::build(
        universe.snapshot_at(universe.month_count() - 1), universe.rib());
    const auto pairs = sp::core::detect_sibling_prefixes(corpus);
    const sp::core::SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
    const auto tuned = tuner.tune_all_parallel(pairs);

    std::size_t same = 0;
    std::size_t classified = 0;
    for (const auto& pair : pairs) {
      const auto v4_route = universe.rib().lookup(pair.v4);
      const auto v6_route = universe.rib().lookup(pair.v6);
      if (!v4_route || !v6_route) continue;
      ++classified;
      if (universe.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as)) ++same;
    }

    const double default_perfect = perfect_share(pairs);
    const double tuned_perfect = perfect_share(tuned.pairs);
    min_lift = std::min(min_lift, tuned_perfect - default_perfect);
    table.add_row({std::to_string(seed), std::to_string(pairs.size()), pct(default_perfect),
                   pct(tuned_perfect),
                   pct(static_cast<double>(same) / static_cast<double>(classified)),
                   num((tuned_perfect - default_perfect) * 100.0, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper:    SP-Tuner lift 52%% -> 82%% (+30pp); >half of pairs same-org\n");
  std::printf("measured: lift is at least %.1fpp under every seed — the shape is a\n"
              "property of the pipeline, not of one random draw.\n",
              min_lift * 100.0);
  return 0;
}
