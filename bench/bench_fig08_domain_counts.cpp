// Figure 8 (and appendix Figures 33/34): sibling pairs classified by the
// number of dual-stack domains in each side's prefix.
//
// Paper shape: >55% of pairs hold a single domain on both sides; pairs
// with 2-5 domains are the second-largest group at 21.3%; the diagonal is
// heavy (sides tend to hold similar domain counts); ~1.6% of pairs have
// >100 domains on both sides.
#include "bench_common.h"

namespace {

int bin_of(std::uint32_t count) {
  if (count <= 1) return 0;
  if (count <= 5) return 1;
  if (count <= 10) return 2;
  if (count <= 50) return 3;
  if (count <= 100) return 4;
  return 5;
}

const char* kBinLabels[] = {"1", "2-5", "6-10", "11-50", "51-100", ">100"};

}  // namespace

int main() {
  using namespace spbench;
  header("Figure 8", "pairs by per-side dual-stack domain counts");

  const auto& pairs = tuned_pairs_at(last_month(), 28, 96);
  const std::vector<std::string> labels(std::begin(kBinLabels), std::end(kBinLabels));
  sp::analysis::Heatmap map(labels, labels);  // rows: v6 bins, cols: v4 bins
  for (const auto& pair : pairs) {
    map.at(static_cast<std::size_t>(bin_of(pair.v6_domain_count)),
           static_cast<std::size_t>(bin_of(pair.v4_domain_count))) += 1.0;
  }
  map.normalize_to_percent();
  std::printf("%% of pairs (rows: IPv6 domain count, cols: IPv4 domain count)\n%s\n",
              map.render(1).c_str());

  double diagonal = 0.0;
  for (std::size_t i = 0; i < map.rows(); ++i) diagonal += map.at(i, i);
  std::printf("paper:    single-domain cell >55%%; 2-5 group 21.3%%; heavy diagonal; >100/>100 1.6%%\n");
  std::printf("measured: single-domain cell %s; 2-5/2-5 cell %s; diagonal mass %s; >100/>100 %s\n",
              pct(map.at(0, 0) / 100.0).c_str(), pct(map.at(1, 1) / 100.0).c_str(),
              pct(diagonal / 100.0).c_str(), pct(map.at(5, 5) / 100.0).c_str());
  return 0;
}
