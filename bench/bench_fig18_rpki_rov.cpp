// Figure 18: route-origin-validation (ROV) status of sibling pairs in the
// RPKI over time (BGP-announced prefix sizes).
//
// Paper shape: the share of pairs where at least one side is valid grows
// from ~50% (2020) to ~65% (2024); the both-not-found share shrinks from
// ~40% to ~20%; conflicting (valid,invalid) stays at 2-8%; ~10% keep an
// invalid side.
#include "bench_common.h"

#include "rpki/rov.h"

int main() {
  using namespace spbench;
  header("Figure 18", "pair ROV status over time");

  const auto& u = universe();
  sp::analysis::TextTable table({"date", "valid,valid", "valid,notfound", "valid,invalid",
                                 "invalid,notfound", "invalid,invalid", "notfound,notfound"});

  double first_any_valid = 0.0;
  double last_any_valid = 0.0;
  double first_both_notfound = 0.0;
  double last_both_notfound = 0.0;
  for (int back = 48; back >= 0; back -= 4) {
    const int month = u.month_count() - 1 - back;
    const auto& pairs = default_pairs_at(month);

    sp::rpki::Validator validator;
    for (const auto& roa : u.roas_at(month)) (void)validator.add_roa(roa);

    std::array<std::size_t, sp::rpki::kPairRovStatusCount> counts{};
    std::size_t classified = 0;
    for (const auto& pair : pairs) {
      const auto v4_route = u.rib().lookup(pair.v4);
      const auto v6_route = u.rib().lookup(pair.v6);
      if (!v4_route || !v6_route) continue;
      const auto status = sp::rpki::classify_pair(
          validator.validate(v4_route->prefix, v4_route->origin_as),
          validator.validate(v6_route->prefix, v6_route->origin_as));
      ++counts[static_cast<std::size_t>(status)];
      ++classified;
    }
    const auto share = [&](sp::rpki::PairRovStatus status) {
      return static_cast<double>(counts[static_cast<std::size_t>(status)]) /
             static_cast<double>(classified);
    };
    using S = sp::rpki::PairRovStatus;
    table.add_row({u.date_of_month(month).to_string(), pct(share(S::BothValid)),
                   pct(share(S::ValidNotFound)), pct(share(S::ValidInvalid)),
                   pct(share(S::InvalidNotFound)), pct(share(S::BothInvalid)),
                   pct(share(S::BothNotFound))});
    const double any_valid =
        share(S::BothValid) + share(S::ValidNotFound) + share(S::ValidInvalid);
    if (back == 48) {
      first_any_valid = any_valid;
      first_both_notfound = share(S::BothNotFound);
    }
    if (back == 0) {
      last_any_valid = any_valid;
      last_both_notfound = share(S::BothNotFound);
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("paper:    at-least-one-valid 50%% -> 65%%; both-not-found 40%% -> 20%%\n");
  std::printf("measured: at-least-one-valid %s -> %s; both-not-found %s -> %s\n",
              pct(first_any_valid).c_str(), pct(last_any_valid).c_str(),
              pct(first_both_notfound).c_str(), pct(last_both_notfound).c_str());
  return 0;
}
