// Figures 11 and 12 (and appendix 26-28): Jaccard similarity of sibling
// pairs at several points in time, before (Fig 11) and after (Fig 12)
// SP-Tuner.
//
// Paper shape: the default perfect-match share stays in the 45-55% band at
// every snapshot; after SP-Tuner (/28-/96) it is roughly doubled to ~80%
// at every snapshot.
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figures 11+12", "Jaccard over time, default vs SP-Tuner");

  const auto& u = universe();
  sp::analysis::TextTable table(
      {"date", "pairs", "default perfect", "tuned /28-/96 perfect", "tuned pairs"});
  bool default_in_band = true;
  bool tuned_high = true;
  for (int back = 48; back >= 0; back -= 12) {
    const int month = u.month_count() - 1 - back;
    const auto& pairs = default_pairs_at(month);
    const auto& tuned = tuned_pairs_at(month, 28, 96);
    const double d = perfect_share(pairs);
    const double t = perfect_share(tuned);
    table.add_row({u.date_of_month(month).to_string(), std::to_string(pairs.size()), pct(d),
                   pct(t), std::to_string(tuned.size())});
    if (d < 0.40 || d > 0.62) default_in_band = false;
    if (t < d + 0.15) tuned_high = false;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper:    default 45-55%% perfect at every snapshot; tuned ~80%% at every snapshot\n");
  std::printf("measured: default stays in band: %s; tuned lifts by >=15pp everywhere: %s\n",
              default_in_band ? "yes" : "NO", tuned_high ? "yes" : "NO");
  return 0;
}
