// Figure 7: dual-stack domain dynamics over thirteen monthly snapshots —
// visibility frequency (left), prefix stability (center) and address
// stability (right).
//
// Paper shape: ~40% of DS domains visible in all 13 snapshots, ~20%
// exactly once; >91% of consistent domains keep their prefixes over the
// year (v4 changes ~9%, v6 ~6%); 83% keep both address sets.
#include "bench_common.h"

#include "core/longitudinal.h"

int main() {
  using namespace spbench;
  header("Figure 7", "DS-domain visibility, prefix and address stability");

  const auto& u = universe();
  sp::core::LongitudinalTracker tracker;
  const int first = u.month_count() - 13;
  for (int month = first; month < u.month_count(); ++month) {
    tracker.add_snapshot(u.snapshot_at(month), u.rib());
  }

  const auto cdf = tracker.visibility_cdf();
  const auto histogram = tracker.visibility_histogram();
  sp::analysis::TextTable visibility({"visible in <= k snapshots", "share"});
  for (std::size_t k = 0; k < cdf.size(); ++k) {
    visibility.add_row({std::to_string(k + 1), pct(cdf[k])});
  }
  std::printf("%s\n", visibility.render().c_str());
  const double always =
      static_cast<double>(histogram.back()) / tracker.tracked_domain_count();
  const double once =
      static_cast<double>(histogram.front()) / tracker.tracked_domain_count();
  std::printf("paper:    ~40%% visible in all 13, ~20%% exactly once\n");
  std::printf("measured: %s in all 13, %s exactly once (%zu DS domains tracked)\n\n",
              pct(always).c_str(), pct(once).c_str(), tracker.tracked_domain_count());

  const auto stability = tracker.stability();
  sp::analysis::TextTable table({"months back", "v4 prefix same", "v6 prefix same",
                                 "v4 addr same", "v6 addr same", "both addr same"});
  for (std::size_t back = 0; back < stability.v4_prefix_stable.size(); ++back) {
    table.add_row({std::to_string(back), pct(stability.v4_prefix_stable[back]),
                   pct(stability.v6_prefix_stable[back]),
                   pct(stability.v4_address_stable[back]),
                   pct(stability.v6_address_stable[back]),
                   pct(stability.address_stable[back])});
  }
  std::printf("%s\n", table.render().c_str());
  const std::size_t year = stability.v4_prefix_stable.size() - 1;
  std::printf("paper:    over one year: v4 prefix stable ~91%% (max change 9%%), v6 ~94%%;"
              " addresses stable 83%%\n");
  std::printf("measured: v4 prefix stable %s, v6 prefix stable %s, both addresses stable %s\n",
              pct(stability.v4_prefix_stable[year]).c_str(),
              pct(stability.v6_prefix_stable[year]).c_str(),
              pct(stability.address_stable[year]).c_str());
  std::printf("consistent DS domains: %zu of %zu\n", tracker.consistent_domain_count(),
              tracker.tracked_domain_count());
  return 0;
}
