// Figure 16 (and appendix Figures 20/21): business types of sibling-pair
// origin ASes (ASdb categories), for pairs whose two sides have different
// origin ASNs and whose ASes map to a single category.
//
// Paper shape: IT×IT is by far the largest cell (>10k pairs); Education is
// the second notable same-type cell; nearly every pair has at least one IT
// side (the IT row/column carries almost all mass).
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 16", "business types of origin AS pairs");

  const auto& u = universe();
  // The paper uses the January 2024 snapshot for this analysis.
  const int month = u.month_index(sp::Date{2024, 1, 11});
  const auto& pairs = default_pairs_at(month);

  std::size_t different_asn_pairs = 0;
  std::size_t single_type_pairs = 0;
  std::map<std::pair<int, int>, std::size_t> cells;
  std::size_t with_it_side = 0;
  for (const auto& pair : pairs) {
    const auto v4_route = u.rib().lookup(pair.v4);
    const auto v6_route = u.rib().lookup(pair.v6);
    if (!v4_route || !v6_route) continue;
    if (v4_route->origin_as == v6_route->origin_as) continue;  // same-ASN excluded
    ++different_asn_pairs;
    const auto v4_type = u.asdb().single_category(v4_route->origin_as);
    const auto v6_type = u.asdb().single_category(v6_route->origin_as);
    if (!v4_type || !v6_type) continue;
    ++single_type_pairs;
    ++cells[{static_cast<int>(*v4_type), static_cast<int>(*v6_type)}];
    if (*v4_type == sp::asinfo::BusinessType::ComputerIT ||
        *v6_type == sp::asinfo::BusinessType::ComputerIT) {
      ++with_it_side;
    }
  }

  // Report the ten heaviest cells.
  std::vector<std::pair<std::size_t, std::pair<int, int>>> ranked;
  for (const auto& [cell, count] : cells) ranked.push_back({count, cell});
  std::sort(ranked.rbegin(), ranked.rend());
  sp::analysis::TextTable table({"v4 AS business type", "v6 AS business type", "pairs"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
    table.add_row(
        {std::string(sp::asinfo::business_type_name(
             static_cast<sp::asinfo::BusinessType>(ranked[i].second.first))),
         std::string(sp::asinfo::business_type_name(
             static_cast<sp::asinfo::BusinessType>(ranked[i].second.second))),
         std::to_string(ranked[i].first)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto it_it = cells.find({static_cast<int>(sp::asinfo::BusinessType::ComputerIT),
                                 static_cast<int>(sp::asinfo::BusinessType::ComputerIT)});
  std::printf("pairs with different origin ASNs: %zu; single-type share %s (paper: ~80%%)\n",
              different_asn_pairs,
              pct(static_cast<double>(single_type_pairs) / different_asn_pairs).c_str());
  std::printf("paper:    IT×IT the largest cell; at least one IT side for most pairs\n");
  std::printf("measured: IT×IT = %zu pairs (largest: %s); at least one IT side %s\n",
              it_it == cells.end() ? 0 : it_it->second,
              ranked.empty() ? "n/a"
                             : (ranked[0].second.first ==
                                        static_cast<int>(sp::asinfo::BusinessType::ComputerIT) &&
                                        ranked[0].second.second ==
                                            static_cast<int>(sp::asinfo::BusinessType::ComputerIT)
                                    ? "yes"
                                    : "NO"),
              pct(static_cast<double>(with_it_side) / single_type_pairs).c_str());
  return 0;
}
