// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// Patricia trie operations, similarity kernels, DNS and MRT codecs, corpus
// construction, detection and SP-Tuner.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "bench_json_main.h"
#include "core/detect_parallel.h"
#include "dns/wire.h"
#include "mrt/codec.h"
#include "he/happy_eyeballs.h"
#include "netbase/prefix_set.h"
#include "rpki/rov.h"
#include "trie/flat_lpm.h"
#include "trie/prefix_trie.h"

namespace {

using namespace sp;

std::vector<Prefix> random_prefixes(std::size_t count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> len(8, 28);
  std::vector<Prefix> prefixes;
  prefixes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    prefixes.push_back(
        Prefix::of(IPAddress(IPv4Address(word(rng))), static_cast<unsigned>(len(rng))));
  }
  return prefixes;
}

void BM_TrieInsert(benchmark::State& state) {
  const auto prefixes = random_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    PrefixTrie<int> trie;
    for (const auto& prefix : prefixes) trie.insert(prefix, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000);

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto prefixes = random_prefixes(static_cast<std::size_t>(state.range(0)), 2);
  PrefixTrie<int> trie;
  for (const auto& prefix : prefixes) trie.insert(prefix, 1);
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::uint32_t> word;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(IPAddress(IPv4Address(word(rng)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000);

void BM_JaccardKernel(benchmark::State& state) {
  std::mt19937 rng(4);
  std::uniform_int_distribution<core::DomainId> id(0, 100000);
  core::DomainSet a;
  core::DomainSet b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(id(rng));
    b.push_back(id(rng));
  }
  core::normalize(a);
  core::normalize(b);
  for (auto _ : state) benchmark::DoNotOptimize(core::jaccard(a, b));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JaccardKernel)->Arg(16)->Arg(256)->Arg(4096);

void BM_DnsWireRoundTrip(benchmark::State& state) {
  dns::Message message;
  message.header.id = 7;
  message.header.qr = true;
  message.questions.push_back({dns::DomainName::must_parse("www.example.org"),
                               dns::RecordType::A});
  for (int i = 0; i < 8; ++i) {
    message.answers.push_back(dns::ResourceRecord::a(
        dns::DomainName::must_parse("www.example.org"), IPv4Address::from_octets(5, 6, 7, 8)));
  }
  for (auto _ : state) {
    const auto wire = dns::encode_message(message);
    benchmark::DoNotOptimize(dns::decode_message(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnsWireRoundTrip);

void BM_MrtDumpRoundTrip(benchmark::State& state) {
  const auto dump = spbench::universe().mrt_dump();
  for (auto _ : state) {
    const auto bytes = mrt::encode_dump(dump);
    benchmark::DoNotOptimize(mrt::decode_dump(bytes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(dump.size()));
}
BENCHMARK(BM_MrtDumpRoundTrip);

void BM_CorpusBuild(benchmark::State& state) {
  const auto snapshot = spbench::universe().snapshot_at(spbench::last_month());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::DualStackCorpus::build(snapshot, spbench::universe().rib()));
  }
}
BENCHMARK(BM_CorpusBuild);

void BM_DetectSiblingsSerial(benchmark::State& state) {
  const auto& corpus = spbench::corpus_at(spbench::last_month());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_sibling_prefixes_serial(corpus));
  }
}
BENCHMARK(BM_DetectSiblingsSerial);

// The sharded engine at 1/2/4/8 workers; byte-identical output to the
// serial baseline above, so time-per-iteration is directly comparable.
void BM_DetectSiblings(benchmark::State& state) {
  const auto& corpus = spbench::corpus_at(spbench::last_month());
  core::ParallelDetector detector(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(corpus));
  }
  const core::DetectStats& stats = detector.stats();
  state.counters["prefixes"] = static_cast<double>(stats.prefixes_scanned);
  state.counters["candidates"] = static_cast<double>(stats.candidates_evaluated);
  state.counters["emitted"] = static_cast<double>(stats.pairs_emitted);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(stats.prefixes_scanned));
}
BENCHMARK(BM_DetectSiblings)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SpTunerTuneAll(benchmark::State& state) {
  const auto& corpus = spbench::corpus_at(spbench::last_month());
  const auto& pairs = spbench::default_pairs_at(spbench::last_month());
  const core::SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.tune_all(pairs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pairs.size()));
}
BENCHMARK(BM_SpTunerTuneAll);

void BM_RovValidate(benchmark::State& state) {
  rpki::Validator validator;
  for (const auto& roa : spbench::universe().roas_at(spbench::last_month())) {
    (void)validator.add_roa(roa);
  }
  const auto& pairs = spbench::default_pairs_at(spbench::last_month());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& pair = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(validator.validate(pair.v4, 65001));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RovValidate);

void BM_PrefixSetAddSubtract(benchmark::State& state) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> len(16, 28);
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 1000; ++i) {
    prefixes.push_back(Prefix::of(IPAddress(IPv4Address(0x14000000u | (word(rng) & 0xFFFFFF))),
                                  static_cast<unsigned>(len(rng))));
  }
  for (auto _ : state) {
    PrefixSet set;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (i % 5 == 4) {
        set.subtract(prefixes[i]);
      } else {
        set.add(prefixes[i]);
      }
    }
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(prefixes.size()));
}
BENCHMARK(BM_PrefixSetAddSubtract);

void BM_FlatLpmLookup(benchmark::State& state) {
  FlatLpm4<std::uint32_t> flat;
  for (const auto& org : spbench::universe().orgs()) {
    for (const auto& prefix : org.v4_prefixes) flat.insert(prefix, org.v4_asn);
  }
  std::mt19937 rng(12);
  std::uniform_int_distribution<std::uint32_t> word;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat.lookup(IPv4Address(word(rng))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatLpmLookup);

void BM_HappyEyeballsRace(benchmark::State& state) {
  const std::vector<he::Endpoint> v6 = {
      {IPAddress::must_parse("2620:100::1"), 40.0, false, he::FailureMode::Silent},
      {IPAddress::must_parse("2620:100::2"), 35.0, true, he::FailureMode::Silent}};
  const std::vector<he::Endpoint> v4 = {
      {IPAddress::must_parse("20.1.0.1"), 25.0, true, he::FailureMode::Silent}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(he::race(v6, v4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HappyEyeballsRace);

}  // namespace

int main(int argc, char** argv) { return spbench::benchmark_json_main(argc, argv); }
