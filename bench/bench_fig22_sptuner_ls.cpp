// Appendix Figure 22: SP-Tuner-LS (less specific) — walking sibling
// prefixes *up* toward covering prefixes.
//
// Paper shape: going less specific does not improve Jaccard similarity;
// with the level thresholds (1 level v4, 4 levels v6) the CDF is nearly
// identical to the default case.
#include "bench_common.h"

int main() {
  using namespace spbench;
  header("Figure 22 (appendix)", "SP-Tuner-LS: less-specific tuning");

  const auto& corpus = corpus_at(last_month());
  const auto& pairs = default_pairs_at(last_month());

  const sp::core::SpTunerLs bounded(corpus, universe().rib(),
                                    {.v4_levels_up = 1, .v6_levels_up = 4});
  const auto bounded_result = bounded.tune_all(pairs);

  const sp::core::SpTunerLs deep(corpus, universe().rib(),
                                 {.v4_levels_up = 8, .v6_levels_up = 16});
  const auto deep_result = deep.tune_all(pairs);

  const sp::analysis::Cdf default_cdf(sp::core::similarity_values(pairs));
  const sp::analysis::Cdf bounded_cdf(sp::core::similarity_values(bounded_result.pairs));
  const sp::analysis::Cdf deep_cdf(sp::core::similarity_values(deep_result.pairs));

  sp::analysis::TextTable table({"jaccard<=", "default", "LS (1/4 levels)", "LS (8/16 levels)"});
  for (int i = 0; i <= 10; ++i) {
    const double x = i / 10.0 - 1e-9;
    table.add_row({num(i / 10.0, 1), pct(default_cdf.fraction_at_most(x)),
                   pct(bounded_cdf.fraction_at_most(x)), pct(deep_cdf.fraction_at_most(x))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("pairs changed by LS: bounded %zu of %zu (%s), deep %zu (%s)\n",
              bounded_result.changed_count, pairs.size(),
              pct(static_cast<double>(bounded_result.changed_count) / pairs.size()).c_str(),
              deep_result.changed_count,
              pct(static_cast<double>(deep_result.changed_count) / pairs.size()).c_str());
  std::printf("paper:    less-specific tuning yields no significant improvement\n");
  std::printf("measured: perfect share default %s vs LS %s (delta %.2fpp)\n",
              pct(perfect_share(pairs)).c_str(),
              pct(perfect_share(bounded_result.pairs)).c_str(),
              (perfect_share(bounded_result.pairs) - perfect_share(pairs)) * 100.0);
  return 0;
}
