// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary regenerates one figure or table of the paper from the
// synthetic universe and prints the measured series next to the paper's
// reported values. The universe, corpora and pair lists are cached across
// calls within one binary.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "core/detect.h"
#include "core/sptuner.h"
#include "synth/universe.h"

namespace spbench {

inline const sp::synth::SyntheticInternet& universe() {
  static const sp::synth::SyntheticInternet instance{sp::synth::SynthConfig{}};
  return instance;
}

inline int last_month() { return universe().month_count() - 1; }

/// Corpus of one snapshot month, cached.
inline const sp::core::DualStackCorpus& corpus_at(int month) {
  static std::map<int, std::unique_ptr<sp::core::DualStackCorpus>> cache;
  auto& slot = cache[month];
  if (!slot) {
    slot = std::make_unique<sp::core::DualStackCorpus>(sp::core::DualStackCorpus::build(
        universe().snapshot_at(month), universe().rib()));
  }
  return *slot;
}

/// Default (BGP-announced) sibling pairs of one month, cached.
inline const std::vector<sp::core::SiblingPair>& default_pairs_at(int month) {
  static std::map<int, std::vector<sp::core::SiblingPair>> cache;
  auto& slot = cache[month];
  if (slot.empty()) slot = sp::core::detect_sibling_prefixes(corpus_at(month));
  return slot;
}

/// SP-Tuner-MS output for one month and threshold pair, cached.
inline const std::vector<sp::core::SiblingPair>& tuned_pairs_at(int month, unsigned v4,
                                                                unsigned v6) {
  static std::map<std::tuple<int, unsigned, unsigned>, std::vector<sp::core::SiblingPair>>
      cache;
  auto& slot = cache[{month, v4, v6}];
  if (slot.empty()) {
    const sp::core::SpTunerMs tuner(corpus_at(month),
                                    {.v4_threshold = v4, .v6_threshold = v6});
    slot = tuner.tune_all(default_pairs_at(month)).pairs;
  }
  return slot;
}

inline void header(const char* id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("scale: synthetic universe, seed %llu, %zu orgs, %zu domains\n",
              static_cast<unsigned long long>(universe().config().seed),
              universe().orgs().size(), universe().domains().size());
  std::printf("================================================================\n");
}

inline std::string pct(double fraction, int digits = 1) {
  return sp::analysis::format_percent(fraction, digits);
}

inline std::string num(double value, int digits = 3) {
  return sp::analysis::format_fixed(value, digits);
}

/// Share of pairs with similarity exactly 1 ("perfect matches").
inline double perfect_share(const std::vector<sp::core::SiblingPair>& pairs) {
  if (pairs.empty()) return 0.0;
  std::size_t perfect = 0;
  for (const auto& pair : pairs) {
    if (pair.similarity >= 1.0 - 1e-12) ++perfect;
  }
  return static_cast<double>(perfect) / static_cast<double>(pairs.size());
}

}  // namespace spbench
