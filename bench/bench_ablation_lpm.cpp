// Design-choice ablation: Patricia trie vs DIR-24-8 flat tables for the
// pipeline's hottest operation (IPv4 address → announced prefix).
//
// The library uses the Patricia trie everywhere: it handles both families
// in one structure, supports erase/subtree walks (SP-Tuner, RPKI), and its
// memory scales with the table. The flat table answers lookups in one or
// two array reads but costs a fixed ~48 MiB and only does v4 lookups.
// This bench quantifies the trade on the synthetic RIB.
#include "bench_common.h"

#include <chrono>

#include "synth/determinism.h"
#include "trie/flat_lpm.h"
#include "trie/prefix_trie.h"

int main() {
  using namespace spbench;
  header("Ablation", "LPM design: Patricia trie vs DIR-24-8 flat table");

  // The v4 routes of the synthetic RIB.
  std::vector<std::pair<sp::Prefix, std::uint32_t>> routes;
  for (const auto& org : universe().orgs()) {
    for (const auto& prefix : org.v4_prefixes) routes.push_back({prefix, org.v4_asn});
  }
  std::printf("table: %zu IPv4 routes\n\n", routes.size());

  using Clock = std::chrono::steady_clock;
  const auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  // Build.
  const auto trie_build_start = Clock::now();
  sp::PrefixTrie<std::uint32_t> trie;
  for (const auto& [prefix, asn] : routes) trie.insert(prefix, asn);
  const auto trie_build_end = Clock::now();

  const auto flat_build_start = Clock::now();
  sp::FlatLpm4<std::uint32_t> flat;
  for (const auto& [prefix, asn] : routes) flat.insert(prefix, asn);
  const auto flat_build_end = Clock::now();

  // Lookup workload: addresses inside and outside the table, deterministic.
  constexpr int kLookups = 2000000;
  std::vector<sp::IPv4Address> probes;
  probes.reserve(kLookups);
  for (int i = 0; i < kLookups; ++i) {
    if (i % 4 == 0) {
      probes.push_back(sp::IPv4Address(static_cast<std::uint32_t>(sp::synth::mix(7, i))));
    } else {
      const auto& route = routes[sp::synth::pick(routes.size(), 9, i)];
      probes.push_back(sp::synth::v4_host_address(route.first, 0, i));
    }
  }

  std::uint64_t trie_hits = 0;
  const auto trie_lookup_start = Clock::now();
  for (const auto& address : probes) {
    if (trie.longest_match(sp::IPAddress(address))) ++trie_hits;
  }
  const auto trie_lookup_end = Clock::now();

  std::uint64_t flat_hits = 0;
  const auto flat_lookup_start = Clock::now();
  for (const auto& address : probes) {
    if (flat.lookup(address) != nullptr) ++flat_hits;
  }
  const auto flat_lookup_end = Clock::now();

  if (trie_hits != flat_hits) {
    std::printf("MISMATCH: trie %llu hits vs flat %llu hits\n",
                static_cast<unsigned long long>(trie_hits),
                static_cast<unsigned long long>(flat_hits));
    return 1;
  }

  const double trie_build = ms(trie_build_start, trie_build_end);
  const double flat_build = ms(flat_build_start, flat_build_end);
  const double trie_lookup = ms(trie_lookup_start, trie_lookup_end);
  const double flat_lookup = ms(flat_lookup_start, flat_lookup_end);

  sp::analysis::TextTable table(
      {"structure", "build (ms)", "2M lookups (ms)", "Mlookups/s", "families", "erase/walk"});
  table.add_row({"Patricia trie", num(trie_build, 1), num(trie_lookup, 1),
                 num(kLookups / trie_lookup / 1000.0, 1), "v4+v6", "yes"});
  table.add_row({"DIR-24-8 flat", num(flat_build, 1), num(flat_lookup, 1),
                 num(kLookups / flat_lookup / 1000.0, 1), "v4 only", "no"});
  std::printf("%s\n", table.render().c_str());
  std::printf("agreement: both structures matched on all %d probes (%llu hits)\n", kLookups,
              static_cast<unsigned long long>(trie_hits));
  std::printf("\nreading: the flat table is the right call for a data-plane FIB;\n"
              "the pipeline keeps the trie because it is build-dominated, needs both\n"
              "families, and SP-Tuner/RPKI need subtree enumeration.\n");
  return 0;
}
