// Figure 17 (and appendix Figures 23-25): Jaccard distribution of sibling
// pairs per hypergiant / CDN organization (both sides in the same HG/CDN
// org), over the /28-/96 SP-Tuner pairs.
//
// Paper shape: Amazon has the most pairs (4564), then Microsoft, Akamai,
// Google; most orgs concentrate in the 0.9-1.0 column; the address-agile
// CDNs Cloudflare and Akamai carry the largest 0.0-0.1 shares; non-CDN-HG
// pairs are ~78% in the 0.9-1.0 column.
#include "bench_common.h"

#include <map>

int main() {
  using namespace spbench;
  header("Figure 17", "Jaccard distribution per hypergiant / CDN");

  const auto& u = universe();
  const auto& pairs = tuned_pairs_at(last_month(), 28, 96);

  std::map<std::string, std::vector<double>> by_org;
  std::vector<double> non_cdn_hg;
  for (const auto& pair : pairs) {
    const auto v4_route = u.rib().lookup(pair.v4);
    const auto v6_route = u.rib().lookup(pair.v6);
    if (!v4_route || !v6_route) continue;
    const std::string* v4_org = u.as_orgs().org_name(v4_route->origin_as);
    const std::string* v6_org = u.as_orgs().org_name(v6_route->origin_as);
    if (v4_org == nullptr || v6_org == nullptr) continue;
    if (*v4_org == *v6_org && u.catalog().is_cdn_or_hg(*v4_org)) {
      by_org[*v4_org].push_back(pair.similarity);
    } else {
      non_cdn_hg.push_back(pair.similarity);
    }
  }

  // Rank orgs by pair count (the paper's row order).
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& [org, values] : by_org) ranked.push_back({values.size(), org});
  std::sort(ranked.rbegin(), ranked.rend());

  std::vector<std::string> row_labels;
  std::vector<const std::vector<double>*> row_values;
  for (const auto& [count, org] : ranked) {
    row_labels.push_back(org + " (" + std::to_string(count) + ")");
    row_values.push_back(&by_org[org]);
  }
  row_labels.push_back("non-CDN-HG (" + std::to_string(non_cdn_hg.size()) + ")");
  row_values.push_back(&non_cdn_hg);

  std::vector<std::string> col_labels;
  for (int i = 0; i < 10; ++i) {
    col_labels.push_back(num(i / 10.0, 1) + "-" + num((i + 1) / 10.0, 1));
  }
  sp::analysis::Heatmap map(row_labels, col_labels);
  for (std::size_t r = 0; r < row_values.size(); ++r) {
    for (const double value : *row_values[r]) {
      const int bin = std::min(9, static_cast<int>(value * 10.0));
      map.at(r, static_cast<std::size_t>(bin)) += 1.0;
    }
  }
  map.normalize_rows_to_percent();
  std::printf("%% of each org's pairs per Jaccard bin\n%s\n", map.render(1).c_str());

  std::printf("HG/CDN organizations with pairs: %zu (paper: 24)\n", by_org.size());
  if (!ranked.empty()) {
    std::printf("paper:    Amazon leads (4564 pairs), then Microsoft/Akamai/Google\n");
    std::printf("measured: %s leads with %zu pairs\n", ranked[0].second.c_str(),
                ranked[0].first);
  }
  const auto low_share = [&](const char* org) {
    const auto it = by_org.find(org);
    if (it == by_org.end() || it->second.empty()) return 0.0;
    std::size_t low = 0;
    for (const double v : it->second) {
      if (v < 0.1) ++low;
    }
    return static_cast<double>(low) / it->second.size();
  };
  std::printf("paper:    Cloudflare and Akamai carry the largest 0.0-0.1 shares\n");
  std::printf("measured: Cloudflare %s, Akamai %s, Facebook %s in the 0.0-0.1 bin\n",
              pct(low_share("Cloudflare")).c_str(), pct(low_share("Akamai")).c_str(),
              pct(low_share("Facebook")).c_str());
  std::size_t high = 0;
  for (const double v : non_cdn_hg) {
    if (v >= 0.9) ++high;
  }
  std::printf("paper:    non-CDN-HG 78%% in the 0.9-1.0 column\n");
  std::printf("measured: non-CDN-HG %s in the 0.9-1.0 column\n",
              pct(non_cdn_hg.empty() ? 0.0
                                     : static_cast<double>(high) / non_cdn_hg.size())
                  .c_str());
  return 0;
}
