// Tests for the DIR-24-8 flat LPM table, including an oracle comparison
// against the Patricia trie.
#include "trie/flat_lpm.h"

#include <gtest/gtest.h>

#include <iterator>
#include <random>

#include "trie/prefix_trie.h"

namespace sp {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(FlatLpm4, BasicLongestMatch) {
  FlatLpm4<int> lpm;
  lpm.insert(p("20.0.0.0/8"), 8);
  lpm.insert(p("20.1.0.0/16"), 16);
  lpm.insert(p("20.1.2.0/24"), 24);

  ASSERT_NE(lpm.lookup(*IPv4Address::from_string("20.1.2.3")), nullptr);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.3")), 24);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.9.9")), 16);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.200.0.1")), 8);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("21.0.0.1")), nullptr);
  EXPECT_EQ(lpm.size(), 3u);
}

TEST(FlatLpm4, LongerThan24UsesChunks) {
  FlatLpm4<int> lpm;
  lpm.insert(p("20.1.2.0/24"), 24);
  lpm.insert(p("20.1.2.128/25"), 25);
  lpm.insert(p("20.1.2.192/30"), 30);
  lpm.insert(p("20.1.2.200/32"), 32);

  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.1")), 24);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.130")), 25);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.193")), 30);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.200")), 32);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.201")), 25);  // .201 is outside the /30
}

TEST(FlatLpm4, ChunkFallbackCoversUnpopulatedOffsets) {
  FlatLpm4<int> lpm;
  lpm.insert(p("20.1.2.0/24"), 24);
  lpm.insert(p("20.1.2.64/26"), 26);
  // Offsets outside the /26 fall back to the /24.
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.65")), 26);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.180")), 24);
}

TEST(FlatLpm4, ShortInsertAfterChunkCreation) {
  FlatLpm4<int> lpm;
  lpm.insert(p("20.1.2.128/25"), 25);  // creates a chunk with empty fallback
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.2.1")), nullptr);
  lpm.insert(p("20.1.2.0/24"), 24);  // lands in the chunk's fallback
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.1")), 24);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.129")), 25);
}

TEST(FlatLpm4, DefaultRouteCoversEverything) {
  FlatLpm4<int> lpm;
  lpm.insert(p("0.0.0.0/0"), 0);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("1.2.3.4")), 0);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("255.255.255.255")), 0);
}

TEST(FlatLpm4, DefaultRouteLosesToAnyMoreSpecific) {
  FlatLpm4<int> lpm;
  lpm.insert(p("0.0.0.0/0"), 0);
  lpm.insert(p("20.0.0.0/8"), 8);
  lpm.insert(p("20.1.2.200/32"), 32);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("99.9.9.9")), 0);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.9.9.9")), 8);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.200")), 32);
}

TEST(FlatLpm4, HostRoutesMatchExactlyOneAddress) {
  FlatLpm4<int> lpm;
  lpm.insert(p("20.1.2.200/32"), 1);
  lpm.insert(p("0.0.0.0/32"), 2);
  lpm.insert(p("255.255.255.255/32"), 3);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.200")), 1);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.2.199")), nullptr);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.2.201")), nullptr);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("0.0.0.0")), 2);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("0.0.0.1")), nullptr);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("255.255.255.255")), 3);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("255.255.255.254")), nullptr);
  EXPECT_EQ(lpm.size(), 3u);
}

// Overlapping inserts must give identical answers in either insert order,
// both across the /24 boundary (direct table vs chunk) and within it.
TEST(FlatLpm4, OverlappingInsertsOrderIndependent) {
  const auto expect_answers = [](const FlatLpm4<int>& lpm) {
    EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.9.9.9")), 8);
    EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.9.9")), 16);
    EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.9")), 24);
    EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.130")), 25);
    EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.2.200")), 32);
  };
  const Prefix prefixes[] = {p("20.0.0.0/8"), p("20.1.0.0/16"), p("20.1.2.0/24"),
                             p("20.1.2.128/25"), p("20.1.2.200/32")};

  FlatLpm4<int> short_to_long;
  for (const auto& prefix : prefixes) {
    short_to_long.insert(prefix, static_cast<int>(prefix.length()));
  }
  expect_answers(short_to_long);

  FlatLpm4<int> long_to_short;
  for (auto it = std::rbegin(prefixes); it != std::rend(prefixes); ++it) {
    long_to_short.insert(*it, static_cast<int>(it->length()));
  }
  expect_answers(long_to_short);
}

TEST(FlatLpm4, UncoveredAddressMissesEvenNextToCoverage) {
  FlatLpm4<int> lpm;
  lpm.insert(p("20.1.2.0/24"), 24);
  lpm.insert(p("20.1.4.128/25"), 25);
  // Adjacent /24s on both sides are uncovered.
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.1.255")), nullptr);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.3.0")), nullptr);
  // The uncovered half of the chunked /24.
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.4.0")), nullptr);
  EXPECT_EQ(lpm.lookup(*IPv4Address::from_string("20.1.4.127")), nullptr);
  EXPECT_EQ(*lpm.lookup(*IPv4Address::from_string("20.1.4.128")), 25);
  // An empty table misses everything.
  FlatLpm4<int> empty;
  EXPECT_EQ(empty.lookup(*IPv4Address::from_string("20.1.2.1")), nullptr);
  EXPECT_EQ(empty.size(), 0u);
}

// Property: agrees with the Patricia trie on random tables, any insert
// order.
class FlatLpmProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FlatLpmProperty, MatchesPatriciaTrie) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> length(8, 32);

  FlatLpm4<std::uint32_t> flat;
  PrefixTrie<std::uint32_t> trie;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    // Cluster into 20.0.0.0/10 so nesting and chunk churn happen.
    const std::uint32_t address = 0x14000000u | (word(rng) & 0x003FFFFFu);
    const Prefix prefix =
        Prefix::of(IPAddress(IPv4Address(address)), static_cast<unsigned>(length(rng)));
    flat.insert(prefix, i);
    trie.insert(prefix, i);
  }

  for (int probe = 0; probe < 20000; ++probe) {
    const IPv4Address address(0x14000000u | (word(rng) & 0x003FFFFFu));
    const auto trie_hit = trie.longest_match(IPAddress(address));
    const std::uint32_t* flat_hit = flat.lookup(address);
    ASSERT_EQ(flat_hit != nullptr, trie_hit.has_value()) << address.to_string();
    if (flat_hit != nullptr) {
      // Both must point at a value stored under the same covering prefix
      // length (the exact value may differ when duplicates of equal length
      // overwrite in different orders — compare the prefix instead).
      ASSERT_EQ(*trie_hit->second, *flat_hit) << address.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatLpmProperty, ::testing::Values(91u, 92u));

}  // namespace
}  // namespace sp
