// Tests for the AS-to-organization database, ASdb business types, and the
// hypergiant/CDN catalog.
#include <gtest/gtest.h>

#include "asinfo/as_org.h"
#include "asinfo/asdb.h"
#include "asinfo/cdn_hg.h"

namespace sp::asinfo {
namespace {

TEST(AsOrgDatabase, MapsAndGroupsAses) {
  AsOrgDatabase db;
  db.set_org(65001, "Acme Networks");
  db.set_org(65002, "Acme Networks");  // sibling AS (v6 deployment)
  db.set_org(65010, "Globex");

  ASSERT_NE(db.org_name(65001), nullptr);
  EXPECT_EQ(*db.org_name(65001), "Acme Networks");
  EXPECT_EQ(db.org_name(64999), nullptr);
  EXPECT_EQ(db.as_count(), 3u);
  EXPECT_EQ(db.org_count(), 2u);

  EXPECT_TRUE(db.same_org(65001, 65002));
  EXPECT_TRUE(db.same_org(65001, 65001));
  EXPECT_FALSE(db.same_org(65001, 65010));
  // Unknown ASes are never "same org" unless identical.
  EXPECT_FALSE(db.same_org(65001, 64999));
  EXPECT_TRUE(db.same_org(64999, 64999));

  const auto siblings = db.sibling_ases(65001);
  EXPECT_EQ(siblings.size(), 2u);
  EXPECT_TRUE(db.sibling_ases(64999).empty());
}

TEST(AsOrgDatabase, ReassignmentMovesAs) {
  AsOrgDatabase db;
  db.set_org(65001, "Old Org");
  db.set_org(65001, "New Org");
  EXPECT_EQ(*db.org_name(65001), "New Org");
  EXPECT_EQ(db.org_count(), 1u);  // Old Org garbage-collected
  EXPECT_EQ(db.sibling_ases(65001).size(), 1u);
}

TEST(AsdbDatabase, SingleCategoryFilter) {
  AsdbDatabase db;
  db.add_category(65001, BusinessType::ComputerIT);
  db.add_category(65001, BusinessType::ComputerIT);  // duplicate ignored
  db.add_category(65002, BusinessType::Education);
  db.add_category(65002, BusinessType::Government);

  EXPECT_EQ(db.categories(65001).size(), 1u);
  EXPECT_EQ(db.categories(65002).size(), 2u);
  EXPECT_TRUE(db.categories(64999).empty());

  EXPECT_EQ(db.single_category(65001), BusinessType::ComputerIT);
  EXPECT_FALSE(db.single_category(65002).has_value());  // multi-category
  EXPECT_FALSE(db.single_category(64999).has_value());  // unknown
}

TEST(AsdbDatabase, AllSeventeenCategoriesHaveNames) {
  for (int i = 0; i < kBusinessTypeCount; ++i) {
    EXPECT_NE(business_type_name(static_cast<BusinessType>(i)), "?");
  }
  EXPECT_EQ(business_type_name(BusinessType::ComputerIT), "Computer and IT");
  EXPECT_EQ(business_type_name(BusinessType::Education), "Education and Research");
}

TEST(CdnHgCatalog, ClassifiesOrganizations) {
  const auto catalog = CdnHgCatalog::paper_catalog();
  EXPECT_EQ(catalog.size(), 24u);  // the paper's 24 HG/CDN organizations

  EXPECT_TRUE(catalog.is_hypergiant("Amazon"));
  EXPECT_TRUE(catalog.is_cdn("Amazon"));
  EXPECT_TRUE(catalog.is_hypergiant("Microsoft"));
  EXPECT_FALSE(catalog.is_cdn("Microsoft"));
  EXPECT_TRUE(catalog.is_cdn("Fastly"));
  EXPECT_FALSE(catalog.is_hypergiant("Fastly"));
  EXPECT_FALSE(catalog.is_cdn_or_hg("Random Hosting LLC"));
  EXPECT_EQ(catalog.profile("Nope"), nullptr);

  // Amazon carries the largest pair weight (Fig 17's 4564 pairs).
  const OrgProfile* amazon = catalog.profile("Amazon");
  ASSERT_NE(amazon, nullptr);
  for (const auto& name : catalog.org_names()) {
    EXPECT_LE(catalog.profile(name)->pair_weight, amazon->pair_weight) << name;
  }

  // Address-agile CDNs (the paper's Cloudflare/Akamai observation).
  EXPECT_GT(catalog.profile("Cloudflare")->address_agility, 0.4);
  EXPECT_GT(catalog.profile("Akamai")->address_agility, 0.4);
  EXPECT_LT(catalog.profile("Facebook")->address_agility, 0.1);
}

}  // namespace
}  // namespace sp::asinfo
