// Shared scenario builders for core-pipeline tests: a tiny Internet with a
// BGP RIB and one DNS snapshot, populated declaratively.
#pragma once

#include <initializer_list>
#include <string_view>

#include "bgp/rib.h"
#include "core/corpus.h"
#include "dns/snapshot.h"

namespace sp::testsupport {

class ScenarioBuilder {
 public:
  ScenarioBuilder() : snapshot_(Date{2024, 9, 11}) {}

  /// Announces a prefix in the RIB with the given origin AS.
  ScenarioBuilder& announce(std::string_view prefix, std::uint32_t origin_as) {
    rib_.add_route(Prefix::must_parse(prefix), origin_as);
    return *this;
  }

  /// Adds one resolved domain with the given address sets (response name ==
  /// queried name).
  ScenarioBuilder& host(std::string_view domain, std::initializer_list<const char*> v4,
                        std::initializer_list<const char*> v6) {
    dns::DomainResolution entry;
    entry.queried = dns::DomainName::must_parse(domain);
    entry.response_name = entry.queried;
    for (const char* address : v4) entry.v4.push_back(*IPv4Address::from_string(address));
    for (const char* address : v6) entry.v6.push_back(*IPv6Address::from_string(address));
    snapshot_.add(std::move(entry));
    return *this;
  }

  /// Same, but with a distinct response name (CNAME-style identity).
  ScenarioBuilder& host_as(std::string_view queried, std::string_view response,
                           std::initializer_list<const char*> v4,
                           std::initializer_list<const char*> v6) {
    dns::DomainResolution entry;
    entry.queried = dns::DomainName::must_parse(queried);
    entry.response_name = dns::DomainName::must_parse(response);
    for (const char* address : v4) entry.v4.push_back(*IPv4Address::from_string(address));
    for (const char* address : v6) entry.v6.push_back(*IPv6Address::from_string(address));
    snapshot_.add(std::move(entry));
    return *this;
  }

  [[nodiscard]] const bgp::Rib& rib() const noexcept { return rib_; }
  [[nodiscard]] const dns::ResolutionSnapshot& snapshot() const noexcept { return snapshot_; }

  [[nodiscard]] core::DualStackCorpus corpus() const {
    return core::DualStackCorpus::build(snapshot_, rib_);
  }

 private:
  bgp::Rib rib_;
  dns::ResolutionSnapshot snapshot_;
};

}  // namespace sp::testsupport
