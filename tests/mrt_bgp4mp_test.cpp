// Tests for BGP4MP UPDATE / STATE_CHANGE records (RFC 6396 section 4.4):
// golden header bytes, round trips incl. MP_REACH/MP_UNREACH IPv6 routes,
// malformed-input rejection, and applying updates to a RIB.
#include <gtest/gtest.h>

#include <random>

#include "bgp/rib.h"
#include "mrt/codec.h"

namespace sp::mrt {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

Bgp4mpUpdate example_update() {
  Bgp4mpUpdate update;
  update.peer_asn = 64500;
  update.local_asn = 65550;
  update.peer_address = IPAddress::must_parse("5.0.0.1");
  update.local_address = IPAddress::must_parse("5.0.0.2");
  update.attributes = PathAttributes::sequence({64500, 3356, 65001});
  update.attributes.next_hop_v4 = *IPv4Address::from_string("5.0.0.1");
  update.attributes.next_hop_v6 = *IPv6Address::from_string("2600:1::1");
  update.announced = {p("20.7.0.0/16"), p("20.9.128.0/17"), p("2600:7::/32")};
  update.withdrawn = {p("20.3.3.0/24"), p("2600:3::/32")};
  std::sort(update.announced.begin(), update.announced.end());
  std::sort(update.withdrawn.begin(), update.withdrawn.end());
  return update;
}

TEST(Bgp4mp, HeaderGolden) {
  const auto wire = encode_record({1726000000, example_update()});
  // type = 16 (BGP4MP), subtype = 4 (BGP4MP_MESSAGE_AS4)
  EXPECT_EQ(wire[4], 0);
  EXPECT_EQ(wire[5], 16);
  EXPECT_EQ(wire[6], 0);
  EXPECT_EQ(wire[7], 4);
  // peer AS 64500 at offset 12
  EXPECT_EQ(wire[12], 0);
  EXPECT_EQ(wire[13], 0);
  EXPECT_EQ(wire[14], 0xFB);
  EXPECT_EQ(wire[15], 0xF4);
  // AFI = 1 (IPv4 peering) at offset 22
  EXPECT_EQ(wire[22], 0);
  EXPECT_EQ(wire[23], 1);
  // BGP marker starts after 8-byte addresses: offset 12+4+4+2+2+4+4 = 32
  for (int i = 32; i < 48; ++i) EXPECT_EQ(wire[static_cast<std::size_t>(i)], 0xFF);
  // BGP type = UPDATE (2)
  EXPECT_EQ(wire[50], 2);
  // BGP message length covers marker..end of record
  const std::uint16_t bgp_len = static_cast<std::uint16_t>((wire[48] << 8) | wire[49]);
  EXPECT_EQ(bgp_len, wire.size() - 32);
}

TEST(Bgp4mp, UpdateRoundTrips) {
  const MrtRecord record{1726000000, example_update()};
  std::string error;
  const auto decoded = decode_dump(encode_record(record), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ(decoded->front(), record);
}

TEST(Bgp4mp, V6PeeringRoundTrips) {
  Bgp4mpUpdate update = example_update();
  update.peer_address = IPAddress::must_parse("2600:1::1");
  update.local_address = IPAddress::must_parse("2600:1::2");
  const MrtRecord record{7, update};
  const auto decoded = decode_dump(encode_record(record));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->front(), record);
}

TEST(Bgp4mp, WithdrawOnlyUpdate) {
  Bgp4mpUpdate update;
  update.peer_asn = 64500;
  update.local_asn = 65550;
  update.peer_address = IPAddress::must_parse("5.0.0.1");
  update.local_address = IPAddress::must_parse("5.0.0.2");
  update.withdrawn = {p("20.3.3.0/24")};
  // No attributes, no NLRI: a pure withdrawal still carries the mandatory
  // ORIGIN/AS_PATH in our encoder (empty path), which is tolerated.
  const auto decoded = decode_dump(encode_record({0, update}));
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<Bgp4mpUpdate>(decoded->front().body);
  EXPECT_EQ(got.withdrawn, update.withdrawn);
  EXPECT_TRUE(got.announced.empty());
}

TEST(Bgp4mp, StateChangeRoundTrips) {
  Bgp4mpStateChange change;
  change.peer_asn = 64500;
  change.local_asn = 65550;
  change.peer_address = IPAddress::must_parse("5.0.0.1");
  change.local_address = IPAddress::must_parse("5.0.0.2");
  change.old_state = 5;  // OpenConfirm
  change.new_state = 6;  // Established
  const MrtRecord record{123, change};
  const auto wire = encode_record(record);
  EXPECT_EQ(wire[7], 5);  // subtype STATE_CHANGE_AS4
  const auto decoded = decode_dump(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->front(), record);
}

TEST(Bgp4mp, RejectsCorruptMarker) {
  auto wire = encode_record({0, example_update()});
  wire[33] = 0x00;  // inside the marker
  std::string error;
  EXPECT_FALSE(decode_dump(wire, &error).has_value());
  EXPECT_NE(error.find("marker"), std::string::npos);
}

TEST(Bgp4mp, RejectsNonUpdateMessageType) {
  auto wire = encode_record({0, example_update()});
  wire[50] = 1;  // OPEN
  EXPECT_FALSE(decode_dump(wire).has_value());
}

TEST(Bgp4mp, RejectsTruncation) {
  const auto wire = encode_record({0, example_update()});
  for (std::size_t cut = 13; cut < wire.size(); cut += 7) {
    Cursor cursor(std::span(wire.data(), cut));
    EXPECT_FALSE(cursor.next().has_value()) << cut;
    EXPECT_FALSE(cursor.error().empty()) << cut;
  }
}

TEST(Bgp4mp, MixesWithTableDumpRecordsInOneDump) {
  RibRecord rib;
  rib.prefix = p("20.1.0.0/16");
  rib.entries.push_back({0, 0, PathAttributes::sequence({64500, 65001})});
  const std::vector<MrtRecord> records = {{0, rib}, {1, example_update()}};
  const auto decoded = decode_dump(encode_dump(records));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, records);
}

TEST(Rib, ApplyUpdatesAnnouncesAndWithdraws) {
  bgp::Rib rib;
  rib.add_route(p("20.3.3.0/24"), 65009);
  rib.add_route(p("2600:3::/32"), 65009);
  rib.add_route(p("20.8.0.0/16"), 65008);

  const std::vector<MrtRecord> updates = {{0, example_update()}};
  rib.apply_updates(updates);

  // Withdrawn prefixes are gone.
  EXPECT_FALSE(rib.origin_as(p("20.3.3.0/24")).has_value());
  EXPECT_FALSE(rib.origin_as(p("2600:3::/32")).has_value());
  // Announced prefixes carry the update's origin AS (last ASN in path).
  EXPECT_EQ(rib.origin_as(p("20.7.0.0/16")), 65001u);
  EXPECT_EQ(rib.origin_as(p("2600:7::/32")), 65001u);
  // Unrelated routes untouched.
  EXPECT_EQ(rib.origin_as(p("20.8.0.0/16")), 65008u);
}

TEST(Rib, AnnouncementReplacesPreviousOrigin) {
  bgp::Rib rib;
  rib.add_route(p("20.7.0.0/16"), 65099);
  rib.add_route(p("20.7.0.0/16"), 65099);
  Bgp4mpUpdate update = example_update();
  rib.apply_updates(std::vector<MrtRecord>{{0, update}});
  EXPECT_EQ(rib.origin_as(p("20.7.0.0/16")), 65001u);
}

TEST(Rib, WithdrawReturnsPresence) {
  bgp::Rib rib;
  rib.add_route(p("20.1.0.0/16"), 1);
  EXPECT_TRUE(rib.withdraw(p("20.1.0.0/16")));
  EXPECT_FALSE(rib.withdraw(p("20.1.0.0/16")));
  EXPECT_EQ(rib.prefix_count(), 0u);
}

// Property: randomized updates round-trip through the codec.
class Bgp4mpRoundTripProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Bgp4mpRoundTripProperty, RandomUpdatesRoundTrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> len4(8, 32);
  std::uniform_int_distribution<int> len6(16, 64);
  std::uniform_int_distribution<int> count(0, 5);

  for (int iteration = 0; iteration < 200; ++iteration) {
    Bgp4mpUpdate update;
    update.peer_asn = word(rng) % 400000 + 1;
    update.local_asn = word(rng) % 400000 + 1;
    update.peer_address = IPAddress(IPv4Address(word(rng)));
    update.local_address = IPAddress(IPv4Address(word(rng)));
    update.attributes = PathAttributes::sequence({update.peer_asn, word(rng) % 65000 + 1});
    const auto random_prefix = [&](bool v6) {
      if (!v6) {
        return Prefix::of(IPAddress(IPv4Address(word(rng))),
                          static_cast<unsigned>(len4(rng)));
      }
      IPv6Address::Bytes bytes{};
      bytes[0] = 0x26;
      for (std::size_t i = 1; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(word(rng));
      return Prefix::of(IPAddress(IPv6Address(bytes)), static_cast<unsigned>(len6(rng)));
    };
    bool any_v6_announced = false;
    for (int i = count(rng); i > 0; --i) {
      const bool v6 = (word(rng) & 1) != 0;
      any_v6_announced |= v6;
      update.announced.push_back(random_prefix(v6));
    }
    for (int i = count(rng); i > 0; --i) {
      update.withdrawn.push_back(random_prefix((word(rng) & 1) != 0));
    }
    if (any_v6_announced) {
      // A v6 next hop is emitted with MP_REACH; make it explicit so the
      // round trip is exact.
      IPv6Address::Bytes bytes{};
      bytes[0] = 0x26;
      bytes[15] = 1;
      update.attributes.next_hop_v6 = IPv6Address(bytes);
    }
    std::sort(update.announced.begin(), update.announced.end());
    update.announced.erase(std::unique(update.announced.begin(), update.announced.end()),
                           update.announced.end());
    std::sort(update.withdrawn.begin(), update.withdrawn.end());
    update.withdrawn.erase(std::unique(update.withdrawn.begin(), update.withdrawn.end()),
                           update.withdrawn.end());

    const MrtRecord record{word(rng), update};
    std::string error;
    const auto decoded = decode_dump(encode_record(record), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(decoded->front(), record);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Bgp4mpRoundTripProperty, ::testing::Values(61u, 62u, 63u));

}  // namespace
}  // namespace sp::mrt
