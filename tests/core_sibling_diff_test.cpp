// Tests for the sibling list release diff.
#include "core/sibling_diff.h"

#include <gtest/gtest.h>

namespace sp::core {
namespace {

SiblingPair make(const char* v4, const char* v6, double similarity = 1.0,
                 std::uint32_t shared = 1) {
  SiblingPair pair;
  pair.v4 = Prefix::must_parse(v4);
  pair.v6 = Prefix::must_parse(v6);
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = shared;
  pair.v6_domain_count = shared;
  return pair;
}

TEST(SiblingDiff, ClassifiesAddsRemovesChanges) {
  const std::vector<SiblingPair> old_list = {
      make("20.1.0.0/16", "2620:100::/48", 1.0),
      make("20.2.0.0/16", "2620:200::/48", 0.8),
      make("20.3.0.0/16", "2620:300::/48", 0.6),
  };
  const std::vector<SiblingPair> new_list = {
      make("20.1.0.0/16", "2620:100::/48", 1.0),   // unchanged
      make("20.2.0.0/16", "2620:200::/48", 0.5),   // changed similarity
      make("20.9.0.0/16", "2620:900::/48", 1.0),   // added
  };

  const auto diff = diff_sibling_lists(old_list, new_list);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].v4, Prefix::must_parse("20.9.0.0/16"));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].v4, Prefix::must_parse("20.3.0.0/16"));
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_DOUBLE_EQ(diff.changed[0].before.similarity, 0.8);
  EXPECT_DOUBLE_EQ(diff.changed[0].after.similarity, 0.5);
  ASSERT_EQ(diff.unchanged.size(), 1u);
  EXPECT_FALSE(diff.empty());
}

TEST(SiblingDiff, DomainCountChangeIsAChange) {
  const auto before = make("20.1.0.0/16", "2620:100::/48", 1.0, 3);
  auto after = before;
  after.shared_domains = 4;
  after.v4_domain_count = 4;
  after.v6_domain_count = 4;
  const auto diff = diff_sibling_lists(std::vector{before}, std::vector{after});
  EXPECT_EQ(diff.changed.size(), 1u);
  EXPECT_TRUE(diff.unchanged.empty());
}

TEST(SiblingDiff, IdenticalListsAreEmptyDiff) {
  const std::vector<SiblingPair> list = {make("20.1.0.0/16", "2620:100::/48")};
  const auto diff = diff_sibling_lists(list, list);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.unchanged.size(), 1u);
}

TEST(SiblingDiff, UnsortedInputsAreHandled) {
  const std::vector<SiblingPair> old_list = {
      make("20.5.0.0/16", "2620:500::/48"),
      make("20.1.0.0/16", "2620:100::/48"),
  };
  const std::vector<SiblingPair> new_list = {
      make("20.1.0.0/16", "2620:100::/48"),
      make("20.3.0.0/16", "2620:300::/48"),
      make("20.5.0.0/16", "2620:500::/48"),
  };
  const auto diff = diff_sibling_lists(old_list, new_list);
  EXPECT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.removed.size(), 0u);
  EXPECT_EQ(diff.unchanged.size(), 2u);
}

// A pair that appears and disappears within one release window: the diff
// against the surrounding releases nets out — neither added nor removed —
// while each single-month diff sees the transient.
TEST(SiblingDiff, PairAppearingAndDisappearingInOneMonthNetsOut) {
  const std::vector<SiblingPair> month0 = {make("20.1.0.0/16", "2620:100::/48")};
  const std::vector<SiblingPair> month1 = {
      make("20.1.0.0/16", "2620:100::/48"),
      make("20.7.0.0/16", "2620:700::/48"),  // the transient pair
  };
  const std::vector<SiblingPair> month2 = month0;

  const auto up = diff_sibling_lists(month0, month1);
  ASSERT_EQ(up.added.size(), 1u);
  EXPECT_EQ(up.added[0].v4, Prefix::must_parse("20.7.0.0/16"));

  const auto down = diff_sibling_lists(month1, month2);
  ASSERT_EQ(down.removed.size(), 1u);
  EXPECT_EQ(down.removed[0].v4, Prefix::must_parse("20.7.0.0/16"));

  // Skipping the transient month sees no change at all.
  EXPECT_TRUE(diff_sibling_lists(month0, month2).empty());
}

// The diff's value comparison tolerates sub-epsilon float drift (the
// detection engines guarantee bit-identical doubles, but CSV round-trips
// may not): a similarity nudge inside the tolerance is "unchanged", one
// just past it is "changed".
TEST(SiblingDiff, SimilarityDriftAroundEpsilonBoundary) {
  const auto before = make("20.1.0.0/16", "2620:100::/48", 0.5);

  auto within = before;
  within.similarity = 0.5 + 1e-10;  // inside the 1e-9 tolerance
  const auto same = diff_sibling_lists(std::vector{before}, std::vector{within});
  EXPECT_TRUE(same.changed.empty());
  ASSERT_EQ(same.unchanged.size(), 1u);

  auto past = before;
  past.similarity = 0.5 + 2e-9;  // just past it
  const auto moved = diff_sibling_lists(std::vector{before}, std::vector{past});
  ASSERT_EQ(moved.changed.size(), 1u);
  EXPECT_TRUE(moved.unchanged.empty());
  EXPECT_DOUBLE_EQ(moved.changed[0].after.similarity, past.similarity);
}

// A v6 prefix dies but its v4 partner keeps a sibling set: only the dead
// pairing is removed; the surviving pairing of the same v4 prefix must
// not be dragged along (pairs are keyed by the full (v4, v6) key).
TEST(SiblingDiff, PrefixDeathWithSurvivingSiblingSet) {
  const std::vector<SiblingPair> old_list = {
      make("20.1.0.0/16", "2620:100::/48", 0.9),
      make("20.1.0.0/16", "2620:101::/48", 0.9),  // tie pair, dies with its v6
      make("20.2.0.0/16", "2620:200::/48", 0.7),
  };
  const std::vector<SiblingPair> new_list = {
      make("20.1.0.0/16", "2620:100::/48", 0.9),  // survives unchanged
      make("20.2.0.0/16", "2620:200::/48", 0.7),
  };

  const auto diff = diff_sibling_lists(old_list, new_list);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].v6, Prefix::must_parse("2620:101::/48"));
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.changed.empty());
  EXPECT_EQ(diff.unchanged.size(), 2u);
}

TEST(SiblingDiff, EmptyInputs) {
  const std::vector<SiblingPair> list = {make("20.1.0.0/16", "2620:100::/48")};
  EXPECT_EQ(diff_sibling_lists({}, list).added.size(), 1u);
  EXPECT_EQ(diff_sibling_lists(list, {}).removed.size(), 1u);
  EXPECT_TRUE(diff_sibling_lists({}, {}).empty());
}

}  // namespace
}  // namespace sp::core
