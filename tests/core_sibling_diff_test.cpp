// Tests for the sibling list release diff.
#include "core/sibling_diff.h"

#include <gtest/gtest.h>

namespace sp::core {
namespace {

SiblingPair make(const char* v4, const char* v6, double similarity = 1.0,
                 std::uint32_t shared = 1) {
  SiblingPair pair;
  pair.v4 = Prefix::must_parse(v4);
  pair.v6 = Prefix::must_parse(v6);
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = shared;
  pair.v6_domain_count = shared;
  return pair;
}

TEST(SiblingDiff, ClassifiesAddsRemovesChanges) {
  const std::vector<SiblingPair> old_list = {
      make("20.1.0.0/16", "2620:100::/48", 1.0),
      make("20.2.0.0/16", "2620:200::/48", 0.8),
      make("20.3.0.0/16", "2620:300::/48", 0.6),
  };
  const std::vector<SiblingPair> new_list = {
      make("20.1.0.0/16", "2620:100::/48", 1.0),   // unchanged
      make("20.2.0.0/16", "2620:200::/48", 0.5),   // changed similarity
      make("20.9.0.0/16", "2620:900::/48", 1.0),   // added
  };

  const auto diff = diff_sibling_lists(old_list, new_list);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].v4, Prefix::must_parse("20.9.0.0/16"));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].v4, Prefix::must_parse("20.3.0.0/16"));
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_DOUBLE_EQ(diff.changed[0].before.similarity, 0.8);
  EXPECT_DOUBLE_EQ(diff.changed[0].after.similarity, 0.5);
  ASSERT_EQ(diff.unchanged.size(), 1u);
  EXPECT_FALSE(diff.empty());
}

TEST(SiblingDiff, DomainCountChangeIsAChange) {
  const auto before = make("20.1.0.0/16", "2620:100::/48", 1.0, 3);
  auto after = before;
  after.shared_domains = 4;
  after.v4_domain_count = 4;
  after.v6_domain_count = 4;
  const auto diff = diff_sibling_lists(std::vector{before}, std::vector{after});
  EXPECT_EQ(diff.changed.size(), 1u);
  EXPECT_TRUE(diff.unchanged.empty());
}

TEST(SiblingDiff, IdenticalListsAreEmptyDiff) {
  const std::vector<SiblingPair> list = {make("20.1.0.0/16", "2620:100::/48")};
  const auto diff = diff_sibling_lists(list, list);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.unchanged.size(), 1u);
}

TEST(SiblingDiff, UnsortedInputsAreHandled) {
  const std::vector<SiblingPair> old_list = {
      make("20.5.0.0/16", "2620:500::/48"),
      make("20.1.0.0/16", "2620:100::/48"),
  };
  const std::vector<SiblingPair> new_list = {
      make("20.1.0.0/16", "2620:100::/48"),
      make("20.3.0.0/16", "2620:300::/48"),
      make("20.5.0.0/16", "2620:500::/48"),
  };
  const auto diff = diff_sibling_lists(old_list, new_list);
  EXPECT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.removed.size(), 0u);
  EXPECT_EQ(diff.unchanged.size(), 2u);
}

TEST(SiblingDiff, EmptyInputs) {
  const std::vector<SiblingPair> list = {make("20.1.0.0/16", "2620:100::/48")};
  EXPECT_EQ(diff_sibling_lists({}, list).added.size(), 1u);
  EXPECT_EQ(diff_sibling_lists(list, {}).removed.size(), 1u);
  EXPECT_TRUE(diff_sibling_lists({}, {}).empty());
}

}  // namespace
}  // namespace sp::core
