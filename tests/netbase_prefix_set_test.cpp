// Unit and property tests for PrefixSet: aggregation invariants, hole
// punching, and an exhaustive comparison against an address-level oracle.
#include "netbase/prefix_set.h"

#include <gtest/gtest.h>

#include <random>

namespace sp {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(PrefixSet, AddAndContains) {
  PrefixSet set;
  set.add(p("20.1.0.0/16"));
  set.add(p("2620:100::/48"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(IPAddress::must_parse("20.1.200.9")));
  EXPECT_FALSE(set.contains(IPAddress::must_parse("20.2.0.1")));
  EXPECT_TRUE(set.contains(IPAddress::must_parse("2620:100::1")));
  EXPECT_FALSE(set.contains(IPAddress::must_parse("2620:200::1")));
}

TEST(PrefixSet, CoveredAddIsNoOp) {
  PrefixSet set;
  set.add(p("20.0.0.0/8"));
  set.add(p("20.1.0.0/16"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.members(), std::vector<Prefix>{p("20.0.0.0/8")});
}

TEST(PrefixSet, CoveringAddSwallowsMembers) {
  PrefixSet set;
  set.add(p("20.1.0.0/16"));
  set.add(p("20.2.0.0/16"));
  set.add(p("20.200.7.0/24"));
  set.add(p("20.0.0.0/8"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.members(), std::vector<Prefix>{p("20.0.0.0/8")});
}

TEST(PrefixSet, BuddiesMergeRecursively) {
  PrefixSet set;
  // Four /26 quarters of a /24 added in shuffled order collapse into it.
  set.add(p("20.1.1.64/26"));
  set.add(p("20.1.1.192/26"));
  set.add(p("20.1.1.0/26"));
  EXPECT_EQ(set.size(), 2u);  // /25 (merged halves) + /26
  set.add(p("20.1.1.128/26"));
  EXPECT_EQ(set.members(), std::vector<Prefix>{p("20.1.1.0/24")});
}

TEST(PrefixSet, FamiliesNeverMerge) {
  PrefixSet set;
  set.add(p("0.0.0.0/1"));
  set.add(p("128.0.0.0/1"));
  set.add(p("::/1"));
  set.add(p("8000::/1"));
  const auto members = set.members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], p("0.0.0.0/0"));
  EXPECT_EQ(members[1], p("::/0"));
}

TEST(PrefixSet, SubtractRemovesCoveredMembers) {
  PrefixSet set;
  set.add(p("20.1.0.0/16"));
  set.add(p("20.2.0.0/16"));
  EXPECT_TRUE(set.subtract(p("20.0.0.0/8")));
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.subtract(p("20.0.0.0/8")));  // nothing left to remove
}

TEST(PrefixSet, SubtractPunchesHole) {
  PrefixSet set;
  set.add(p("20.1.1.0/24"));
  EXPECT_TRUE(set.subtract(p("20.1.1.64/26")));
  // Remaining: /26 at .0, /25 at .128.
  EXPECT_EQ(set.members(),
            (std::vector<Prefix>{p("20.1.1.0/26"), p("20.1.1.128/25")}));
  EXPECT_TRUE(set.contains(IPAddress::must_parse("20.1.1.1")));
  EXPECT_FALSE(set.contains(IPAddress::must_parse("20.1.1.70")));
  EXPECT_TRUE(set.contains(IPAddress::must_parse("20.1.1.200")));
  EXPECT_EQ(set.address_count_saturated(), 192u);
}

TEST(PrefixSet, SubtractThenAddRestores) {
  PrefixSet set;
  set.add(p("20.1.1.0/24"));
  ASSERT_TRUE(set.subtract(p("20.1.1.37/32")));
  EXPECT_EQ(set.address_count_saturated(), 255u);
  set.add(p("20.1.1.37/32"));
  EXPECT_EQ(set.members(), std::vector<Prefix>{p("20.1.1.0/24")});
}

TEST(PrefixSet, Covers) {
  PrefixSet set;
  set.add(p("20.1.0.0/16"));
  EXPECT_TRUE(set.covers(p("20.1.0.0/16")));
  EXPECT_TRUE(set.covers(p("20.1.7.0/24")));
  EXPECT_FALSE(set.covers(p("20.0.0.0/8")));
  EXPECT_FALSE(set.covers(p("21.0.0.0/16")));
}

TEST(PrefixSet, AddressCountSaturatesOnV6) {
  PrefixSet set;
  set.add(p("2620:100::/48"));
  set.add(p("2620:200::/48"));
  EXPECT_EQ(set.address_count_saturated(), ~std::uint64_t{0});
}

TEST(PrefixSet, ConstructFromSpan) {
  const std::vector<Prefix> input = {p("20.1.1.0/25"), p("20.1.1.128/25")};
  const PrefixSet set(input);
  EXPECT_EQ(set.members(), std::vector<Prefix>{p("20.1.1.0/24")});
}

// Property: PrefixSet agrees with an address-level oracle under random
// add/subtract sequences, and always maintains its invariants.
class PrefixSetProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrefixSetProperty, MatchesAddressOracle) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> length(20, 30);
  std::uniform_int_distribution<int> op(0, 2);

  // Work inside one /16 with a dense byte-level oracle.
  constexpr std::uint32_t kBase = 0x14010000u;  // 20.1.0.0
  std::vector<bool> oracle(1 << 16, false);
  PrefixSet set;

  for (int step = 0; step < 400; ++step) {
    const unsigned len = static_cast<unsigned>(length(rng));
    const std::uint32_t offset = word(rng) & 0xFFFFu;
    const Prefix prefix = Prefix::of(IPAddress(IPv4Address(kBase | offset)), len);
    const std::uint32_t start = prefix.address().v4().value() - kBase;
    const std::uint32_t count = 1u << (32 - len);

    if (op(rng) != 0) {
      set.add(prefix);
      for (std::uint32_t i = 0; i < count; ++i) oracle[start + i] = true;
    } else {
      set.subtract(prefix);
      for (std::uint32_t i = 0; i < count; ++i) oracle[start + i] = false;
    }

    // Invariants: members disjoint, canonical (no buddy pairs).
    const auto members = set.members();
    for (std::size_t i = 0; i + 1 < members.size(); ++i) {
      ASSERT_FALSE(members[i].contains(members[i + 1]))
          << members[i].to_string() << " covers " << members[i + 1].to_string();
    }
    for (const auto& member : members) {
      if (member.length() == 0 || member.family() != Family::v4) continue;
      const Prefix parent = *member.supernet();
      const Prefix other =
          member == parent.child(0) ? parent.child(1) : parent.child(0);
      ASSERT_EQ(std::count(members.begin(), members.end(), other), 0)
          << "unmerged buddies " << member.to_string();
    }

    // Sampled agreement with the oracle.
    for (int sample = 0; sample < 64; ++sample) {
      const std::uint32_t probe = word(rng) & 0xFFFFu;
      ASSERT_EQ(set.contains(IPAddress(IPv4Address(kBase | probe))), oracle[probe])
          << IPv4Address(kBase | probe).to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSetProperty, ::testing::Values(81u, 82u, 83u, 84u));

}  // namespace
}  // namespace sp
