// Tests for the AS2Org / ASdb CSV interchange formats.
#include "asinfo/asinfo_csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "io/csv.h"

namespace sp::asinfo {
namespace {

TEST(AsInfoCsv, BusinessTypeNamesRoundTrip) {
  for (int i = 0; i < kBusinessTypeCount; ++i) {
    const auto type = static_cast<BusinessType>(i);
    const auto back = business_type_from_string(business_type_name(type));
    ASSERT_TRUE(back.has_value()) << business_type_name(type);
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(business_type_from_string("Underwater Basket Weaving").has_value());
}

TEST(AsInfoCsv, As2OrgRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_as2org_test.csv";
  AsOrgDatabase db;
  db.set_org(15169, "Google LLC");
  db.set_org(36040, "Google LLC");  // sibling AS
  db.set_org(3356, "Lumen");
  ASSERT_TRUE(write_as2org_csv(path, db));

  const auto loaded = read_as2org_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->as_count(), 3u);
  EXPECT_EQ(loaded->org_count(), 2u);
  EXPECT_TRUE(loaded->same_org(15169, 36040));
  ASSERT_NE(loaded->org_name(3356), nullptr);
  EXPECT_EQ(*loaded->org_name(3356), "Lumen");
  std::remove(path.c_str());
}

TEST(AsInfoCsv, As2OrgRejectsMalformed) {
  const std::string path = ::testing::TempDir() + "/sp_as2org_bad.csv";
  ASSERT_TRUE(io::write_csv_file(path, {{"asn", "org_name"}, {"ASx", "Org"}}));
  EXPECT_FALSE(read_as2org_csv(path).has_value());
  ASSERT_TRUE(io::write_csv_file(path, {{"asn", "org_name"}, {"AS1", ""}}));
  EXPECT_FALSE(read_as2org_csv(path).has_value());
  ASSERT_TRUE(io::write_csv_file(path, {{"wrong"}, {"AS1", "Org"}}));
  EXPECT_FALSE(read_as2org_csv(path).has_value());
  EXPECT_FALSE(read_as2org_csv("/nonexistent/as2org.csv").has_value());
  std::remove(path.c_str());
}

TEST(AsInfoCsv, AsdbRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_asdb_test.csv";
  AsdbDatabase db;
  db.add_category(15169, BusinessType::ComputerIT);
  db.add_category(40, BusinessType::Education);
  db.add_category(40, BusinessType::Government);
  ASSERT_TRUE(write_asdb_csv(path, db));

  const auto loaded = read_asdb_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->as_count(), 2u);
  EXPECT_EQ(loaded->single_category(15169), BusinessType::ComputerIT);
  EXPECT_EQ(loaded->categories(40).size(), 2u);
  EXPECT_FALSE(loaded->single_category(40).has_value());
  std::remove(path.c_str());
}

TEST(AsInfoCsv, AsdbRejectsUnknownCategory) {
  const std::string path = ::testing::TempDir() + "/sp_asdb_bad.csv";
  ASSERT_TRUE(io::write_csv_file(
      path, {{"asn", "categories..."}, {"AS1", "Not A Real Category"}}));
  EXPECT_FALSE(read_asdb_csv(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sp::asinfo
