// sp::io durable-publication primitives: durable_rename must move the
// tmp file into place with the content intact (fsync of file and parent
// directory are crash-durability properties a unit test cannot observe,
// but the failure paths and the rename itself are checkable), and both
// helpers must report failures instead of silently succeeding. These
// back the pipeline checkpoints and — since the soak harness's RELOAD
// churn leaned on it — the .spdl apply path in stream/spdl.cpp.
#include "io/durable.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace sp::io {
namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(IoDurable, DurableRenamePublishesTmpContent) {
  const std::string tmp = temp_path("durable_pub.tmp");
  const std::string target = temp_path("durable_pub.out");
  std::filesystem::remove(target);
  write_text(tmp, "payload v1");
  std::string error;
  ASSERT_TRUE(durable_rename(tmp, target, &error)) << error;
  EXPECT_EQ(read_text(target), "payload v1");
  EXPECT_FALSE(std::filesystem::exists(tmp));

  // Replacing an existing file is the reload-churn case: the new bytes
  // atomically take the path over.
  write_text(tmp, "payload v2");
  ASSERT_TRUE(durable_rename(tmp, target, &error)) << error;
  EXPECT_EQ(read_text(target), "payload v2");
}

TEST(IoDurable, DurableRenameFailsWithoutTmpFile) {
  const std::string missing = temp_path("durable_missing.tmp");
  std::filesystem::remove(missing);
  std::string error;
  EXPECT_FALSE(durable_rename(missing, temp_path("durable_missing.out"), &error));
  EXPECT_FALSE(error.empty());
}

TEST(IoDurable, SyncParentDirReportsMissingParent) {
  std::string error;
  EXPECT_TRUE(sync_parent_dir(temp_path("some_file.bin"), &error)) << error;
  EXPECT_FALSE(sync_parent_dir("/nonexistent_sp_dir/some_file.bin", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sp::io
