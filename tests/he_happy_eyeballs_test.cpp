// Tests for the RFC 8305 Happy Eyeballs simulator: candidate interleaving,
// preference behaviour, connection-attempt delays, failure acceleration,
// resolution delay, and timeouts.
#include "he/happy_eyeballs.h"

#include <gtest/gtest.h>

namespace sp::he {
namespace {

Endpoint v6(const char* address, double rtt, bool reachable = true,
            FailureMode mode = FailureMode::Silent) {
  return {IPAddress::must_parse(address), rtt, reachable, mode};
}
Endpoint v4(const char* address, double rtt, bool reachable = true,
            FailureMode mode = FailureMode::Silent) {
  return {IPAddress::must_parse(address), rtt, reachable, mode};
}

TEST(HappyEyeballs, InterleavesFamiliesStartingWithPreferred) {
  const auto order = interleave({v6("2620:100::1", 10), v6("2620:100::2", 10)},
                                {v4("20.1.0.1", 10)}, /*prefer_ipv6=*/true);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_TRUE(order[0].address.is_v6());
  EXPECT_TRUE(order[1].address.is_v4());
  EXPECT_TRUE(order[2].address.is_v6());

  const auto v4_first = interleave({v6("2620:100::1", 10)}, {v4("20.1.0.1", 10)},
                                   /*prefer_ipv6=*/false);
  EXPECT_TRUE(v4_first[0].address.is_v4());
}

TEST(HappyEyeballs, HealthyIpv6WinsDespiteHigherRtt) {
  // v6 RTT 80ms vs v4 RTT 10ms: v6 still wins because v4 only starts at
  // the 250ms connection attempt delay.
  const auto outcome = race({v6("2620:100::1", 80)}, {v4("20.1.0.1", 10)});
  ASSERT_TRUE(outcome.connected());
  EXPECT_TRUE(outcome.used_ipv6());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 80.0);
  EXPECT_EQ(outcome.attempts.size(), 1u);  // v4 attempt never started
}

TEST(HappyEyeballs, SlowIpv6LosesToRacedIpv4) {
  // v6 needs 400ms; v4 starts at 250ms and finishes at 260ms.
  const auto outcome = race({v6("2620:100::1", 400)}, {v4("20.1.0.1", 10)});
  ASSERT_TRUE(outcome.connected());
  EXPECT_FALSE(outcome.used_ipv6());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 260.0);
  EXPECT_EQ(outcome.attempts.size(), 2u);
}

TEST(HappyEyeballs, SilentIpv6BlackholeShiftsToIpv4) {
  // The paper's policy-inconsistency scenario: v6 silently dropped.
  const auto outcome =
      race({v6("2620:100::1", 20, false)}, {v4("20.1.0.1", 30)});
  ASSERT_TRUE(outcome.connected());
  EXPECT_FALSE(outcome.used_ipv6());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 280.0);  // 250 CAD + 30 RTT
}

TEST(HappyEyeballs, RefusedFailureAcceleratesNextAttempt) {
  // Active refusal after one 20ms RTT lets v4 start immediately.
  const auto outcome = race({v6("2620:100::1", 20, false, FailureMode::Refused)},
                            {v4("20.1.0.1", 30)});
  ASSERT_TRUE(outcome.connected());
  EXPECT_FALSE(outcome.used_ipv6());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 50.0);  // 20 failure + 30 RTT
}

TEST(HappyEyeballs, NoIpv6CandidatesWaitsResolutionDelay) {
  const auto outcome = race({}, {v4("20.1.0.1", 30)});
  ASSERT_TRUE(outcome.connected());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 80.0);  // 50 resolution delay + 30
}

TEST(HappyEyeballs, BothFamiliesBlockedSilentlyTimesOut) {
  const auto outcome =
      race({v6("2620:100::1", 20, false)}, {v4("20.1.0.1", 20, false)});
  EXPECT_FALSE(outcome.connected());
  EXPECT_EQ(outcome.attempts.size(), 2u);
  for (const auto& attempt : outcome.attempts) {
    EXPECT_FALSE(attempt.success);
  }
}

TEST(HappyEyeballs, BothFamiliesRefusedFailsFastAndVisibly) {
  const auto outcome = race({v6("2620:100::1", 15, false, FailureMode::Refused)},
                            {v4("20.1.0.1", 15, false, FailureMode::Refused)});
  EXPECT_FALSE(outcome.connected());
  ASSERT_EQ(outcome.attempts.size(), 2u);
  // Both failures observed within ~2 RTTs — the user sees an error
  // immediately instead of waiting out a black hole.
  ASSERT_TRUE(outcome.attempts[1].end_ms.has_value());
  EXPECT_LE(*outcome.attempts[1].end_ms, 30.0);
}

TEST(HappyEyeballs, MultipleCandidatesPerFamily) {
  // First v6 silently dead, second v6 healthy: it starts at one CAD after
  // the v4 attempt (interleaved order v6,v4,v6).
  const auto outcome = race({v6("2620:100::1", 20, false), v6("2620:100::2", 10)},
                            {v4("20.1.0.1", 600)});
  ASSERT_TRUE(outcome.connected());
  EXPECT_TRUE(outcome.used_ipv6());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 510.0);  // starts at 2*250, +10
}

TEST(HappyEyeballs, PreferIpv4Configuration) {
  HeConfig config;
  config.prefer_ipv6 = false;
  const auto outcome = race({v6("2620:100::1", 10)}, {v4("20.1.0.1", 10)}, config);
  ASSERT_TRUE(outcome.connected());
  EXPECT_FALSE(outcome.used_ipv6());
}

TEST(HappyEyeballs, OverallTimeoutBoundsSlowSuccess) {
  HeConfig config;
  config.overall_timeout_ms = 100.0;
  const auto outcome = race({v6("2620:100::1", 150)}, {}, config);
  EXPECT_FALSE(outcome.connected());
}

TEST(HappyEyeballs, EmptyCandidatesDoNotConnect) {
  const auto outcome = race({}, {});
  EXPECT_FALSE(outcome.connected());
  EXPECT_TRUE(outcome.attempts.empty());
}

// Regression tests for the resolution-delay/deadline interaction: race()
// shifts all attempt times by resolution_delay_ms when the preferred
// family resolved no addresses, but the deadline had been validated
// against the unshifted times — a connect could be reported successful
// past overall_timeout_ms.

TEST(HappyEyeballs, ShiftedConnectExactlyAtDeadlineStillSucceeds) {
  // 50ms resolution delay + 50ms RTT = connect at exactly the 100ms
  // deadline: "by this time" is inclusive, matching the unshifted rule
  // `done <= overall_timeout_ms`.
  HeConfig config;
  config.resolution_delay_ms = 50.0;
  config.overall_timeout_ms = 100.0;
  const auto outcome = race({}, {v4("20.1.0.1", 50)}, config);
  ASSERT_TRUE(outcome.connected());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 100.0);
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_TRUE(outcome.attempts[0].success);
  EXPECT_DOUBLE_EQ(*outcome.attempts[0].end_ms, 100.0);
}

TEST(HappyEyeballs, ShiftedConnectPastDeadlineIsNotASuccess) {
  // One ms past the deadline after the shift: 50 + 51 = 101 > 100. The
  // unshifted race saw done = 51 <= 100 and called it connected — the bug.
  HeConfig config;
  config.resolution_delay_ms = 50.0;
  config.overall_timeout_ms = 100.0;
  const auto outcome = race({}, {v4("20.1.0.1", 51)}, config);
  EXPECT_FALSE(outcome.connected());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 0.0);
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_FALSE(outcome.attempts[0].success);
  EXPECT_FALSE(outcome.attempts[0].end_ms.has_value());
}

TEST(HappyEyeballs, ShiftedStartAtDeadlineNeverHappens) {
  // The shift pushes the second v4 start (unshifted 250ms CAD) to 300ms,
  // exactly the deadline: an attempt cannot start at/after the deadline.
  HeConfig config;
  config.resolution_delay_ms = 50.0;
  config.overall_timeout_ms = 300.0;
  const auto outcome =
      race({}, {v4("20.1.0.1", 500, false), v4("20.1.0.2", 10)}, config);
  EXPECT_FALSE(outcome.connected());
  ASSERT_EQ(outcome.attempts.size(), 1u);  // only the first ever started
  EXPECT_DOUBLE_EQ(outcome.attempts[0].start_ms, 50.0);
}

TEST(HappyEyeballs, ShiftedRefusalObservationPastDeadlineIsDropped) {
  // A Refused failure whose observation lands past the shifted deadline
  // is never observed: the attempt stays, its end_ms does not.
  HeConfig config;
  config.resolution_delay_ms = 50.0;
  config.overall_timeout_ms = 100.0;
  const auto outcome =
      race({}, {v4("20.1.0.1", 80, false, FailureMode::Refused)}, config);
  EXPECT_FALSE(outcome.connected());
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_FALSE(outcome.attempts[0].end_ms.has_value());
}

TEST(HappyEyeballs, UnshiftedConnectExactlyAtDeadlineWins) {
  // No shift (preferred family populated): the deadline is inclusive on
  // this path too — previously a connect at exactly the deadline marked
  // the attempt successful but never produced a winner.
  HeConfig config;
  config.overall_timeout_ms = 100.0;
  const auto outcome = race({v6("2620:100::1", 100)}, {}, config);
  ASSERT_TRUE(outcome.connected());
  EXPECT_DOUBLE_EQ(outcome.connect_time_ms, 100.0);
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_TRUE(outcome.attempts[0].success);
}

}  // namespace
}  // namespace sp::he
