// Unit and property tests for IPv4/IPv6 address parsing and formatting.
#include "netbase/ip.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

namespace sp {
namespace {

TEST(IPv4Address, ParsesDottedQuad) {
  const auto a = IPv4Address::from_string("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(IPv4Address, ParsesExtremes) {
  EXPECT_EQ(IPv4Address::from_string("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Address::from_string("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4Address, RejectsMalformedInput) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.04", "01.2.3.4",
                          "1..2.3", "a.b.c.d", " 1.2.3.4", "1.2.3.4 ", "1.2.3.4/24",
                          "-1.2.3.4", "1.2.3.1000"}) {
    EXPECT_FALSE(IPv4Address::from_string(bad).has_value()) << bad;
  }
}

TEST(IPv4Address, OctetsRoundTrip) {
  const auto a = IPv4Address::from_octets(10, 20, 30, 40);
  const auto o = a.octets();
  EXPECT_EQ(o[0], 10);
  EXPECT_EQ(o[1], 20);
  EXPECT_EQ(o[2], 30);
  EXPECT_EQ(o[3], 40);
}

TEST(IPv4Address, BitIndexingFromMsb) {
  const auto a = IPv4Address(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_FALSE(a.bit(30));
  EXPECT_TRUE(a.bit(31));
}

TEST(IPv4Address, Ordering) {
  EXPECT_LT(IPv4Address::from_octets(10, 0, 0, 0), IPv4Address::from_octets(10, 0, 0, 1));
  EXPECT_LT(IPv4Address::from_octets(9, 255, 255, 255), IPv4Address::from_octets(10, 0, 0, 0));
}

TEST(IPv6Address, ParsesCanonicalForms) {
  const auto a = IPv6Address::from_string("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 0x0001);
  for (unsigned i = 2; i < 7; ++i) EXPECT_EQ(a->group(i), 0);
}

TEST(IPv6Address, ParsesAllZeros) {
  const auto a = IPv6Address::from_string("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, IPv6Address{});
  EXPECT_EQ(a->to_string(), "::");
}

TEST(IPv6Address, ParsesFullForm) {
  const auto a = IPv6Address::from_string("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8::ff00:42:8329");
}

TEST(IPv6Address, ParsesEmbeddedIPv4) {
  const auto a = IPv6Address::from_string("::ffff:192.0.2.128");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(5), 0xffff);
  EXPECT_EQ(a->group(6), 0xC000);
  EXPECT_EQ(a->group(7), 0x0280);
}

TEST(IPv6Address, ParsesGapPositions) {
  EXPECT_TRUE(IPv6Address::from_string("::1").has_value());
  EXPECT_TRUE(IPv6Address::from_string("1::").has_value());
  EXPECT_TRUE(IPv6Address::from_string("1::1").has_value());
  EXPECT_TRUE(IPv6Address::from_string("1:2:3:4:5:6:7::").has_value());
  EXPECT_TRUE(IPv6Address::from_string("::1:2:3:4:5:6:7").has_value());
}

TEST(IPv6Address, RejectsMalformedInput) {
  for (const char* bad : {"", ":", ":::", "1::2::3", "12345::", "g::1", "1:2:3:4:5:6:7:8:9",
                          "1:2:3:4:5:6:7", "::1%eth0", "1:2:3:4:5:6:7:8::", "::1.2.3.4.5",
                          "1.2.3.4::", "::ffff:1.2.3.300", "2001:db8::1 "}) {
    EXPECT_FALSE(IPv6Address::from_string(bad).has_value()) << bad;
  }
}

TEST(IPv6Address, Rfc5952CompressesLongestRun) {
  // Longest run wins; leftmost on ties; single zero group is not compressed.
  EXPECT_EQ(IPv6Address::from_string("2001:0:0:1:0:0:0:1")->to_string(), "2001:0:0:1::1");
  EXPECT_EQ(IPv6Address::from_string("2001:0:0:1:0:0:1:1")->to_string(), "2001::1:0:0:1:1");
  EXPECT_EQ(IPv6Address::from_string("2001:db8:0:1:1:1:1:1")->to_string(),
            "2001:db8:0:1:1:1:1:1");
}

TEST(IPv6Address, Rfc5952Lowercase) {
  EXPECT_EQ(IPv6Address::from_string("2001:DB8::ABCD")->to_string(), "2001:db8::abcd");
}

TEST(IPAddress, AutodetectsFamily) {
  const auto v4 = IPAddress::from_string("198.51.100.7");
  ASSERT_TRUE(v4.has_value());
  EXPECT_TRUE(v4->is_v4());
  EXPECT_EQ(v4->max_prefix_length(), 32u);

  const auto v6 = IPAddress::from_string("2001:db8::7");
  ASSERT_TRUE(v6.has_value());
  EXPECT_TRUE(v6->is_v6());
  EXPECT_EQ(v6->max_prefix_length(), 128u);
}

TEST(IPAddress, FamiliesNeverCompareEqual) {
  // ::0a00:0000... vs 10.0.0.0 share the byte image prefix but differ in family.
  const IPAddress v4(IPv4Address::from_octets(10, 0, 0, 0));
  IPv6Address::Bytes bytes{};
  bytes[0] = 10;
  const IPAddress v6{IPv6Address(bytes)};
  EXPECT_NE(v4, v6);
}

TEST(IPAddress, MustParseThrowsOnGarbage) {
  EXPECT_THROW((void)IPAddress::must_parse("not-an-ip"), std::invalid_argument);
  EXPECT_EQ(IPAddress::must_parse("10.0.0.1").to_string(), "10.0.0.1");
}

TEST(IPAddress, HashDistinguishesFamilies) {
  const std::hash<IPAddress> h;
  const IPAddress v4(IPv4Address{});
  const IPAddress v6{IPv6Address{}};
  EXPECT_NE(h(v4), h(v6));
}

// Property: to_string/from_string round-trips for random addresses.
class IPv4RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IPv4RoundTrip, RoundTrips) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> dist;
  for (int i = 0; i < 2000; ++i) {
    const IPv4Address a(dist(rng));
    const auto back = IPv4Address::from_string(a.to_string());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IPv4RoundTrip, ::testing::Values(1u, 2u, 3u, 4u));

class IPv6RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IPv6RoundTrip, RoundTrips) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> group_dist(0, 0xffff);
  std::uniform_int_distribution<int> zero_dist(0, 2);
  for (int i = 0; i < 2000; ++i) {
    std::array<std::uint16_t, 8> groups{};
    for (auto& g : groups) {
      // Bias toward zero groups to exercise the RFC 5952 compressor.
      g = zero_dist(rng) == 0 ? 0 : static_cast<std::uint16_t>(group_dist(rng));
    }
    const auto a = IPv6Address::from_groups(groups);
    const auto back = IPv6Address::from_string(a.to_string());
    ASSERT_TRUE(back.has_value()) << a.to_string();
    EXPECT_EQ(*back, a) << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IPv6RoundTrip, ::testing::Values(11u, 12u, 13u, 14u));

// Property: formatting never produces a string another address parses to.
TEST(IPv6Address, FormatIsInjectiveOnSamples) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::unordered_set<std::string> seen;
  std::unordered_set<IPv6Address> addresses;
  for (int i = 0; i < 1000; ++i) {
    IPv6Address::Bytes bytes{};
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte_dist(rng) < 128 ? 0 : byte_dist(rng));
    const IPv6Address a(bytes);
    const bool new_address = addresses.insert(a).second;
    const bool new_string = seen.insert(a.to_string()).second;
    EXPECT_EQ(new_address, new_string);
  }
}

}  // namespace
}  // namespace sp
