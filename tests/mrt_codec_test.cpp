// Tests for the RFC 6396 MRT TABLE_DUMP_V2 codec: golden byte layouts,
// round-trips (including randomized property sweeps), file I/O, and
// malformed-input rejection.
#include "mrt/codec.h"
#include "mrt/file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>

namespace sp::mrt {
namespace {

PeerIndexTable example_peer_table() {
  PeerIndexTable table;
  table.collector_bgp_id = {10, 0, 0, 1};
  table.view_name = "rv2";
  table.peers.push_back(
      {{192, 0, 2, 1}, IPAddress::must_parse("192.0.2.1"), 65001});
  table.peers.push_back(
      {{192, 0, 2, 2}, IPAddress::must_parse("2001:db8::2"), 65002});
  return table;
}

RibRecord example_v4_rib() {
  RibRecord rib;
  rib.sequence = 7;
  rib.prefix = Prefix::must_parse("198.51.100.0/24");
  RibEntry entry;
  entry.peer_index = 0;
  entry.originated_time = 1726000000;
  entry.attributes = PathAttributes::sequence({65001, 3356, 15169});
  entry.attributes.next_hop_v4 = *IPv4Address::from_string("192.0.2.1");
  rib.entries.push_back(std::move(entry));
  return rib;
}

RibRecord example_v6_rib() {
  RibRecord rib;
  rib.sequence = 9;
  rib.prefix = Prefix::must_parse("2001:db8:4000::/36");
  RibEntry entry;
  entry.peer_index = 1;
  entry.originated_time = 1726000001;
  entry.attributes = PathAttributes::sequence({65002, 6939, 13335});
  entry.attributes.next_hop_v6 = *IPv6Address::from_string("2001:db8::2");
  entry.attributes.med = 50;
  entry.attributes.local_pref = 100;
  entry.attributes.communities = {(65001u << 16) | 300u};
  rib.entries.push_back(std::move(entry));
  return rib;
}

TEST(MrtCodec, CommonHeaderGolden) {
  const MrtRecord record{1726000000, example_v4_rib()};
  const auto wire = encode_record(record);
  ASSERT_GE(wire.size(), 12u);
  // timestamp
  EXPECT_EQ(wire[0], 0x66);
  // type = 13 (TABLE_DUMP_V2)
  EXPECT_EQ(wire[4], 0);
  EXPECT_EQ(wire[5], 13);
  // subtype = 2 (RIB_IPV4_UNICAST)
  EXPECT_EQ(wire[6], 0);
  EXPECT_EQ(wire[7], 2);
  // length matches the remaining bytes
  const std::uint32_t length = (std::uint32_t{wire[8]} << 24) | (wire[9] << 16) |
                               (wire[10] << 8) | wire[11];
  EXPECT_EQ(length, wire.size() - 12);
}

TEST(MrtCodec, V6SubtypeFollowsPrefixFamily) {
  const auto wire = encode_record({0, example_v6_rib()});
  EXPECT_EQ(wire[7], 4);  // RIB_IPV6_UNICAST
}

TEST(MrtCodec, PrefixUsesMinimalOctets) {
  // A /24 v4 prefix must be encoded in 3 octets (RFC 6396 section 4.3.2).
  RibRecord rib;
  rib.prefix = Prefix::must_parse("198.51.100.0/24");
  const auto wire = encode_record({0, rib});
  // body: seq(4) prefix_len(1) prefix(3) entry_count(2)
  EXPECT_EQ(wire.size(), 12u + 4u + 1u + 3u + 2u);
  EXPECT_EQ(wire[12 + 4], 24);  // prefix length byte
  EXPECT_EQ(wire[12 + 5], 198);
  EXPECT_EQ(wire[12 + 7], 100);
}

TEST(MrtCodec, PeerIndexTableRoundTrips) {
  const MrtRecord record{1726000000, example_peer_table()};
  std::string error;
  const auto decoded = decode_dump(encode_record(record), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ(decoded->front(), record);
}

TEST(MrtCodec, RibRecordsRoundTrip) {
  const std::vector<MrtRecord> records = {{1726000000, example_peer_table()},
                                          {1726000000, example_v4_rib()},
                                          {1726000000, example_v6_rib()}};
  std::string error;
  const auto decoded = decode_dump(encode_dump(records), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, records);
}

TEST(MrtCodec, UnknownAttributePreservedVerbatim) {
  RibRecord rib = example_v4_rib();
  rib.entries[0].attributes.unknown.push_back(
      {0xC0, 32, {1, 2, 3, 4, 5}});  // LARGE_COMMUNITY-ish blob
  const MrtRecord record{0, rib};
  const auto decoded = decode_dump(encode_record(record));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->front(), record);
}

TEST(MrtCodec, AsSetSegmentsRoundTrip) {
  RibRecord rib = example_v4_rib();
  rib.entries[0].attributes.as_path.push_back(
      {AsPathSegment::Type::Set, {64512, 64513}});
  const auto decoded = decode_dump(encode_record({0, rib}));
  ASSERT_TRUE(decoded.has_value());
  const auto& path = std::get<RibRecord>(decoded->front().body).entries[0].attributes.as_path;
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[1].type, AsPathSegment::Type::Set);
}

TEST(MrtCodec, OriginAsIsLastAsnOfPath) {
  PathAttributes attributes = PathAttributes::sequence({65001, 3356, 15169});
  EXPECT_EQ(attributes.origin_as(), 15169u);
  PathAttributes empty;
  EXPECT_FALSE(empty.origin_as().has_value());
}

TEST(MrtCodec, CursorReportsTruncation) {
  const auto wire = encode_record({0, example_v4_rib()});
  for (const std::size_t cut : {std::size_t{1}, std::size_t{6}, std::size_t{13},
                                wire.size() - 1}) {
    Cursor cursor(std::span(wire.data(), cut));
    EXPECT_FALSE(cursor.next().has_value()) << cut;
    EXPECT_FALSE(cursor.error().empty()) << cut;
  }
}

TEST(MrtCodec, CursorRejectsUnknownType) {
  auto wire = encode_record({0, example_v4_rib()});
  wire[5] = 12;  // TABLE_DUMP (v1), unsupported
  Cursor cursor(wire);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_NE(cursor.error().find("unsupported"), std::string::npos);
}

TEST(MrtCodec, CursorRejectsOverlongPrefixLength) {
  auto wire = encode_record({0, example_v4_rib()});
  wire[12 + 4] = 33;  // v4 prefix length 33
  Cursor cursor(wire);
  EXPECT_FALSE(cursor.next().has_value());
}

TEST(MrtCodec, CursorStopsCleanlyAtEnd) {
  const auto wire = encode_record({0, example_v4_rib()});
  Cursor cursor(wire);
  EXPECT_TRUE(cursor.next().has_value());
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_TRUE(cursor.error().empty());
  EXPECT_TRUE(cursor.at_end());
}

TEST(MrtFile, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/sp_mrt_test.mrt";
  const std::vector<MrtRecord> records = {{1726000000, example_peer_table()},
                                          {1726000000, example_v4_rib()},
                                          {1726000000, example_v6_rib()}};
  ASSERT_TRUE(write_file(path, records));
  std::string error;
  const auto loaded = read_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, records);
  std::remove(path.c_str());
}

TEST(MrtFile, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(read_file("/nonexistent/sp.mrt", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// Property: randomized RIB dumps round-trip exactly.
class MrtRoundTripProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MrtRoundTripProperty, RandomDumpsRoundTrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> len4(0, 32);
  std::uniform_int_distribution<int> len6(0, 128);
  std::uniform_int_distribution<int> small(1, 3);

  const auto random_attributes = [&] {
    PathAttributes attributes;
    attributes.origin = static_cast<Origin>(word(rng) % 3);
    AsPathSegment segment;
    segment.type = AsPathSegment::Type::Sequence;
    for (int i = small(rng); i > 0; --i) segment.asns.push_back(word(rng) % 400000 + 1);
    attributes.as_path.push_back(std::move(segment));
    if (word(rng) % 2 == 0) attributes.next_hop_v4 = IPv4Address(word(rng));
    if (word(rng) % 2 == 0) attributes.med = word(rng);
    if (word(rng) % 3 == 0) attributes.local_pref = word(rng);
    if (word(rng) % 3 == 0) attributes.communities = {word(rng), word(rng)};
    if (word(rng) % 4 == 0) {
      IPv6Address::Bytes bytes{};
      for (auto& b : bytes) b = static_cast<std::uint8_t>(word(rng));
      attributes.next_hop_v6 = IPv6Address(bytes);
    }
    return attributes;
  };

  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<MrtRecord> records;
    records.push_back({word(rng), example_peer_table()});
    for (int r = 0; r < 20; ++r) {
      RibRecord rib;
      rib.sequence = static_cast<std::uint32_t>(r);
      if (word(rng) % 2 == 0) {
        rib.prefix = Prefix::of(IPAddress(IPv4Address(word(rng))),
                                static_cast<unsigned>(len4(rng)));
      } else {
        IPv6Address::Bytes bytes{};
        for (auto& b : bytes) b = static_cast<std::uint8_t>(word(rng));
        rib.prefix = Prefix::of(IPAddress(IPv6Address(bytes)),
                                static_cast<unsigned>(len6(rng)));
      }
      for (int e = small(rng); e > 0; --e) {
        rib.entries.push_back({static_cast<std::uint16_t>(word(rng) % 4), word(rng),
                               random_attributes()});
      }
      records.push_back({word(rng), std::move(rib)});
    }
    std::string error;
    const auto decoded = decode_dump(encode_dump(records), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(*decoded, records);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtRoundTripProperty, ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace sp::mrt
