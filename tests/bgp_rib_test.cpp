// Tests for the BGP RIB: origin voting, longest-prefix lookups, and
// construction from MRT records.
#include "bgp/rib.h"

#include <gtest/gtest.h>

namespace sp::bgp {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(RouteVotes, MajorityWinsSmallestAsnOnTie) {
  RouteVotes votes;
  votes.add(65001);
  votes.add(65002);
  votes.add(65002);
  EXPECT_EQ(votes.best(), 65002u);
  EXPECT_TRUE(votes.is_moas());

  RouteVotes tie;
  tie.add(65009);
  tie.add(65003);
  EXPECT_EQ(tie.best(), 65003u);
}

TEST(Rib, ExactOriginLookup) {
  Rib rib;
  rib.add_route(p("203.0.113.0/24"), 65010);
  EXPECT_EQ(rib.origin_as(p("203.0.113.0/24")), 65010u);
  EXPECT_FALSE(rib.origin_as(p("203.0.113.0/25")).has_value());
  EXPECT_EQ(rib.prefix_count(), 1u);
}

TEST(Rib, LongestMatchForAddresses) {
  Rib rib;
  rib.add_route(p("10.0.0.0/8"), 1);
  rib.add_route(p("10.1.0.0/16"), 2);
  rib.add_route(p("2001:db8::/32"), 3);

  const auto specific = rib.lookup(IPAddress::must_parse("10.1.2.3"));
  ASSERT_TRUE(specific.has_value());
  EXPECT_EQ(specific->prefix, p("10.1.0.0/16"));
  EXPECT_EQ(specific->origin_as, 2u);

  const auto covering = rib.lookup(IPAddress::must_parse("10.200.0.1"));
  ASSERT_TRUE(covering.has_value());
  EXPECT_EQ(covering->prefix, p("10.0.0.0/8"));

  const auto v6 = rib.lookup(IPAddress::must_parse("2001:db8::1"));
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->origin_as, 3u);

  EXPECT_FALSE(rib.lookup(IPAddress::must_parse("192.0.2.1")).has_value());
}

TEST(Rib, LongestMatchForPrefixes) {
  Rib rib;
  rib.add_route(p("10.0.0.0/8"), 1);
  const auto hit = rib.lookup(p("10.5.0.0/16"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->prefix, p("10.0.0.0/8"));
}

TEST(Rib, FromMrtUsesMajorityAcrossPeers) {
  mrt::RibRecord record;
  record.prefix = p("198.51.100.0/24");
  record.entries.push_back({0, 0, mrt::PathAttributes::sequence({65001, 100})});
  record.entries.push_back({1, 0, mrt::PathAttributes::sequence({65002, 200, 100})});
  record.entries.push_back({2, 0, mrt::PathAttributes::sequence({65003, 999})});

  mrt::RibRecord v6_record;
  v6_record.prefix = p("2001:db8::/32");
  v6_record.entries.push_back({0, 0, mrt::PathAttributes::sequence({65001, 500})});

  // Empty AS_PATH entries contribute no votes.
  mrt::RibRecord empty_path;
  empty_path.prefix = p("192.0.2.0/24");
  empty_path.entries.push_back({0, 0, {}});

  const std::vector<mrt::MrtRecord> records = {
      {0, mrt::PeerIndexTable{}}, {0, record}, {0, v6_record}, {0, empty_path}};
  const Rib rib = Rib::from_mrt(records);

  EXPECT_EQ(rib.origin_as(p("198.51.100.0/24")), 100u);  // 2 votes vs 1
  EXPECT_EQ(rib.origin_as(p("2001:db8::/32")), 500u);
  EXPECT_FALSE(rib.origin_as(p("192.0.2.0/24")).has_value());
  EXPECT_EQ(rib.prefix_count(), 2u);
  EXPECT_EQ(rib.moas_count(), 1u);
}

}  // namespace
}  // namespace sp::bgp
