// Tests for the DomainName value type.
#include "dns/name.h"

#include <gtest/gtest.h>

namespace sp::dns {
namespace {

TEST(DomainName, ParsesAndCanonicalizes) {
  const auto name = DomainName::from_string("WWW.Example.ORG");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->text(), "www.example.org");
  EXPECT_EQ(name->to_string(), "www.example.org");
}

TEST(DomainName, TrailingDotIsStripped) {
  EXPECT_EQ(DomainName::must_parse("example.org."), DomainName::must_parse("example.org"));
}

TEST(DomainName, RootName) {
  const auto root = DomainName::from_string(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->label_count(), 0u);
}

TEST(DomainName, RejectsMalformedNames) {
  for (const char* bad : {"exa mple.org", "example..org", "-bad.org", "bad-.org",
                          "exa$mple.org", ".leading.dot"}) {
    EXPECT_FALSE(DomainName::from_string(bad).has_value()) << bad;
  }
  const std::string long_label(64, 'a');
  EXPECT_FALSE(DomainName::from_string(long_label + ".org").has_value());
  std::string long_name;
  for (int i = 0; i < 60; ++i) long_name += "abcd.";
  long_name += "org";  // > 253 octets
  EXPECT_FALSE(DomainName::from_string(long_name).has_value());
}

TEST(DomainName, AcceptsEdgeCases) {
  EXPECT_TRUE(DomainName::from_string("_dmarc.example.org").has_value());
  EXPECT_TRUE(DomainName::from_string("xn--nxasmq6b.example").has_value());
  EXPECT_TRUE(DomainName::from_string("123.example").has_value());
  const std::string label63(63, 'a');
  EXPECT_TRUE(DomainName::from_string(label63 + ".org").has_value());
}

TEST(DomainName, Labels) {
  const auto name = DomainName::must_parse("www.example.org");
  const auto labels = name.labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "www");
  EXPECT_EQ(labels[1], "example");
  EXPECT_EQ(labels[2], "org");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.tld(), "org");
}

TEST(DomainName, ParentWalk) {
  auto name = DomainName::must_parse("a.b.example.org");
  name = name.parent();
  EXPECT_EQ(name.text(), "b.example.org");
  name = name.parent().parent();
  EXPECT_EQ(name.text(), "org");
  EXPECT_TRUE(name.parent().is_root());
}

TEST(DomainName, SubdomainRelation) {
  const auto org = DomainName::must_parse("example.org");
  const auto www = DomainName::must_parse("www.example.org");
  EXPECT_TRUE(www.is_subdomain_of(org));
  EXPECT_TRUE(org.is_subdomain_of(org));
  EXPECT_FALSE(org.is_subdomain_of(www));
  // Suffix match must respect label boundaries.
  EXPECT_FALSE(DomainName::must_parse("notexample.org").is_subdomain_of(org));
  EXPECT_TRUE(www.is_subdomain_of(DomainName()));  // everything is under root
}

TEST(DomainName, CaseInsensitiveEqualityAndHash) {
  const auto a = DomainName::must_parse("Example.ORG");
  const auto b = DomainName::must_parse("example.org");
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<DomainName>{}(a), std::hash<DomainName>{}(b));
}

}  // namespace
}  // namespace sp::dns
