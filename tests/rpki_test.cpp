// Tests for RFC 6811 route-origin validation and the sibling-pair ROV
// status classification of Figure 18.
#include "rpki/rov.h"

#include <gtest/gtest.h>

namespace sp::rpki {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(Validator, RejectsInconsistentRoas) {
  Validator validator;
  EXPECT_FALSE(validator.add_roa({p("20.1.0.0/16"), 15, 65001}));   // max < len
  EXPECT_FALSE(validator.add_roa({p("20.1.0.0/16"), 33, 65001}));   // max > 32
  EXPECT_TRUE(validator.add_roa({p("20.1.0.0/16"), 16, 65001}));
  EXPECT_EQ(validator.roa_count(), 1u);
}

TEST(Validator, ExactMatchValidates) {
  Validator validator;
  ASSERT_TRUE(validator.add_roa({p("20.1.0.0/16"), 16, 65001}));
  EXPECT_EQ(validator.validate(p("20.1.0.0/16"), 65001), RovStatus::Valid);
  EXPECT_EQ(validator.validate(p("20.1.0.0/16"), 65002), RovStatus::Invalid);
  EXPECT_EQ(validator.validate(p("20.2.0.0/16"), 65001), RovStatus::NotFound);
}

TEST(Validator, MaxLengthControlsMoreSpecifics) {
  Validator validator;
  ASSERT_TRUE(validator.add_roa({p("20.1.0.0/16"), 20, 65001}));
  // Within maxLength: valid.
  EXPECT_EQ(validator.validate(p("20.1.16.0/20"), 65001), RovStatus::Valid);
  // Too specific: covered but not authorized → invalid (RFC 6811).
  EXPECT_EQ(validator.validate(p("20.1.16.0/24"), 65001), RovStatus::Invalid);
  // Less specific than the ROA prefix: not covered.
  EXPECT_EQ(validator.validate(p("20.0.0.0/8"), 65001), RovStatus::NotFound);
}

TEST(Validator, AnyMatchingRoaWins) {
  Validator validator;
  ASSERT_TRUE(validator.add_roa({p("20.1.0.0/16"), 24, 65001}));
  ASSERT_TRUE(validator.add_roa({p("20.1.0.0/16"), 24, 65002}));  // second authorized AS
  EXPECT_EQ(validator.validate(p("20.1.5.0/24"), 65002), RovStatus::Valid);
  EXPECT_EQ(validator.validate(p("20.1.5.0/24"), 65003), RovStatus::Invalid);
}

TEST(Validator, CoveringRoaAtAnyAncestorLevel) {
  Validator validator;
  ASSERT_TRUE(validator.add_roa({p("20.0.0.0/8"), 24, 65001}));
  ASSERT_TRUE(validator.add_roa({p("20.1.0.0/16"), 16, 65002}));
  // Both ROAs cover 20.1.0.0/16; the /16 one matches 65002, the /8 one
  // authorizes 65001 → either origin validates.
  EXPECT_EQ(validator.validate(p("20.1.0.0/16"), 65002), RovStatus::Valid);
  EXPECT_EQ(validator.validate(p("20.1.0.0/16"), 65001), RovStatus::Valid);
  EXPECT_EQ(validator.validate(p("20.1.0.0/16"), 65003), RovStatus::Invalid);
  EXPECT_EQ(validator.covering_roas(p("20.1.0.0/16")).size(), 2u);
}

TEST(Validator, V6Roas) {
  Validator validator;
  ASSERT_TRUE(validator.add_roa({p("2620:100::/32"), 48, 65101}));
  EXPECT_EQ(validator.validate(p("2620:100::/48"), 65101), RovStatus::Valid);
  EXPECT_EQ(validator.validate(p("2620:100::/56"), 65101), RovStatus::Invalid);
  EXPECT_EQ(validator.validate(p("2620:200::/48"), 65101), RovStatus::NotFound);
}

TEST(PairClassification, AllSixCategories) {
  using S = RovStatus;
  using P = PairRovStatus;
  EXPECT_EQ(classify_pair(S::Valid, S::Valid), P::BothValid);
  EXPECT_EQ(classify_pair(S::Valid, S::NotFound), P::ValidNotFound);
  EXPECT_EQ(classify_pair(S::NotFound, S::Valid), P::ValidNotFound);
  EXPECT_EQ(classify_pair(S::Valid, S::Invalid), P::ValidInvalid);
  EXPECT_EQ(classify_pair(S::Invalid, S::Valid), P::ValidInvalid);
  EXPECT_EQ(classify_pair(S::Invalid, S::Invalid), P::BothInvalid);
  EXPECT_EQ(classify_pair(S::Invalid, S::NotFound), P::InvalidNotFound);
  EXPECT_EQ(classify_pair(S::NotFound, S::Invalid), P::InvalidNotFound);
  EXPECT_EQ(classify_pair(S::NotFound, S::NotFound), P::BothNotFound);
}

TEST(PairClassification, IsSymmetric) {
  const RovStatus all[] = {RovStatus::Valid, RovStatus::Invalid, RovStatus::NotFound};
  for (const auto a : all) {
    for (const auto b : all) {
      EXPECT_EQ(classify_pair(a, b), classify_pair(b, a));
    }
  }
}

TEST(PairClassification, Names) {
  EXPECT_EQ(pair_rov_status_name(PairRovStatus::BothValid), "valid,valid");
  EXPECT_EQ(pair_rov_status_name(PairRovStatus::BothNotFound), "not-found,not-found");
  EXPECT_EQ(rov_status_name(RovStatus::Valid), "valid");
  EXPECT_EQ(rov_status_name(RovStatus::Invalid), "invalid");
  EXPECT_EQ(rov_status_name(RovStatus::NotFound), "not-found");
}

}  // namespace
}  // namespace sp::rpki
