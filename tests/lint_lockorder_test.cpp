// LockOrderRegistry tests: the acquisition-order graph, cycle detection
// with both stacks in the report, same-name nesting, and the release
// bookkeeping. The registry is always compiled (the LockOrderScope
// instrumentation is what SP_DEBUG_LOCKORDER gates), so these drive
// on_acquire/on_release directly and run in every configuration.
#include "lint/lock_order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/worker_pool.h"
#include "serve/service.h"

namespace {

using sp::lint::LockOrderRegistry;

/// Installs a capturing handler and restores abort-on-cycle on exit.
class CaptureFailures {
 public:
  CaptureFailures() {
    LockOrderRegistry::instance().set_fail_handler(
        [this](const std::string& report) { reports_.push_back(report); });
  }
  ~CaptureFailures() {
    LockOrderRegistry::instance().set_fail_handler(nullptr);
    LockOrderRegistry::instance().reset();
  }

  [[nodiscard]] const std::vector<std::string>& reports() const { return reports_; }

 private:
  std::vector<std::string> reports_;
};

TEST(LockOrder, NestedAcquisitionRecordsAnEdge) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();
  registry.on_acquire("outer");
  registry.on_acquire("inner");
  registry.on_release("inner");
  registry.on_release("outer");
  const auto edges = registry.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], "outer -> inner");
  EXPECT_TRUE(capture.reports().empty());
}

TEST(LockOrder, DisjointAcquisitionsRecordNothing) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();
  registry.on_acquire("a");
  registry.on_release("a");
  registry.on_acquire("b");
  registry.on_release("b");
  EXPECT_TRUE(registry.edges().empty());
  EXPECT_TRUE(capture.reports().empty());
}

TEST(LockOrder, SameNameNestingIsPermitted) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();
  registry.on_acquire("shard");
  registry.on_acquire("shard");  // second instance of the same lock class
  registry.on_release("shard");
  registry.on_release("shard");
  EXPECT_TRUE(registry.edges().empty());
  EXPECT_TRUE(capture.reports().empty());
}

TEST(LockOrder, InvertedOrderReportsTheCycleWithBothStacks) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();

  // Thread 1 establishes A -> B.
  std::thread([&] {
    registry.on_acquire("lock.a");
    registry.on_acquire("lock.b");
    registry.on_release("lock.b");
    registry.on_release("lock.a");
  }).join();

  // This thread inverts it: taking A while holding B closes the cycle.
  registry.on_acquire("lock.b");
  registry.on_acquire("lock.a");
  registry.on_release("lock.a");
  registry.on_release("lock.b");

  ASSERT_EQ(capture.reports().size(), 1u);
  const std::string& report = capture.reports()[0];
  // The report names the held stack, the acquisition that would close
  // the cycle, and the recorded order with its witness stack.
  EXPECT_NE(report.find("holds [lock.b]"), std::string::npos) << report;
  EXPECT_NE(report.find("acquiring 'lock.a'"), std::string::npos) << report;
  EXPECT_NE(report.find("lock.a -> lock.b"), std::string::npos) << report;  // recorded order
  EXPECT_NE(report.find("witness"), std::string::npos) << report;
}

TEST(LockOrder, ThreeLockCycleIsFound) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();
  std::thread([&] {
    registry.on_acquire("l1");
    registry.on_acquire("l2");
    registry.on_release("l2");
    registry.on_release("l1");
  }).join();
  std::thread([&] {
    registry.on_acquire("l2");
    registry.on_acquire("l3");
    registry.on_release("l3");
    registry.on_release("l2");
  }).join();
  registry.on_acquire("l3");
  registry.on_acquire("l1");  // l3 -> l1 closes l1 -> l2 -> l3 -> l1
  registry.on_release("l1");
  registry.on_release("l3");
  ASSERT_EQ(capture.reports().size(), 1u);
  EXPECT_NE(capture.reports()[0].find("l1 -> l2"), std::string::npos);
  EXPECT_NE(capture.reports()[0].find("l2 -> l3"), std::string::npos);
}

TEST(LockOrder, ResetClearsEdgesAndHeldStack) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();
  registry.on_acquire("x");
  registry.on_acquire("y");
  registry.reset();
  EXPECT_TRUE(registry.edges().empty());
  // The held stack is gone too: acquiring in "inverted" order records a
  // fresh edge instead of reporting a cycle.
  registry.on_acquire("y");
  registry.on_acquire("x");
  registry.on_release("x");
  registry.on_release("y");
  EXPECT_TRUE(capture.reports().empty());
}

// The production rank scheme stays acyclic when driven through the real
// components: a service batch (pool_mutex -> worker_pool.mutex) and a
// reload (current_mutex) record only downward edges.
TEST(LockOrder, ServiceAndPoolFollowTheRanks) {
  CaptureFailures capture;
  auto& registry = LockOrderRegistry::instance();
  registry.reset();

  sp::core::WorkerPool pool(2);
  pool.run([](unsigned) {});
  sp::serve::SiblingService service(2);
  (void)service.stats();
  std::string error;
  (void)service.load("/nonexistent.sibdb", &error);

  EXPECT_TRUE(capture.reports().empty()) << capture.reports()[0];
#ifdef SP_DEBUG_LOCKORDER
  // Instrumented builds must have seen the nesting; uninstrumented
  // builds record nothing.
  const auto edges = registry.edges();
  EXPECT_TRUE(std::none_of(edges.begin(), edges.end(), [](const std::string& edge) {
    return edge.find("core.worker_pool.mutex -> ") == 0;
  })) << "the engine lock must be innermost";
#endif
}

}  // namespace
