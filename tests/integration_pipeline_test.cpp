// End-to-end integration tests: the complete pipeline — synthetic universe
// → MRT bytes → RIB → snapshot CSV → corpus → detection → SP-Tuner →
// published list — through the same file formats a real deployment uses.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/detect.h"
#include "core/sibling_diff.h"
#include "core/sibling_list_io.h"
#include "core/sptuner.h"
#include "io/snapshot_csv.h"
#include "mrt/file.h"
#include "synth/universe.h"

namespace sp {
namespace {

synth::SynthConfig tiny_config() {
  synth::SynthConfig config;
  config.organization_count = 120;
  config.months = 3;
  config.monitoring_v4_prefixes = 8;
  config.monitoring_v6_prefixes = 4;
  config.probe_count = 50;
  return config;
}

TEST(IntegrationPipeline, FullFileBasedRoundTrip) {
  const synth::SyntheticInternet universe(tiny_config());
  const std::string dir = ::testing::TempDir();
  const std::string mrt_path = dir + "/pipeline_rib.mrt";
  const std::string snapshot_path = dir + "/pipeline_snapshot.csv";
  const std::string list_path = dir + "/pipeline_siblings.csv";

  // 1. Export the universe through the real file formats.
  ASSERT_TRUE(mrt::write_file(mrt_path, universe.mrt_dump()));
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  ASSERT_TRUE(io::write_snapshot_csv(snapshot_path, snapshot));

  // 2. Consume them like an external user would.
  std::string error;
  const auto records = mrt::read_file(mrt_path, &error);
  ASSERT_TRUE(records.has_value()) << error;
  const auto rib = bgp::Rib::from_mrt(*records);
  const auto loaded_snapshot = io::read_snapshot_csv(snapshot_path);
  ASSERT_TRUE(loaded_snapshot.has_value());
  ASSERT_EQ(loaded_snapshot->domain_count(), snapshot.domain_count());

  // 3. The pipeline on loaded data must equal the pipeline on in-memory
  //    data — the file formats are lossless for everything that matters.
  const auto corpus_memory = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto corpus_files = core::DualStackCorpus::build(*loaded_snapshot, rib);
  const auto pairs_memory = core::detect_sibling_prefixes(corpus_memory);
  const auto pairs_files = core::detect_sibling_prefixes(corpus_files);
  ASSERT_EQ(pairs_files, pairs_memory);

  // 4. Tune, publish, reload, diff — the release workflow.
  const core::SpTunerMs tuner(corpus_files, {.v4_threshold = 28, .v6_threshold = 96});
  const auto tuned = tuner.tune_all(pairs_files);
  ASSERT_TRUE(core::write_sibling_list(list_path, tuned.pairs));
  const auto reloaded = core::read_sibling_list(list_path);
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_EQ(reloaded->size(), tuned.pairs.size());
  for (std::size_t i = 0; i < reloaded->size(); ++i) {
    EXPECT_EQ((*reloaded)[i].v4, tuned.pairs[i].v4);
    EXPECT_EQ((*reloaded)[i].v6, tuned.pairs[i].v6);
    EXPECT_NEAR((*reloaded)[i].similarity, tuned.pairs[i].similarity, 1e-8);
  }
  const auto diff = core::diff_sibling_lists(*reloaded, tuned.pairs);
  EXPECT_TRUE(diff.empty());

  std::remove(mrt_path.c_str());
  std::remove(snapshot_path.c_str());
  std::remove(list_path.c_str());
}

// Tiny helper: mean of a vector (kept local to the test).
double analysis_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

TEST(IntegrationPipeline, TuningImprovesOrPreservesEveryMonth) {
  const synth::SyntheticInternet universe(tiny_config());
  for (int month = 0; month < universe.month_count(); ++month) {
    const auto corpus =
        core::DualStackCorpus::build(universe.snapshot_at(month), universe.rib());
    const auto pairs = core::detect_sibling_prefixes(corpus);
    if (pairs.empty()) continue;
    const core::SpTunerMs tuner(corpus, {});
    const auto tuned = tuner.tune_all(pairs);
    const auto before = analysis_mean(core::similarity_values(pairs));
    const auto after = analysis_mean(core::similarity_values(tuned.pairs));
    EXPECT_GE(after + 1e-9, before) << "month " << month;
  }
}

TEST(IntegrationPipeline, ReleaseDiffBetweenMonths) {
  const synth::SyntheticInternet universe(tiny_config());
  const auto corpus_old =
      core::DualStackCorpus::build(universe.snapshot_at(0), universe.rib());
  const auto corpus_new = core::DualStackCorpus::build(
      universe.snapshot_at(universe.month_count() - 1), universe.rib());
  const auto old_pairs = core::detect_sibling_prefixes(corpus_old);
  const auto new_pairs = core::detect_sibling_prefixes(corpus_new);

  const auto diff = core::diff_sibling_lists(old_pairs, new_pairs);
  EXPECT_EQ(diff.added.size() + diff.changed.size() + diff.unchanged.size(),
            new_pairs.size());
  EXPECT_EQ(diff.removed.size() + diff.changed.size() + diff.unchanged.size(),
            old_pairs.size());
  // Monthly churn exists but is not total.
  EXPECT_FALSE(diff.added.empty());
  EXPECT_FALSE(diff.unchanged.empty());
}

}  // namespace
}  // namespace sp
