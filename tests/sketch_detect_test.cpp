// The sketch↔exact identity harness (ISSUE 7 acceptance property): the
// sketch detection engine must produce *byte-identical* pair lists to the
// exact engine — similarity doubles compared at the bit level — on every
// corpus, metric, thread count and seed tested here. Also covers the
// strategy dispatch (core entry points reject Sketch; the sketch dispatch
// runs either engine), run counters, the SketchEstimator plugged into
// SP-Tuner (results unchanged, estimates within margin), and the synth
// `scale` knob the scale benchmarks build on.
#include "sketch/detect_sketch.h"

#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/detect.h"
#include "core/detect_parallel.h"
#include "core/sptuner.h"
#include "sketch/estimator.h"
#include "synth/universe.h"

namespace sp::sketch {
namespace {

using core::DetectOptions;
using core::DetectStrategy;
using core::DomainId;
using core::Metric;
using core::SetCorpus;
using core::SiblingPair;

Prefix p(const char* text) { return Prefix::must_parse(text); }

constexpr Metric kAllMetrics[] = {Metric::Jaccard, Metric::Dice, Metric::Overlap};
constexpr unsigned kThreadCounts[] = {1, 2, 8};

void expect_byte_identical(const std::vector<SiblingPair>& sketch,
                           const std::vector<SiblingPair>& exact) {
  ASSERT_EQ(sketch.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(sketch[i].v4, exact[i].v4) << "pair " << i;
    EXPECT_EQ(sketch[i].v6, exact[i].v6) << "pair " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sketch[i].similarity),
              std::bit_cast<std::uint64_t>(exact[i].similarity))
        << "pair " << i << " similarity " << sketch[i].similarity << " vs "
        << exact[i].similarity;
    EXPECT_EQ(sketch[i].shared_domains, exact[i].shared_domains) << "pair " << i;
    EXPECT_EQ(sketch[i].v4_domain_count, exact[i].v4_domain_count) << "pair " << i;
    EXPECT_EQ(sketch[i].v6_domain_count, exact[i].v6_domain_count) << "pair " << i;
  }
}

/// The same seeded random SetCorpus generator as the serial-vs-parallel
/// harness (core_detect_parallel_test.cpp): one-family elements, duplicate
/// observations, and shared element blocks as tie fodder.
SetCorpus random_corpus(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const int v4_count = 40 + static_cast<int>(rng() % 30);
  const int v6_count = 40 + static_cast<int>(rng() % 30);
  std::vector<Prefix> v4s;
  std::vector<Prefix> v6s;
  for (int i = 0; i < v4_count; ++i) {
    v4s.push_back(Prefix::of(
        IPAddress(IPv4Address::from_octets(10, static_cast<std::uint8_t>(i / 256),
                                           static_cast<std::uint8_t>(i % 256), 0)),
        24));
  }
  for (int i = 0; i < v6_count; ++i) {
    v6s.push_back(p(("2001:db8:" + std::to_string(i) + "::/48").c_str()));
  }

  SetCorpus corpus;
  std::uniform_int_distribution<int> v4_pick(0, v4_count - 1);
  std::uniform_int_distribution<int> v6_pick(0, v6_count - 1);
  std::uniform_int_distribution<int> spread(1, 4);
  const DomainId element_count = 150;
  for (DomainId element = 0; element < element_count; ++element) {
    const int mode = static_cast<int>(rng() % 12);
    const int k4 = mode == 0 ? 0 : spread(rng);
    const int k6 = mode == 1 ? 0 : spread(rng);
    for (int i = 0; i < k4; ++i) corpus.add(v4s[v4_pick(rng)], element);
    for (int i = 0; i < k6; ++i) corpus.add(v6s[v6_pick(rng)], element);
    if (mode == 2) {
      const Prefix target = v4s[v4_pick(rng)];
      corpus.add(target, element);
      corpus.add(target, element);
    }
  }
  for (DomainId element = 0; element < 6; ++element) {
    corpus.add(v6s[0], 1000 + element);
    corpus.add(v6s[1], 1000 + element);
    corpus.add(v4s[0], 1000 + element);
  }
  corpus.finalize();
  return corpus;
}

synth::SynthConfig small_config() {
  synth::SynthConfig config;
  config.organization_count = 120;
  config.months = 3;
  config.hg_prefix_scale = 0.01;
  config.probe_count = 50;
  return config;
}

class SketchDetectSeeds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SketchDetectSeeds, MatchesExactOnRandomSetCorpora) {
  const SetCorpus corpus = random_corpus(GetParam());
  for (const Metric metric : kAllMetrics) {
    const auto exact =
        sketch::detect_sibling_prefixes(corpus, {.metric = metric, .strategy = DetectStrategy::Exact});
    ASSERT_FALSE(exact.empty());
    for (const unsigned threads : kThreadCounts) {
      SketchStats stats;
      const auto sketched = sketch::detect_sibling_prefixes(
          corpus,
          {.metric = metric, .threads = threads, .strategy = DetectStrategy::Sketch},
          SketchParams{}, &stats);
      expect_byte_identical(sketched, exact);
      EXPECT_EQ(stats.sources_total, corpus.detect_index().v4.prefix_count() +
                                         corpus.detect_index().v6.prefix_count());
      if (metric != Metric::Jaccard) {
        // Non-Jaccard metrics route every source through the exact scan.
        EXPECT_EQ(stats.sources_fallback, stats.sources_total);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchDetectSeeds,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

TEST(SketchDetect, MatchesExactOnSyntheticDnsCorpus) {
  const synth::SyntheticInternet universe(small_config());
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());

  for (const Metric metric : kAllMetrics) {
    const auto exact = core::detect_sibling_prefixes(corpus, {.metric = metric});
    ASSERT_FALSE(exact.empty());
    for (const unsigned threads : kThreadCounts) {
      const auto sketched = sketch::detect_sibling_prefixes(
          corpus,
          {.metric = metric, .threads = threads, .strategy = DetectStrategy::Sketch});
      expect_byte_identical(sketched, exact);
    }
  }
}

TEST(SketchDetect, MatchesExactAcrossSketchParameterChoices) {
  // The identity must hold across the *guaranteed* parameter regime
  // (DESIGN.md §3.7: k and floor such that (1-floor)^k is negligible; the
  // margin covering the combined estimate error). Wider margins, larger k,
  // a different hash seed and a stricter floor all shift work between the
  // survivor and fallback paths without changing a byte of output.
  const SetCorpus corpus = random_corpus(42);
  const auto exact = sketch::detect_sibling_prefixes(corpus, {});
  for (const SketchParams params :
       {SketchParams{}, SketchParams{.k = 64, .margin = 0.5}, SketchParams{.k = 256},
        SketchParams{.seed = 0xDEADBEEFu}, SketchParams{.fallback_floor = 0.9}}) {
    const auto sketched = sketch::detect_sibling_prefixes(
        corpus, {.threads = 2, .strategy = DetectStrategy::Sketch}, params);
    expect_byte_identical(sketched, exact);
  }
}

TEST(SketchDetect, DispatchRunsExactEngineForExactStrategy) {
  const SetCorpus corpus = random_corpus(7);
  core::DetectStats exact_stats;
  const auto via_dispatch = sketch::detect_sibling_prefixes(
      corpus, {.threads = 2, .stats = &exact_stats, .strategy = DetectStrategy::Exact});
  const auto via_core = core::detect_sibling_prefixes(corpus, {.threads = 2});
  expect_byte_identical(via_dispatch, via_core);
  EXPECT_GT(exact_stats.prefixes_scanned, 0u);
}

TEST(SketchDetect, CoreEntryPointsRejectSketchStrategy) {
  const SetCorpus corpus = random_corpus(7);
  EXPECT_THROW((void)core::detect_sibling_prefixes(corpus, {.strategy = DetectStrategy::Sketch}),
               std::logic_error);
  const synth::SyntheticInternet universe(small_config());
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto dns = core::DualStackCorpus::build(snapshot, universe.rib());
  EXPECT_THROW((void)core::detect_sibling_prefixes(dns, {.strategy = DetectStrategy::Sketch}),
               std::logic_error);
}

TEST(SketchDetect, StatsAreCoherentAndErrorStaysWithinMargin) {
  const SetCorpus corpus = random_corpus(1337);
  SketchStats stats;
  core::DetectStats scan_stats;
  const SketchParams params;
  (void)sketch::detect_sibling_prefixes(
      corpus, {.threads = 1, .stats = &scan_stats, .strategy = DetectStrategy::Sketch},
      params, &stats);
  EXPECT_EQ(stats.sources_total, corpus.detect_index().v4.prefix_count() +
                                     corpus.detect_index().v6.prefix_count());
  EXPECT_LE(stats.sources_fallback, stats.sources_total);
  EXPECT_EQ(stats.sources_fallback, stats.fallback_no_candidates +
                                        stats.fallback_low_estimate + stats.fallback_low_exact);
  // The zero-false-negative argument assumes estimate error < margin; the
  // engine records the worst error it saw while verifying survivors.
  EXPECT_LT(stats.max_estimate_error, params.margin);
  EXPECT_GE(stats.signature_build_ms, 0.0);
  // options.stats receives the embedded scan counters.
  EXPECT_EQ(scan_stats.prefixes_scanned, stats.scan.prefixes_scanned);
}

TEST(SketchDetect, EmptyAndOneSidedCorpora) {
  SetCorpus empty;
  empty.finalize();
  EXPECT_TRUE(
      sketch::detect_sibling_prefixes(empty, {.strategy = DetectStrategy::Sketch}).empty());

  SetCorpus v4_only;
  v4_only.add(p("20.1.0.0/16"), 1);
  v4_only.finalize();
  EXPECT_TRUE(
      sketch::detect_sibling_prefixes(v4_only, {.strategy = DetectStrategy::Sketch}).empty());
}

TEST(SketchDetect, DetectorIsReusableAcrossCorpora) {
  const SetCorpus first = random_corpus(11);
  const SetCorpus second = random_corpus(22);
  SketchDetector detector({}, 4);
  expect_byte_identical(detector.detect(first.detect_index(), {}),
                        core::detect_sibling_prefixes(first, {}));
  expect_byte_identical(detector.detect(second.detect_index(), {}),
                        core::detect_sibling_prefixes(second, {}));
}

// --- SketchEstimator + SP-Tuner integration ---

TEST(SketchEstimator, ExactOnCorpusHostSets) {
  const synth::SyntheticInternet universe(small_config());
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const SketchEstimator estimator(corpus);
  EXPECT_GT(estimator.cached_signatures(), 0u);

  // Single-set estimates between cached host sets: exact whenever both
  // sets fit in k, within the margin always.
  std::size_t checked = 0;
  std::vector<const core::DomainSet*> hosts;
  for (const Family family : {Family::v4, Family::v6}) {
    for (const auto& [prefix, domains] : corpus.prefix_domains(family)) {
      for (const auto& host : corpus.hosts_of(prefix)) hosts.push_back(&host.domains);
    }
  }
  ASSERT_GT(hosts.size(), 1u);
  for (std::size_t i = 0; i + 1 < hosts.size() && checked < 200; i += 3, ++checked) {
    const core::DomainSet* a[] = {hosts[i]};
    const core::DomainSet* b[] = {hosts[i + 1]};
    const double est = estimator.estimate_union_jaccard(a, b);
    const double exact = core::jaccard(*hosts[i], *hosts[i + 1]);
    if (hosts[i]->size() <= estimator.params().k && hosts[i + 1]->size() <= estimator.params().k) {
      EXPECT_DOUBLE_EQ(est, exact);
    } else {
      EXPECT_NEAR(est, exact, estimator.params().margin);
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SketchEstimator, UnionEstimatesMatchUncachedSets) {
  // The same contents through the cache (corpus-owned sets) and the
  // on-the-fly path (local copies at different addresses) must estimate
  // identically: signatures are functions of contents, not addresses.
  const synth::SyntheticInternet universe(small_config());
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const SketchEstimator estimator(corpus);

  std::vector<const core::DomainSet*> cached;
  for (const auto& [prefix, domains] : corpus.prefix_domains(Family::v4)) {
    for (const auto& host : corpus.hosts_of(prefix)) cached.push_back(&host.domains);
    if (cached.size() >= 4) break;
  }
  ASSERT_GE(cached.size(), 4u);
  const std::vector<core::DomainSet> copies = {*cached[0], *cached[1], *cached[2], *cached[3]};
  const core::DomainSet* copy_ptrs[] = {&copies[0], &copies[1], &copies[2], &copies[3]};

  const core::DomainSet* a_cached[] = {cached[0], cached[1]};
  const core::DomainSet* b_cached[] = {cached[2], cached[3]};
  const core::DomainSet* a_fly[] = {copy_ptrs[0], copy_ptrs[1]};
  const core::DomainSet* b_fly[] = {copy_ptrs[2], copy_ptrs[3]};
  EXPECT_EQ(std::bit_cast<std::uint64_t>(estimator.estimate_union_jaccard(a_cached, b_cached)),
            std::bit_cast<std::uint64_t>(estimator.estimate_union_jaccard(a_fly, b_fly)));
}

TEST(SketchEstimator, TunerResultsUnchangedWithEstimatorFilter) {
  const synth::SyntheticInternet universe(small_config());
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus, {});
  ASSERT_FALSE(pairs.empty());
  const SketchEstimator estimator(corpus);

  {  // SP-Tuner-MS
    const core::SpTunerMs baseline(corpus);
    const core::SpTunerMs filtered(corpus, {.estimator = &estimator});
    const auto expected = baseline.tune_all(pairs);
    const auto actual = filtered.tune_all(pairs);
    EXPECT_EQ(actual.input_count, expected.input_count);
    EXPECT_EQ(actual.changed_count, expected.changed_count);
    expect_byte_identical(actual.pairs, expected.pairs);
    // And through the parallel path with the estimator shared across
    // threads (it must be safely readable concurrently).
    expect_byte_identical(filtered.tune_all_parallel(pairs, 4).pairs, expected.pairs);
  }
  {  // SP-Tuner-LS
    const core::SpTunerLs baseline(corpus, universe.rib());
    const core::SpTunerLs filtered(corpus, universe.rib(), {.estimator = &estimator});
    const auto expected = baseline.tune_all(pairs);
    const auto actual = filtered.tune_all(pairs);
    EXPECT_EQ(actual.changed_count, expected.changed_count);
    expect_byte_identical(actual.pairs, expected.pairs);
  }
}

// --- synth scale knob ---

TEST(SynthScale, ScaleMultipliesTheUniverse) {
  synth::SynthConfig base = small_config();
  synth::SynthConfig scaled = small_config();
  scaled.scale = 3;
  const synth::SyntheticInternet small(base);
  const synth::SyntheticInternet big(scaled);
  // Per-org domain counts scale exactly linearly; the monitoring domain is
  // a singleton identity (one domain across hundreds of prefixes) in every
  // universe, so it stays unscaled.
  EXPECT_EQ(big.domains().size(), (small.domains().size() - 1) * 3 + 1);
  // The scaled universe still resolves and detects.
  const auto snapshot = big.snapshot_at(big.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, big.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus, {});
  EXPECT_FALSE(pairs.empty());
}

TEST(SynthScale, ScaleOneIsTheDefaultUniverse) {
  synth::SynthConfig config = small_config();
  config.scale = 1;
  const synth::SyntheticInternet defaulted(small_config());
  const synth::SyntheticInternet explicit_one(config);
  EXPECT_EQ(defaulted.domains().size(), explicit_one.domains().size());
  const auto a = defaulted.snapshot_at(defaulted.month_count() - 1);
  const auto b = explicit_one.snapshot_at(explicit_one.month_count() - 1);
  const auto corpus_a = core::DualStackCorpus::build(a, defaulted.rib());
  const auto corpus_b = core::DualStackCorpus::build(b, explicit_one.rib());
  expect_byte_identical(core::detect_sibling_prefixes(corpus_a, {}),
                        core::detect_sibling_prefixes(corpus_b, {}));
}

TEST(SynthScale, SketchIdentityHoldsAtScale) {
  // The headline acceptance property exercised in the regime the sketch
  // engine exists for: a scaled universe with replicated CDN deployments.
  synth::SynthConfig config = small_config();
  config.scale = 3;
  const synth::SyntheticInternet universe(config);
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto exact = core::detect_sibling_prefixes(corpus, {});
  ASSERT_FALSE(exact.empty());
  SketchStats stats;
  const auto sketched = sketch::detect_sibling_prefixes(
      corpus, {.threads = 2, .strategy = DetectStrategy::Sketch}, SketchParams{}, &stats);
  expect_byte_identical(sketched, exact);
  EXPECT_GT(stats.sources_total, 0u);
}

}  // namespace
}  // namespace sp::sketch
