// sp_lint selftest: every rule fires on its seeded fixture with the
// exact file:line diagnostics, every suppression fixture silences it
// with the written reason, and the real tree lints clean — the same
// assertion tier1.sh stage 4 and the CI lint job make via the CLI.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/rules.h"

namespace {

using sp::lint::Finding;

const std::string kFixtureDir = std::string(SP_SOURCE_DIR) + "/tests/lint_fixtures/";

/// Lints one fixture; the label keeps fixture paths stable in findings
/// (and, for serve/, inside the path-scoped rules).
std::vector<Finding> lint_fixture(const std::string& name) {
  return sp::lint::lint_file(kFixtureDir + name, name);
}

struct Expected {
  std::size_t line;
  const char* rule;
};

void expect_findings(const std::vector<Finding>& found, const std::vector<Expected>& expected) {
  ASSERT_EQ(found.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(found[i].line, expected[i].line) << found[i].message;
    EXPECT_EQ(found[i].rule, expected[i].rule);
    EXPECT_FALSE(found[i].suppressed) << found[i].file << ":" << found[i].line;
  }
}

TEST(LintSelftest, DeterminismFixtureFires) {
  expect_findings(lint_fixture("determinism_bad.cpp"), {{9, "determinism"},
                                                        {10, "determinism"},
                                                        {11, "determinism"},
                                                        {13, "determinism"},
                                                        {15, "determinism"}});
}

TEST(LintSelftest, DeterminismSuppressionSilences) {
  const auto found = lint_fixture("determinism_ok.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 6u);
  EXPECT_EQ(found[0].rule, "determinism");
  EXPECT_TRUE(found[0].suppressed);
  EXPECT_EQ(found[0].suppress_reason, "fixture: documents the suppression syntax");
}

TEST(LintSelftest, AtomicsFixtureFires) {
  expect_findings(lint_fixture("atomics_bad.cpp"), {{7, "atomics"}, {10, "atomics"}});
}

TEST(LintSelftest, AtomicsSuppressionSilences) {
  const auto found = lint_fixture("atomics_ok.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 7u);
  EXPECT_TRUE(found[0].suppressed);
  EXPECT_EQ(found[0].suppress_reason, "fixture: counter read after the pool joins");
}

TEST(LintSelftest, MmapFixtureFires) {
  const auto found = lint_fixture("serve/mmap_bad.cpp");
  expect_findings(found, {{10, "mmap-safety"}, {13, "mmap-safety"}, {17, "mmap-safety"}});
  EXPECT_NE(found[0].message.find("const_cast"), std::string::npos);
  EXPECT_NE(found[1].message.find("no bounds check"), std::string::npos);
  EXPECT_NE(found[2].message.find("non-const pointer"), std::string::npos);
}

TEST(LintSelftest, MmapBoundsCheckAndSuppressionPass) {
  const auto found = lint_fixture("serve/mmap_ok.cpp");
  ASSERT_EQ(found.size(), 1u);  // only the suppressed release const_cast
  EXPECT_EQ(found[0].line, 18u);
  EXPECT_TRUE(found[0].suppressed);
  EXPECT_EQ(found[0].suppress_reason, "fixture: munmap-style release, not a write");
}

TEST(LintSelftest, MmapRulesAreScopedToServe) {
  // The same violations outside a serve/ directory are not mmap findings.
  const auto found = sp::lint::lint_file(kFixtureDir + "serve/mmap_bad.cpp", "mmap_bad.cpp");
  EXPECT_TRUE(found.empty());
}

TEST(LintSelftest, HeaderFixtureFires) {
  expect_findings(lint_fixture("header_bad.h"),
                  {{5, "header-hygiene"}, {7, "header-hygiene"}});
}

TEST(LintSelftest, HeaderSuppressionSilences) {
  const auto found = lint_fixture("header_ok.h");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 5u);
  EXPECT_TRUE(found[0].suppressed);
}

TEST(LintSelftest, LockOrderFixtureFires) {
  expect_findings(lint_fixture("lock_bad.h"), {{7, "lock-order"}});
}

TEST(LintSelftest, LockOrderAnnotationAndSuppressionPass) {
  const auto found = lint_fixture("lock_ok.h");
  ASSERT_EQ(found.size(), 1u);  // the annotated member is clean; Exempt is suppressed
  EXPECT_EQ(found[0].line, 13u);
  EXPECT_TRUE(found[0].suppressed);
}

TEST(LintSelftest, EmptyReasonIsItselfAFinding) {
  const auto found = lint_fixture("suppression_bad.cpp");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].line, 7u);
  EXPECT_EQ(found[0].rule, "suppression");
  EXPECT_FALSE(found[0].suppressed);
  EXPECT_EQ(found[1].line, 8u);
  EXPECT_EQ(found[1].rule, "atomics");
  EXPECT_FALSE(found[1].suppressed);  // a reasonless suppression silences nothing
}

TEST(LintSelftest, MissingFileIsAnIoFinding) {
  const auto found = sp::lint::lint_file(kFixtureDir + "does_not_exist.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "io");
}

// The acceptance gate: the real tree has zero unsuppressed findings, and
// every suppression in it carries a reason.
TEST(LintSelftest, RealTreeLintsClean) {
  std::vector<std::string> roots;
  for (const std::string& root : sp::lint::default_roots()) {
    roots.push_back(std::string(SP_SOURCE_DIR) + "/" + root);
  }
  const sp::lint::LintReport report = sp::lint::lint_paths(roots);
  EXPECT_GT(report.files_scanned, 100u);  // the walk found the real tree
  for (const Finding& finding : report.findings) {
    EXPECT_TRUE(finding.suppressed) << finding.file << ":" << finding.line << " ["
                                    << finding.rule << "] " << finding.message;
    if (finding.suppressed) EXPECT_FALSE(finding.suppress_reason.empty());
  }
}

TEST(LintSelftest, FixturesAreExcludedFromTheWalk) {
  EXPECT_FALSE(sp::lint::lintable_path("tests/lint_fixtures/determinism_bad.cpp"));
  EXPECT_FALSE(sp::lint::lintable_path("build/CMakeFiles/probe.cpp"));
  EXPECT_TRUE(sp::lint::lintable_path("tests/lint_selftest_test.cpp"));
  EXPECT_TRUE(sp::lint::lintable_path("src/serve/sibdb.cpp"));
  EXPECT_FALSE(sp::lint::lintable_path("docs/notes.md"));
}

TEST(LintSelftest, JsonReportShape) {
  const sp::lint::LintReport report =
      sp::lint::lint_paths({kFixtureDir + "suppression_bad.cpp"});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"suppression\""), std::string::npos);
}

}  // namespace
