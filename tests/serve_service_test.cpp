// Tests for SiblingService: counters, reload semantics, and the RCU
// hot-reload race — one thread batching queries while another swaps
// snapshots. Run under TSan by scripts/tier1.sh stage 2.
//
// sp-lint-file: atomics-ok(test flags and counters only gate loop exits
// or are read after joins; no cross-thread data is published through
// them)
#include "serve/service.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace sp::serve {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

core::SiblingPair make_pair(const char* v4, const char* v6, double similarity) {
  core::SiblingPair pair;
  pair.v4 = p(v4);
  pair.v6 = p(v6);
  pair.similarity = similarity;
  pair.shared_domains = 1;
  pair.v4_domain_count = 1;
  pair.v6_domain_count = 1;
  return pair;
}

// A snapshot whose every record carries `similarity`, so any answer
// reveals which snapshot produced it.
std::string write_tagged_db(const std::string& name, double similarity) {
  std::vector<core::SiblingPair> pairs = {
      make_pair("20.1.0.0/16", "2620:100::/32", similarity),
      make_pair("20.1.2.0/24", "2620:100:1::/48", similarity),
      make_pair("198.51.100.0/24", "2001:db8:51::/48", similarity),
  };
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(write_sibdb(path, pairs));
  return path;
}

TEST(ServeService, EmptyServiceMissesEverything) {
  SiblingService service(1);
  EXPECT_EQ(service.snapshot(), nullptr);
  EXPECT_FALSE(service.query(IPAddress(*IPv4Address::from_string("20.1.2.3"))).has_value());
  const auto batch =
      service.query_many(std::vector<IPAddress>{IPAddress(*IPv4Address::from_string("20.1.2.3"))});
  EXPECT_EQ(batch.snapshot, nullptr);
  ASSERT_EQ(batch.answers.size(), 1u);
  EXPECT_FALSE(batch.answers[0].has_value());
  const auto stats = service.stats();
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ServeService, LoadFailureKeepsCurrentSnapshot) {
  SiblingService service(1);
  const std::string path = write_tagged_db("sp_service_keep.sibdb", 0.5);
  ASSERT_TRUE(service.load(path));
  const auto before = service.snapshot();
  ASSERT_NE(before, nullptr);

  std::string error;
  EXPECT_FALSE(service.load(::testing::TempDir() + "/sp_service_missing.sibdb", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(service.snapshot(), before);  // old snapshot still serving
  EXPECT_EQ(service.stats().reloads, 1u);
}

TEST(ServeService, CountersTrackQueriesAndBatches) {
  SiblingService service(1);
  ASSERT_TRUE(service.load(write_tagged_db("sp_service_counters.sibdb", 0.5)));

  EXPECT_TRUE(service.query(IPAddress(*IPv4Address::from_string("20.1.2.3"))).has_value());
  EXPECT_FALSE(service.query(IPAddress(*IPv4Address::from_string("21.0.0.1"))).has_value());
  EXPECT_TRUE(service.query(p("20.1.0.0/16")).has_value());

  std::vector<IPAddress> batch = {
      IPAddress(*IPv4Address::from_string("20.1.2.3")),
      IPAddress(*IPv4Address::from_string("21.0.0.1")),
      *IPAddress::from_string("2620:100:1::5"),
  };
  const auto result = service.query_many(batch);
  ASSERT_NE(result.snapshot, nullptr);
  ASSERT_EQ(result.answers.size(), 3u);
  EXPECT_TRUE(result.answers[0].has_value());
  EXPECT_FALSE(result.answers[1].has_value());
  EXPECT_TRUE(result.answers[2].has_value());

  const auto stats = service.stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_queries, 3u);
  EXPECT_EQ(stats.batch_hits, 2u);
}

TEST(ServeService, StatsReportLatencyQuantilesFromHistograms) {
  SiblingService service(1);
  ASSERT_TRUE(service.load(write_tagged_db("sp_service_quantiles.sibdb", 0.5)));
  for (int i = 0; i < 50; ++i) {
    (void)service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  }
  const std::vector<IPAddress> batch(16, IPAddress(*IPv4Address::from_string("20.1.2.3")));
  for (int i = 0; i < 10; ++i) (void)service.query_many(batch);

  // The quantiles come from the process-wide serve.query_us /
  // serve.batch_us log₂ histograms (shared across service instances in
  // this binary), so assertions stay on invariants: samples exist and
  // p50 <= p90 <= p99 <= max.
  const auto stats = service.stats();
  EXPECT_GT(stats.query_max_us + 1, 0u);  // max recorded (possibly 0 on a fast box)
  EXPECT_LE(stats.query_p50_us, stats.query_p90_us);
  EXPECT_LE(stats.query_p90_us, stats.query_p99_us);
  EXPECT_LE(stats.query_p99_us, static_cast<double>(stats.query_max_us));
  EXPECT_LE(stats.batch_p50_us, stats.batch_p90_us);
  EXPECT_LE(stats.batch_p90_us, stats.batch_p99_us);
  EXPECT_LE(stats.batch_p99_us, static_cast<double>(stats.batch_max_us));
  const auto snapshot =
      obs::HistogramSnapshot::of(obs::MetricsRegistry::global().histogram("serve.query_us"));
  EXPECT_GE(snapshot.count, 50u);
}

TEST(ServeService, StatsReportPerGenerationHitRates) {
  SiblingService service(1);
  const std::string a = write_tagged_db("sp_service_genstats_a.sibdb", 0.25);
  const std::string b = write_tagged_db("sp_service_genstats_b.sibdb", 0.75);

  ASSERT_TRUE(service.load(a));
  // Generation 1: 2 hits, 1 miss (single) + a batch of 1 hit, 1 miss.
  (void)service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  (void)service.query(IPAddress(*IPv4Address::from_string("20.1.0.9")));
  (void)service.query(IPAddress(*IPv4Address::from_string("21.0.0.1")));
  (void)service.query_many(std::vector<IPAddress>{
      IPAddress(*IPv4Address::from_string("20.1.2.3")),
      IPAddress(*IPv4Address::from_string("21.0.0.1"))});

  ASSERT_TRUE(service.load(b));
  // Generation 2: 1 hit.
  (void)service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));

  const auto stats = service.stats();
  ASSERT_EQ(stats.generations.size(), 2u);  // retired gen 1, live gen 2
  const GenerationStats& gen1 = stats.generations[0];
  EXPECT_EQ(gen1.generation, 1u);
  EXPECT_EQ(gen1.queries, 5u);  // 3 singles + 2 batch members
  EXPECT_EQ(gen1.hits, 3u);
  EXPECT_DOUBLE_EQ(gen1.hit_rate(), 3.0 / 5.0);
  const GenerationStats& gen2 = stats.generations[1];
  EXPECT_EQ(gen2.generation, 2u);
  EXPECT_EQ(gen2.queries, 1u);
  EXPECT_EQ(gen2.hits, 1u);
  EXPECT_DOUBLE_EQ(gen2.hit_rate(), 1.0);

  // Before any load there are no generations to report.
  EXPECT_TRUE(SiblingService(1).stats().generations.empty());
}

// Reload churn must not grow memory: at most kRetiredGenerationCap
// retired generations are kept individually, older tallies fold into
// the cumulative `compacted` bucket, and nothing served ever drops out
// of the totals.
TEST(ServeService, ReloadChurnBoundsRetiredGenerations) {
  SiblingService service(1);
  const std::string path = write_tagged_db("sp_service_churn.sibdb", 0.5);
  const IPAddress covered(*IPv4Address::from_string("20.1.2.3"));

  constexpr std::uint64_t kReloads = 1000;
  for (std::uint64_t i = 0; i < kReloads; ++i) {
    ASSERT_TRUE(service.load(path));
    EXPECT_TRUE(service.query(covered).has_value());  // one hit per generation
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.reloads, kReloads);
  EXPECT_EQ(stats.generation, kReloads);

  // Bounded: the cap's worth of individual retirees plus the live one.
  ASSERT_EQ(stats.generations.size(), kRetiredGenerationCap + 1);
  // The window holds the newest generations, contiguous up to the live one.
  for (std::size_t i = 0; i < stats.generations.size(); ++i) {
    EXPECT_EQ(stats.generations[i].generation,
              kReloads - stats.generations.size() + 1 + i);
  }

  // Everything older was folded into the aggregate bucket...
  EXPECT_EQ(stats.compacted_generations, kReloads - 1 - kRetiredGenerationCap);
  EXPECT_EQ(stats.compacted.generation, 0u);  // an aggregate, not a generation

  // ...and the invariant holds: compacted + generations covers every
  // query this service ever served.
  std::uint64_t queries = stats.compacted.queries;
  std::uint64_t hits = stats.compacted.hits;
  for (const GenerationStats& gen : stats.generations) {
    queries += gen.queries;
    hits += gen.hits;
  }
  EXPECT_EQ(queries, kReloads);
  EXPECT_EQ(hits, kReloads);
}

TEST(ServeService, ReloadBumpsGeneration) {
  SiblingService service(1);
  const std::string a = write_tagged_db("sp_service_gen_a.sibdb", 0.25);
  const std::string b = write_tagged_db("sp_service_gen_b.sibdb", 0.75);
  ASSERT_TRUE(service.load(a));
  EXPECT_EQ(service.snapshot()->generation, 1u);
  const auto hit_a = service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  ASSERT_TRUE(hit_a.has_value());
  EXPECT_EQ(hit_a->similarity, 0.25);

  ASSERT_TRUE(service.load(b));
  EXPECT_EQ(service.snapshot()->generation, 2u);
  EXPECT_EQ(service.snapshot()->path, b);
  const auto hit_b = service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  ASSERT_TRUE(hit_b.has_value());
  EXPECT_EQ(hit_b->similarity, 0.75);
  EXPECT_EQ(service.stats().reloads, 2u);
}

// The bare-RELOAD path: the publisher (sp_pipeline) replaced the .sibdb
// in place; reload() re-reads the current snapshot's own file.
TEST(ServeService, ReloadRereadsTheCurrentSnapshotsFile) {
  SiblingService service(1);
  std::string error;
  EXPECT_FALSE(service.reload(&error));  // nothing loaded yet
  EXPECT_FALSE(error.empty());

  const std::string path = write_tagged_db("sp_service_inplace.sibdb", 0.25);
  ASSERT_TRUE(service.load(path));
  const auto before = service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->similarity, 0.25);

  // Replace the file in place (same path, new content), then bare-reload.
  EXPECT_EQ(write_tagged_db("sp_service_inplace.sibdb", 0.75), path);
  ASSERT_TRUE(service.reload(&error)) << error;
  EXPECT_EQ(service.snapshot()->path, path);
  EXPECT_EQ(service.snapshot()->generation, 2u);
  const auto after = service.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->similarity, 0.75);

  // A failed reload (file gone) keeps the current snapshot serving.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  EXPECT_FALSE(service.reload(&error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(service.snapshot()->generation, 2u);
  EXPECT_TRUE(service.query(IPAddress(*IPv4Address::from_string("20.1.2.3"))).has_value());
}

// The hot-reload race the RCU design exists for: a reader thread issuing
// query_many in a tight loop while a writer thread swaps snapshots
// repeatedly. TSan must see no race, and every batch must be internally
// consistent — all answers from exactly the snapshot the batch pinned,
// never torn across two generations.
TEST(ServeService, HotReloadUnderLoadNeverTearsABatch) {
  SiblingService service(2);
  const std::string a = write_tagged_db("sp_service_race_a.sibdb", 0.25);
  const std::string b = write_tagged_db("sp_service_race_b.sibdb", 0.75);
  ASSERT_TRUE(service.load(a));

  // All probes hit, so every answer carries the snapshot tag.
  std::vector<IPAddress> probes;
  for (int i = 0; i < 32; ++i) {
    probes.emplace_back(*IPv4Address::from_string("20.1.2." + std::to_string(i)));
    probes.emplace_back(*IPAddress::from_string("2620:100:1::" + std::to_string(i + 1)));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches_checked{0};
  std::atomic<bool> torn{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed) ||
           batches_checked.load(std::memory_order_relaxed) == 0) {
      const auto result = service.query_many(probes);
      if (result.snapshot == nullptr) continue;
      // The tag every answer must carry, per the pinned snapshot.
      const double expected = result.snapshot->db.similarity(0);
      for (std::size_t i = 0; i < result.answers.size(); ++i) {
        if (!result.answers[i].has_value() || result.answers[i]->similarity != expected) {
          torn.store(true);
          return;
        }
      }
      batches_checked.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::thread writer([&] {
    for (int swap = 0; swap < 60; ++swap) {
      ASSERT_TRUE(service.load(swap % 2 == 0 ? b : a));
    }
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  reader.join();
  EXPECT_FALSE(torn.load());
  EXPECT_GT(batches_checked.load(), 0u);
  EXPECT_EQ(service.stats().reloads, 61u);
  EXPECT_EQ(service.snapshot()->generation, 61u);
}

}  // namespace
}  // namespace sp::serve
