// Tests for corpus construction (steps 1-2) and sibling detection
// (steps 3-4) on hand-built scenarios.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/detect.h"
#include "test_fixtures.h"

namespace sp::core {
namespace {

using testsupport::ScenarioBuilder;

Prefix p(const char* text) { return Prefix::must_parse(text); }

// One organization, one prefix per family, three dual-stack domains.
ScenarioBuilder perfect_match_scenario() {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 65001).announce("2620:100::/48", 65101);
  builder.host("a.example.org", {"20.1.1.10"}, {"2620:100::10"});
  builder.host("b.example.org", {"20.1.1.11"}, {"2620:100::11"});
  builder.host("c.example.org", {"20.1.1.12"}, {"2620:100::12"});
  return builder;
}

TEST(DualStackCorpus, BuildsPrefixDomainIndexes) {
  const auto corpus = perfect_match_scenario().corpus();
  EXPECT_EQ(corpus.ds_domain_count(), 3u);
  EXPECT_EQ(corpus.stats().v4_prefixes, 1u);
  EXPECT_EQ(corpus.stats().v6_prefixes, 1u);
  EXPECT_EQ(corpus.stats().discarded_reserved, 0u);
  EXPECT_EQ(corpus.stats().unmapped_addresses, 0u);

  const DomainSet* v4_domains = corpus.domains_of(p("20.1.1.0/24"));
  ASSERT_NE(v4_domains, nullptr);
  EXPECT_EQ(v4_domains->size(), 3u);
  EXPECT_EQ(corpus.domains_of(p("20.1.2.0/24")), nullptr);
}

TEST(DualStackCorpus, OnlyDualStackDomainsCount) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 65001).announce("2620:100::/48", 65101);
  builder.host("ds.example.org", {"20.1.1.10"}, {"2620:100::10"});
  builder.host("v4only.example.org", {"20.1.1.11"}, {});
  builder.host("v6only.example.org", {}, {"2620:100::11"});
  const auto corpus = builder.corpus();
  EXPECT_EQ(corpus.ds_domain_count(), 1u);
  EXPECT_EQ(corpus.domains_of(p("20.1.1.0/24"))->size(), 1u);
}

TEST(DualStackCorpus, CnameTargetsCollapseToOneIdentity) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 65001).announce("2620:100::/48", 65101);
  builder.host_as("www.shop-a.com", "edge.cdn.net", {"20.1.1.10"}, {"2620:100::10"});
  builder.host_as("www.shop-b.com", "edge.cdn.net", {"20.1.1.10"}, {"2620:100::10"});
  const auto corpus = builder.corpus();
  // Two queried domains, one response identity.
  EXPECT_EQ(corpus.stats().snapshot_domains, 2u);
  EXPECT_EQ(corpus.ds_domain_count(), 1u);
}

TEST(DualStackCorpus, ReservedAddressesAreDiscarded) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 65001).announce("2620:100::/48", 65101);
  // 192.168/16 and 2001:db8::/32 must be dropped even if a RIB route
  // existed; the remaining addresses keep the domain dual-stack.
  builder.announce("192.168.0.0/16", 65009);
  builder.host("d.example.org", {"20.1.1.10", "192.168.1.1"},
               {"2620:100::10", "2001:db8::1"});
  const auto corpus = builder.corpus();
  EXPECT_EQ(corpus.stats().discarded_reserved, 2u);
  EXPECT_EQ(corpus.ds_domain_count(), 1u);
  EXPECT_EQ(corpus.stats().v4_prefixes, 1u);
  EXPECT_EQ(corpus.stats().v6_prefixes, 1u);
}

TEST(DualStackCorpus, UnmappedAddressesAreCounted) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 65001).announce("2620:100::/48", 65101);
  builder.host("d.example.org", {"20.1.1.10", "99.99.99.99"}, {"2620:100::10"});
  const auto corpus = builder.corpus();
  EXPECT_EQ(corpus.stats().unmapped_addresses, 1u);
  EXPECT_EQ(corpus.stats().v4_prefixes, 1u);
}

TEST(DualStackCorpus, AddressesMapToLongestMatchPrefix) {
  ScenarioBuilder builder;
  builder.announce("20.0.0.0/8", 65001).announce("20.1.1.0/24", 65002);
  builder.announce("2620:100::/32", 65101);
  builder.host("specific.example.org", {"20.1.1.10"}, {"2620:100::10"});
  builder.host("broad.example.org", {"20.200.0.10"}, {"2620:100::11"});
  const auto corpus = builder.corpus();
  ASSERT_NE(corpus.domains_of(p("20.1.1.0/24")), nullptr);
  ASSERT_NE(corpus.domains_of(p("20.0.0.0/8")), nullptr);
  EXPECT_EQ(corpus.domains_of(p("20.1.1.0/24"))->size(), 1u);
  EXPECT_EQ(corpus.domains_of(p("20.0.0.0/8"))->size(), 1u);
}

TEST(DualStackCorpus, HostsOfExcludesNestedAnnouncements) {
  ScenarioBuilder builder;
  builder.announce("20.0.0.0/8", 65001).announce("20.1.1.0/24", 65002);
  builder.announce("2620:100::/32", 65101);
  builder.host("specific.example.org", {"20.1.1.10"}, {"2620:100::10"});
  builder.host("broad.example.org", {"20.200.0.10"}, {"2620:100::11"});
  const auto corpus = builder.corpus();
  EXPECT_EQ(corpus.hosts_of(p("20.0.0.0/8")).size(), 1u);
  EXPECT_EQ(corpus.hosts_of(p("20.1.1.0/24")).size(), 1u);
  EXPECT_TRUE(corpus.hosts_of(p("21.0.0.0/8")).empty());
}

TEST(DualStackCorpus, DomainsWithinUsesHostGranularity) {
  const auto corpus = perfect_match_scenario().corpus();
  EXPECT_EQ(corpus.domains_within(p("20.1.1.0/24")).size(), 3u);
  EXPECT_EQ(corpus.domains_within(p("20.1.1.8/29")).size(), 3u);  // .10-.12
  EXPECT_EQ(corpus.domains_within(p("20.1.1.10/32")).size(), 1u);
  EXPECT_TRUE(corpus.domains_within(p("20.1.1.128/25")).empty());
}

TEST(DetectSiblings, PerfectMatchPair) {
  const auto corpus = perfect_match_scenario().corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].v4, p("20.1.1.0/24"));
  EXPECT_EQ(pairs[0].v6, p("2620:100::/48"));
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
  EXPECT_EQ(pairs[0].shared_domains, 3u);
  EXPECT_EQ(pairs[0].v4_domain_count, 3u);
  EXPECT_EQ(pairs[0].v6_domain_count, 3u);
}

TEST(DetectSiblings, BestMatchWinsPerPrefix) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("2620:100::/48", 2).announce("2620:200::/48", 3);
  // v4 prefix hosts d1..d3; one v6 prefix hosts d1,d2, the other only d3
  // plus an unrelated domain d4 (hosted on another v4 prefix).
  builder.announce("20.9.9.0/24", 4);
  builder.host("d1.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("d2.example.org", {"20.1.1.2"}, {"2620:100::2"});
  builder.host("d3.example.org", {"20.1.1.3"}, {"2620:200::3"});
  builder.host("d4.example.org", {"20.9.9.4"}, {"2620:200::4"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);

  // v4 20.1.1.0/24 (d1,d2,d3): jaccard with 2620:100 (d1,d2) = 2/3,
  // with 2620:200 (d3,d4) = 1/4 → best is 2620:100.
  // v6 2620:200 (d3,d4): best v4 counterpart: 20.1.1.0/24 → 1/4 vs
  // 20.9.9.0/24 → 1/4... wait: 20.9.9.0/24 hosts only d4 → jaccard 1/2.
  // v6 2620:100 best is 20.1.1.0/24 (2/3).
  const auto find_pair = [&pairs](const char* v4, const char* v6) {
    const auto it = std::find_if(pairs.begin(), pairs.end(), [&](const SiblingPair& pair) {
      return pair.v4 == Prefix::must_parse(v4) && pair.v6 == Prefix::must_parse(v6);
    });
    return it == pairs.end() ? nullptr : &*it;
  };

  const SiblingPair* main_pair = find_pair("20.1.1.0/24", "2620:100::/48");
  ASSERT_NE(main_pair, nullptr);
  EXPECT_DOUBLE_EQ(main_pair->similarity, 2.0 / 3.0);

  const SiblingPair* d4_pair = find_pair("20.9.9.0/24", "2620:200::/48");
  ASSERT_NE(d4_pair, nullptr);
  EXPECT_DOUBLE_EQ(d4_pair->similarity, 1.0 / 2.0);

  // The dominated candidate (20.1.1.0/24, 2620:200::/48) must NOT appear:
  // it is the best match for neither side.
  EXPECT_EQ(find_pair("20.1.1.0/24", "2620:200::/48"), nullptr);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(DetectSiblings, TiesAreKept) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("2620:100::/48", 2).announce("2620:200::/48", 3);
  // The single domain resolves to one v4 prefix and two v6 prefixes:
  // both v6 prefixes tie at jaccard 1.
  builder.host("only.example.org", {"20.1.1.1"}, {"2620:100::1", "2620:200::1"});
  const auto pairs = detect_sibling_prefixes(builder.corpus());
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
  EXPECT_DOUBLE_EQ(pairs[1].similarity, 1.0);
}

TEST(DetectSiblings, UnionOfBothDirections) {
  ScenarioBuilder builder;
  builder.announce("20.1.0.0/24", 1).announce("20.2.0.0/24", 2).announce("2620:100::/48", 3);
  // v6 prefix hosts d1,d2; d1's v4 is on prefix A, d2's on prefix B.
  // A's best match is the v6 prefix (1/2); B's best match is the same v6
  // prefix (1/2); the v6 prefix ties between A and B (1/2 both). All
  // surviving pairs come from some direction's best match.
  builder.host("d1.example.org", {"20.1.0.1"}, {"2620:100::1"});
  builder.host("d2.example.org", {"20.2.0.2"}, {"2620:100::2"});
  const auto pairs = detect_sibling_prefixes(builder.corpus());
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(unique_prefix_count(pairs, Family::v4), 2u);
  EXPECT_EQ(unique_prefix_count(pairs, Family::v6), 1u);
  for (const auto& pair : pairs) EXPECT_DOUBLE_EQ(pair.similarity, 0.5);
}

TEST(DetectSiblings, DiceAndOverlapMetricsSupported) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("2620:100::/48", 2);
  builder.host("d1.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("d2.example.org", {"20.1.1.2"}, {"2620:100::2"});
  builder.host("d3.example.org", {"20.1.1.3"}, {});  // not DS
  const auto corpus = builder.corpus();

  const auto jaccard_pairs = detect_sibling_prefixes(corpus, {Metric::Jaccard});
  const auto dice_pairs = detect_sibling_prefixes(corpus, {Metric::Dice});
  const auto overlap_pairs = detect_sibling_prefixes(corpus, {Metric::Overlap});
  ASSERT_EQ(jaccard_pairs.size(), 1u);
  ASSERT_EQ(dice_pairs.size(), 1u);
  ASSERT_EQ(overlap_pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(jaccard_pairs[0].similarity, 1.0);
  EXPECT_DOUBLE_EQ(overlap_pairs[0].similarity, 1.0);
}

TEST(DetectSiblings, EmptyCorpusYieldsNoPairs) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1);
  builder.host("v4only.example.org", {"20.1.1.1"}, {});
  EXPECT_TRUE(detect_sibling_prefixes(builder.corpus()).empty());
}

TEST(DetectSiblings, SimilarityValuesHelper) {
  const auto pairs = detect_sibling_prefixes(perfect_match_scenario().corpus());
  const auto values = similarity_values(pairs);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
}

}  // namespace
}  // namespace sp::core
