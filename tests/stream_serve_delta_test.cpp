// Delta hot-reload through the serving stack: apply_delta_and_reload
// patches the currently served snapshot with an .spdl log and swaps the
// result in (RCU — in-flight queries keep their generation), answering
// queries identically to a service that loaded the target snapshot
// directly. The concurrency test drives queries from several threads
// across repeated delta reloads; it is part of the TSan tier-1 stage.
#include "stream/reload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "stream/spdl.h"

namespace sp::stream {
namespace {

using core::SiblingPair;

Prefix p(const char* text) { return Prefix::must_parse(text); }

SiblingPair make(const char* v4, const char* v6, double similarity, std::uint32_t shared) {
  SiblingPair pair;
  pair.v4 = p(v4);
  pair.v6 = p(v6);
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = shared + 1;
  pair.v6_domain_count = shared + 2;
  return pair;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<SiblingPair> base_list() {
  return {
      make("20.1.0.0/16", "2620:100::/48", 1.0, 3),
      make("20.3.0.0/16", "2620:300::/48", 0.6, 1),
  };
}

std::vector<SiblingPair> target_list() {
  return {
      make("20.1.0.0/16", "2620:100::/48", 0.9, 2),   // changed
      make("20.9.0.0/16", "2620:900::/48", 0.7, 5),   // added (20.3 removed)
  };
}

/// Writes base/target snapshots plus the forward (base→target) and
/// backward (target→base) delta logs into `dir`.
struct Fixture {
  std::string base_path;
  std::string forward_spdl;
  std::string backward_spdl;
};

Fixture make_fixture(const std::string& dir) {
  Fixture fx;
  fx.base_path = dir + "/base.sibdb";
  const std::string target_path = dir + "/target.sibdb";
  EXPECT_TRUE(serve::write_sibdb(fx.base_path, base_list(), "base"));
  EXPECT_TRUE(serve::write_sibdb(target_path, target_list(), "target"));
  const auto base = serve::SiblingDB::load(fx.base_path);
  const auto target = serve::SiblingDB::load(target_path);
  EXPECT_TRUE(base.has_value());
  EXPECT_TRUE(target.has_value());
  const auto forward = diff_sibdb(*base, *target);
  const auto backward = diff_sibdb(*target, *base);
  EXPECT_TRUE(forward.has_value());
  EXPECT_TRUE(backward.has_value());
  fx.forward_spdl = dir + "/forward.spdl";
  fx.backward_spdl = dir + "/backward.spdl";
  EXPECT_TRUE(write_spdl(fx.forward_spdl, *forward));
  EXPECT_TRUE(write_spdl(fx.backward_spdl, *backward));
  return fx;
}

TEST(StreamServeDelta, ReloadFailsWithoutABaseSnapshot) {
  const std::string dir = fresh_dir("serve_delta_nobase");
  const Fixture fx = make_fixture(dir);
  serve::SiblingService service;
  std::string error;
  EXPECT_FALSE(apply_delta_and_reload(service, fx.forward_spdl, &error));
  EXPECT_NE(error.find("no snapshot"), std::string::npos) << error;
}

TEST(StreamServeDelta, DeltaReloadMatchesDirectLoadOfTarget) {
  const std::string dir = fresh_dir("serve_delta_match");
  const Fixture fx = make_fixture(dir);

  serve::SiblingService service;
  std::string error;
  ASSERT_TRUE(service.load(fx.base_path, &error)) << error;
  const std::uint64_t generation_before = service.stats().generation;
  ASSERT_TRUE(apply_delta_and_reload(service, fx.forward_spdl, &error)) << error;
  EXPECT_GT(service.stats().generation, generation_before);

  // The patched snapshot lands next to the delta log.
  const std::string patched = spdl_result_path(fx.forward_spdl);
  EXPECT_TRUE(std::filesystem::exists(patched));

  serve::SiblingService direct;
  ASSERT_TRUE(direct.load(dir + "/target.sibdb", &error)) << error;

  for (const char* query : {"20.1.0.0/16", "20.3.0.0/16", "20.9.0.0/16"}) {
    const auto via_delta = service.query(p(query));
    const auto via_load = direct.query(p(query));
    ASSERT_EQ(via_delta.has_value(), via_load.has_value()) << query;
    if (via_delta) {
      EXPECT_EQ(via_delta->matched, via_load->matched) << query;
      EXPECT_EQ(via_delta->sibling, via_load->sibling) << query;
      EXPECT_DOUBLE_EQ(via_delta->similarity, via_load->similarity) << query;
      EXPECT_EQ(via_delta->shared_domains, via_load->shared_domains) << query;
    }
  }
  // 20.3.0.0/16 was removed by the delta: both services must miss it.
  EXPECT_FALSE(service.query(p("20.3.0.0/16")).has_value());
}

TEST(StreamServeDelta, RoundTripDeltaRestoresTheBase) {
  const std::string dir = fresh_dir("serve_delta_roundtrip");
  const Fixture fx = make_fixture(dir);

  serve::SiblingService service;
  std::string error;
  ASSERT_TRUE(service.load(fx.base_path, &error)) << error;
  ASSERT_TRUE(apply_delta_and_reload(service, fx.forward_spdl, &error)) << error;
  ASSERT_TRUE(apply_delta_and_reload(service, fx.backward_spdl, &error)) << error;

  const auto answer = service.query(p("20.3.0.0/16"));
  ASSERT_TRUE(answer.has_value());
  EXPECT_DOUBLE_EQ(answer->similarity, 0.6);
  EXPECT_FALSE(service.query(p("20.9.0.0/16")).has_value());
}

TEST(StreamServeDelta, QueriesRaceDeltaReloadsWithoutTearing) {
  const std::string dir = fresh_dir("serve_delta_race");
  const Fixture fx = make_fixture(dir);

  serve::SiblingService service;
  std::string error;
  ASSERT_TRUE(service.load(fx.base_path, &error)) << error;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      // Each snapshot generation answers from one consistent table: a
      // hit is either the base's record or the target's, never a blend.
      // sp-lint: atomics-ok(test stop flag; readers only need eventual
      // visibility, the joined threads publish nothing through it)
      while (!stop.load(std::memory_order_relaxed)) {
        if (const auto answer = service.query(p("20.1.0.0/16"))) {
          const bool base_values = answer->similarity == 1.0 && answer->shared_domains == 3;
          const bool target_values = answer->similarity == 0.9 && answer->shared_domains == 2;
          if (!base_values && !target_values) {
            ADD_FAILURE() << "torn answer: similarity=" << answer->similarity
                          << " shared=" << answer->shared_domains;
            stop.store(true);
          }
        }
        // sp-lint: atomics-ok(test counter read after the readers join)
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 25 && !stop.load(); ++round) {
    const std::string& spdl = (round % 2 == 0) ? fx.forward_spdl : fx.backward_spdl;
    ASSERT_TRUE(apply_delta_and_reload(service, spdl, &error)) << "round " << round << ": "
                                                               << error;
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_GE(service.stats().reloads, 0u);
}

}  // namespace
}  // namespace sp::stream
