// CSV dialect regression tests, centred on two fixed bugs:
//
//   * quote-state: an unquoted '"' appearing after field content
//     (`ab"cd,e`) used to flip the parser into quoted mode, swallowing
//     the comma and merging the fields; RFC 4180 treats it as a literal
//     character (a quote only opens a quoted field at field start);
//   * bare CR: a '\r' not followed by '\n' used to be silently dropped
//     mid-field (`a\rb` parsed as `ab`); it is a row terminator
//     (classic-Mac line ending), while quoted CRs stay literal.
//
// Both parse_csv (whole document) and read_csv_stream (chunked) implement
// the dialect, so everything here is asserted against both, plus a seeded
// fuzz-style round-trip property test through format_csv_row.
#include "io/csv.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace sp::io {
namespace {

/// Runs the streaming parser over `text` and collects all rows.
std::optional<std::vector<CsvRow>> stream_all(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::vector<CsvRow> rows;
  const auto status = read_csv_stream(in, [&](CsvRow&& row, std::size_t) {
    rows.push_back(std::move(row));
    return true;
  });
  if (!status.ok) return std::nullopt;
  return rows;
}

/// Asserts parse_csv and read_csv_stream agree, returning the parse.
std::optional<std::vector<CsvRow>> parse_both(std::string_view text) {
  const auto parsed = parse_csv(text);
  const auto streamed = stream_all(text);
  EXPECT_EQ(parsed, streamed) << "parsers disagree on: " << text;
  return parsed;
}

TEST(CsvQuoteState, QuoteAfterContentIsLiteral) {
  // The original bug: `ab"cd,e` became one field `abcd,e`.
  const auto rows = parse_both("ab\"cd,e\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 1u);
  ASSERT_EQ((*rows)[0].size(), 2u);
  EXPECT_EQ((*rows)[0][0], "ab\"cd");
  EXPECT_EQ((*rows)[0][1], "e");
}

TEST(CsvQuoteState, QuoteAtFieldStartStillOpensQuotedField) {
  const auto rows = parse_both("a,\"b,c\",d\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ((*rows)[0].size(), 3u);
  EXPECT_EQ((*rows)[0][1], "b,c");
}

TEST(CsvQuoteState, MultipleLiteralQuotesMidField) {
  const auto rows = parse_both("say \"\"hi\"\",done\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ((*rows)[0].size(), 2u);
  EXPECT_EQ((*rows)[0][0], "say \"\"hi\"\"");
  EXPECT_EQ((*rows)[0][1], "done");
}

TEST(CsvQuoteState, TrailingContentAfterClosedQuoteThenQuote) {
  // `"ab"x"y`: quoted "ab", then literal x, then a mid-field quote —
  // all literal from there.
  const auto rows = parse_both("\"ab\"x\"y\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ((*rows)[0].size(), 1u);
  EXPECT_EQ((*rows)[0][0], "abx\"y");
}

TEST(CsvQuoteState, UnbalancedQuoteStillRejected) {
  EXPECT_FALSE(parse_csv("\"unclosed\n").has_value());
  EXPECT_FALSE(stream_all("\"unclosed\n").has_value());
  // A literal mid-field quote is NOT an unbalanced open quote.
  EXPECT_TRUE(parse_csv("ab\"cd\n").has_value());
  EXPECT_TRUE(stream_all("ab\"cd\n").has_value());
}

TEST(CsvBareCr, BareCrTerminatesRow) {
  // The original bug: `a\rb` parsed as one row [ab].
  const auto rows = parse_both("a\rb\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], CsvRow{"a"});
  EXPECT_EQ((*rows)[1], CsvRow{"b"});
}

TEST(CsvBareCr, ClassicMacDocument) {
  const auto rows = parse_both("a,b\rc,d\re,f\r");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
  EXPECT_EQ((*rows)[2], (CsvRow{"e", "f"}));
}

TEST(CsvBareCr, CrlfIsStillOneTerminator) {
  const auto rows = parse_both("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvBareCr, MixedTerminatorsInOneDocument) {
  const auto rows = parse_both("a\r\nb\rc\nd");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0], CsvRow{"a"});
  EXPECT_EQ((*rows)[1], CsvRow{"b"});
  EXPECT_EQ((*rows)[2], CsvRow{"c"});
  EXPECT_EQ((*rows)[3], CsvRow{"d"});
}

TEST(CsvBareCr, QuotedCrStaysLiteral) {
  const auto rows = parse_both("\"a\rb\",c\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 1u);
  ASSERT_EQ((*rows)[0].size(), 2u);
  EXPECT_EQ((*rows)[0][0], "a\rb");
  EXPECT_EQ((*rows)[0][1], "c");
}

TEST(CsvBareCr, QuotedFieldFollowedByCrTerminator) {
  // The closing quote's lookahead must hand the CR to the unquoted state.
  const auto rows = parse_both("\"a\"\r\"b\"\r\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], CsvRow{"a"});
  EXPECT_EQ((*rows)[1], CsvRow{"b"});
}

TEST(CsvBareCr, StreamLineNumbersCountCrRows) {
  std::istringstream in("a\rb\rc\r");
  std::vector<std::size_t> lines;
  const auto status = read_csv_stream(in, [&](CsvRow&&, std::size_t line) {
    lines.push_back(line);
    return true;
  });
  EXPECT_TRUE(status.ok);
  EXPECT_EQ(lines, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(CsvRoundTrip, WriterQuotesEveryTerminatorAndQuote) {
  const CsvRow row{"plain", "has,comma", "has\"quote", "has\rcr", "has\nlf", ""};
  const auto rows = parse_both(format_csv_row(row) + "\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], row);
}

// Fuzz-style property test: any row of random fields drawn from an
// adversarial alphabet survives format_csv_row → parse_csv and
// format_csv_row → read_csv_stream byte-for-byte. Seeded, so failures
// reproduce; ASan/UBSan runs of this test double as a memory-safety fuzz
// of both parsers.
TEST(CsvRoundTrip, RandomRowsSurviveBothParsers) {
  std::mt19937_64 rng(20250806);
  // Heavy on the four structural characters; includes multi-byte UTF-8.
  const std::vector<std::string> atoms = {
      "\"", ",", "\r", "\n", "\r\n", "a", "xyz", "", " ", "\"\"", "é", "日本", "0"};
  std::uniform_int_distribution<std::size_t> atom_of(0, atoms.size() - 1);
  std::uniform_int_distribution<int> atoms_per_field(0, 6);
  std::uniform_int_distribution<int> fields_per_row(1, 5);
  std::uniform_int_distribution<int> rows_per_doc(1, 4);

  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<CsvRow> document(static_cast<std::size_t>(rows_per_doc(rng)));
    std::string text;
    for (CsvRow& row : document) {
      row.resize(static_cast<std::size_t>(fields_per_row(rng)));
      for (std::string& field : row) {
        const int parts = atoms_per_field(rng);
        for (int p = 0; p < parts; ++p) field += atoms[atom_of(rng)];
      }
      text += format_csv_row(row) + "\n";
    }
    const auto parsed = parse_csv(text);
    ASSERT_TRUE(parsed.has_value()) << "iteration " << iteration << ": " << text;
    const auto streamed = stream_all(text);
    ASSERT_TRUE(streamed.has_value()) << "iteration " << iteration;
    EXPECT_EQ(*parsed, document) << "iteration " << iteration << ": " << text;
    EXPECT_EQ(*streamed, document) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace sp::io
