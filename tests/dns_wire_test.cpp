// Tests for the RFC 1035 wire codec: golden encodings, round-trips,
// compression behaviour, and malformed-input rejection.
#include "dns/wire.h"

#include <gtest/gtest.h>

#include <random>

namespace sp::dns {
namespace {

Message simple_query(std::uint16_t id, const char* name, RecordType type) {
  Message message;
  message.header.id = id;
  message.questions.push_back({DomainName::must_parse(name), type});
  return message;
}

TEST(DnsWire, EncodesQueryHeaderGolden) {
  const auto wire = encode_message(simple_query(0x1234, "example.org", RecordType::A));
  ASSERT_GE(wire.size(), 12u);
  // id
  EXPECT_EQ(wire[0], 0x12);
  EXPECT_EQ(wire[1], 0x34);
  // flags: RD only
  EXPECT_EQ(wire[2], 0x01);
  EXPECT_EQ(wire[3], 0x00);
  // qdcount = 1, others 0
  EXPECT_EQ(wire[5], 1);
  EXPECT_EQ(wire[7], 0);
  // question name: 7 "example" 3 "org" 0
  EXPECT_EQ(wire[12], 7);
  EXPECT_EQ(std::string(wire.begin() + 13, wire.begin() + 20), "example");
  EXPECT_EQ(wire[20], 3);
  EXPECT_EQ(wire[24], 0);
  // qtype A (1), qclass IN (1)
  EXPECT_EQ(wire[26], 1);
  EXPECT_EQ(wire[28], 1);
  EXPECT_EQ(wire.size(), 29u);
}

TEST(DnsWire, RoundTripsQuery) {
  const auto message = simple_query(7, "www.example.org", RecordType::AAAA);
  const auto decoded = decode_message(encode_message(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(DnsWire, RoundTripsAllRecordTypes) {
  Message message = simple_query(42, "svc.example.org", RecordType::A);
  message.header.qr = true;
  message.header.aa = true;
  message.answers.push_back(ResourceRecord::cname(DomainName::must_parse("svc.example.org"),
                                                  DomainName::must_parse("cdn.host.net")));
  message.answers.push_back(
      ResourceRecord::a(DomainName::must_parse("cdn.host.net"),
                        *IPv4Address::from_string("192.0.2.55"), 60));
  message.answers.push_back(
      ResourceRecord::aaaa(DomainName::must_parse("cdn.host.net"),
                           *IPv6Address::from_string("2001:db8::55"), 60));
  message.authorities.push_back(ResourceRecord::ns(DomainName::must_parse("example.org"),
                                                   DomainName::must_parse("ns1.example.org")));
  message.additionals.push_back(
      ResourceRecord::mx(DomainName::must_parse("example.org"), 10,
                         DomainName::must_parse("mail.example.org")));
  message.additionals.push_back(
      ResourceRecord::txt(DomainName::must_parse("example.org"), "v=spf1 -all"));

  std::string error;
  const auto decoded = decode_message(encode_message(message), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, message);
}

TEST(DnsWire, CompressionShrinksRepeatedNames) {
  Message with_repeats = simple_query(1, "a.example.org", RecordType::A);
  for (int i = 0; i < 10; ++i) {
    with_repeats.answers.push_back(ResourceRecord::a(
        DomainName::must_parse("a.example.org"), IPv4Address::from_octets(192, 0, 2, 1)));
  }
  const auto wire = encode_message(with_repeats);
  // Each repeated owner name should cost 2 pointer bytes, not 15.
  // 12 header + 19 question + 10 * (2 + 2 + 2 + 4 + 2 + 4) = 191.
  EXPECT_EQ(wire.size(), 12u + 19u + 10u * 16u);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, with_repeats);
}

TEST(DnsWire, CompressionPointersInsideRdataRoundTrip) {
  Message message = simple_query(2, "x.example.org", RecordType::CNAME);
  message.answers.push_back(ResourceRecord::cname(DomainName::must_parse("x.example.org"),
                                                  DomainName::must_parse("y.example.org")));
  const auto wire = encode_message(message);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(DnsWire, LongTxtSplitsIntoCharacterStrings) {
  const std::string long_text(700, 'x');
  Message message;
  message.answers.push_back(
      ResourceRecord::txt(DomainName::must_parse("t.example.org"), long_text));
  const auto decoded = decode_message(encode_message(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<TxtData>(decoded->answers[0].data).text, long_text);
}

TEST(DnsWire, DecodeRejectsTruncation) {
  const auto wire = encode_message(simple_query(9, "example.org", RecordType::A));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::string error;
    const auto decoded =
        decode_message(std::span(wire.data(), cut), &error);
    EXPECT_FALSE(decoded.has_value()) << "cut=" << cut;
    EXPECT_FALSE(error.empty());
  }
}

TEST(DnsWire, DecodeRejectsTrailingBytes) {
  auto wire = encode_message(simple_query(9, "example.org", RecordType::A));
  wire.push_back(0);
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(DnsWire, DecodeRejectsPointerLoops) {
  // Header claiming one question, then a name that points at itself.
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;  // qdcount
  wire.push_back(0xC0);
  wire.push_back(12);  // pointer to itself
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  std::string error;
  EXPECT_FALSE(decode_message(wire, &error).has_value());
  EXPECT_NE(error.find("pointer"), std::string::npos);
}

TEST(DnsWire, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;
  wire.push_back(0xC0);
  wire.push_back(40);  // points past itself
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(DnsWire, DecodeRejectsBadRdataLengths) {
  Message message;
  message.answers.push_back(ResourceRecord::a(DomainName::must_parse("a.example.org"),
                                              IPv4Address::from_octets(1, 2, 3, 4)));
  auto wire = encode_message(message);
  // Corrupt the A record's RDLENGTH (last 6 bytes are rdlength + rdata).
  wire[wire.size() - 5] = 3;
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(DnsWire, HeaderFlagsRoundTrip) {
  Message message;
  message.header = {.id = 0xBEEF,
                    .qr = true,
                    .opcode = 2,
                    .aa = true,
                    .tc = true,
                    .rd = false,
                    .ra = true,
                    .rcode = 5};
  const auto decoded = decode_message(encode_message(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header, message.header);
}

// Property: random messages round-trip bit-exactly.
class WireRoundTripProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireRoundTripProperty, RandomMessagesRoundTrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> small(0, 4);
  std::uniform_int_distribution<std::uint32_t> word;
  const char* hosts[] = {"a", "b", "www", "cdn", "api", "mail"};
  const char* zones[] = {"example.org", "example.net", "test.example.org", "x.io"};

  const auto random_name = [&] {
    return DomainName::must_parse(std::string(hosts[word(rng) % 6]) + "." +
                                  zones[word(rng) % 4]);
  };
  const auto random_record = [&]() -> ResourceRecord {
    switch (word(rng) % 6) {
      case 0: return ResourceRecord::a(random_name(), IPv4Address(word(rng)));
      case 1: {
        IPv6Address::Bytes bytes{};
        for (auto& b : bytes) b = static_cast<std::uint8_t>(word(rng));
        return ResourceRecord::aaaa(random_name(), IPv6Address(bytes));
      }
      case 2: return ResourceRecord::cname(random_name(), random_name());
      case 3: return ResourceRecord::ns(random_name(), random_name());
      case 4:
        return ResourceRecord::mx(random_name(), static_cast<std::uint16_t>(word(rng)),
                                  random_name());
      default:
        return ResourceRecord::txt(random_name(), std::string(word(rng) % 300, 't'));
    }
  };

  for (int iteration = 0; iteration < 300; ++iteration) {
    Message message;
    message.header.id = static_cast<std::uint16_t>(word(rng));
    message.header.qr = (word(rng) & 1) != 0;
    for (int i = small(rng); i > 0; --i) {
      message.questions.push_back(
          {random_name(), (word(rng) & 1) != 0 ? RecordType::A : RecordType::AAAA});
    }
    for (int i = small(rng); i > 0; --i) message.answers.push_back(random_record());
    for (int i = small(rng); i > 0; --i) message.authorities.push_back(random_record());
    for (int i = small(rng); i > 0; --i) message.additionals.push_back(random_record());

    std::string error;
    const auto decoded = decode_message(encode_message(message), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(*decoded, message);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripProperty, ::testing::Values(3u, 5u, 8u, 13u));

}  // namespace
}  // namespace sp::dns
