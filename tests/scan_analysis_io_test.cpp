// Tests for the port-scan dataset, the stats/CDF helpers, text tables,
// heatmaps, and the CSV codec.
#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "io/csv.h"
#include "scan/portscan.h"

namespace sp {
namespace {

TEST(PortScan, PortIndexAndBits) {
  EXPECT_EQ(scan::port_index(20), 0u);
  EXPECT_EQ(scan::port_index(7547), 13u);
  EXPECT_FALSE(scan::port_index(8080).has_value());
  EXPECT_EQ(scan::port_bit(80), 1u << 6);
  EXPECT_EQ(scan::port_bit(8080), 0u);
}

TEST(PortScan, MaskJaccard) {
  const scan::PortMask web = scan::port_bit(80) | scan::port_bit(443);
  const scan::PortMask web_ssh = web | scan::port_bit(22);
  EXPECT_DOUBLE_EQ(scan::port_jaccard(web, web), 1.0);
  EXPECT_DOUBLE_EQ(scan::port_jaccard(web, web_ssh), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(scan::port_jaccard(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scan::port_jaccard(web, 0), 0.0);
  EXPECT_EQ(scan::open_port_count(web_ssh), 3);
}

TEST(PortScan, DatasetAggregatesPerPrefix) {
  scan::PortScanDataset dataset;
  dataset.add_open(IPAddress::must_parse("20.1.0.1"), 80);
  dataset.add_open(IPAddress::must_parse("20.1.0.2"), 443);
  dataset.add_open(IPAddress::must_parse("20.2.0.1"), 22);
  dataset.add_open(IPAddress::must_parse("2620:100::1"), 53);
  dataset.add_open(IPAddress::must_parse("20.1.0.1"), 8080);  // not scanned → ignored

  EXPECT_EQ(dataset.responsive_address_count(), 4u);
  EXPECT_EQ(dataset.ports_of(IPAddress::must_parse("20.1.0.1")), scan::port_bit(80));
  EXPECT_EQ(dataset.ports_of(IPAddress::must_parse("20.9.9.9")), 0u);

  const auto prefix_mask = dataset.ports_in(Prefix::must_parse("20.1.0.0/16"));
  EXPECT_EQ(prefix_mask, scan::port_bit(80) | scan::port_bit(443));
  EXPECT_TRUE(dataset.responsive(Prefix::must_parse("2620:100::/48")));
  EXPECT_FALSE(dataset.responsive(Prefix::must_parse("20.3.0.0/16")));
}

TEST(Stats, SummaryAndMedian) {
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto summary = analysis::summarize(samples);
  EXPECT_EQ(summary.count, 8u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 9.0);

  EXPECT_DOUBLE_EQ(analysis::median({1.0, 3.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(analysis::median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(analysis::median({}), 0.0);
  EXPECT_EQ(analysis::summarize({}).count, 0u);
}

TEST(Stats, CdfQueries) {
  const analysis::Cdf cdf({0.2, 0.4, 0.6, 0.8, 1.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.4);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.1), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(1.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.6);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 1.0);
  EXPECT_TRUE(analysis::Cdf{}.empty());
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y_up = {2, 4, 6, 8, 10};
  const std::vector<double> y_down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(analysis::pearson(x, y_up), 1.0, 1e-12);
  EXPECT_NEAR(analysis::pearson(x, y_down), -1.0, 1e-12);
  const std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(analysis::pearson(x, constant), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(analysis::pearson(x, std::vector<double>{1, 2}), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(analysis::pearson({}, {}), 0.0);
}

TEST(Stats, SpearmanUsesRanksNotValues) {
  // A monotone nonlinear relation: Spearman 1, Pearson < 1.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(analysis::spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(analysis::pearson(x, y), 1.0);
}

TEST(Stats, SpearmanAveragesTies) {
  const std::vector<double> x = {1, 2, 2, 4};
  const std::vector<double> y = {10, 20, 20, 40};
  EXPECT_NEAR(analysis::spearman(x, y), 1.0, 1e-12);
  // Anti-correlated with ties.
  const std::vector<double> y_rev = {40, 20, 20, 10};
  EXPECT_NEAR(analysis::spearman(x, y_rev), -1.0, 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  analysis::TextTable table({"metric", "value"});
  table.add_row({"pairs", "76000"});
  table.add_row({"perfect", "52%"});
  const std::string out = table.render();
  // Column width follows the widest cell ("perfect", 7 chars).
  EXPECT_NE(out.find("metric   value"), std::string::npos);
  EXPECT_NE(out.find("pairs    76000"), std::string::npos);
  EXPECT_NE(out.find("-------  -----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Heatmap, AccumulatesAndNormalizes) {
  analysis::Heatmap map({"r0", "r1"}, {"c0", "c1"});
  map.at(0, 0) = 30.0;
  map.at(1, 1) = 10.0;
  EXPECT_DOUBLE_EQ(map.total(), 40.0);
  map.normalize_to_percent();
  EXPECT_DOUBLE_EQ(map.at(0, 0), 75.0);
  EXPECT_DOUBLE_EQ(map.at(1, 1), 25.0);
  EXPECT_THROW((void)map.at(2, 0), std::out_of_range);

  analysis::Heatmap rows({"a", "b"}, {"x", "y"});
  rows.at(0, 0) = 1.0;
  rows.at(0, 1) = 3.0;
  rows.normalize_rows_to_percent();
  EXPECT_DOUBLE_EQ(rows.at(0, 0), 25.0);
  EXPECT_DOUBLE_EQ(rows.at(0, 1), 75.0);
  EXPECT_DOUBLE_EQ(rows.at(1, 0), 0.0);  // zero row untouched

  const std::string rendered = rows.render(1);
  EXPECT_NE(rendered.find("25.0"), std::string::npos);
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(analysis::format_fixed(0.5251, 2), "0.53");
  EXPECT_EQ(analysis::format_percent(0.518, 1), "51.8%");
  EXPECT_EQ(analysis::format_percent(1.0, 0), "100%");
}

TEST(Csv, FormatsAndQuotes) {
  EXPECT_EQ(io::format_csv_row({"a", "b"}), "a,b");
  EXPECT_EQ(io::format_csv_row({"a,b", "c\"d", "e\nf"}), "\"a,b\",\"c\"\"d\",\"e\nf\"");
  EXPECT_EQ(io::format_csv_row({}), "");
}

TEST(Csv, ParsesQuotedFields) {
  const auto rows = io::parse_csv("a,b\n\"x,y\",\"q\"\"uote\"\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (io::CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (io::CsvRow{"x,y", "q\"uote"}));
}

TEST(Csv, HandlesCrlfAndEmptyFields) {
  const auto rows = io::parse_csv("a,,c\r\n,,\r\n");
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (io::CsvRow{"a", "", "c"}));
  EXPECT_EQ((*rows)[1], (io::CsvRow{"", "", ""}));
}

TEST(Csv, RejectsUnbalancedQuotes) {
  EXPECT_FALSE(io::parse_csv("\"unterminated").has_value());
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sp_csv_test.csv";
  const std::vector<io::CsvRow> rows = {{"h1", "h2"}, {"multi\nline", "x,y"}};
  ASSERT_TRUE(io::write_csv_file(path, rows));
  const auto loaded = io::read_csv_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, rows);
  EXPECT_FALSE(io::read_csv_file("/nonexistent/file.csv").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sp
