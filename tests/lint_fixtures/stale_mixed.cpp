// stale-suppression fixture: two entries in one comment block — the
// determinism one still earns its keep, the atomics one is stale.
#include <ctime>

int mixed() {
  // sp-lint: determinism-ok(fixture: still fires) atomics-ok(fixture:
  // the volatile is long gone)
  return static_cast<int>(time(0));
}
