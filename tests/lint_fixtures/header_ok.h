// Suppression fixture: the same include, justified.
#pragma once

// sp-lint: header-hygiene-ok(fixture: demonstration header, never included)
#include <iostream>
