// snapshot-escape fixture: the member store is real but argued — the
// suppression names the invariant that makes it sound, and the finding
// must surface as suppressed with that reason.
#include <memory>

struct Snapshot {
  int generation = 0;
};

struct Service {
  std::shared_ptr<const Snapshot> snapshot() const;
};

struct Debugger {
  void capture() {
    auto snap = service_.snapshot();
    // sp-lint: snapshot-escape-ok(fixture: the member pin_ below keeps
    // the snapshot alive for exactly as long as probe_ is readable)
    probe_ = snap.get();
    pin_ = snap;
  }

  Service service_;
  const Snapshot* probe_ = nullptr;
  std::shared_ptr<const Snapshot> pin_;
};
