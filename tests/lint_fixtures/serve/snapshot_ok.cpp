// snapshot-escape fixture: every safe shape — copying the shared_ptr
// into a member (the pin itself travels), reading values through the
// pin, and a raw pointer that never leaves the pinning scope. No
// findings.
#include <memory>

struct Snapshot {
  int generation = 0;
};

struct Service {
  std::shared_ptr<const Snapshot> snapshot() const;
};

struct Reader {
  void refresh() {
    auto snap = service_.snapshot();
    pinned_ = snap;
    generation_ = snap->generation;
    const Snapshot* raw = snap.get();
    consume(raw);
  }
  void consume(const Snapshot* snapshot);

  Service service_;
  std::shared_ptr<const Snapshot> pinned_;
  int generation_ = 0;
};
