// Clean fixture for the serve/ mmap rules: a bounds-checked cast passes
// as-is; the release const_cast carries a suppression.

#include <cstdint>

struct Db {
  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;

  const std::uint32_t* checked(std::uint64_t offset) {
    if (offset + 4 > size_) return nullptr;
    return reinterpret_cast<const std::uint32_t*>(data_ + offset);
  }

  static void unmap(std::uint8_t*) {}
  void release() {
    // sp-lint: mmap-safety-ok(fixture: munmap-style release, not a write)
    unmap(const_cast<std::uint8_t*>(data_));
  }
};
