// Violation fixture for the serve/ mmap rules: a const_cast minting a
// writable pointer, a cast on mapping bytes with no bounds check, and a
// reinterpret_cast to a non-const pointer.

#include <cstdint>

struct Db {
  const std::uint8_t* data_ = nullptr;

  std::uint8_t* writable() { return const_cast<std::uint8_t*>(data_); }

  const std::uint32_t* unchecked() {
    return reinterpret_cast<const std::uint32_t*>(data_ + 16);
  }

  const std::uint16_t* non_const(std::uint8_t* scratch) {
    return reinterpret_cast<std::uint16_t*>(scratch);
  }
};
