// snapshot-escape fixture: raw pointers derived from a pinned snapshot
// escape the pinning scope four ways — into a member, into a member
// container, through an out-parameter, and into a static local. Every
// one outlives the pin and must be flagged.
#include <memory>
#include <vector>

struct Snapshot {
  int generation = 0;
};

struct Service {
  std::shared_ptr<const Snapshot> snapshot() const;
};

struct Cache {
  void remember() {
    auto snap = service_.snapshot();
    latest_ = snap.get();
    history_.push_back(snap.get());
  }
  void hand_out(const Snapshot** out) {
    auto snap = service_.snapshot();
    const Snapshot* raw = snap.get();
    *out = raw;
  }
  void memoize() {
    auto snap = service_.snapshot();
    static const Snapshot* cached = snap.get();
    use(cached);
  }
  void use(const Snapshot* snapshot);

  Service service_;
  const Snapshot* latest_ = nullptr;
  std::vector<const Snapshot*> history_;
};
