// lock-rank fixture: the ranks invert — holding the rank-20 lock while
// taking the rank-10 lock must be flagged, as must two locks claiming
// the same rank.
#pragma once
#include <mutex>

struct RankInverted {
  void both() {
    std::lock_guard lock_a(outer_mutex_);
    std::lock_guard lock_b(inner_mutex_);
  }
  // lock-order: 20 fixtures.rank.outer
  std::mutex outer_mutex_;
  // lock-order: 10 fixtures.rank.inner
  std::mutex inner_mutex_;
};

struct RankDuplicated {
  // lock-order: 30 fixtures.rank.dup_a
  std::mutex dup_a_mutex_;
  // lock-order: 30 fixtures.rank.dup_b
  std::mutex dup_b_mutex_;
};
