// Layering fixture: this whole subsystem is absent from layers.def —
// flagged once at the top of the file.
#pragma once

namespace fixture_ddd {
inline constexpr int kRogue = 7;
}  // namespace fixture_ddd
