// Layering fixture: includes a subsystem that layers.def never
// declares — flagged at the include.
#include "ddd/rogue.h"

namespace fixture_bbb {
int touch_rogue() { return fixture_ddd::kRogue; }
}  // namespace fixture_bbb
