// Layering fixture: downward include of the base layer and a
// same-layer include sanctioned by the `allow bbb ccc` line — clean.
#pragma once
#include "aaa/base.h"
#include "ccc/peer.h"

namespace fixture_bbb {
struct Widget {
  fixture_aaa::Base base;
  fixture_ccc::Peer peer;
};
}  // namespace fixture_bbb
