// Layering fixture: the reverse same-layer edge — layers.def sanctions
// bbb → ccc, not ccc → bbb, so this include must be flagged.
#pragma once
#include "bbb/widget.h"

namespace fixture_ccc {
struct Peer {
  int weight = 1;
};
}  // namespace fixture_ccc
