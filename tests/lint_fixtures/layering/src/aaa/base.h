// Layering fixture: the base layer includes nothing — no findings.
#pragma once

namespace fixture_aaa {
struct Base {};
}  // namespace fixture_aaa
