// Layering fixture: a base-layer file reaching into the layer above it
// — the include below is an upward dependency and must be flagged.
#pragma once
#include "bbb/widget.h"

namespace fixture_aaa {
struct Upward {
  fixture_bbb::Widget widget;
};
}  // namespace fixture_aaa
