// stale-suppression fixture: both entries silence nothing — the code
// they argued about is gone, so each is itself a finding.

// sp-lint-file: atomics-ok(fixture: claims relaxed is fine but no
// relaxed access remains)

int answer() {
  // sp-lint: determinism-ok(fixture: the wall-clock read was removed)
  return 42;
}
