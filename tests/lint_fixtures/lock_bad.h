// Violation fixture: a mutex member with no lock-order annotation.
#pragma once

#include <mutex>

class Unranked {
  std::mutex mutex_;
};
