// Suppression fixture: the same pattern, justified in place.

#include <cstdlib>

// sp-lint: determinism-ok(fixture: documents the suppression syntax)
int seeded_rand() { return rand(); }
