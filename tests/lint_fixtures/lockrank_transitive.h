// lock-rank fixture: the inversion spans a call — helper() takes the
// rank-10 lock, and locked_entry() calls it while holding the rank-20
// lock, so the edge only exists through one-level inlining.
#pragma once
#include <mutex>

struct RankTransitive {
  void helper() {
    std::lock_guard lock(low_mutex_);
  }
  void locked_entry() {
    std::lock_guard lock(high_mutex_);
    helper();
  }
  // lock-order: 10 fixtures.transitive.low
  std::mutex low_mutex_;
  // lock-order: 20 fixtures.transitive.high
  std::mutex high_mutex_;
};
