// Violation fixture: iostream include and a using-directive, both at
// header scope.
#pragma once

#include <iostream>

using namespace std;
