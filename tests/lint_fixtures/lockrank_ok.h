// lock-rank fixture: correctly ordered — the rank-10 lock is held
// while the rank-20 lock is taken, both by direct nesting and through
// a call; edges are derived but none is a finding.
#pragma once
#include <mutex>

struct RankOrdered {
  void inner() {
    std::lock_guard lock(high_mutex_);
  }
  void outer() {
    std::lock_guard lock(low_mutex_);
    std::lock_guard nested(high_mutex_);
    inner();
  }
  // lock-order: 10 fixtures.ordered.low
  std::mutex low_mutex_;
  // lock-order: 20 fixtures.ordered.high
  std::mutex high_mutex_;
};
