// Clean fixture: an annotated member plus a suppressed exception.
#pragma once

#include <mutex>

class Ranked {
  // lock-order: 99 fixtures.ranked.mutex (leaf; never nested)
  std::mutex mutex_;
};

class Exempt {
  // sp-lint: lock-order-ok(fixture: guards one call site, never nested)
  std::mutex guard;
};
