// Violation fixture: a suppression with no reason is itself a finding,
// and does not silence the underlying one.

#include <atomic>

int load_relaxed(const std::atomic<int>& value) {
  // sp-lint: atomics-ok()
  return value.load(std::memory_order_relaxed);
}
