// Violation fixture: relaxed ordering outside src/obs/ and a volatile
// pressed into service as a synchronization flag.

#include <atomic>

int load_relaxed(const std::atomic<int>& value) {
  return value.load(std::memory_order_relaxed);
}

volatile int g_flag = 0;
