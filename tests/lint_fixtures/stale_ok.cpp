// stale-suppression fixture: the entry is consumed by the wall-clock
// finding right under it, so the audit stays quiet.
#include <ctime>

int ticks() {
  // sp-lint: determinism-ok(fixture: exercising use-tracking)
  return static_cast<int>(time(nullptr));
}
