// Suppression fixture: a justified relaxed load.

#include <atomic>

int load_relaxed(const std::atomic<int>& value) {
  // sp-lint: atomics-ok(fixture: counter read after the pool joins)
  return value.load(std::memory_order_relaxed);
}
