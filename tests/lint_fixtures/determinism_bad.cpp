// Violation fixture: one hit per determinism pattern. Linted only by
// lint_selftest; lintable_path() excludes this tree from the default walk.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int seeded_rand() { return rand(); }
void seeded_srand() { srand(42); }
unsigned from_device() { return std::random_device{}(); }
long wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
long wall_time() { return time(nullptr); }
