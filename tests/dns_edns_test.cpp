// Tests for EDNS(0) OPT pseudo-records (RFC 6891): wire layout, flag and
// payload-size mapping, options, and round trips.
#include <gtest/gtest.h>

#include "dns/wire.h"

namespace sp::dns {
namespace {

Message query_with_opt(OptData opt) {
  Message message;
  message.header.id = 0x0ED5;
  message.questions.push_back(
      {DomainName::must_parse("www.example.org"), RecordType::A});
  message.additionals.push_back(ResourceRecord::opt(std::move(opt)));
  return message;
}

TEST(DnsEdns, WireLayoutGolden) {
  OptData opt;
  opt.udp_payload_size = 4096;
  opt.extended_rcode = 0;
  opt.version = 0;
  opt.dnssec_ok = true;
  const auto wire = encode_message(query_with_opt(opt));
  // The OPT record follows the 12-byte header + 21-byte question:
  // root(1) type(2)=41 class(2)=4096 ttl(4)=0x00008000 rdlength(2)=0.
  const std::size_t at = 12 + 21;
  EXPECT_EQ(wire[at], 0);        // root owner
  EXPECT_EQ(wire[at + 2], 41);   // type OPT
  EXPECT_EQ(wire[at + 3], 0x10); // class hi = 4096 >> 8
  EXPECT_EQ(wire[at + 4], 0x00);
  EXPECT_EQ(wire[at + 7], 0x80); // DO bit in TTL
  EXPECT_EQ(wire.size(), at + 11);
}

TEST(DnsEdns, RoundTripsWithOptions) {
  OptData opt;
  opt.udp_payload_size = 1232;
  opt.extended_rcode = 1;
  opt.version = 0;
  opt.dnssec_ok = false;
  opt.options.push_back({10, {1, 2, 3, 4, 5, 6, 7, 8}});  // COOKIE-style blob
  opt.options.push_back({12, {}});                        // padding, empty
  const auto message = query_with_opt(opt);

  std::string error;
  const auto decoded = decode_message(encode_message(message), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, message);
  const auto& got = std::get<OptData>(decoded->additionals[0].data);
  EXPECT_EQ(got.udp_payload_size, 1232);
  EXPECT_EQ(got.extended_rcode, 1);
  ASSERT_EQ(got.options.size(), 2u);
  EXPECT_EQ(got.options[0].code, 10);
  EXPECT_EQ(got.options[0].data.size(), 8u);
}

TEST(DnsEdns, CoexistsWithRegularRecords) {
  Message message = query_with_opt(OptData{});
  message.header.qr = true;
  message.answers.push_back(ResourceRecord::a(DomainName::must_parse("www.example.org"),
                                              IPv4Address::from_octets(5, 6, 7, 8)));
  message.additionals.push_back(
      ResourceRecord::txt(DomainName::must_parse("meta.example.org"), "x"));
  const auto decoded = decode_message(encode_message(message));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(DnsEdns, TruncatedOptionIsRejected) {
  OptData opt;
  opt.options.push_back({10, {1, 2, 3, 4}});
  auto wire = encode_message(query_with_opt(opt));
  // Inflate the option length beyond the record.
  wire[wire.size() - 5] = 0xFF;
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(DnsEdns, DnssecOkFlagRoundTrips) {
  for (const bool dnssec_ok : {false, true}) {
    OptData opt;
    opt.dnssec_ok = dnssec_ok;
    const auto decoded = decode_message(encode_message(query_with_opt(opt)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<OptData>(decoded->additionals[0].data).dnssec_ok, dnssec_ok);
  }
}

}  // namespace
}  // namespace sp::dns
