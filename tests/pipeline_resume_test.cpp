// Campaign checkpoint/resume contract:
//  * an interrupted run (manifest truncated after a completed-stage
//    prefix — the crash model: the manifest is rewritten atomically after
//    every completion, so a kill leaves exactly such a prefix) resumed
//    with the same config re-runs only unrecorded stages and converges to
//    byte-identical artifacts and per-stage hashes;
//  * a changed config knob invalidates exactly its downstream cone;
//  * a corrupted artifact forces exactly that stage to re-run.
// Plus unit coverage of the manifest JSON codec and the checkpoint
// primitives the contract rests on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/campaign.h"
#include "pipeline/checkpoint.h"
#include "pipeline/manifest.h"

namespace sp::pipeline {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

CampaignConfig small_config(std::string out_dir) {
  CampaignConfig config;
  config.synth.months = 3;
  config.synth.organization_count = 50;
  config.synth.probe_count = 50;
  config.threads = 2;
  config.out_dir = std::move(out_dir);
  return config;
}

RunManifest load_manifest(const std::string& out_dir) {
  std::string error;
  const auto manifest = RunManifest::load(Campaign::manifest_path(out_dir), &error);
  EXPECT_TRUE(manifest.has_value()) << error;
  return manifest.value_or(RunManifest{});
}

/// Asserts both runs recorded the same per-stage inputs hash and the same
/// output files with the same content hashes (status/timings may differ).
void expect_same_hashes(const RunManifest& a, const RunManifest& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (const StageRecord& stage : a.stages) {
    const StageRecord* other = b.find(stage.name);
    ASSERT_NE(other, nullptr) << stage.name;
    EXPECT_EQ(stage.inputs_hash, other->inputs_hash) << stage.name;
    EXPECT_EQ(stage.outputs, other->outputs) << stage.name;
  }
}

/// Byte-compares every artifact recorded in `a`'s manifest across the two
/// run directories (published lists, .sibdbs, intermediates alike).
void expect_same_artifacts(const RunManifest& a, const std::string& dir_a,
                           const std::string& dir_b) {
  for (const StageRecord& stage : a.stages) {
    for (const OutputRecord& output : stage.outputs) {
      EXPECT_EQ(read_file(dir_a + "/" + output.path), read_file(dir_b + "/" + output.path))
          << output.path;
    }
  }
}

TEST(PipelineResume, SerialAndDagSchedulesProduceIdenticalArtifacts) {
  const std::string dir_serial = fresh_dir("sp_campaign_serial");
  const std::string dir_dag = fresh_dir("sp_campaign_dag");

  auto serial_config = small_config(dir_serial);
  serial_config.threads = 1;
  const auto serial_report = Campaign(serial_config).run(/*resume=*/false);
  ASSERT_TRUE(serial_report.ok) << serial_report.error;

  const auto dag_report = Campaign(small_config(dir_dag)).run(/*resume=*/false);
  ASSERT_TRUE(dag_report.ok) << dag_report.error;
  EXPECT_EQ(serial_report.done_count, dag_report.done_count);

  const RunManifest serial_manifest = load_manifest(dir_serial);
  const RunManifest dag_manifest = load_manifest(dir_dag);
  expect_same_hashes(serial_manifest, dag_manifest);
  expect_same_artifacts(serial_manifest, dir_serial, dir_dag);
}

TEST(PipelineResume, CrashAfterAnyCompletedPrefixResumesToIdenticalRun) {
  const std::string dir_full = fresh_dir("sp_campaign_full");
  const auto full_report = Campaign(small_config(dir_full)).run(/*resume=*/false);
  ASSERT_TRUE(full_report.ok) << full_report.error;
  const RunManifest full_manifest = load_manifest(dir_full);
  const std::size_t stage_count = full_manifest.stages.size();
  ASSERT_GT(stage_count, 20u);  // 3 months × 7 stages + 2 diffs + longitudinal

  // Kill points across the schedule: right after the first stage, mid-run,
  // and just before the fan-in.
  for (const std::size_t keep :
       {std::size_t{1}, stage_count / 3, stage_count - 2}) {
    const std::string dir = fresh_dir("sp_campaign_crash_" + std::to_string(keep));
    const auto report = Campaign(small_config(dir)).run(/*resume=*/false);
    ASSERT_TRUE(report.ok) << report.error;

    // Simulate the kill: the manifest is exactly the completion-order
    // prefix of the first `keep` stages.
    RunManifest truncated = load_manifest(dir);
    truncated.stages.resize(keep);
    std::string error;
    ASSERT_TRUE(truncated.save(Campaign::manifest_path(dir), &error)) << error;

    const auto resumed = Campaign(small_config(dir)).run(/*resume=*/true);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.cached_count, keep);
    EXPECT_EQ(resumed.done_count, stage_count - keep);

    const RunManifest resumed_manifest = load_manifest(dir);
    expect_same_hashes(full_manifest, resumed_manifest);
    expect_same_artifacts(full_manifest, dir_full, dir);
  }
}

TEST(PipelineResume, ChangedThresholdInvalidatesOnlyTheTunerCone) {
  const std::string dir = fresh_dir("sp_campaign_retune");
  const auto report = Campaign(small_config(dir)).run(/*resume=*/false);
  ASSERT_TRUE(report.ok) << report.error;

  auto retuned = small_config(dir);
  retuned.v4_threshold = 30;
  retuned.v6_threshold = 112;
  const auto resumed = Campaign(retuned).run(/*resume=*/true);
  ASSERT_TRUE(resumed.ok) << resumed.error;

  const RunManifest manifest = load_manifest(dir);
  for (const StageRecord& stage : manifest.stages) {
    const bool upstream = stage.name.rfind("evolve", 0) == 0 ||
                          stage.name.rfind("export", 0) == 0 ||
                          stage.name.rfind("corpus", 0) == 0 ||
                          stage.name.rfind("detect", 0) == 0;
    EXPECT_EQ(stage.status, upstream ? "cached" : "done") << stage.name;
  }
}

TEST(PipelineResume, CorruptedArtifactRerunsExactlyThatStage) {
  const std::string dir = fresh_dir("sp_campaign_corrupt");
  const auto report = Campaign(small_config(dir)).run(/*resume=*/false);
  ASSERT_TRUE(report.ok) << report.error;
  const RunManifest before = load_manifest(dir);

  // Clobber one mid-pipeline artifact. Its producer re-runs and — the
  // content-addressed part — regenerates identical bytes, so every
  // downstream checkpoint revalidates and stays cached.
  const StageRecord* detect = nullptr;
  for (const StageRecord& stage : before.stages) {
    if (stage.name.rfind("detect", 0) == 0) detect = &stage;
  }
  ASSERT_NE(detect, nullptr);
  {
    std::ofstream out(dir + "/" + detect->outputs[0].path, std::ios::trunc);
    out << "corrupted\n";
  }

  const auto resumed = Campaign(small_config(dir)).run(/*resume=*/true);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.done_count, 1u);
  EXPECT_EQ(resumed.cached_count, before.stages.size() - 1);

  const RunManifest after = load_manifest(dir);
  expect_same_hashes(before, after);
  EXPECT_EQ(after.find(detect->name)->status, "done");
}

TEST(PipelineManifest, JsonRoundTripPreservesEverything) {
  RunManifest manifest;
  manifest.campaign = "test \"campaign\"\nwith escapes\t\\";
  manifest.config = {{"synth.seed", "42"}, {"v4_threshold", "28"}};
  StageRecord stage;
  stage.name = "detect[2024-09-11]";
  stage.status = "done";
  stage.inputs_hash = 0xDEADBEEFCAFEF00Dull;
  stage.outputs = {{"pairs-2024-09-11.csv", 0x0123456789ABCDEFull}, {"other.txt", 7}};
  stage.wall_ms = 12.25;
  stage.peak_rss_kb = 48212;
  manifest.stages.push_back(stage);
  StageRecord failed;
  failed.name = "sptuner[2024-09-11]";
  failed.status = "failed";
  failed.error = "boom: line 3";
  manifest.stages.push_back(failed);

  std::string error;
  const auto parsed = RunManifest::from_json(manifest.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->campaign, manifest.campaign);
  EXPECT_EQ(parsed->config, manifest.config);
  ASSERT_EQ(parsed->stages.size(), 2u);
  EXPECT_EQ(parsed->stages[0], manifest.stages[0]);
  EXPECT_EQ(parsed->stages[1], manifest.stages[1]);
}

TEST(PipelineManifest, RejectsMalformedDocuments) {
  for (const std::string_view bad : {
           std::string_view{""},
           std::string_view{"{"},
           std::string_view{"{\"version\": 2, \"campaign\": \"x\", \"stages\": []}"},
           std::string_view{"{\"version\": 1, \"unknown\": 3}"},
           std::string_view{"{\"version\": 1, \"stages\": []} trailing"},
       }) {
    std::string error;
    EXPECT_FALSE(RunManifest::from_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(PipelineCheckpoint, HashHexRoundTripsAndRejectsGarbage) {
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xFFFFFFFFFFFFFFFF}, kFnvBasis}) {
    const std::string hex = hash_hex(value);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(parse_hash_hex(hex), value);
  }
  EXPECT_FALSE(parse_hash_hex("").has_value());
  EXPECT_FALSE(parse_hash_hex("123").has_value());
  EXPECT_FALSE(parse_hash_hex("zzzzzzzzzzzzzzzz").has_value());
}

TEST(PipelineCheckpoint, AtomicWriteHashAndFinalize) {
  const std::string dir = fresh_dir("sp_checkpoint_files");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/artifact.txt";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "hello checkpoint", &error)) << error;
  EXPECT_EQ(read_file(path), "hello checkpoint");
  EXPECT_EQ(hash_file(path), fnv1a64("hello checkpoint"));
  EXPECT_FALSE(hash_file(dir + "/missing").has_value());

  // finalize_output publishes a streamed temp file under the final name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "second version";
  }
  ASSERT_TRUE(finalize_output(tmp, path, &error)) << error;
  EXPECT_EQ(read_file(path), "second version");
  EXPECT_FALSE(std::filesystem::exists(tmp));
}

}  // namespace
}  // namespace sp::pipeline
