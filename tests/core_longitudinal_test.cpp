// Tests for the longitudinal tracker (Figure 7) and pair-change
// classification (Figure 10).
#include "core/longitudinal.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace sp::core {
namespace {

using testsupport::ScenarioBuilder;

Prefix p(const char* text) { return Prefix::must_parse(text); }

bgp::Rib simple_rib() {
  bgp::Rib rib;
  rib.add_route(p("20.1.0.0/16"), 1);
  rib.add_route(p("20.2.0.0/16"), 2);
  rib.add_route(p("2620:100::/32"), 3);
  return rib;
}

dns::ResolutionSnapshot snapshot_with(
    Date date,
    std::initializer_list<std::tuple<const char*, const char*, const char*>> domains) {
  dns::ResolutionSnapshot snapshot(date);
  for (const auto& [name, v4, v6] : domains) {
    dns::DomainResolution entry;
    entry.queried = dns::DomainName::must_parse(name);
    entry.response_name = entry.queried;
    entry.v4.push_back(*IPv4Address::from_string(v4));
    entry.v6.push_back(*IPv6Address::from_string(v6));
    snapshot.add(std::move(entry));
  }
  return snapshot;
}

TEST(LongitudinalTracker, VisibilityHistogramAndCdf) {
  const auto rib = simple_rib();
  LongitudinalTracker tracker;
  // stable.example appears in all 3 snapshots, flaky.example in 1,
  // mid.example in 2.
  tracker.add_snapshot(snapshot_with(Date{2024, 7, 10},
                                     {{"stable.example", "20.1.0.1", "2620:100::1"},
                                      {"flaky.example", "20.2.0.1", "2620:100::2"}}),
                       rib);
  tracker.add_snapshot(snapshot_with(Date{2024, 8, 14},
                                     {{"stable.example", "20.1.0.1", "2620:100::1"},
                                      {"mid.example", "20.2.0.2", "2620:100::3"}}),
                       rib);
  tracker.add_snapshot(snapshot_with(Date{2024, 9, 11},
                                     {{"stable.example", "20.1.0.1", "2620:100::1"},
                                      {"mid.example", "20.2.0.2", "2620:100::3"}}),
                       rib);

  EXPECT_EQ(tracker.snapshot_count(), 3u);
  EXPECT_EQ(tracker.tracked_domain_count(), 3u);
  EXPECT_EQ(tracker.visibility_histogram(), (std::vector<std::size_t>{1, 1, 1}));
  const auto cdf = tracker.visibility_cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_EQ(tracker.consistent_domain_count(), 1u);
}

TEST(LongitudinalTracker, StabilityDetectsPrefixAndAddressChanges) {
  const auto rib = simple_rib();
  LongitudinalTracker tracker;
  // Two consistent domains. "mover.example" changes its v4 prefix between
  // snapshot 0 and 1 (20.2 → 20.1) and its address; "fixed.example" never
  // changes.
  tracker.add_snapshot(snapshot_with(Date{2024, 7, 10},
                                     {{"fixed.example", "20.1.0.1", "2620:100::1"},
                                      {"mover.example", "20.2.0.9", "2620:100::9"}}),
                       rib);
  tracker.add_snapshot(snapshot_with(Date{2024, 8, 14},
                                     {{"fixed.example", "20.1.0.1", "2620:100::1"},
                                      {"mover.example", "20.1.0.9", "2620:100::9"}}),
                       rib);
  tracker.add_snapshot(snapshot_with(Date{2024, 9, 11},
                                     {{"fixed.example", "20.1.0.1", "2620:100::1"},
                                      {"mover.example", "20.1.0.9", "2620:100::9"}}),
                       rib);

  const auto series = tracker.stability();
  ASSERT_EQ(series.v4_prefix_stable.size(), 3u);
  // Index 0: newest vs itself.
  EXPECT_DOUBLE_EQ(series.v4_prefix_stable[0], 1.0);
  // Index 1 (one snapshot back): both unchanged.
  EXPECT_DOUBLE_EQ(series.v4_prefix_stable[1], 1.0);
  // Index 2 (two back): mover had a different v4 prefix and address.
  EXPECT_DOUBLE_EQ(series.v4_prefix_stable[2], 0.5);
  EXPECT_DOUBLE_EQ(series.v6_prefix_stable[2], 1.0);
  EXPECT_DOUBLE_EQ(series.v4_address_stable[2], 0.5);
  EXPECT_DOUBLE_EQ(series.v6_address_stable[2], 1.0);
  EXPECT_DOUBLE_EQ(series.address_stable[2], 0.5);
}

TEST(LongitudinalTracker, EmptyTrackerIsWellBehaved) {
  LongitudinalTracker tracker;
  EXPECT_TRUE(tracker.visibility_histogram().empty());
  EXPECT_TRUE(tracker.visibility_cdf().empty());
  EXPECT_EQ(tracker.consistent_domain_count(), 0u);
  EXPECT_TRUE(tracker.stability().v4_prefix_stable.empty());
}

TEST(PairChanges, ClassifiesUnchangedChangedAndNew) {
  const auto make = [](const char* v4, const char* v6, double similarity) {
    SiblingPair pair;
    pair.v4 = Prefix::must_parse(v4);
    pair.v6 = Prefix::must_parse(v6);
    pair.similarity = similarity;
    return pair;
  };
  const std::vector<SiblingPair> old_pairs = {
      make("20.1.0.0/16", "2620:100::/48", 1.0),
      make("20.2.0.0/16", "2620:200::/48", 0.8),
      make("20.3.0.0/16", "2620:300::/48", 0.6),  // disappears
  };
  const std::vector<SiblingPair> new_pairs = {
      make("20.1.0.0/16", "2620:100::/48", 1.0),  // unchanged
      make("20.2.0.0/16", "2620:200::/48", 0.4),  // changed (0.8 → 0.4)
      make("20.9.0.0/16", "2620:900::/48", 1.0),  // new
  };

  const auto report = classify_pair_changes(old_pairs, new_pairs);
  ASSERT_EQ(report.unchanged.size(), 1u);
  EXPECT_DOUBLE_EQ(report.unchanged[0], 1.0);
  ASSERT_EQ(report.changed_old.size(), 1u);
  EXPECT_DOUBLE_EQ(report.changed_old[0], 0.8);
  EXPECT_DOUBLE_EQ(report.changed_new[0], 0.4);
  ASSERT_EQ(report.fresh.size(), 1u);
  EXPECT_DOUBLE_EQ(report.fresh[0], 1.0);
}

}  // namespace
}  // namespace sp::core
