// Tests for the reserved/special-purpose address classification the
// pipeline uses to discard non-routable DNS answers (paper section 2.2).
#include <gtest/gtest.h>

#include "netbase/ip.h"

namespace sp {
namespace {

TEST(ReservedV4, PrivateAndSpecialRangesAreReserved) {
  for (const char* address :
       {"0.1.2.3", "10.0.0.1", "10.255.255.255", "100.64.0.1", "100.127.255.255",
        "127.0.0.1", "169.254.10.20", "172.16.0.1", "172.31.255.254", "192.0.2.55",
        "192.168.1.1", "198.18.0.1", "198.19.255.255", "198.51.100.1", "203.0.113.9",
        "224.0.0.1", "239.255.255.255", "240.0.0.1", "255.255.255.255"}) {
    EXPECT_TRUE(is_reserved(*IPv4Address::from_string(address))) << address;
  }
}

TEST(ReservedV4, GlobalRangesAreNotReserved) {
  for (const char* address :
       {"1.1.1.1", "8.8.8.8", "5.0.0.1", "100.63.255.255", "100.128.0.0", "126.255.255.255",
        "128.0.0.1", "169.253.0.1", "172.15.255.255", "172.32.0.0", "192.0.3.1",
        "192.167.255.255", "192.169.0.0", "198.17.255.255", "198.20.0.0", "198.51.99.1",
        "203.0.112.1", "223.255.255.255"}) {
    EXPECT_FALSE(is_reserved(*IPv4Address::from_string(address))) << address;
  }
}

TEST(ReservedV6, NonGlobalUnicastIsReserved) {
  for (const char* address : {"::", "::1", "fe80::1", "fc00::1", "fd12::1", "ff02::1",
                              "::ffff:1.2.3.4", "2001:db8::1", "2001:db8:ffff::42"}) {
    EXPECT_TRUE(is_reserved(*IPv6Address::from_string(address))) << address;
  }
}

TEST(ReservedV6, GlobalUnicastIsNotReserved) {
  for (const char* address : {"2001:4860:4860::8888", "2600::1", "2620:100::1",
                              "2a00:1450::1", "3fff:ffff::1", "2001:db9::1"}) {
    EXPECT_FALSE(is_reserved(*IPv6Address::from_string(address))) << address;
  }
}

TEST(Reserved, FamilyErasedDispatch) {
  EXPECT_TRUE(is_reserved(IPAddress::must_parse("10.1.2.3")));
  EXPECT_FALSE(is_reserved(IPAddress::must_parse("5.1.2.3")));
  EXPECT_TRUE(is_reserved(IPAddress::must_parse("fe80::1")));
  EXPECT_FALSE(is_reserved(IPAddress::must_parse("2620:100::1")));
}

}  // namespace
}  // namespace sp
