// Tests for the sp::obs metrics registry: counter/gauge semantics,
// log₂ histogram bucketing and quantile estimation, scrape JSON, and —
// the part TSan exists for — concurrent increments racing a scrape.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sp::obs {
namespace {

TEST(ObsMetrics, CounterSumsAcrossShardsAndHandles) {
  MetricsRegistry registry;
  const Counter a = registry.counter("test.count");
  const Counter b = registry.counter("test.count");  // same cell by name
  a.add();
  a.add(41);
  b.add(58);
  EXPECT_EQ(a.value(), 100);
  EXPECT_EQ(b.value(), 100);
}

TEST(ObsMetrics, DefaultConstructedHandlesAreInertNoOps) {
  const Counter counter;
  const Gauge gauge;
  const Histogram histogram;
  counter.add();
  gauge.add(5);
  histogram.record(7);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(HistogramSnapshot::of(histogram).count, 0u);
}

TEST(ObsMetrics, GaugeMovesBothWaysAndIsSeparateFromCounters) {
  MetricsRegistry registry;
  const Gauge depth = registry.gauge("test.depth");
  depth.add(3);
  depth.sub();
  depth.sub();
  EXPECT_EQ(depth.value(), 1);

  const auto snapshot = registry.scrape();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].first, "test.depth");
  EXPECT_EQ(snapshot.gauges[0].second, 1);
  EXPECT_TRUE(snapshot.counters.empty());
}

TEST(ObsMetrics, HistogramBucketsByLog2) {
  // bucket_of(v) == bit_width(v): 0→0, 1→1, [2,3]→2, [4,7]→3, ...
  EXPECT_EQ(detail::HistogramCell::bucket_of(0), 0u);
  EXPECT_EQ(detail::HistogramCell::bucket_of(1), 1u);
  EXPECT_EQ(detail::HistogramCell::bucket_of(2), 2u);
  EXPECT_EQ(detail::HistogramCell::bucket_of(3), 2u);
  EXPECT_EQ(detail::HistogramCell::bucket_of(4), 3u);
  EXPECT_EQ(detail::HistogramCell::bucket_of(7), 3u);
  EXPECT_EQ(detail::HistogramCell::bucket_of(8), 4u);
  // bit_width saturates into the last bucket instead of indexing past it.
  EXPECT_EQ(detail::HistogramCell::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);

  MetricsRegistry registry;
  const Histogram histogram = registry.histogram("test.us");
  histogram.record(0);
  histogram.record(1);
  histogram.record(5);
  histogram.record(5);
  const auto snapshot = HistogramSnapshot::of(histogram);
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_EQ(snapshot.sum, 11u);
  EXPECT_EQ(snapshot.max, 5u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[3], 2u);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 11.0 / 4.0);
}

TEST(ObsMetrics, QuantilesInterpolateAndClampToMax) {
  MetricsRegistry registry;
  const Histogram histogram = registry.histogram("test.q");
  // 100 samples of 10 (bucket [8,16)), 1 sample of 1000.
  for (int i = 0; i < 100; ++i) histogram.record(10);
  histogram.record(1000);
  const auto snapshot = HistogramSnapshot::of(histogram);
  const double p50 = snapshot.quantile(0.50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);  // within the covering log₂ bucket
  // p100 and anything landing in the top occupied bucket clamp to max.
  EXPECT_DOUBLE_EQ(snapshot.quantile(1.0), 1000.0);
  EXPECT_EQ(snapshot.max, 1000u);
  // Empty histogram: all quantiles are 0.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantile(0.99), 0.0);
}

TEST(ObsMetrics, QuantilesAreMonotoneInP) {
  MetricsRegistry registry;
  const Histogram histogram = registry.histogram("test.mono");
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const auto snapshot = HistogramSnapshot::of(histogram);
  double previous = 0.0;
  for (const double p : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double q = snapshot.quantile(p);
    EXPECT_GE(q, previous) << "p=" << p;
    previous = q;
  }
  EXPECT_LE(previous, 1000.0);
}

TEST(ObsMetrics, ScrapeJsonIsWellFormedAndSorted) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("z.depth").add(7);
  registry.histogram("lat.us").record(5);

  const auto snapshot = registry.scrape();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.count");  // sorted by name
  EXPECT_EQ(snapshot.counters[1].first, "b.count");

  const std::string json = snapshot.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"z.depth\":7"), std::string::npos);
  EXPECT_NE(json.find("\"lat.us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsMetrics, GlobalRegistryIsProcessWide) {
  const Counter a = MetricsRegistry::global().counter("obs_test.global");
  const Counter b = MetricsRegistry::global().counter("obs_test.global");
  const std::int64_t before = a.value();
  b.add(3);
  EXPECT_EQ(a.value(), before + 3);
}

// The TSan target: many threads hammer one counter, one gauge and one
// histogram while another thread scrapes concurrently. Correctness
// assertion is the final total once quiesced; TSan asserts the absence of
// data races on the way there.
TEST(ObsMetricsConcurrency, ParallelIncrementsRaceScrape) {
  MetricsRegistry registry;
  const Counter counter = registry.counter("race.count");
  const Gauge gauge = registry.gauge("race.depth");
  const Histogram histogram = registry.histogram("race.us");

  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::atomic<bool> done{false};

  std::thread scraper([&] {
    std::int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snapshot = registry.scrape();
      for (const auto& [name, value] : snapshot.counters) {
        if (name == "race.count") {
          EXPECT_GE(value, last);  // counter totals never move backwards
          last = value;
        }
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter.add();
        gauge.add(1);
        histogram.record(static_cast<std::uint64_t>((t * kIterations + i) % 1024));
        gauge.sub(1);
      }
    });
  }
  for (auto& thread : writers) thread.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kThreads) * kIterations);
  EXPECT_EQ(gauge.value(), 0);  // every add paired with a sub
  const auto snapshot = HistogramSnapshot::of(histogram);
  EXPECT_EQ(snapshot.count, static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(ObsMetricsConcurrency, RegistrationRacesLookup) {
  // find-or-create from many threads: same name must yield the same cell.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("shared." + std::to_string(i % 10)).add();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::int64_t total = 0;
  for (const auto& [name, value] : registry.scrape().counters) total += value;
  EXPECT_EQ(total, kThreads * 200);
}

}  // namespace
}  // namespace sp::obs
