// --trace span coverage: a traced campaign run records not just the
// per-stage spans (stage_graph.cpp) but the inner phases of the
// interesting stages — evolve's read/replay/write, export's
// render/write, the sibdb conversion, and the sibdelta load/diff/write —
// plus the serve-side sibdb writer spans, so a Perfetto view shows where
// a month's wall time actually goes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/sibling_list_io.h"
#include "obs/trace.h"
#include "pipeline/campaign.h"
#include "serve/sibdb.h"

namespace sp::pipeline {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PipelineTrace, CampaignTraceRecordsInnerPhaseSpans) {
  const std::string dir = ::testing::TempDir() + "/trace_campaign";
  std::filesystem::remove_all(dir);
  CampaignConfig config;
  config.synth.months = 2;
  config.synth.organization_count = 40;
  config.synth.probe_count = 40;
  config.threads = 2;
  config.out_dir = dir;
  config.trace_path = dir + "/trace.json";

  const auto report = Campaign(config).run(/*resume=*/false);
  ASSERT_TRUE(report.error.empty()) << report.error;
  const std::string trace = read_file(config.trace_path);

  // Stage spans (already covered elsewhere) and the new phase spans.
  for (const char* name :
       {"\"evolve.read_rib\"", "\"evolve.replay\"", "\"evolve.write\"", "\"export.render\"",
        "\"export.write_csv\"", "\"sibdb.write\"", "\"sibdelta.load\"", "\"sibdelta.diff\"",
        "\"sibdelta.write\""}) {
    EXPECT_NE(trace.find(name), std::string::npos) << name;
  }
  EXPECT_NE(trace.find("\"phase\""), std::string::npos);
}

TEST(PipelineTrace, SibdbConversionEmitsServeSpans) {
  const std::string dir = ::testing::TempDir();
  const std::string csv = dir + "/trace_convert.csv";
  const std::string sibdb = dir + "/trace_convert.sibdb";
  ASSERT_TRUE(core::write_sibling_list(csv, {}));

  obs::TraceRecorder recorder;
  obs::TraceRecorder::set_active(&recorder);
  std::string error;
  const bool ok = serve::convert_sibling_list(csv, sibdb, &error);
  obs::TraceRecorder::set_active(nullptr);
  ASSERT_TRUE(ok) << error;

  bool saw_convert = false;
  bool saw_write = false;
  for (const obs::TraceEvent& event : recorder.events()) {
    if (event.name == "sibdb.convert" && event.category == "serve") saw_convert = true;
    if (event.name == "sibdb.write" && event.category == "serve") saw_write = true;
  }
  EXPECT_TRUE(saw_convert);
  EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace sp::pipeline
