// Tests for the synthetic Internet generator: determinism, structural
// consistency (addresses inside prefixes, RIB coverage), and the headline
// pipeline shapes (dataset growth, perfect-match share, SP-Tuner lift).
#include "synth/universe.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/stats.h"
#include "core/detect.h"
#include "core/sptuner.h"
#include "synth/determinism.h"

namespace sp::synth {
namespace {

SynthConfig small_config() {
  SynthConfig config;
  config.organization_count = 150;
  config.months = 13;
  config.hg_prefix_scale = 0.01;
  config.monitoring_v4_prefixes = 16;
  config.monitoring_v6_prefixes = 6;
  config.probe_count = 300;
  return config;
}

const SyntheticInternet& small_universe() {
  static const SyntheticInternet universe(small_config());
  return universe;
}

TEST(Determinism, MixAndUnitAreStable) {
  EXPECT_EQ(mix(1, 2, 3), mix(1, 2, 3));
  EXPECT_NE(mix(1, 2, 3), mix(1, 2, 4));
  const double u = unit(42, 7);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_EQ(u, unit(42, 7));
  EXPECT_LT(pick(10, 5, 6), 10u);
  EXPECT_EQ(pick(0, 1), 0u);
}

TEST(HostAddresses, StayInsidePrefixAndSeparateGroups) {
  const Prefix v4 = Prefix::must_parse("20.7.0.0/16");
  for (unsigned group = 0; group < 16; ++group) {
    for (std::uint64_t salt = 0; salt < 50; ++salt) {
      const IPv4Address address = v4_host_address(v4, group, salt);
      ASSERT_TRUE(v4.contains(IPAddress(address)));
      // The group occupies the top 4 host bits.
      ASSERT_EQ((address.value() >> 12) & 0xF, group);
    }
  }
  const Prefix v6 = Prefix::must_parse("2600:7::/32");
  for (unsigned group = 0; group < 16; ++group) {
    const IPv6Address address = v6_host_address(v6, group, 9);
    ASSERT_TRUE(v6.contains(IPAddress(address)));
    ASSERT_EQ((address.group(2) >> 12) & 0xF, group);
  }
}

TEST(HostAddresses, HandleTinyAndDeepPrefixes) {
  const Prefix tiny = Prefix::must_parse("20.7.0.0/30");
  for (std::uint64_t salt = 0; salt < 20; ++salt) {
    EXPECT_TRUE(tiny.contains(IPAddress(v4_host_address(tiny, 3, salt))));
  }
  const Prefix deep = Prefix::must_parse("2600:7::/100");
  for (std::uint64_t salt = 0; salt < 20; ++salt) {
    EXPECT_TRUE(deep.contains(IPAddress(v6_host_address(deep, 3, salt))));
  }
}

TEST(SyntheticInternet, IsDeterministic) {
  const SyntheticInternet a(small_config());
  const SyntheticInternet b(small_config());
  ASSERT_EQ(a.orgs().size(), b.orgs().size());
  ASSERT_EQ(a.domains().size(), b.domains().size());
  const auto snap_a = a.snapshot_at(a.month_count() - 1);
  const auto snap_b = b.snapshot_at(b.month_count() - 1);
  ASSERT_EQ(snap_a.domain_count(), snap_b.domain_count());
  for (std::size_t i = 0; i < snap_a.entries().size(); ++i) {
    ASSERT_EQ(snap_a.entries()[i].queried, snap_b.entries()[i].queried);
    ASSERT_EQ(snap_a.entries()[i].v4, snap_b.entries()[i].v4);
    ASSERT_EQ(snap_a.entries()[i].v6, snap_b.entries()[i].v6);
  }
}

TEST(SyntheticInternet, DatesMapToMonths) {
  const auto& universe = small_universe();
  EXPECT_EQ(universe.date_of_month(universe.month_count() - 1).to_string(), "2024-09-11");
  EXPECT_EQ(universe.month_index(Date{2024, 9, 11}), universe.month_count() - 1);
  EXPECT_EQ(universe.month_index(universe.date_of_month(0)), 0);
}

TEST(SyntheticInternet, PrefixesAreDisjointPerFamily) {
  const auto& universe = small_universe();
  std::vector<Prefix> all;
  for (const auto& org : universe.orgs()) {
    all.insert(all.end(), org.v4_prefixes.begin(), org.v4_prefixes.end());
    all.insert(all.end(), org.v6_prefixes.begin(), org.v6_prefixes.end());
  }
  PrefixTrie<int> trie;
  for (const auto& prefix : all) {
    // No prefix may nest inside another (longest-match would be ambiguous
    // relative to the generator's intent).
    ASSERT_FALSE(trie.longest_match(prefix).has_value()) << prefix.to_string();
    trie.insert(prefix, 1);
  }
  EXPECT_EQ(trie.size(), all.size());
}

TEST(SyntheticInternet, RibResolvesEveryGeneratedAddress) {
  const auto& universe = small_universe();
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  ASSERT_GT(snapshot.domain_count(), 100u);
  for (const auto& entry : snapshot.entries()) {
    for (const auto& address : entry.v4) {
      ASSERT_FALSE(is_reserved(address));
      const auto route = universe.rib().lookup(IPAddress(address));
      ASSERT_TRUE(route.has_value()) << address.to_string();
      ASSERT_NE(universe.org_by_asn(route->origin_as), nullptr);
    }
    for (const auto& address : entry.v6) {
      ASSERT_FALSE(is_reserved(address));
      ASSERT_TRUE(universe.rib().lookup(IPAddress(address)).has_value())
          << address.to_string();
    }
  }
}

TEST(SyntheticInternet, MrtDumpRoundTripsThroughCodec) {
  const auto& universe = small_universe();
  const auto dump = universe.mrt_dump();
  ASSERT_GT(dump.size(), 100u);
  EXPECT_TRUE(std::holds_alternative<mrt::PeerIndexTable>(dump.front().body));
  // rib() was already built through encode→decode; spot-check one prefix.
  const auto& org = universe.orgs().front();
  ASSERT_FALSE(org.v4_prefixes.empty());
  EXPECT_EQ(universe.rib().origin_as(org.v4_prefixes.front()), org.v4_asn);
}

TEST(SyntheticInternet, DomainCountsGrowOverTime) {
  const auto& universe = small_universe();
  const auto first = universe.snapshot_at(0);
  const auto last = universe.snapshot_at(universe.month_count() - 1);
  EXPECT_GT(last.domain_count(), first.domain_count());
  // Dual-stack share in a plausible band and growing.
  const double share_first =
      static_cast<double>(first.dual_stack_count()) / first.domain_count();
  const double share_last =
      static_cast<double>(last.dual_stack_count()) / last.domain_count();
  EXPECT_GT(share_first, 0.10);
  EXPECT_LT(share_last, 0.55);
  EXPECT_GT(share_last, share_first - 0.03);
}

TEST(SyntheticInternet, OrgDatabasesArePopulated) {
  const auto& universe = small_universe();
  const auto& org = universe.orgs().front();
  ASSERT_NE(universe.as_orgs().org_name(org.v4_asn), nullptr);
  EXPECT_EQ(*universe.as_orgs().org_name(org.v4_asn), org.name);
  EXPECT_TRUE(universe.as_orgs().same_org(org.v4_asn, org.v6_asn));
  EXPECT_FALSE(universe.asdb().categories(org.v4_asn).empty());
  EXPECT_EQ(universe.catalog().size(), 24u);
}

TEST(SyntheticInternet, RpkiDeploymentGrows) {
  const auto& universe = small_universe();
  const auto early = universe.roas_at(0);
  const auto late = universe.roas_at(universe.month_count() - 1);
  EXPECT_GT(late.size(), early.size());
  rpki::Validator validator;
  for (const auto& roa : late) ASSERT_TRUE(validator.add_roa(roa));
}

TEST(SyntheticInternet, ProbesAreGenerated) {
  const auto& universe = small_universe();
  const auto probes = universe.probes();
  ASSERT_EQ(probes.size(), 300u);
  for (const auto& probe : probes) {
    EXPECT_TRUE(probe.v4.is_v4());
    EXPECT_TRUE(probe.v6.is_v6());
  }
}

TEST(SyntheticInternet, PortScanRespondsForMostPairsButNotAll) {
  const auto& universe = small_universe();
  const auto scan_data = universe.port_scan();
  EXPECT_GT(scan_data.responsive_address_count(), 100u);
}

// The headline end-to-end shape: detection finds pairs, roughly half of
// them perfect in the default case, and SP-Tuner lifts the perfect share
// substantially (the paper's 52% → 82%).
TEST(SyntheticInternet, PipelineReproducesHeadlineShape) {
  const auto& universe = small_universe();
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  ASSERT_GT(corpus.ds_domain_count(), 50u);

  const auto pairs = core::detect_sibling_prefixes(corpus);
  ASSERT_GT(pairs.size(), 50u);

  const analysis::Cdf default_cdf(core::similarity_values(pairs));
  const double default_perfect = default_cdf.fraction_at_least(1.0);
  EXPECT_GT(default_perfect, 0.30);
  EXPECT_LT(default_perfect, 0.85);

  const core::SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto tuned = tuner.tune_all(pairs);
  const analysis::Cdf tuned_cdf(core::similarity_values(tuned.pairs));
  const double tuned_perfect = tuned_cdf.fraction_at_least(1.0);
  EXPECT_GT(tuned_perfect, default_perfect + 0.10);
  EXPECT_GT(tuned_perfect, 0.60);
}

// Monitoring org: single-domain prefixes across many different orgs must
// produce different-organization sibling pairs (the site24x7 effect).
TEST(SyntheticInternet, MonitoringOrgCreatesCrossOrgPairs) {
  const auto& universe = small_universe();
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);

  std::size_t different_org = 0;
  for (const auto& pair : pairs) {
    const auto v4_route = universe.rib().lookup(pair.v4);
    const auto v6_route = universe.rib().lookup(pair.v6);
    ASSERT_TRUE(v4_route.has_value());
    ASSERT_TRUE(v6_route.has_value());
    if (!universe.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as)) {
      ++different_org;
    }
  }
  // At least the monitoring grid (16×6 minus silent overlaps) shows up.
  EXPECT_GT(different_org, 50u);
}

}  // namespace
}  // namespace sp::synth
