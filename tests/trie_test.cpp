// Unit and property tests for the Patricia prefix trie, including an
// exhaustive comparison against a naive oracle implementation.
#include "trie/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>

namespace sp {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(PrefixTrie, InsertAndExactFind) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.1.0.0/16"), 2);
  trie.insert(p("2001:db8::/32"), 3);

  EXPECT_EQ(trie.size(), 3u);
  ASSERT_NE(trie.find(p("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(p("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find(p("10.1.0.0/16")), 2);
  EXPECT_EQ(*trie.find(p("2001:db8::/32")), 3);
  EXPECT_EQ(trie.find(p("10.0.0.0/9")), nullptr);
  EXPECT_EQ(trie.find(p("10.2.0.0/16")), nullptr);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<std::string> trie;
  trie.insert(p("10.0.0.0/8"), "old");
  trie.insert(p("10.0.0.0/8"), "new");
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(p("10.0.0.0/8")), "new");
}

TEST(PrefixTrie, IndexOperatorCreatesDefault) {
  PrefixTrie<int> trie;
  trie[p("192.0.2.0/24")] += 5;
  trie[p("192.0.2.0/24")] += 7;
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(p("192.0.2.0/24")), 12);
}

TEST(PrefixTrie, LongestMatchPicksMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);
  trie.insert(p("10.1.2.0/24"), 24);

  const auto hit = trie.longest_match(IPAddress::must_parse("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, p("10.1.2.0/24"));
  EXPECT_EQ(*hit->second, 24);

  const auto mid = trie.longest_match(IPAddress::must_parse("10.1.9.9"));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->first, p("10.1.0.0/16"));

  const auto top = trie.longest_match(IPAddress::must_parse("10.200.0.1"));
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->first, p("10.0.0.0/8"));

  EXPECT_FALSE(trie.longest_match(IPAddress::must_parse("11.0.0.1")).has_value());
  EXPECT_FALSE(trie.longest_match(IPAddress::must_parse("2001:db8::1")).has_value());
}

TEST(PrefixTrie, LongestMatchOnPrefixKey) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);

  // A /12 inside 10/8 but above 10.1/16 matches the /8.
  const auto hit = trie.longest_match(p("10.0.0.0/12"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, p("10.0.0.0/8"));

  // The stored key itself is a valid longest match.
  const auto self = trie.longest_match(p("10.1.0.0/16"));
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->first, p("10.1.0.0/16"));
}

TEST(PrefixTrie, ParentSkipsSelf) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);

  const auto parent = trie.parent(p("10.1.0.0/16"));
  ASSERT_TRUE(parent.has_value());
  EXPECT_EQ(parent->first, p("10.0.0.0/8"));
  EXPECT_FALSE(trie.parent(p("10.0.0.0/8")).has_value());
}

TEST(PrefixTrie, VisitCoveredEnumeratesSubtree) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.1.0.0/16"), 2);
  trie.insert(p("10.1.2.0/24"), 3);
  trie.insert(p("10.200.0.0/16"), 4);
  trie.insert(p("11.0.0.0/8"), 5);

  const auto covered = trie.covered_keys(p("10.1.0.0/16"));
  EXPECT_EQ(covered, (std::vector<Prefix>{p("10.1.0.0/16"), p("10.1.2.0/24")}));

  const auto all_ten = trie.covered_keys(p("10.0.0.0/8"));
  EXPECT_EQ(all_ten.size(), 4u);

  EXPECT_TRUE(trie.covered_keys(p("12.0.0.0/8")).empty());
}

TEST(PrefixTrie, FamiliesAreIsolated) {
  PrefixTrie<int> trie;
  trie.insert(p("0.0.0.0/0"), 4);
  trie.insert(p("::/0"), 6);
  EXPECT_EQ(*trie.find(p("0.0.0.0/0")), 4);
  EXPECT_EQ(*trie.find(p("::/0")), 6);
  const auto v6_hit = trie.longest_match(IPAddress::must_parse("2001:db8::1"));
  ASSERT_TRUE(v6_hit.has_value());
  EXPECT_EQ(*v6_hit->second, 6);
}

TEST(PrefixTrie, EraseRemovesAndPrunes) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.1.2.0/24"), 2);
  trie.insert(p("10.1.3.0/24"), 3);

  EXPECT_TRUE(trie.erase(p("10.1.2.0/24")));
  EXPECT_FALSE(trie.erase(p("10.1.2.0/24")));
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(trie.find(p("10.1.2.0/24")), nullptr);
  EXPECT_NE(trie.find(p("10.1.3.0/24")), nullptr);

  // Erasing a prefix with children keeps the children reachable.
  EXPECT_TRUE(trie.erase(p("10.0.0.0/8")));
  EXPECT_NE(trie.find(p("10.1.3.0/24")), nullptr);
  const auto hit = trie.longest_match(IPAddress::must_parse("10.1.3.77"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, p("10.1.3.0/24"));
}

TEST(PrefixTrie, EraseMissingReturnsFalse) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  EXPECT_FALSE(trie.erase(p("10.0.0.0/9")));
  EXPECT_FALSE(trie.erase(p("11.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, SplitNodeScenario) {
  // Insert two diverging prefixes whose common covering prefix is valueless,
  // then verify the join node does not appear in lookups.
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/10"), 1);
  trie.insert(p("10.64.0.0/10"), 2);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(trie.find(p("10.0.0.0/8")), nullptr);  // join node, no value
  EXPECT_FALSE(trie.longest_match(IPAddress::must_parse("10.128.0.1")).has_value());
  const auto left = trie.longest_match(IPAddress::must_parse("10.1.0.1"));
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(*left->second, 1);
}

TEST(PrefixTrie, VisitAncestorsWalksPathLeastSpecificFirst) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);
  trie.insert(p("10.1.2.0/24"), 24);
  trie.insert(p("10.200.0.0/16"), 99);  // off-path

  std::vector<Prefix> visited;
  trie.visit_ancestors(p("10.1.2.0/24"),
                       [&visited](const Prefix& prefix, const int&) {
                         visited.push_back(prefix);
                       });
  EXPECT_EQ(visited, (std::vector<Prefix>{p("10.0.0.0/8"), p("10.1.0.0/16"),
                                          p("10.1.2.0/24")}));

  visited.clear();
  trie.visit_ancestors(p("10.1.2.128/25"),
                       [&visited](const Prefix& prefix, const int&) {
                         visited.push_back(prefix);
                       });
  EXPECT_EQ(visited.size(), 3u);  // the /24 covers the /25 key

  visited.clear();
  trie.visit_ancestors(p("11.0.0.0/8"), [&visited](const Prefix& prefix, const int&) {
    visited.push_back(prefix);
  });
  EXPECT_TRUE(visited.empty());
}

// ---------------------------------------------------------------------------
// Property tests against a naive oracle: a std::map scanned linearly.
// ---------------------------------------------------------------------------

class TrieOracleProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TrieOracleProperty, MatchesNaiveOracle) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> len4(0, 32);
  std::uniform_int_distribution<int> len6(0, 128);
  std::uniform_int_distribution<int> family_dist(0, 1);
  std::uniform_int_distribution<int> op_dist(0, 9);

  PrefixTrie<int> trie;
  std::map<Prefix, int> oracle;

  const auto random_prefix = [&]() {
    if (family_dist(rng) == 0) {
      // Cluster v4 prefixes in 10/8 so nesting actually happens.
      const std::uint32_t base = 0x0A000000u | (word(rng) & 0x00FFFFFFu);
      return Prefix::of(IPAddress(IPv4Address(base)), static_cast<unsigned>(len4(rng)));
    }
    IPv6Address::Bytes bytes{};
    bytes[0] = 0x20;
    bytes[1] = 0x01;
    for (std::size_t i = 2; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(word(rng));
    return Prefix::of(IPAddress(IPv6Address(bytes)), static_cast<unsigned>(len6(rng)));
  };

  for (int step = 0; step < 4000; ++step) {
    const auto key = random_prefix();
    const int op = op_dist(rng);
    if (op < 6) {
      const int value = static_cast<int>(word(rng));
      trie.insert(key, value);
      oracle[key] = value;
    } else if (op < 8) {
      const bool trie_erased = trie.erase(key);
      const bool oracle_erased = oracle.erase(key) > 0;
      ASSERT_EQ(trie_erased, oracle_erased) << key.to_string();
    } else {
      // Exact lookup.
      const int* found = trie.find(key);
      const auto it = oracle.find(key);
      ASSERT_EQ(found != nullptr, it != oracle.end()) << key.to_string();
      if (found != nullptr) {
        ASSERT_EQ(*found, it->second);
      }

      // Longest match against linear scan.
      std::optional<Prefix> best;
      for (const auto& [stored, value] : oracle) {
        if (stored.contains(key) && (!best || stored.length() > best->length())) {
          best = stored;
        }
      }
      const auto hit = trie.longest_match(key);
      ASSERT_EQ(hit.has_value(), best.has_value()) << key.to_string();
      if (hit) {
        ASSERT_EQ(hit->first, *best) << key.to_string();
      }
    }
    ASSERT_EQ(trie.size(), oracle.size());
  }

  // Full enumeration agrees with the oracle key set.
  const auto keys = trie.keys();
  ASSERT_EQ(keys.size(), oracle.size());
  for (const auto& key : keys) {
    EXPECT_TRUE(oracle.contains(key)) << key.to_string();
  }

  // covered_keys agrees with a filtered oracle scan for random covers.
  for (int i = 0; i < 50; ++i) {
    const auto cover = random_prefix();
    std::vector<Prefix> expected;
    for (const auto& [stored, value] : oracle) {
      if (cover.contains(stored)) expected.push_back(stored);
    }
    std::sort(expected.begin(), expected.end());
    auto got = trie.covered_keys(cover);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << cover.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieOracleProperty,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u, 57u));

}  // namespace
}  // namespace sp
