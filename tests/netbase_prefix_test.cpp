// Unit and property tests for the Prefix CIDR type.
#include "netbase/prefix.h"

#include <gtest/gtest.h>

#include <random>

namespace sp {
namespace {

TEST(Prefix, ParsesAndCanonicalizesV4) {
  const auto p = Prefix::from_string("192.0.2.77/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "192.0.2.0/24");
  EXPECT_EQ(p->length(), 24u);
  EXPECT_EQ(p->family(), Family::v4);
}

TEST(Prefix, ParsesAndCanonicalizesV6) {
  const auto p = Prefix::from_string("2001:db8:abcd::42/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "2001:db8::/32");
  EXPECT_EQ(p->max_length(), 128u);
}

TEST(Prefix, ParsesEdgeLengths) {
  EXPECT_EQ(Prefix::must_parse("0.0.0.0/0").length(), 0u);
  EXPECT_EQ(Prefix::must_parse("10.1.2.3/32").to_string(), "10.1.2.3/32");
  EXPECT_EQ(Prefix::must_parse("::/0").length(), 0u);
  EXPECT_EQ(Prefix::must_parse("2001:db8::1/128").to_string(), "2001:db8::1/128");
}

TEST(Prefix, RejectsMalformedInput) {
  for (const char* bad : {"", "10.0.0.0", "/24", "10.0.0.0/", "10.0.0.0/33", "10.0.0.0/-1",
                          "10.0.0.0/024", "2001:db8::/129", "10.0.0.0/2 4", "x/24",
                          "10.0.0.0/24/8"}) {
    EXPECT_FALSE(Prefix::from_string(bad).has_value()) << bad;
  }
}

TEST(Prefix, ContainsAddress) {
  const auto p = Prefix::must_parse("192.0.2.0/24");
  EXPECT_TRUE(p.contains(IPAddress::must_parse("192.0.2.0")));
  EXPECT_TRUE(p.contains(IPAddress::must_parse("192.0.2.255")));
  EXPECT_FALSE(p.contains(IPAddress::must_parse("192.0.3.0")));
  EXPECT_FALSE(p.contains(IPAddress::must_parse("2001:db8::1")));
}

TEST(Prefix, ContainsPrefix) {
  const auto p = Prefix::must_parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Prefix::must_parse("10.1.0.0/16")));
  EXPECT_TRUE(p.contains(p));
  EXPECT_FALSE(p.contains(Prefix::must_parse("0.0.0.0/0")));
  EXPECT_FALSE(p.contains(Prefix::must_parse("11.0.0.0/8")));
  EXPECT_FALSE(Prefix::must_parse("10.1.0.0/16").contains(p));
}

TEST(Prefix, DefaultRouteContainsEverythingSameFamily) {
  const auto v4_default = Prefix::must_parse("0.0.0.0/0");
  EXPECT_TRUE(v4_default.contains(Prefix::must_parse("255.255.255.255/32")));
  EXPECT_FALSE(v4_default.contains(Prefix::must_parse("::/0")));
}

TEST(Prefix, SupernetWalksToRoot) {
  auto p = Prefix::must_parse("192.0.2.128/25");
  const char* expected[] = {"192.0.2.0/24", "192.0.2.0/23", "192.0.0.0/22"};
  for (const char* e : expected) {
    const auto up = p.supernet();
    ASSERT_TRUE(up.has_value());
    EXPECT_EQ(up->to_string(), e);
    p = *up;
  }
  EXPECT_FALSE(Prefix::must_parse("0.0.0.0/0").supernet().has_value());
}

TEST(Prefix, ChildrenPartitionTheParent) {
  const auto p = Prefix::must_parse("192.0.2.0/24");
  const auto left = p.child(0);
  const auto right = p.child(1);
  EXPECT_EQ(left.to_string(), "192.0.2.0/25");
  EXPECT_EQ(right.to_string(), "192.0.2.128/25");
  EXPECT_TRUE(p.contains(left));
  EXPECT_TRUE(p.contains(right));
  EXPECT_FALSE(left.contains(right));
  EXPECT_FALSE(right.contains(left));
}

TEST(Prefix, ChildOfFullLengthThrows) {
  EXPECT_THROW((void)Prefix::must_parse("1.2.3.4/32").child(0), std::logic_error);
}

TEST(Prefix, CommonCovering) {
  const auto a = Prefix::must_parse("192.0.2.0/25");
  const auto b = Prefix::must_parse("192.0.2.128/25");
  const auto common = Prefix::common_covering(a, b);
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(common->to_string(), "192.0.2.0/24");

  EXPECT_FALSE(
      Prefix::common_covering(a, Prefix::must_parse("2001:db8::/32")).has_value());
}

TEST(Prefix, CommonCoveringOfNestedIsTheOuter) {
  const auto outer = Prefix::must_parse("10.0.0.0/8");
  const auto inner = Prefix::must_parse("10.9.8.0/24");
  EXPECT_EQ(Prefix::common_covering(outer, inner), outer);
}

TEST(Prefix, AddressCountSaturates) {
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/24").address_count_saturated(), 256u);
  EXPECT_EQ(Prefix::must_parse("10.0.0.1/32").address_count_saturated(), 1u);
  EXPECT_EQ(Prefix::must_parse("2001:db8::/32").address_count_saturated(),
            ~std::uint64_t{0});
  EXPECT_EQ(Prefix::must_parse("2001:db8::/96").address_count_saturated(),
            std::uint64_t{1} << 32);
}

TEST(Prefix, OrderingIsTotalAndFamilyAware) {
  const auto a = Prefix::must_parse("10.0.0.0/8");
  const auto b = Prefix::must_parse("10.0.0.0/9");
  const auto c = Prefix::must_parse("2001:db8::/32");
  EXPECT_LT(a, b);  // same address, shorter length first
  EXPECT_NE(a, c);
  EXPECT_TRUE((a < c) != (c < a));
}

// Property sweep: canonical form, supernet/child inverses, containment.
class PrefixAlgebraProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrefixAlgebraProperty, InvariantsHoldOnRandomPrefixes) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<int> family_dist(0, 1);
  for (int i = 0; i < 3000; ++i) {
    IPAddress address;
    unsigned max_len;
    if (family_dist(rng) == 0) {
      address = IPAddress(IPv4Address(word(rng)));
      max_len = 32;
    } else {
      IPv6Address::Bytes bytes;
      for (auto& b : bytes) b = static_cast<std::uint8_t>(word(rng));
      address = IPAddress(IPv6Address(bytes));
      max_len = 128;
    }
    const unsigned len = word(rng) % (max_len + 1);
    const auto p = Prefix::of(address, len);

    // Canonical: re-deriving from its own address is a fixed point.
    EXPECT_EQ(Prefix::of(p.address(), p.length()), p);
    // The original address is inside the prefix.
    EXPECT_TRUE(p.contains(address));
    // Round-trip through text.
    EXPECT_EQ(Prefix::from_string(p.to_string()), p);

    if (len > 0) {
      const auto up = p.supernet();
      ASSERT_TRUE(up.has_value());
      EXPECT_TRUE(up->contains(p));
      EXPECT_EQ(up->length(), len - 1);
      // p is one of up's two children.
      EXPECT_TRUE(up->child(0) == p || up->child(1) == p);
    }
    if (len < max_len) {
      EXPECT_TRUE(p.contains(p.child(0)));
      EXPECT_TRUE(p.contains(p.child(1)));
      EXPECT_NE(p.child(0), p.child(1));
      EXPECT_EQ(p.child(0).supernet(), p);
      EXPECT_EQ(p.child(1).supernet(), p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixAlgebraProperty,
                         ::testing::Values(100u, 200u, 300u, 400u, 500u));

}  // namespace
}  // namespace sp
