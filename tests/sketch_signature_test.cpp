// Tests for the bottom-k signature layer: estimator exactness on small
// sets, the probabilistic error bound on large sets, shard-parallel build
// determinism, the canonical "SPSK" serialization (round-trip plus a
// battery of corrupt-blob rejections), LSH candidate correctness, and the
// SketchEstimator cache behaviour.
#include "sketch/signature.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/corpus.h"
#include "core/detect.h"
#include "core/detect_index.h"
#include "core/worker_pool.h"
#include "sketch/estimator.h"
#include "sketch/hash.h"
#include "sketch/lsh.h"

namespace sp::sketch {
namespace {

using core::DomainId;
using core::DomainSet;

Prefix p(const char* text) { return Prefix::must_parse(text); }

/// Builds a DetectIndex whose v4 side holds `sets` (one /24 per set) and
/// whose v6 side mirrors them (one /48 per set), so both families can be
/// signed from the same fixtures.
core::DetectIndex index_of(const std::vector<DomainSet>& sets) {
  std::unordered_map<Prefix, DomainSet> v4;
  std::unordered_map<Prefix, DomainSet> v6;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    v4[Prefix::of(IPAddress(IPv4Address::from_octets(10, static_cast<std::uint8_t>(i / 256),
                                                     static_cast<std::uint8_t>(i % 256), 0)),
                  24)] = sets[i];
    v6[p(("2001:db8:" + std::to_string(i) + "::/48").c_str())] = sets[i];
  }
  return core::DetectIndex::build(v4, v6);
}

double exact_jaccard(const DomainSet& a, const DomainSet& b) {
  return core::jaccard(a, b);
}

DomainSet make_set(DomainId first, DomainId count) {
  DomainSet set;
  for (DomainId i = 0; i < count; ++i) set.push_back(first + i);
  return set;
}

TEST(Signature, ExactForSmallSets) {
  // Every set ≤ k: estimate_jaccard degenerates to the true Jaccard for
  // every pair, bit-for-bit equal to the exact similarity arithmetic.
  const std::vector<DomainSet> sets = {
      make_set(0, 30),    // 0..29
      make_set(10, 30),   // 10..39 → |∩| = 20, |∪| = 40
      make_set(0, 64),    // exactly k elements
      make_set(100, 5),   // disjoint from the first two
      {},                 // empty set never reaches signing (not in corpus)
      make_set(0, 30),    // identical twin of sets[0]
  };
  const SketchParams params;
  const auto index = index_of(sets);
  const SignatureSet sigs = SignatureSet::build(index.v4, params);
  ASSERT_EQ(sigs.prefix_count(), index.v4.prefix_count());

  // Map dense ids back to fixture indices via set contents.
  for (std::uint32_t a = 0; a < sigs.prefix_count(); ++a) {
    for (std::uint32_t b = 0; b < sigs.prefix_count(); ++b) {
      const auto ea = index.v4.elements_of(a);
      const auto eb = index.v4.elements_of(b);
      const DomainSet sa(ea.begin(), ea.end());
      const DomainSet sb(eb.begin(), eb.end());
      const double est = estimate_jaccard(sigs.of(a), sigs.of(b), params.k);
      EXPECT_DOUBLE_EQ(est, exact_jaccard(sa, sb))
          << "dense pair (" << a << ", " << b << ")";
    }
  }
}

TEST(Signature, ErrorBoundOnLargeSets) {
  // Sets far above k: the bottom-k estimate must stay within the Hoeffding
  // envelope. With k = 64, P(|est - J| ≥ 0.28) ≤ 2·exp(-2·64·0.28²) ≈ 9e-5
  // per pair; the fixture is deterministic, so this either always passes
  // or flags a real estimator regression.
  const SketchParams params;
  std::mt19937 rng(20250808);
  std::vector<DomainSet> sets;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (int trial = 0; trial < 60; ++trial) {
    const DomainId size = 300 + rng() % 1500;
    const DomainId shared = static_cast<DomainId>((rng() % 90 + 5) * size / 100);
    const DomainId base = static_cast<DomainId>(trial) * 100000u;
    // A = [base, base+size); B shares the first `shared` and adds its own.
    DomainSet a = make_set(base, size);
    DomainSet b = make_set(base, shared);
    for (DomainId i = 0; i < size - shared; ++i) b.push_back(base + 50000 + i);
    std::sort(b.begin(), b.end());
    sets.push_back(std::move(a));
    sets.push_back(std::move(b));
    pairs.emplace_back(sets.size() - 2, sets.size() - 1);
  }
  const auto index = index_of(sets);
  const SignatureSet sigs = SignatureSet::build(index.v4, params);

  // Dense ids are a permutation of fixture order; rebuild the mapping.
  // Paired sets share their first elements but never their last (the
  // non-shared tail lives in a disjoint id block), so key on the back.
  std::unordered_map<std::uint64_t, std::uint32_t> dense_by_last;
  for (std::uint32_t dense = 0; dense < sigs.prefix_count(); ++dense) {
    const auto elements = index.v4.elements_of(dense);
    ASSERT_FALSE(elements.empty());
    dense_by_last[elements.back()] = dense;
  }

  double max_error = 0.0;
  double sum_error = 0.0;
  for (const auto& [ia, ib] : pairs) {
    const std::uint32_t da = dense_by_last.at(sets[ia].back());
    const std::uint32_t db = dense_by_last.at(sets[ib].back());
    const double est = estimate_jaccard(sigs.of(da), sigs.of(db), params.k);
    const double exact = exact_jaccard(sets[ia], sets[ib]);
    const double error = std::abs(est - exact);
    max_error = std::max(max_error, error);
    sum_error += error;
    EXPECT_LE(error, 0.28) << "J = " << exact << " est = " << est;
  }
  // Mean |error| ≈ 0.8·σ ≈ 0.05 at k = 64; 0.08 leaves generous slack.
  EXPECT_LE(sum_error / static_cast<double>(pairs.size()), 0.08);
  EXPECT_GT(max_error, 0.0);  // sanity: large sets are genuinely estimated
}

TEST(Signature, ParallelBuildIsByteIdenticalToSerial) {
  std::mt19937 rng(7);
  std::vector<DomainSet> sets;
  for (int i = 0; i < 300; ++i) {
    DomainSet set;
    const int size = 1 + static_cast<int>(rng() % 200);
    for (int j = 0; j < size; ++j) set.push_back(rng() % 5000);
    core::normalize(set);
    sets.push_back(std::move(set));
  }
  const auto index = index_of(sets);
  const SketchParams params;
  const std::string serial = SignatureSet::build(index.v4, params).serialize();
  for (const unsigned threads : {2u, 8u}) {
    core::WorkerPool pool(threads);
    const std::string parallel = SignatureSet::build(index.v4, params, &pool).serialize();
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(Signature, SerializationRoundTripIsCanonical) {
  const std::vector<DomainSet> sets = {make_set(0, 10), make_set(5, 200), make_set(90, 64)};
  const auto index = index_of(sets);
  const SketchParams params{.k = 32, .seed = 0xABCDu};
  for (const auto* side : {&index.v4, &index.v6}) {
    const SignatureSet sigs = SignatureSet::build(*side, params);
    const std::string blob = sigs.serialize();
    std::string error;
    const auto parsed = SignatureSet::deserialize(blob, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->k(), params.k);
    EXPECT_EQ(parsed->seed(), params.seed);
    EXPECT_EQ(parsed->prefix_count(), sigs.prefix_count());
    EXPECT_EQ(parsed->prefixes(), sigs.prefixes());
    // Canonical: re-serializing an accepted blob reproduces it exactly.
    EXPECT_EQ(parsed->serialize(), blob);
  }
}

TEST(Signature, DeserializeRejectsTruncatedAndCorruptBlobs) {
  const std::vector<DomainSet> sets = {make_set(0, 10), make_set(5, 200)};
  const auto index = index_of(sets);
  const std::string blob = SignatureSet::build(index.v4, SketchParams{}).serialize();

  const auto rejects = [](std::string mutated) {
    std::string error;
    const auto parsed = SignatureSet::deserialize(mutated, &error);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_FALSE(error.empty());
    return !parsed.has_value();
  };

  EXPECT_TRUE(rejects(""));                        // empty
  EXPECT_TRUE(rejects(blob.substr(0, 3)));         // shorter than the magic
  // Truncation at every prefix of the header and a sweep of body cuts.
  for (const std::size_t cut : {4u, 8u, 12u, 19u, 23u}) {
    ASSERT_LT(cut, blob.size());
    EXPECT_TRUE(rejects(blob.substr(0, cut))) << "cut at " << cut;
  }
  for (std::size_t cut = 24; cut < blob.size(); cut += 7) {
    EXPECT_TRUE(rejects(blob.substr(0, cut))) << "cut at " << cut;
  }
  EXPECT_TRUE(rejects(blob + 'x'));                // trailing garbage

  {  // wrong magic
    std::string mutated = blob;
    mutated[0] = 'X';
    EXPECT_TRUE(rejects(mutated));
  }
  {  // unsupported version
    std::string mutated = blob;
    mutated[4] = 9;
    EXPECT_TRUE(rejects(mutated));
  }
  {  // k = 0 out of range (offset 8: little-endian u32 k)
    std::string mutated = blob;
    mutated[8] = 0;
    EXPECT_TRUE(rejects(mutated));
  }
  {  // absurd prefix count (offset 20: u32 count) → allocation bound
    std::string mutated = blob;
    mutated[20] = '\xff';
    mutated[21] = '\xff';
    mutated[22] = '\xff';
    mutated[23] = '\x7f';
    EXPECT_TRUE(rejects(mutated));
  }
  {  // invalid family byte on the first record (offset 24)
    std::string mutated = blob;
    mutated[24] = 5;
    EXPECT_TRUE(rejects(mutated));
  }
  {  // prefix length beyond the family maximum (offset 25 for the v4 record)
    std::string mutated = blob;
    mutated[25] = 33;
    EXPECT_TRUE(rejects(mutated));
  }
  {  // non-canonical prefix: set a host bit below the /24 boundary
    std::string mutated = blob;
    mutated[29] |= 1;  // last address octet of the first /24 record
    EXPECT_TRUE(rejects(mutated));
  }
}

TEST(Signature, DeserializeRejectsMismatchedSeedMergesAtEstimateTime) {
  // Signatures built under different seeds produce different hashes for
  // the same set — the documented reason blobs carry the seed.
  const std::vector<DomainSet> sets = {make_set(0, 40)};
  const auto index = index_of(sets);
  const SignatureSet a = SignatureSet::build(index.v4, SketchParams{.seed = 1});
  const SignatureSet b = SignatureSet::build(index.v4, SketchParams{.seed = 2});
  ASSERT_EQ(a.prefix_count(), 1u);
  ASSERT_EQ(b.prefix_count(), 1u);
  EXPECT_NE(a.serialize(), b.serialize());
  const auto ha = a.of(0).hashes;
  const auto hb = b.of(0).hashes;
  EXPECT_FALSE(std::equal(ha.begin(), ha.end(), hb.begin(), hb.end()));
}

TEST(Lsh, CandidatesMatchBruteForceSharedHashes) {
  std::mt19937 rng(99);
  std::vector<DomainSet> sets;
  for (int i = 0; i < 120; ++i) {
    DomainSet set;
    const int size = 1 + static_cast<int>(rng() % 150);
    for (int j = 0; j < size; ++j) set.push_back(rng() % 2000);
    core::normalize(set);
    sets.push_back(std::move(set));
  }
  const auto index = index_of(sets);
  const SketchParams params;
  const SignatureSet sigs = SignatureSet::build(index.v4, params);
  const LshIndex lsh = LshIndex::build(sigs);
  EXPECT_GT(lsh.bucket_entries(), 0u);

  std::vector<std::uint32_t> candidates;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scored;
  for (std::uint32_t query = 0; query < sigs.prefix_count(); ++query) {
    lsh.candidates_of(sigs.of(query), candidates);
    lsh.candidates_of(sigs.of(query), scored);
    // Sorted and duplicate-free, and the scored overload lists the same
    // candidates in the same order.
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) == candidates.end());
    ASSERT_EQ(scored.size(), candidates.size());
    for (std::size_t i = 0; i < scored.size(); ++i) {
      EXPECT_EQ(scored[i].first, candidates[i]);
    }
    // Exactly the owners sharing at least one stored hash, with the hit
    // count equal to the stored-hash intersection size.
    for (std::uint32_t other = 0; other < sigs.prefix_count(); ++other) {
      const auto qa = sigs.of(query).hashes;
      const auto qb = sigs.of(other).hashes;
      std::vector<std::uint64_t> shared;
      std::set_intersection(qa.begin(), qa.end(), qb.begin(), qb.end(),
                            std::back_inserter(shared));
      const auto it = std::lower_bound(
          scored.begin(), scored.end(), other,
          [](const auto& entry, std::uint32_t value) { return entry.first < value; });
      const bool listed = it != scored.end() && it->first == other;
      EXPECT_EQ(listed, !shared.empty()) << "query " << query << " other " << other;
      if (listed) {
        EXPECT_EQ(it->second, shared.size()) << "query " << query << " other " << other;
      }
    }
  }
}

}  // namespace
}  // namespace sp::sketch
