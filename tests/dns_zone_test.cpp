// Tests for the zone database, CNAME chasing, wire-level serving, and
// resolution snapshots.
#include "dns/snapshot.h"
#include "dns/zone.h"

#include <gtest/gtest.h>

namespace sp::dns {
namespace {

DomainName n(const char* text) { return DomainName::must_parse(text); }
IPv4Address v4(const char* text) { return *IPv4Address::from_string(text); }
IPv6Address v6(const char* text) { return *IPv6Address::from_string(text); }

ZoneDatabase example_zones() {
  ZoneDatabase zones;
  zones.add(ResourceRecord::a(n("direct.example.org"), v4("192.0.2.10")));
  zones.add(ResourceRecord::aaaa(n("direct.example.org"), v6("2001:db8::10")));
  zones.add(ResourceRecord::cname(n("www.example.org"), n("edge.cdn.net")));
  zones.add(ResourceRecord::cname(n("edge.cdn.net"), n("pop3.cdn.net")));
  zones.add(ResourceRecord::a(n("pop3.cdn.net"), v4("198.51.100.1")));
  zones.add(ResourceRecord::a(n("pop3.cdn.net"), v4("198.51.100.2")));
  zones.add(ResourceRecord::aaaa(n("pop3.cdn.net"), v6("2001:db8:100::1")));
  zones.add(ResourceRecord::a(n("v4only.example.org"), v4("203.0.113.5")));
  return zones;
}

TEST(ZoneDatabase, ResolvesDirectRecords) {
  const auto result = example_zones().resolve(n("direct.example.org"));
  EXPECT_EQ(result.response_name, n("direct.example.org"));
  EXPECT_TRUE(result.cname_chain.empty());
  ASSERT_EQ(result.v4.size(), 1u);
  EXPECT_EQ(result.v4[0], v4("192.0.2.10"));
  ASSERT_EQ(result.v6.size(), 1u);
  EXPECT_TRUE(result.dual_stack());
}

TEST(ZoneDatabase, FollowsCnameChainToResponseName) {
  const auto result = example_zones().resolve(n("www.example.org"));
  EXPECT_EQ(result.queried, n("www.example.org"));
  EXPECT_EQ(result.response_name, n("pop3.cdn.net"));
  ASSERT_EQ(result.cname_chain.size(), 2u);
  EXPECT_EQ(result.cname_chain[0], n("edge.cdn.net"));
  EXPECT_EQ(result.cname_chain[1], n("pop3.cdn.net"));
  EXPECT_EQ(result.v4.size(), 2u);
  EXPECT_EQ(result.v6.size(), 1u);
}

TEST(ZoneDatabase, AddressesAreSortedAndDeduplicated) {
  ZoneDatabase zones;
  zones.add(ResourceRecord::a(n("d.example"), v4("10.0.0.2")));
  zones.add(ResourceRecord::a(n("d.example"), v4("10.0.0.1")));
  zones.add(ResourceRecord::a(n("d.example"), v4("10.0.0.2")));
  const auto result = zones.resolve(n("d.example"));
  ASSERT_EQ(result.v4.size(), 2u);
  EXPECT_LT(result.v4[0], result.v4[1]);
}

TEST(ZoneDatabase, SingleStackResolution) {
  const auto result = example_zones().resolve(n("v4only.example.org"));
  EXPECT_TRUE(result.has_v4());
  EXPECT_FALSE(result.has_v6());
  EXPECT_FALSE(result.dual_stack());
}

TEST(ZoneDatabase, UnknownNameResolvesEmpty) {
  const auto result = example_zones().resolve(n("missing.example.org"));
  EXPECT_FALSE(result.has_v4());
  EXPECT_FALSE(result.has_v6());
  EXPECT_EQ(result.response_name, n("missing.example.org"));
}

TEST(ZoneDatabase, DetectsCnameLoops) {
  ZoneDatabase zones;
  zones.add(ResourceRecord::cname(n("a.example"), n("b.example")));
  zones.add(ResourceRecord::cname(n("b.example"), n("a.example")));
  const auto result = zones.resolve(n("a.example"));
  EXPECT_TRUE(result.cname_loop);
  EXPECT_FALSE(result.dual_stack());
}

TEST(ZoneDatabase, BoundsCnameChainDepth) {
  ZoneDatabase zones;
  for (int i = 0; i < 20; ++i) {
    zones.add(ResourceRecord::cname(n(("h" + std::to_string(i) + ".example").c_str()),
                                    n(("h" + std::to_string(i + 1) + ".example").c_str())));
  }
  const auto result = zones.resolve(n("h0.example"));
  EXPECT_TRUE(result.chain_too_long);
}

TEST(ZoneDatabase, ServeAnswersWithCnameChainAndAddresses) {
  Message query;
  query.header.id = 77;
  query.questions.push_back({n("www.example.org"), RecordType::A});

  const auto response = example_zones().serve(query);
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(response.header.id, 77);
  EXPECT_EQ(response.header.rcode, 0);
  // 2 CNAMEs + 2 A records.
  ASSERT_EQ(response.answers.size(), 4u);
  EXPECT_EQ(response.answers[0].type, RecordType::CNAME);
  EXPECT_EQ(response.answers[1].type, RecordType::CNAME);
  EXPECT_EQ(response.answers[2].type, RecordType::A);
  EXPECT_EQ(response.answers[2].name, n("pop3.cdn.net"));

  // The response survives a wire round-trip.
  const auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, response);
}

TEST(ZoneDatabase, ServeUnknownNameSetsNxdomain) {
  Message query;
  query.questions.push_back({n("nope.example.org"), RecordType::A});
  const auto response = example_zones().serve(query);
  EXPECT_EQ(response.header.rcode, 3);
  EXPECT_TRUE(response.answers.empty());
}

TEST(ResolutionSnapshot, ResolveAllKeepsAddressedDomains) {
  const auto zones = example_zones();
  const std::vector<DomainName> queries = {n("www.example.org"), n("direct.example.org"),
                                           n("v4only.example.org"), n("missing.example.org")};
  const auto snapshot =
      ResolutionSnapshot::resolve_all(zones, queries, Date{2024, 9, 11});

  EXPECT_EQ(snapshot.date().to_string(), "2024-09-11");
  EXPECT_EQ(snapshot.domain_count(), 3u);  // missing.example.org dropped
  EXPECT_EQ(snapshot.dual_stack_count(), 2u);

  const auto ds = snapshot.dual_stack_entries();
  ASSERT_EQ(ds.size(), 2u);
  // www.example.org's identity is its final CNAME target.
  EXPECT_EQ(ds[0]->response_name, n("pop3.cdn.net"));
}

TEST(Date, Arithmetic) {
  const Date base{2024, 9, 11};
  EXPECT_EQ(base.plus_months(1).to_string(), "2024-10-11");
  EXPECT_EQ(base.plus_months(-12).to_string(), "2023-09-11");
  EXPECT_EQ(base.plus_months(4).to_string(), "2025-01-11");
  EXPECT_EQ(base.months_since(Date{2020, 9, 9}), 48);
  EXPECT_LT(Date({2024, 8, 30}), base);
  const Date end_of_month{2024, 1, 31};
  EXPECT_EQ(end_of_month.plus_months(1).day, 28);
}

}  // namespace
}  // namespace sp::dns
