// Tests for the generic SetCorpus detection input (paper section 3.7) and
// its equivalence with the DNS corpus on identical data.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/detect.h"
#include "test_fixtures.h"

namespace sp::core {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(SetCorpus, DetectsFromArbitraryElements) {
  SetCorpus corpus;
  // Elements 1..3 shared by one v4/v6 prefix pair, element 9 elsewhere.
  corpus.add(p("20.1.0.0/16"), 1);
  corpus.add(p("20.1.0.0/16"), 2);
  corpus.add(p("20.1.0.0/16"), 3);
  corpus.add(p("2620:100::/48"), 1);
  corpus.add(p("2620:100::/48"), 2);
  corpus.add(p("2620:100::/48"), 3);
  corpus.add(p("20.2.0.0/16"), 9);
  corpus.add(p("2620:200::/48"), 9);
  corpus.finalize();

  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].v4, p("20.1.0.0/16"));
  EXPECT_EQ(pairs[0].v6, p("2620:100::/48"));
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
  EXPECT_EQ(pairs[0].shared_domains, 3u);
  EXPECT_DOUBLE_EQ(pairs[1].similarity, 1.0);
}

TEST(SetCorpus, DuplicateAddsCollapse) {
  SetCorpus corpus;
  corpus.add(p("20.1.0.0/16"), 5);
  corpus.add(p("20.1.0.0/16"), 5);
  corpus.add(p("2620:100::/48"), 5);
  corpus.finalize();
  const DomainSet* set = corpus.domains_of(p("20.1.0.0/16"));
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->size(), 1u);
  EXPECT_EQ(corpus.prefixes_of(5, Family::v4).size(), 1u);
}

TEST(SetCorpus, UnknownLookupsAreEmpty) {
  SetCorpus corpus;
  corpus.add(p("20.1.0.0/16"), 1);
  corpus.finalize();
  EXPECT_EQ(corpus.domains_of(p("20.9.0.0/16")), nullptr);
  EXPECT_TRUE(corpus.prefixes_of(99, Family::v4).empty());
  EXPECT_TRUE(corpus.prefixes_of(1, Family::v6).empty());
  EXPECT_TRUE(detect_sibling_prefixes(corpus).empty());  // no v6 side at all
}

TEST(SetCorpus, BestMatchSemanticsMatchDnsCorpus) {
  // Build the same data through both corpus types; pair lists must agree.
  testsupport::ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("2620:100::/48", 2).announce("2620:200::/48", 3);
  builder.announce("20.9.9.0/24", 4);
  builder.host("d1.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("d2.example.org", {"20.1.1.2"}, {"2620:100::2"});
  builder.host("d3.example.org", {"20.1.1.3"}, {"2620:200::3"});
  builder.host("d4.example.org", {"20.9.9.4"}, {"2620:200::4"});
  const auto dns_corpus = builder.corpus();
  const auto dns_pairs = detect_sibling_prefixes(dns_corpus);

  SetCorpus generic;
  for (const Family family : {Family::v4, Family::v6}) {
    for (const auto& [prefix, domains] : dns_corpus.prefix_domains(family)) {
      for (const DomainId id : domains) generic.add(prefix, id);
    }
  }
  generic.finalize();
  const auto generic_pairs = detect_sibling_prefixes(generic);
  EXPECT_EQ(generic_pairs, dns_pairs);
}

TEST(SetCorpus, AddAfterFinalizeThrows) {
  SetCorpus corpus;
  corpus.add(p("20.1.0.0/16"), 1);
  EXPECT_FALSE(corpus.finalized());
  corpus.finalize();
  EXPECT_TRUE(corpus.finalized());
  EXPECT_THROW(corpus.add(p("20.2.0.0/16"), 2), std::logic_error);
  // The rejected add must not have corrupted anything.
  EXPECT_EQ(corpus.domains_of(p("20.2.0.0/16")), nullptr);
  EXPECT_EQ(corpus.detect_index().v4.prefix_count(), 1u);
}

TEST(SetCorpus, DetectIndexRequiresFinalize) {
  SetCorpus corpus;
  corpus.add(p("20.1.0.0/16"), 1);
  EXPECT_THROW((void)corpus.detect_index(), std::logic_error);
  EXPECT_THROW((void)detect_sibling_prefixes(corpus), std::logic_error);
}

TEST(SetCorpus, FinalizeIsIdempotent) {
  SetCorpus corpus;
  corpus.add(p("20.1.0.0/16"), 1);
  corpus.add(p("2620:100::/48"), 1);
  corpus.finalize();
  corpus.finalize();
  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

TEST(SetCorpus, DuplicateObservationsDoNotInflateSimilarity) {
  // The same (prefix, element) observation repeated many times must count
  // once everywhere: set sizes, shared counts, and the detection index.
  SetCorpus corpus;
  for (int repeat = 0; repeat < 5; ++repeat) {
    corpus.add(p("20.1.0.0/16"), 1);
    corpus.add(p("20.1.0.0/16"), 2);
    corpus.add(p("2620:100::/48"), 1);
  }
  corpus.add(p("2620:100::/48"), 2);
  corpus.finalize();

  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
  EXPECT_EQ(pairs[0].shared_domains, 2u);
  EXPECT_EQ(pairs[0].v4_domain_count, 2u);
  EXPECT_EQ(pairs[0].v6_domain_count, 2u);
}

TEST(SetCorpus, ElementsPresentInOnlyOneFamily) {
  // Family-exclusive elements (v4-only ports, v6-only rDNS names) must not
  // generate candidates; only the shared element links the pair. The
  // v6-only id is far above every v4 element id, exercising the posting
  // bounds guard of the flat index.
  SetCorpus corpus;
  corpus.add(p("20.1.0.0/16"), 1);   // v4-only
  corpus.add(p("20.1.0.0/16"), 2);   // shared
  corpus.add(p("2620:100::/48"), 2);
  corpus.add(p("2620:100::/48"), 900);  // v6-only, beyond the v4 id range
  corpus.finalize();

  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].shared_domains, 1u);
  // Jaccard: 1 shared of (2 + 2 - 1) = 1/3.
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0 / 3.0);

  // Entirely disjoint element spaces yield no pairs at all.
  SetCorpus disjoint;
  disjoint.add(p("20.1.0.0/16"), 1);
  disjoint.add(p("2620:100::/48"), 2);
  disjoint.finalize();
  EXPECT_TRUE(detect_sibling_prefixes(disjoint).empty());
}

TEST(SetCorpus, MetricsApply) {
  SetCorpus corpus;
  // v4 set {1,2}, v6 set {1,2,3,4}: jaccard 1/2, overlap 1.
  corpus.add(p("20.1.0.0/16"), 1);
  corpus.add(p("20.1.0.0/16"), 2);
  for (DomainId id : {1u, 2u, 3u, 4u}) corpus.add(p("2620:100::/48"), id);
  corpus.finalize();

  const auto jaccard_pairs = detect_sibling_prefixes(corpus, {Metric::Jaccard});
  const auto overlap_pairs = detect_sibling_prefixes(corpus, {Metric::Overlap});
  ASSERT_EQ(jaccard_pairs.size(), 1u);
  ASSERT_EQ(overlap_pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(jaccard_pairs[0].similarity, 0.5);
  EXPECT_DOUBLE_EQ(overlap_pairs[0].similarity, 1.0);
}

}  // namespace
}  // namespace sp::core
