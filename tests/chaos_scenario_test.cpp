// The chaos layer's determinism and corruption contracts: schedules are
// pure functions of the seed (replayable soak runs), every event kind
// and corruption kind shows up within a smoke-sized window, and every
// corrupt variant of a valid .sibdb / .spdl is rejected by its loader —
// the property that makes the soak's "corrupt swap is refused while the
// old snapshot keeps answering" invariant meaningful.
#include "chaos/scenario.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "chaos/corrupt.h"
#include "core/detect.h"
#include "serve/sibdb.h"
#include "stream/spdl.h"

namespace sp::chaos {
namespace {

std::vector<core::SiblingPair> fixture_pairs() {
  std::vector<core::SiblingPair> pairs(3);
  pairs[0].v4 = Prefix::must_parse("10.0.0.0/24");
  pairs[0].v6 = Prefix::must_parse("2001:db8::/48");
  pairs[0].similarity = 0.5;
  pairs[1].v4 = Prefix::must_parse("10.0.1.0/24");
  pairs[1].v6 = Prefix::must_parse("2001:db8:1::/48");
  pairs[1].similarity = 0.75;
  pairs[2].v4 = Prefix::must_parse("10.0.2.0/24");
  pairs[2].v6 = Prefix::must_parse("2001:db8:2::/48");
  pairs[2].similarity = 1.0;
  return pairs;
}

TEST(ChaosScenario, ScheduleIsAPureFunctionOfTheSeed) {
  const auto first = make_schedule(1234, 500);
  const auto second = make_schedule(1234, 500);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind) << i;
    EXPECT_EQ(first[i].seed, second[i].seed) << i;
    EXPECT_EQ(first[i].intensity, second[i].intensity) << i;
    EXPECT_EQ(first[i].corrupt, second[i].corrupt) << i;
    EXPECT_EQ(first[i].corrupt_spdl, second[i].corrupt_spdl) << i;
    // Random access agrees with enumeration — the soak walks indices.
    const ChaosEvent at = event_at(1234, i);
    EXPECT_EQ(at.kind, first[i].kind) << i;
    EXPECT_EQ(at.seed, first[i].seed) << i;
  }
}

TEST(ChaosScenario, DifferentSeedsProduceDifferentSchedules) {
  const auto a = make_schedule(1, 64);
  const auto b = make_schedule(2, 64);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].kind != b[i].kind || a[i].seed != b[i].seed) ++differing;
  EXPECT_GT(differing, 16u);
}

TEST(ChaosScenario, SmokeWindowCoversEveryEventAndCorruptionKind) {
  std::set<EventKind> kinds;
  std::set<CorruptKind> corruptions;
  std::set<bool> formats;
  for (const ChaosEvent& event : make_schedule(77, 400)) {
    kinds.insert(event.kind);
    if (event.kind == EventKind::CorruptReload) {
      corruptions.insert(event.corrupt);
      formats.insert(event.corrupt_spdl);
    }
    EXPECT_GE(event.intensity, 1u);
    EXPECT_LE(event.intensity, 8u);
  }
  EXPECT_EQ(kinds.size(), 7u);  // every EventKind appears
  EXPECT_EQ(corruptions.size(), kAllCorruptKinds.size());
  EXPECT_EQ(formats.size(), 2u);  // both .sibdb and .spdl targets
}

TEST(ChaosCorrupt, VariantsAreDeterministicAndDamaging) {
  const std::vector<std::uint8_t> image(600, 0xAB);
  for (const CorruptKind kind : kAllCorruptKinds) {
    const auto once = corrupt_image(image, kind, 9);
    const auto twice = corrupt_image(image, kind, 9);
    EXPECT_EQ(once, twice) << to_string(kind);
    EXPECT_NE(once, image) << to_string(kind);
  }
  // Truncations shrink; the bit flip preserves size and changes exactly
  // one byte.
  EXPECT_LT(corrupt_image(image, CorruptKind::TruncatedHeader, 9).size(), 16u);
  EXPECT_LT(corrupt_image(image, CorruptKind::TruncatedBody, 9).size(), image.size());
  const auto flipped = corrupt_image(image, CorruptKind::FlippedBit, 9);
  ASSERT_EQ(flipped.size(), image.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < image.size(); ++i)
    if (flipped[i] != image[i]) ++changed;
  EXPECT_EQ(changed, 1u);
}

TEST(ChaosCorrupt, EveryVariantIsRejectedByTheLoaders) {
  const std::string sibdb_path = ::testing::TempDir() + "/chaos_corrupt_base.sibdb";
  ASSERT_TRUE(serve::write_sibdb(sibdb_path, fixture_pairs(), "chaos corrupt fixture"));
  std::string error;
  auto db = serve::SiblingDB::load(sibdb_path, &error);
  ASSERT_TRUE(db.has_value()) << error;
  const auto delta = stream::diff_sibdb(*db, *db, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  const auto spdl_bytes = stream::encode_spdl(*delta);
  ASSERT_TRUE(stream::decode_spdl(spdl_bytes).has_value());  // valid before damage

  for (const CorruptKind kind : kAllCorruptKinds) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const auto bad_sibdb = corrupt_image(db->raw_bytes(), kind, seed);
      const std::string bad_path = ::testing::TempDir() + "/chaos_corrupt_" +
                                   std::string(to_string(kind)) + ".sibdb";
      {
        std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bad_sibdb.data()),
                  static_cast<std::streamsize>(bad_sibdb.size()));
        ASSERT_TRUE(out.good());
      }
      std::string reject;
      EXPECT_FALSE(serve::SiblingDB::load(bad_path, &reject).has_value())
          << to_string(kind) << " seed " << seed << " was accepted";
      EXPECT_FALSE(reject.empty());

      const auto bad_spdl = corrupt_image(spdl_bytes, kind, seed);
      EXPECT_FALSE(stream::decode_spdl(bad_spdl, &reject).has_value())
          << to_string(kind) << " seed " << seed << " was accepted";
    }
  }
}

}  // namespace
}  // namespace sp::chaos
