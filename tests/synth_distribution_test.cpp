// Regression tests pinning the synthetic universe's statistical structure
// to its configuration knobs — the calibration net behind the experiment
// shapes. Tolerances are loose enough for different seeds.
#include <gtest/gtest.h>

#include <map>

#include "core/detect.h"
#include "core/sptuner.h"
#include "synth/universe.h"
#include "trie/prefix_trie.h"

namespace sp::synth {
namespace {

const SyntheticInternet& default_universe() {
  static const SyntheticInternet universe{SynthConfig{}};
  return universe;
}

TEST(SynthDistributions, EyeballShareMatchesConfig) {
  const auto& u = default_universe();
  std::size_t regular = 0;
  std::size_t eyeballs = 0;
  for (const auto& org : u.orgs()) {
    if (org.hg_cdn || org.monitoring) continue;
    ++regular;
    if (org.eyeball) ++eyeballs;
  }
  const double share = static_cast<double>(eyeballs) / static_cast<double>(regular);
  EXPECT_NEAR(share, u.config().eyeball_share, 0.03);
}

TEST(SynthDistributions, SinglePrefixShareMatchesConfig) {
  const auto& u = default_universe();
  std::size_t hosting = 0;
  std::size_t single = 0;
  for (const auto& org : u.orgs()) {
    if (org.hg_cdn || org.monitoring || org.eyeball) continue;
    ++hosting;
    // Monitoring sites may have been appended; use v6 side (only v4 sites
    // outnumber v6 ones) conservatively via the aligned/eyeball-free count
    // of v6 prefixes being 1 AND not aligned-multi.
    if (org.v6_prefixes.size() == 1 && org.v4_prefixes.size() <= 2) ++single;
  }
  // Appended monitoring prefixes blur the exact count; the single-prefix
  // population must still be in the configured ballpark.
  const double share = static_cast<double>(single) / static_cast<double>(hosting);
  EXPECT_NEAR(share, default_universe().config().single_prefix_org_share, 0.12);
}

TEST(SynthDistributions, V4LengthDistributionShape) {
  const auto& u = default_universe();
  std::map<unsigned, std::size_t> lengths;
  std::size_t total = 0;
  for (const auto& org : u.orgs()) {
    if (org.monitoring) continue;
    for (const auto& prefix : org.v4_prefixes) {
      ++lengths[prefix.length()];
      ++total;
    }
  }
  // /24 dominates; the /17-/24 region carries most mass (paper Fig 13).
  const double share_24 = static_cast<double>(lengths[24]) / total;
  EXPECT_GT(share_24, 0.30);
  std::size_t region = 0;
  for (unsigned length = 17; length <= 24; ++length) region += lengths[length];
  EXPECT_GT(static_cast<double>(region) / total, 0.75);
}

TEST(SynthDistributions, V6LengthDistributionShape) {
  const auto& u = default_universe();
  std::map<unsigned, std::size_t> lengths;
  std::size_t total = 0;
  for (const auto& org : u.orgs()) {
    if (org.monitoring) continue;
    for (const auto& prefix : org.v6_prefixes) {
      ++lengths[prefix.length()];
      ++total;
    }
  }
  const double share_48 = static_cast<double>(lengths[48]) / total;
  EXPECT_GT(share_48, 0.30);  // /48 most prominent (paper)
  for (const auto& [length, count] : lengths) {
    EXPECT_GE(length, 28u);
    EXPECT_LE(length, 64u);
  }
}

TEST(SynthDistributions, DualStackShareRampsAcrossWindow) {
  const auto& u = default_universe();
  const auto first = u.snapshot_at(0);
  const auto last = u.snapshot_at(u.month_count() - 1);
  const double share_first =
      static_cast<double>(first.dual_stack_count()) / first.domain_count();
  const double share_last =
      static_cast<double>(last.dual_stack_count()) / last.domain_count();
  EXPECT_NEAR(share_first, u.config().ds_share_start, 0.05);
  EXPECT_NEAR(share_last, u.config().ds_share_end, 0.05);
}

TEST(SynthDistributions, VisibilityPatternSplit) {
  const auto& u = default_universe();
  std::size_t always = 0;
  std::size_t once = 0;
  std::size_t total = 0;
  for (const auto& domain : u.domains()) {
    ++total;
    if (domain.visibility == Visibility::Always) ++always;
    if (domain.visibility == Visibility::Once) ++once;
  }
  EXPECT_NEAR(static_cast<double>(always) / total, u.config().always_visible_share, 0.03);
  EXPECT_NEAR(static_cast<double>(once) / total, u.config().once_visible_share, 0.03);
}

TEST(SynthDistributions, AlignedOrgsProducePerfectDefaultPairs) {
  const auto& u = default_universe();
  const auto corpus =
      core::DualStackCorpus::build(u.snapshot_at(u.month_count() - 1), u.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);

  // Index: v4 prefix → org. Aligned single-org prefixes should pair
  // perfectly when no multi-org domain intruded.
  PrefixTrie<const OrgSpec*> owner;
  for (const auto& org : u.orgs()) {
    for (const auto& prefix : org.v4_prefixes) owner.insert(prefix, &org);
  }
  std::size_t aligned_pairs = 0;
  std::size_t aligned_perfect = 0;
  for (const auto& pair : pairs) {
    const auto* org = owner.find(pair.v4);
    if (org == nullptr || !(*org)->aligned || (*org)->hg_cdn) continue;
    ++aligned_pairs;
    if (pair.similarity >= 1.0 - 1e-12) ++aligned_perfect;
  }
  ASSERT_GT(aligned_pairs, 100u);
  EXPECT_GT(static_cast<double>(aligned_perfect) / aligned_pairs, 0.60);
}

TEST(SynthDistributions, HeadlineShapeHoldsAcrossSeeds) {
  for (const std::uint64_t seed : {7ull, 20260705ull}) {
    SynthConfig config;
    config.seed = seed;
    config.organization_count = 800;  // smaller for speed
    config.months = 13;
    config.monitoring_v4_prefixes = 20;
    config.monitoring_v6_prefixes = 8;
    const SyntheticInternet u(config);
    const auto corpus =
        core::DualStackCorpus::build(u.snapshot_at(u.month_count() - 1), u.rib());
    const auto pairs = core::detect_sibling_prefixes(corpus);
    ASSERT_GT(pairs.size(), 200u) << "seed " << seed;
    const core::SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
    const auto tuned = tuner.tune_all(pairs);
    const auto perfect = [](const std::vector<core::SiblingPair>& v) {
      std::size_t count = 0;
      for (const auto& pair : v) {
        if (pair.similarity >= 1.0 - 1e-12) ++count;
      }
      return static_cast<double>(count) / static_cast<double>(v.size());
    };
    EXPECT_GT(perfect(tuned.pairs), perfect(pairs) + 0.08) << "seed " << seed;
    EXPECT_GT(perfect(tuned.pairs), 0.65) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sp::synth
