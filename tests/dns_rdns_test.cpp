// Tests for reverse-DNS names, PTR records, and an rDNS-based detection
// input (the paper's section 6 alternative-input suggestion).
#include <gtest/gtest.h>

#include "core/detect.h"
#include "dns/zone.h"

namespace sp::dns {
namespace {

TEST(ReverseName, IPv4Golden) {
  EXPECT_EQ(reverse_name(IPAddress::must_parse("20.1.2.3")).text(),
            "3.2.1.20.in-addr.arpa");
  EXPECT_EQ(reverse_name(IPAddress::must_parse("255.0.255.0")).text(),
            "0.255.0.255.in-addr.arpa");
}

TEST(ReverseName, IPv6Golden) {
  // RFC 3596's worked example style: 2001:db8::567:89ab.
  EXPECT_EQ(reverse_name(IPAddress::must_parse("2001:db8::567:89ab")).text(),
            "b.a.9.8.7.6.5.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa");
}

TEST(ReverseName, RoundTripsThroughZoneLookup) {
  ZoneDatabase zones;
  const IPAddress address = IPAddress::must_parse("20.1.2.3");
  zones.add(ResourceRecord::ptr(reverse_name(address),
                                DomainName::must_parse("host1.org-0001.example")));

  const auto records = zones.records(reverse_name(address), RecordType::PTR);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<DomainName>(records[0].data).text(), "host1.org-0001.example");
}

TEST(ReverseName, PtrWireRoundTrip) {
  Message message;
  message.header.qr = true;
  message.questions.push_back(
      {reverse_name(IPAddress::must_parse("20.1.2.3")), RecordType::PTR});
  message.answers.push_back(ResourceRecord::ptr(
      reverse_name(IPAddress::must_parse("20.1.2.3")),
      DomainName::must_parse("host1.org-0001.example")));
  std::string error;
  const auto decoded = decode_message(encode_message(message), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, message);
}

TEST(ReverseName, ServeAnswersPtrQueries) {
  ZoneDatabase zones;
  const IPAddress address = IPAddress::must_parse("2620:100::10");
  zones.add(ResourceRecord::ptr(reverse_name(address),
                                DomainName::must_parse("edge7.cdn.example")));
  Message query;
  query.questions.push_back({reverse_name(address), RecordType::PTR});
  const auto response = zones.serve(query);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type, RecordType::PTR);
}

// rDNS as a detection input: dual-stack hosts share one PTR hostname; the
// interned hostname ids feed a SetCorpus exactly like domains would.
TEST(ReverseName, RdnsSetCorpusDetection) {
  // Two orgs; each host has matching v4/v6 PTR names.
  struct Host {
    const char* v4;
    const char* v6;
    const char* hostname;
  };
  const Host hosts[] = {
      {"20.1.0.1", "2620:100::1", "web1.alpha.example"},
      {"20.1.0.2", "2620:100::2", "web2.alpha.example"},
      {"20.2.0.1", "2620:200::1", "mail.beta.example"},
  };
  const auto prefix_of = [](const char* address) {
    const IPAddress ip = IPAddress::must_parse(address);
    return Prefix::of(ip, ip.is_v4() ? 24u : 48u);
  };

  core::DomainInterner interner;
  core::SetCorpus corpus;
  for (const auto& host : hosts) {
    const core::DomainId id = interner.intern(DomainName::must_parse(host.hostname));
    corpus.add(prefix_of(host.v4), id);
    corpus.add(prefix_of(host.v6), id);
  }
  corpus.finalize();

  const auto pairs = core::detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].v4, Prefix::must_parse("20.1.0.0/24"));
  EXPECT_EQ(pairs[0].v6, Prefix::must_parse("2620:100::/48"));
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
  EXPECT_EQ(pairs[0].shared_domains, 2u);
  EXPECT_DOUBLE_EQ(pairs[1].similarity, 1.0);
}

}  // namespace
}  // namespace sp::dns
