// Serial-vs-parallel equivalence harness for the sharded detection engine.
//
// The headline guarantee of ParallelDetector is that its pair list is
// *byte-identical* to the serial reference (detail::detect_over, exposed
// as detect_sibling_prefixes_serial) for any corpus, metric, and thread
// count — similarity doubles included, compared at the bit level. The
// harness sweeps seeded synthetic corpora × all metrics × thread counts
// 1/2/8, plus the adversarial corners: exact ties at the kTieEpsilon
// boundary, empty and one-sided corpora, and counter determinism.
#include "core/detect_parallel.h"

#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <string>

#include "core/detect.h"
#include "synth/universe.h"
#include "test_fixtures.h"

namespace sp::core {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

constexpr Metric kAllMetrics[] = {Metric::Jaccard, Metric::Dice, Metric::Overlap};
constexpr unsigned kThreadCounts[] = {1, 2, 8};

void expect_byte_identical(const std::vector<SiblingPair>& parallel,
                           const std::vector<SiblingPair>& serial) {
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].v4, serial[i].v4) << "pair " << i;
    EXPECT_EQ(parallel[i].v6, serial[i].v6) << "pair " << i;
    // Bit-level comparison: both engines must perform the same FP ops.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parallel[i].similarity),
              std::bit_cast<std::uint64_t>(serial[i].similarity))
        << "pair " << i << " similarity " << parallel[i].similarity << " vs "
        << serial[i].similarity;
    EXPECT_EQ(parallel[i].shared_domains, serial[i].shared_domains) << "pair " << i;
    EXPECT_EQ(parallel[i].v4_domain_count, serial[i].v4_domain_count) << "pair " << i;
    EXPECT_EQ(parallel[i].v6_domain_count, serial[i].v6_domain_count) << "pair " << i;
  }
}

/// A seeded random SetCorpus with the detection corner cases mixed in:
/// elements present in only one family, duplicate observations, and
/// prefixes sharing whole element blocks (tie fodder).
SetCorpus random_corpus(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const int v4_count = 40 + static_cast<int>(rng() % 30);
  const int v6_count = 40 + static_cast<int>(rng() % 30);
  std::vector<Prefix> v4s;
  std::vector<Prefix> v6s;
  for (int i = 0; i < v4_count; ++i) {
    v4s.push_back(Prefix::of(
        IPAddress(IPv4Address::from_octets(10, static_cast<std::uint8_t>(i / 256),
                                           static_cast<std::uint8_t>(i % 256), 0)),
        24));
  }
  for (int i = 0; i < v6_count; ++i) {
    v6s.push_back(p(("2001:db8:" + std::to_string(i) + "::/48").c_str()));
  }

  SetCorpus corpus;
  std::uniform_int_distribution<int> v4_pick(0, v4_count - 1);
  std::uniform_int_distribution<int> v6_pick(0, v6_count - 1);
  std::uniform_int_distribution<int> spread(1, 4);
  const DomainId element_count = 150;
  for (DomainId element = 0; element < element_count; ++element) {
    const int mode = static_cast<int>(rng() % 12);
    const int k4 = mode == 0 ? 0 : spread(rng);  // mode 0: v6-only element
    const int k6 = mode == 1 ? 0 : spread(rng);  // mode 1: v4-only element
    for (int i = 0; i < k4; ++i) corpus.add(v4s[v4_pick(rng)], element);
    for (int i = 0; i < k6; ++i) corpus.add(v6s[v6_pick(rng)], element);
    if (mode == 2) {  // duplicate observations must collapse identically
      const Prefix target = v4s[v4_pick(rng)];
      corpus.add(target, element);
      corpus.add(target, element);
    }
  }
  // Two v6 prefixes sharing a whole element block with one v4 prefix:
  // near-tie and tie fodder on top of the random memberships.
  for (DomainId element = 0; element < 6; ++element) {
    corpus.add(v6s[0], 1000 + element);
    corpus.add(v6s[1], 1000 + element);
    corpus.add(v4s[0], 1000 + element);
  }
  corpus.finalize();
  return corpus;
}

class DetectParallelSeeds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DetectParallelSeeds, MatchesSerialOnRandomSetCorpora) {
  const SetCorpus corpus = random_corpus(GetParam());
  for (const Metric metric : kAllMetrics) {
    const auto serial = detect_sibling_prefixes_serial(corpus, {.metric = metric});
    ASSERT_FALSE(serial.empty());
    for (const unsigned threads : kThreadCounts) {
      const auto parallel =
          detect_sibling_prefixes(corpus, {.metric = metric, .threads = threads});
      expect_byte_identical(parallel, serial);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectParallelSeeds,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

TEST(DetectParallel, MatchesSerialOnSyntheticDnsCorpus) {
  synth::SynthConfig config;
  config.organization_count = 120;
  config.months = 3;
  config.hg_prefix_scale = 0.01;
  config.probe_count = 50;
  const synth::SyntheticInternet universe(config);
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = DualStackCorpus::build(snapshot, universe.rib());

  for (const Metric metric : kAllMetrics) {
    const auto serial = detect_sibling_prefixes_serial(corpus, {.metric = metric});
    ASSERT_FALSE(serial.empty());
    for (const unsigned threads : kThreadCounts) {
      const auto parallel =
          detect_sibling_prefixes(corpus, {.metric = metric, .threads = threads});
      expect_byte_identical(parallel, serial);
    }
  }
}

TEST(DetectParallel, PreservesExactTiesAcrossDifferentSetSizes) {
  // Source {1,2,3,4}. Candidate A shares 2 of its 4 elements →
  // Jaccard 2/6; candidate B shares 3 of its 8 → 3/9. IEEE division is
  // correctly rounded, so both are bitwise double(1/3): an exact tie that
  // only survives if the engine applies the kTieEpsilon rule against the
  // same final best value as the serial pass.
  SetCorpus corpus;
  for (DomainId element : {1u, 2u, 3u, 4u}) corpus.add(p("20.1.0.0/16"), element);
  for (DomainId element : {1u, 2u, 10u, 11u}) corpus.add(p("2620:a::/48"), element);
  for (DomainId element : {2u, 3u, 4u, 20u, 21u, 22u, 23u, 24u})
    corpus.add(p("2620:b::/48"), element);
  corpus.finalize();

  const auto serial = detect_sibling_prefixes_serial(corpus);
  const auto parallel = detect_sibling_prefixes(corpus, {.threads = 8});
  expect_byte_identical(parallel, serial);

  // Both tied candidates are present for the v4 source.
  std::size_t matches = 0;
  for (const SiblingPair& pair : parallel) {
    if (pair.v4 == p("20.1.0.0/16")) {
      ++matches;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(pair.similarity),
                std::bit_cast<std::uint64_t>(1.0 / 3.0));
    }
  }
  EXPECT_EQ(matches, 2u);
}

TEST(DetectParallel, PreservesIdenticalSetTies) {
  // Two v6 prefixes with byte-identical element sets tie exactly against
  // the v4 source; both pairs must survive at every thread count.
  SetCorpus corpus;
  for (DomainId element : {1u, 2u, 3u}) {
    corpus.add(p("20.1.0.0/16"), element);
    corpus.add(p("2620:a::/48"), element);
    corpus.add(p("2620:b::/48"), element);
  }
  corpus.finalize();

  const auto serial = detect_sibling_prefixes_serial(corpus);
  ASSERT_EQ(serial.size(), 2u);
  for (const unsigned threads : kThreadCounts) {
    expect_byte_identical(detect_sibling_prefixes(corpus, {.threads = threads}), serial);
  }
}

TEST(DetectParallel, EmptyAndOneSidedCorpora) {
  SetCorpus empty;
  empty.finalize();
  for (const unsigned threads : kThreadCounts) {
    EXPECT_TRUE(detect_sibling_prefixes(empty, {.threads = threads}).empty());
  }

  SetCorpus v4_only;
  v4_only.add(p("20.1.0.0/16"), 1);
  v4_only.add(p("20.2.0.0/16"), 2);
  v4_only.finalize();
  for (const unsigned threads : kThreadCounts) {
    EXPECT_TRUE(detect_sibling_prefixes(v4_only, {.threads = threads}).empty());
  }

  SetCorpus v6_only;
  v6_only.add(p("2620:a::/48"), 1);
  v6_only.finalize();
  EXPECT_TRUE(detect_sibling_prefixes(v6_only, {.threads = 8}).empty());

  // Empty DNS corpus through the same engine.
  const testsupport::ScenarioBuilder builder;
  const auto corpus = builder.corpus();
  EXPECT_TRUE(detect_sibling_prefixes(corpus, {.threads = 8}).empty());
}

TEST(DetectParallel, MoreThreadsThanPrefixes) {
  SetCorpus corpus;
  for (DomainId element : {1u, 2u}) {
    corpus.add(p("20.1.0.0/16"), element);
    corpus.add(p("2620:a::/48"), element);
  }
  corpus.finalize();
  const auto serial = detect_sibling_prefixes_serial(corpus);
  expect_byte_identical(detect_sibling_prefixes(corpus, {.threads = 32}), serial);
}

TEST(DetectParallel, StatsAreDeterministicAcrossThreadCounts) {
  const SetCorpus corpus = random_corpus(4242);
  DetectStats baseline;
  (void)detect_sibling_prefixes(corpus, {.threads = 1, .stats = &baseline});
  EXPECT_EQ(baseline.threads_used, 1u);
  EXPECT_EQ(baseline.prefixes_scanned, corpus.detect_index().v4.prefix_count() +
                                           corpus.detect_index().v6.prefix_count());
  EXPECT_GT(baseline.candidates_evaluated, 0u);
  EXPECT_GT(baseline.pairs_emitted, 0u);

  for (const unsigned threads : {2u, 8u}) {
    DetectStats stats;
    (void)detect_sibling_prefixes(corpus, {.threads = threads, .stats = &stats});
    EXPECT_EQ(stats.threads_used, threads);
    EXPECT_EQ(stats.prefixes_scanned, baseline.prefixes_scanned);
    EXPECT_EQ(stats.candidates_evaluated, baseline.candidates_evaluated);
    EXPECT_EQ(stats.pairs_emitted, baseline.pairs_emitted);
  }
}

TEST(DetectParallel, DetectorPoolIsReusableAcrossCallsAndCorpora) {
  const SetCorpus first = random_corpus(11);
  const SetCorpus second = random_corpus(22);
  ParallelDetector detector(4);
  EXPECT_EQ(detector.thread_count(), 4u);

  expect_byte_identical(detector.detect(first), detect_sibling_prefixes_serial(first));
  expect_byte_identical(detector.detect(first, {.metric = Metric::Dice}),
                        detect_sibling_prefixes_serial(first, {.metric = Metric::Dice}));
  expect_byte_identical(detector.detect(second), detect_sibling_prefixes_serial(second));
  EXPECT_EQ(detector.stats().threads_used, 4u);
}

TEST(DetectParallel, ZeroThreadCountPicksHardwareConcurrency) {
  const ParallelDetector detector(0);
  EXPECT_GE(detector.thread_count(), 1u);
  EXPECT_LE(detector.thread_count(), 64u);
}

}  // namespace
}  // namespace sp::core
