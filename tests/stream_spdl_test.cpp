// SPDL delta-log contract: diff_sibdb + apply_spdl reproduce the target
// snapshot byte-for-byte; the canonical encoding round-trips
// (encode(decode(b)) == b); every single-byte flip and every truncation
// of a valid image is rejected with a reason; apply refuses the wrong
// base and a result-hash mismatch without touching the output path.
#include "stream/spdl.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "stream/reload.h"

namespace sp::stream {
namespace {

using core::SiblingPair;

Prefix p(const char* text) { return Prefix::must_parse(text); }

SiblingPair make(const char* v4, const char* v6, double similarity = 1.0,
                 std::uint32_t shared = 1) {
  SiblingPair pair;
  pair.v4 = p(v4);
  pair.v6 = p(v6);
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = shared + 1;
  pair.v6_domain_count = shared + 2;
  return pair;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<SiblingPair> base_list() {
  return {
      make("20.1.0.0/16", "2620:100::/48", 1.0, 3),
      make("20.2.0.0/16", "2620:200::/48", 0.8, 2),
      make("20.3.0.0/16", "2620:300::/48", 0.6, 1),
      make("20.4.0.0/16", "2620:400::/48", 0.5, 4),
  };
}

std::vector<SiblingPair> target_list() {
  return {
      make("20.1.0.0/16", "2620:100::/48", 1.0, 3),   // unchanged
      make("20.2.0.0/16", "2620:200::/48", 0.75, 2),  // similarity changed
      make("20.4.0.0/16", "2620:400::/48", 0.5, 4),   // unchanged (20.3 removed)
      make("20.9.0.0/16", "2620:900::/48", 0.9, 5),   // added
  };
}

/// Writes both snapshots, loads them, and returns (base, target, delta).
struct Fixture {
  std::string dir;
  std::string base_path;
  std::string target_path;
  serve::SiblingDB base;
  serve::SiblingDB target;
  SibdbDelta delta;
};

Fixture make_fixture(const std::string& name) {
  const std::string dir = fresh_dir(name);
  const std::string base_path = dir + "/base.sibdb";
  const std::string target_path = dir + "/target.sibdb";
  EXPECT_TRUE(serve::write_sibdb(base_path, base_list(), "base month"));
  EXPECT_TRUE(serve::write_sibdb(target_path, target_list(), "target month"));
  auto base = serve::SiblingDB::load(base_path);
  auto target = serve::SiblingDB::load(target_path);
  EXPECT_TRUE(base.has_value());
  EXPECT_TRUE(target.has_value());
  std::string error;
  auto delta = diff_sibdb(*base, *target, &error);
  EXPECT_TRUE(delta.has_value()) << error;
  return {dir, base_path, target_path, std::move(*base), std::move(*target), std::move(*delta)};
}

TEST(StreamSpdl, DiffCapturesRemovalsAndUpserts) {
  const Fixture fx = make_fixture("spdl_diff");
  ASSERT_EQ(fx.delta.removed.size(), 1u);
  EXPECT_EQ(fx.delta.removed[0].first, p("20.3.0.0/16"));
  ASSERT_EQ(fx.delta.upserted.size(), 2u);
  EXPECT_EQ(fx.delta.upserted[0].v4, p("20.2.0.0/16"));
  EXPECT_DOUBLE_EQ(fx.delta.upserted[0].similarity, 0.75);
  EXPECT_EQ(fx.delta.upserted[1].v4, p("20.9.0.0/16"));
  EXPECT_EQ(fx.delta.label, "target month");
  EXPECT_EQ(fx.delta.base_pair_count, 4u);
  EXPECT_EQ(fx.delta.base_hash, sibdb_file_hash(fx.base.raw_bytes()));
  EXPECT_EQ(fx.delta.result_hash, sibdb_file_hash(fx.target.raw_bytes()));
  EXPECT_FALSE(fx.delta.empty());
}

TEST(StreamSpdl, DiffOfIdenticalSnapshotsIsEmpty) {
  const std::string dir = fresh_dir("spdl_empty");
  ASSERT_TRUE(serve::write_sibdb(dir + "/a.sibdb", base_list(), "same"));
  const auto db = serve::SiblingDB::load(dir + "/a.sibdb");
  ASSERT_TRUE(db.has_value());
  const auto delta = diff_sibdb(*db, *db);
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->empty());
  EXPECT_EQ(delta->base_hash, delta->result_hash);

  // An empty delta still applies: the output is the same snapshot again.
  ASSERT_TRUE(apply_spdl(*db, *delta, dir + "/b.sibdb"));
  EXPECT_EQ(read_file(dir + "/a.sibdb"), read_file(dir + "/b.sibdb"));
}

TEST(StreamSpdl, EncodeDecodeRoundTripsExactly) {
  const Fixture fx = make_fixture("spdl_roundtrip");
  const std::vector<std::uint8_t> bytes = encode_spdl(fx.delta);
  std::string error;
  const auto decoded = decode_spdl(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->removed, fx.delta.removed);
  ASSERT_EQ(decoded->upserted.size(), fx.delta.upserted.size());
  for (std::size_t i = 0; i < decoded->upserted.size(); ++i) {
    EXPECT_EQ(decoded->upserted[i], fx.delta.upserted[i]);
    EXPECT_DOUBLE_EQ(decoded->upserted[i].similarity, fx.delta.upserted[i].similarity);
  }
  EXPECT_EQ(decoded->label, fx.delta.label);
  EXPECT_EQ(decoded->base_hash, fx.delta.base_hash);
  EXPECT_EQ(decoded->base_pair_count, fx.delta.base_pair_count);
  EXPECT_EQ(decoded->result_hash, fx.delta.result_hash);

  // The canonical-layout property the fuzzer leans on.
  EXPECT_EQ(encode_spdl(*decoded), bytes);
}

TEST(StreamSpdl, ApplyReproducesTargetBytes) {
  const Fixture fx = make_fixture("spdl_apply");
  const std::string out = fx.dir + "/patched.sibdb";
  std::string error;
  ASSERT_TRUE(apply_spdl(fx.base, fx.delta, out, &error)) << error;
  EXPECT_EQ(read_file(out), read_file(fx.target_path));
}

TEST(StreamSpdl, WriteReadRoundTripsThroughDisk) {
  const Fixture fx = make_fixture("spdl_disk");
  const std::string path = fx.dir + "/delta.spdl";
  ASSERT_TRUE(write_spdl(path, fx.delta));
  std::string error;
  const auto loaded = read_spdl(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(encode_spdl(*loaded), encode_spdl(fx.delta));
}

TEST(StreamSpdl, EverySingleByteFlipIsRejected) {
  const Fixture fx = make_fixture("spdl_flip");
  const std::vector<std::uint8_t> bytes = encode_spdl(fx.delta);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[i] ^= 0x01;
    std::string error;
    EXPECT_FALSE(decode_spdl(mutated, &error).has_value())
        << "flip at byte " << i << " was accepted";
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
}

TEST(StreamSpdl, EveryTruncationIsRejected) {
  const Fixture fx = make_fixture("spdl_trunc");
  const std::vector<std::uint8_t> bytes = encode_spdl(fx.delta);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(decode_spdl(truncated).has_value()) << "truncation to " << keep << " bytes";
  }
}

TEST(StreamSpdl, ApplyRejectsWrongBase) {
  const Fixture fx = make_fixture("spdl_wrongbase");
  const std::string out = fx.dir + "/never.sibdb";
  std::string error;
  // The target is not the base the delta was diffed against.
  EXPECT_FALSE(apply_spdl(fx.target, fx.delta, out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(out));
}

TEST(StreamSpdl, ApplyRejectsResultHashMismatch) {
  const Fixture fx = make_fixture("spdl_resulthash");
  SibdbDelta tampered = fx.delta;
  tampered.result_hash ^= 1;
  const std::string out = fx.dir + "/never.sibdb";
  std::string error;
  EXPECT_FALSE(apply_spdl(fx.base, tampered, out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(out));
}

TEST(StreamSpdl, ApplyRejectsRemovedKeyAbsentFromBase) {
  const Fixture fx = make_fixture("spdl_badremove");
  SibdbDelta tampered = fx.delta;
  tampered.removed[0] = {p("99.9.0.0/16"), p("2620:999::/48")};
  const std::string out = fx.dir + "/never.sibdb";
  std::string error;
  EXPECT_FALSE(apply_spdl(fx.base, tampered, out, &error));
  EXPECT_NE(error.find("removed key"), std::string::npos) << error;
  EXPECT_FALSE(std::filesystem::exists(out));
}

TEST(StreamSpdl, PathHelpers) {
  EXPECT_TRUE(is_spdl_path("out/delta-2020-10-11.spdl"));
  EXPECT_TRUE(is_spdl_path(".spdl"));
  EXPECT_FALSE(is_spdl_path("out/siblings.sibdb"));
  EXPECT_FALSE(is_spdl_path("spdl"));
  EXPECT_EQ(spdl_result_path("out/delta-2020-10-11.spdl"), "out/delta-2020-10-11.sibdb");
  EXPECT_EQ(spdl_result_path("delta.spdl"), "delta.sibdb");
  EXPECT_EQ(spdl_result_path("noext"), "noext.sibdb");
  EXPECT_EQ(spdl_result_path("dir.v2/noext"), "dir.v2/noext.sibdb");
}

}  // namespace
}  // namespace sp::stream
