// Tests for IP-ID-based alias resolution: velocity estimation, the
// monotonic-bounds test, wraparound handling, and end-to-end grouping of
// synthetic routers.
#include "alias/ipid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace sp::alias {
namespace {

/// Samples a shared counter (base + rate·t) mod 2^16 at the given times,
/// with per-sample jitter.
std::vector<IpIdSample> sample_counter(double base, double rate,
                                       const std::vector<double>& times, double jitter,
                                       std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> noise(-jitter, jitter);
  std::vector<IpIdSample> samples;
  samples.reserve(times.size());
  for (const double t : times) {
    const double value = base + rate * t + (jitter > 0 ? noise(rng) : 0.0);
    samples.push_back({t, static_cast<std::uint16_t>(
                              static_cast<std::uint64_t>(std::llround(value)) % 65536)});
  }
  return samples;
}

std::vector<double> probe_times(int count, double start, double step) {
  std::vector<double> times;
  for (int i = 0; i < count; ++i) times.push_back(start + i * step);
  return times;
}

TEST(IpIdVelocity, RecoversCounterRate) {
  const auto samples = sample_counter(100, 250.0, probe_times(20, 0.0, 0.5), 0.0, 1);
  EXPECT_NEAR(estimated_velocity(samples), 250.0, 1.0);
  EXPECT_DOUBLE_EQ(estimated_velocity({}), 0.0);
  EXPECT_DOUBLE_EQ(estimated_velocity(std::vector<IpIdSample>{{0.0, 5}}), 0.0);
}

TEST(IpIdVelocity, HandlesWraparound) {
  // Rate 5000 IDs/s crosses the 16-bit wrap several times in 60 seconds.
  const auto samples = sample_counter(60000, 5000.0, probe_times(120, 0.0, 0.5), 0.0, 2);
  EXPECT_NEAR(estimated_velocity(samples), 5000.0, 50.0);
}

TEST(MonotonicBounds, AcceptsSharedCounter) {
  // Two interfaces of one router: same counter, interleaved probe times.
  const auto a = sample_counter(500, 300.0, probe_times(20, 0.0, 1.0), 4.0, 3);
  const auto b = sample_counter(500, 300.0, probe_times(20, 0.5, 1.0), 4.0, 4);
  EXPECT_TRUE(monotonic_compatible(a, b));
}

TEST(MonotonicBounds, RejectsIndependentCounters) {
  // Same velocity but different phase: merged stream zig-zags.
  const auto a = sample_counter(500, 300.0, probe_times(20, 0.0, 1.0), 0.0, 5);
  const auto b = sample_counter(30000, 300.0, probe_times(20, 0.5, 1.0), 0.0, 6);
  EXPECT_FALSE(monotonic_compatible(a, b));
}

TEST(MonotonicBounds, RejectsVelocityMismatch) {
  const auto a = sample_counter(500, 300.0, probe_times(20, 0.0, 1.0), 0.0, 7);
  const auto b = sample_counter(500, 900.0, probe_times(20, 0.5, 1.0), 0.0, 8);
  EXPECT_FALSE(monotonic_compatible(a, b));
}

TEST(MonotonicBounds, AcceptsSharedCounterAcrossWrap) {
  const auto a = sample_counter(65000, 400.0, probe_times(30, 0.0, 1.0), 2.0, 9);
  const auto b = sample_counter(65000, 400.0, probe_times(30, 0.5, 1.0), 2.0, 10);
  EXPECT_TRUE(monotonic_compatible(a, b));
}

TEST(MonotonicBounds, RejectsTooFewSamples) {
  const auto a = sample_counter(0, 300.0, probe_times(1, 0.0, 1.0), 0.0, 11);
  const auto b = sample_counter(0, 300.0, probe_times(20, 0.0, 1.0), 0.0, 12);
  EXPECT_FALSE(monotonic_compatible(a, b));
}

TEST(ResolveAliases, GroupsRoutersCorrectly) {
  // Three routers; router 0 and 1 are dual-stack with two interfaces each,
  // router 2 has one v4 interface. Distinct bases and rates.
  struct Router {
    double base;
    double rate;
    std::vector<const char*> interfaces;
  };
  const Router routers[] = {
      {1000, 250.0, {"20.1.0.1", "2620:100::1"}},
      {42000, 800.0, {"20.2.0.1", "2620:200::1"}},
      {9000, 420.0, {"20.3.0.1"}},
  };

  ProbeData probes;
  std::uint32_t seed = 100;
  for (const auto& router : routers) {
    double phase = 0.0;
    for (const char* interface_address : router.interfaces) {
      probes[IPAddress::must_parse(interface_address)] =
          sample_counter(router.base, router.rate, probe_times(25, phase, 1.0), 3.0, seed++);
      phase += 0.4;
    }
  }

  const auto groups = resolve_aliases(probes);
  ASSERT_EQ(groups.size(), 3u);
  // Groups are ordered by first address: 20.1.. group, 20.2.. group, 20.3...
  ASSERT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[0][0], IPAddress::must_parse("20.1.0.1"));
  EXPECT_EQ(groups[0][1], IPAddress::must_parse("2620:100::1"));
  ASSERT_EQ(groups[1].size(), 2u);
  EXPECT_EQ(groups[1][1], IPAddress::must_parse("2620:200::1"));
  EXPECT_EQ(groups[2], std::vector<IPAddress>{IPAddress::must_parse("20.3.0.1")});
}

TEST(ResolveAliases, SimilarVelocityDifferentPhaseStaysSeparate) {
  ProbeData probes;
  probes[IPAddress::must_parse("20.1.0.1")] =
      sample_counter(100, 500.0, probe_times(30, 0.0, 1.0), 0.0, 200);
  probes[IPAddress::must_parse("20.1.0.2")] =
      sample_counter(40000, 500.0, probe_times(30, 0.5, 1.0), 0.0, 201);
  const auto groups = resolve_aliases(probes);
  EXPECT_EQ(groups.size(), 2u);
}

// Property: random router populations are recovered exactly.
class AliasResolutionProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AliasResolutionProperty, RecoversRandomRouterPopulations) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> jitter_dist(0.95, 1.05);
  std::uniform_real_distribution<double> base_dist(0.0, 65535.0);
  std::uniform_int_distribution<int> interface_count(1, 4);

  ProbeData probes;
  std::vector<std::vector<IPAddress>> truth;
  std::uint32_t next_host = 1;
  std::uint32_t seed = 1000;
  for (int router = 0; router < 8; ++router) {
    // Geometric velocity stratification keeps every router pair outside
    // the relative velocity tolerance, so the test is decisive at this
    // sample density (MIDAR stratifies targets the same way).
    const double rate = 150.0 * std::pow(1.5, router) * jitter_dist(rng);
    const double base = base_dist(rng);
    std::vector<IPAddress> members;
    const int interfaces = interface_count(rng);
    double phase = 0.0;
    for (int i = 0; i < interfaces; ++i) {
      const IPAddress address(IPv4Address(0x14000000u + next_host++));
      probes[address] =
          sample_counter(base, rate, probe_times(30, phase, 1.0), 2.0, seed++);
      members.push_back(address);
      phase += 0.3;
    }
    std::sort(members.begin(), members.end());
    truth.push_back(std::move(members));
  }
  std::sort(truth.begin(), truth.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });

  const auto groups = resolve_aliases(probes);
  ASSERT_EQ(groups.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(groups[i], truth[i]) << "router " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasResolutionProperty, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace sp::alias
