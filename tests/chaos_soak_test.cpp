// A miniature in-process soak: the full chaos harness — fixture build,
// live TCP server, seeded fault schedule, probe threads — run just long
// enough to execute real reload churn, corrupt swaps and client
// misbehavior, then audited for every invariant the long-form sp_soak
// checks (liveness, corrupt-swap rejection, per-generation query
// conservation, byte-correct final sweep). Short enough for tier-1;
// scripts/tier1.sh runs the same driver for 45+ seconds under ASan, and
// the TSan pass runs this test to race-check the whole serving stack.
#include "chaos/soak.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

#include "chaos/scenario.h"

namespace sp::chaos {
namespace {

SoakConfig smoke_config(const std::string& name) {
  SoakConfig config;
  config.seed = 20250808;
  config.duration = std::chrono::seconds(3);
  config.workdir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(config.workdir);
  config.server_workers = 2;
  config.query_threads = 2;
  config.pair_count = 128;
  return config;
}

TEST(ChaosSoak, SmokeSoakHoldsEveryInvariant) {
  const SoakReport report = run_soak(smoke_config("chaos_soak_smoke"));
  for (const std::string& violation : report.violations) ADD_FAILURE() << violation;
  EXPECT_TRUE(report.ok);

  // The schedule actually ran: traffic flowed and reload churn happened.
  EXPECT_GT(report.events, 20u);
  EXPECT_GT(report.query_events, 0u);
  EXPECT_GT(report.client_queries, 0u);
  EXPECT_GT(report.valid_reloads, 0u);
  EXPECT_GT(report.corrupt_reloads, 0u);  // corrupt swaps offered AND rejected

  // Conservation, exactly: every key the server ever answered is
  // tallied in exactly one generation (live, retired, or compacted).
  EXPECT_EQ(report.generation_query_sum, report.server_queries);

  // The final sweep compared every fixture key against the oracle.
  EXPECT_GT(report.sweep_keys, 0u);
  EXPECT_EQ(report.sweep_mismatches, 0u);
}

TEST(ChaosSoak, SameSeedPlaysTheSameSchedule) {
  // The wire traffic is seed-determined even though timing varies: two
  // runs agree on the event sequence prefix they both reached.
  auto config_a = smoke_config("chaos_soak_replay_a");
  auto config_b = smoke_config("chaos_soak_replay_b");
  config_a.duration = std::chrono::seconds(1);
  config_b.duration = std::chrono::seconds(1);
  const SoakReport a = run_soak(config_a);
  const SoakReport b = run_soak(config_b);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  const std::size_t shared = static_cast<std::size_t>(std::min(a.events, b.events));
  const auto schedule_a = make_schedule(config_a.seed, shared);
  const auto schedule_b = make_schedule(config_b.seed, shared);
  for (std::size_t i = 0; i < shared; ++i)
    EXPECT_EQ(schedule_a[i].kind, schedule_b[i].kind) << i;
}

}  // namespace
}  // namespace sp::chaos
