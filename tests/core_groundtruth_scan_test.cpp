// Tests for ground-truth probe evaluation (section 3.5), the port-scan
// comparison (section 3.6 / Figure 6), sibling set pairs (section 6), and
// the published-list serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "core/groundtruth.h"
#include "core/portscan_compare.h"
#include "core/probes_io.h"
#include "core/sibling_list_io.h"
#include "core/sibling_sets.h"
#include "io/csv.h"
#include "test_fixtures.h"

namespace sp::core {
namespace {

using testsupport::ScenarioBuilder;

SiblingPair make_pair(const char* v4, const char* v6, double similarity = 1.0,
                      std::uint32_t shared = 1) {
  SiblingPair pair;
  pair.v4 = Prefix::must_parse(v4);
  pair.v6 = Prefix::must_parse(v6);
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = shared;
  pair.v6_domain_count = shared;
  return pair;
}

DualStackProbe probe(const char* v4, const char* v6) {
  return {IPAddress::must_parse(v4), IPAddress::must_parse(v6)};
}

TEST(GroundTruth, ClassifiesCoverage) {
  const std::vector<SiblingPair> pairs = {
      make_pair("20.1.0.0/16", "2620:100::/48"),
      make_pair("20.2.0.0/16", "2620:200::/48"),
  };
  const std::vector<DualStackProbe> probes = {
      // Fully covered, single pair covers both: best match.
      probe("20.1.5.5", "2620:100::5"),
      // Fully covered, but v4 in pair 0 and v6 in pair 1: not best match.
      probe("20.1.5.6", "2620:200::6"),
      // Partially covered: v4 outside all pairs.
      probe("99.0.0.1", "2620:100::7"),
      // Uncovered.
      probe("99.0.0.2", "2620:999::1"),
  };

  const auto report = evaluate_probes(probes, pairs);
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.fully_covered, 2u);
  EXPECT_EQ(report.partially_covered, 1u);
  EXPECT_EQ(report.uncovered, 1u);
  EXPECT_EQ(report.best_match, 1u);
  EXPECT_EQ(report.not_best_match, 1u);
  EXPECT_DOUBLE_EQ(report.fully_covered_share(), 0.5);
  EXPECT_DOUBLE_EQ(report.best_match_share(), 0.5);
}

TEST(GroundTruth, NestedPairPrefixesAllCount) {
  const std::vector<SiblingPair> pairs = {
      make_pair("20.0.0.0/8", "2620:100::/32"),
      make_pair("20.1.0.0/16", "2620:100::/48"),
  };
  // Probe inside both nested pairs: best match via either.
  const std::vector<DualStackProbe> probes = {probe("20.1.1.1", "2620:100::1")};
  const auto report = evaluate_probes(probes, pairs);
  EXPECT_EQ(report.best_match, 1u);
}

TEST(GroundTruth, EmptyInputs) {
  const auto report = evaluate_probes({}, {});
  EXPECT_EQ(report.total, 0u);
  EXPECT_DOUBLE_EQ(report.fully_covered_share(), 0.0);
  EXPECT_DOUBLE_EQ(report.best_match_share(), 0.0);
}

TEST(PortScanCompare, JaccardBins) {
  EXPECT_EQ(jaccard_bin(0.0), 0);
  EXPECT_EQ(jaccard_bin(0.05), 0);
  EXPECT_EQ(jaccard_bin(0.1), 1);
  EXPECT_EQ(jaccard_bin(0.95), 9);
  EXPECT_EQ(jaccard_bin(1.0), 9);  // 1.0 folds into the top bin
}

TEST(PortScanCompare, JointDistributionAndResponsiveness) {
  scan::PortScanDataset scan_data;
  // Pair A: both sides answer on {80, 443} → port jaccard 1.
  scan_data.add_open(IPAddress::must_parse("20.1.0.1"), 80);
  scan_data.add_open(IPAddress::must_parse("20.1.0.1"), 443);
  scan_data.add_open(IPAddress::must_parse("2620:100::1"), 80);
  scan_data.add_open(IPAddress::must_parse("2620:100::1"), 443);
  // Pair B: v4 answers {80}, v6 answers {22} → port jaccard 0.
  scan_data.add_open(IPAddress::must_parse("20.2.0.1"), 80);
  scan_data.add_open(IPAddress::must_parse("2620:200::1"), 22);
  // Pair C: nothing answers.

  const std::vector<SiblingPair> pairs = {
      make_pair("20.1.0.0/16", "2620:100::/48", 1.0),
      make_pair("20.2.0.0/16", "2620:200::/48", 1.0),
      make_pair("20.3.0.0/16", "2620:300::/48", 0.5),
  };

  const auto comparison = compare_with_portscan(pairs, scan_data);
  EXPECT_EQ(comparison.pair_count, 3u);
  EXPECT_EQ(comparison.responsive_pairs, 2u);
  EXPECT_NEAR(comparison.responsive_share(), 2.0 / 3.0, 1e-12);
  // Pair A: dns bin 9, scan bin 9. Pair B: dns bin 9, scan bin 0.
  EXPECT_EQ(comparison.joint[9][9], 1u);
  EXPECT_EQ(comparison.joint[9][0], 1u);
  std::size_t total = 0;
  for (const auto& row : comparison.joint) {
    total = std::accumulate(row.begin(), row.end(), total);
  }
  EXPECT_EQ(total, 2u);
}

TEST(SiblingSets, GroupsConnectedPairs) {
  ScenarioBuilder builder;
  builder.announce("20.1.0.0/24", 1).announce("20.2.0.0/24", 1).announce("2620:100::/48", 2);
  builder.announce("20.9.0.0/24", 3).announce("2620:900::/48", 4);
  // Fragmented org: two v4 prefixes, one v6 prefix.
  builder.host("a.example.org", {"20.1.0.1"}, {"2620:100::1"});
  builder.host("b.example.org", {"20.2.0.1"}, {"2620:100::2"});
  // Isolated org.
  builder.host("c.example.org", {"20.9.0.1"}, {"2620:900::1"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 3u);  // two fragment pairs + the isolated pair

  const auto sets = build_sibling_sets(corpus, pairs);
  ASSERT_EQ(sets.size(), 2u);
  // Largest component first: the fragmented org.
  EXPECT_EQ(sets[0].member_pairs, 2u);
  EXPECT_EQ(sets[0].v4_prefixes.size(), 2u);
  EXPECT_EQ(sets[0].v6_prefixes.size(), 1u);
  // Pairwise jaccard was 1/2; the set pair recovers 1.0.
  EXPECT_DOUBLE_EQ(sets[0].similarity, 1.0);
  EXPECT_EQ(sets[0].domain_count, 2u);

  EXPECT_EQ(sets[1].member_pairs, 1u);
  EXPECT_DOUBLE_EQ(sets[1].similarity, 1.0);
}

TEST(SiblingListIo, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_list_test.csv";
  const std::vector<SiblingPair> pairs = {
      make_pair("20.1.0.0/16", "2620:100::/48", 1.0, 3),
      make_pair("20.2.0.0/24", "2620:200::/96", 2.0 / 3.0, 2),
  };
  ASSERT_TRUE(write_sibling_list(path, pairs));
  const auto loaded = read_sibling_list(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].v4, pairs[0].v4);
  EXPECT_EQ((*loaded)[1].v6, pairs[1].v6);
  EXPECT_NEAR((*loaded)[1].similarity, 2.0 / 3.0, 1e-8);
  EXPECT_EQ((*loaded)[0].shared_domains, 3u);
  std::remove(path.c_str());
}

TEST(SiblingListIo, RejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/sp_list_bad.csv";
  // Wrong header.
  ASSERT_TRUE(sp::io::write_csv_file(path, {{"nope"}, {"20.1.0.0/16"}}));
  EXPECT_FALSE(read_sibling_list(path).has_value());
  // Swapped families.
  ASSERT_TRUE(sp::io::write_csv_file(
      path, {{"v4_prefix", "v6_prefix", "similarity", "shared_domains", "v4_domains",
              "v6_domains"},
             {"2620:100::/48", "20.1.0.0/16", "1.0", "1", "1", "1"}}));
  EXPECT_FALSE(read_sibling_list(path).has_value());
  // Unparsable similarity.
  ASSERT_TRUE(sp::io::write_csv_file(
      path, {{"v4_prefix", "v6_prefix", "similarity", "shared_domains", "v4_domains",
              "v6_domains"},
             {"20.1.0.0/16", "2620:100::/48", "high", "1", "1", "1"}}));
  EXPECT_FALSE(read_sibling_list(path).has_value());
  EXPECT_FALSE(read_sibling_list("/nonexistent/list.csv").has_value());
  std::remove(path.c_str());
}

TEST(SiblingListIo, ReportsOffendingLineOnParseFailure) {
  const std::string path = ::testing::TempDir() + "/sp_list_lineno.csv";
  ASSERT_TRUE(sp::io::write_csv_file(
      path, {{"v4_prefix", "v6_prefix", "similarity", "shared_domains", "v4_domains",
              "v6_domains"},
             {"20.1.0.0/16", "2620:100::/48", "1.0", "1", "1", "1"},
             {"20.2.0.0/16", "2620:200::/48", "1.0", "1", "1", "1"},
             {"20.3.0.0/16", "2620:300::/48", "broken", "1", "1", "1"}}));
  SiblingListError error;
  EXPECT_FALSE(read_sibling_list(path, &error).has_value());
  EXPECT_EQ(error.line, 4u);
  EXPECT_EQ(error.message, "bad similarity");

  // A malformed header reports line 1; a missing file reports line 0.
  ASSERT_TRUE(sp::io::write_csv_file(path, {{"nope"}, {"20.1.0.0/16"}}));
  EXPECT_FALSE(read_sibling_list(path, &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_EQ(error.message, "malformed header");
  EXPECT_FALSE(read_sibling_list("/nonexistent/list.csv", &error).has_value());
  EXPECT_EQ(error.line, 0u);
  std::remove(path.c_str());
}

// The streaming reader handles lists bigger than its 64 KiB read chunks,
// including rows that straddle a chunk boundary.
TEST(SiblingListIo, StreamsListsLargerThanOneChunk) {
  const std::string path = ::testing::TempDir() + "/sp_list_large.csv";
  std::vector<SiblingPair> pairs;
  pairs.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    pairs.push_back(make_pair(("20." + std::to_string(i / 250) + "." +
                               std::to_string(i % 250) + ".0/24")
                                  .c_str(),
                              ("2620:" + std::to_string(i % 9000) + "::/48").c_str(),
                              (i % 100) / 100.0, static_cast<std::uint32_t>(i)));
  }
  ASSERT_TRUE(write_sibling_list(path, pairs));
  const auto loaded = read_sibling_list(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), pairs.size());
  EXPECT_EQ((*loaded)[0].v4, pairs[0].v4);
  EXPECT_EQ((*loaded)[3999].v4, pairs[3999].v4);
  EXPECT_EQ((*loaded)[3999].shared_domains, 3999u);
  std::remove(path.c_str());
}

TEST(ProbesIo, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_probes_test.csv";
  const std::vector<DualStackProbe> probes = {probe("20.1.5.5", "2620:100::5"),
                                              probe("20.2.0.9", "2620:200::9")};
  ASSERT_TRUE(write_probes_csv(path, probes));
  const auto loaded = read_probes_csv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].v4, probes[0].v4);
  EXPECT_EQ((*loaded)[1].v6, probes[1].v6);
  std::remove(path.c_str());
}

TEST(ProbesIo, RejectsFamilyMismatchAndGarbage) {
  const std::string path = ::testing::TempDir() + "/sp_probes_bad.csv";
  // Families swapped.
  ASSERT_TRUE(sp::io::write_csv_file(
      path, {{"v4_address", "v6_address"}, {"2620:100::5", "20.1.5.5"}}));
  EXPECT_FALSE(read_probes_csv(path).has_value());
  // Unparsable address.
  ASSERT_TRUE(sp::io::write_csv_file(
      path, {{"v4_address", "v6_address"}, {"999.1.1.1", "2620:100::5"}}));
  EXPECT_FALSE(read_probes_csv(path).has_value());
  // Wrong header.
  ASSERT_TRUE(sp::io::write_csv_file(path, {{"a", "b"}}));
  EXPECT_FALSE(read_probes_csv(path).has_value());
  EXPECT_FALSE(read_probes_csv("/nonexistent/probes.csv").has_value());
  std::remove(path.c_str());
}

TEST(ProbesIo, LoadedProbesFeedGroundTruth) {
  const std::string path = ::testing::TempDir() + "/sp_probes_gt.csv";
  ASSERT_TRUE(write_probes_csv(path,
                               std::vector<DualStackProbe>{probe("20.1.5.5", "2620:100::5")}));
  const auto loaded = read_probes_csv(path);
  ASSERT_TRUE(loaded.has_value());
  const std::vector<SiblingPair> pairs = {make_pair("20.1.0.0/16", "2620:100::/48")};
  const auto report = evaluate_probes(*loaded, pairs);
  EXPECT_EQ(report.best_match, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sp::core
