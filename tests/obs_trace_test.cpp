// Tests for the sp::obs trace recorder: span recording, dense per-thread
// tids, Chrome-trace JSON shape, the active-recorder slot + ScopedSpan,
// and concurrent span recording (TSan target).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sp::obs {
namespace {

using std::chrono::steady_clock;

TEST(ObsTrace, RecordsSpansWithRelativeTimestamps) {
  TraceRecorder recorder;
  const auto start = steady_clock::now();
  recorder.span("stage.a", "stage", start, start + std::chrono::microseconds(250));
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "stage.a");
  EXPECT_EQ(events[0].category, "stage");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_NEAR(events[0].dur_us, 250.0, 1.0);
}

TEST(ObsTrace, ThreadsGetDenseDistinctTids) {
  TraceRecorder recorder;
  const auto now = steady_clock::now();
  recorder.span("main", "test", now, now);
  std::thread other([&] { recorder.span("worker", "test", now, now); });
  other.join();
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_LT(events[0].tid, 2u);  // dense, not hashed thread ids
  EXPECT_LT(events[1].tid, 2u);
}

TEST(ObsTrace, JsonIsChromeTraceShaped) {
  TraceRecorder recorder;
  const auto now = steady_clock::now();
  recorder.span("detect.v4.shard0", "detect", now, now + std::chrono::milliseconds(2));
  const std::string json = recorder.to_json();
  EXPECT_EQ(json.find('{'), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"detect.v4.shard0\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"detect\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(ObsTrace, JsonEscapesControlAndQuoteCharacters) {
  TraceRecorder recorder;
  const auto now = steady_clock::now();
  recorder.span("weird\"name\n", "cat\\egory", now, now);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("weird\\\"name\\u000a"), std::string::npos);
  EXPECT_NE(json.find("cat\\\\egory"), std::string::npos);
}

TEST(ObsTrace, WriteProducesLoadableFile) {
  TraceRecorder recorder;
  const auto now = steady_clock::now();
  recorder.span("stage.export", "stage", now, now + std::chrono::microseconds(10));
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  std::string error;
  ASSERT_TRUE(recorder.write(path, &error)) << error;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), recorder.to_json());
  std::remove(path.c_str());
}

TEST(ObsTrace, ScopedSpanRecordsOnlyWhileActive) {
  TraceRecorder recorder;
  { const ScopedSpan ignored("not.recorded", "test"); }  // no active recorder
  TraceRecorder::set_active(&recorder);
  { const ScopedSpan recorded("recorded", "test"); }
  TraceRecorder::set_active(nullptr);
  { const ScopedSpan ignored("also.not.recorded", "test"); }

  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "recorded");
  EXPECT_EQ(TraceRecorder::active(), nullptr);
}

// TSan target: spans landing from many threads while another thread
// serializes the partial trace.
TEST(ObsTraceConcurrency, ConcurrentSpansAndSerialization) {
  TraceRecorder recorder;
  TraceRecorder::set_active(&recorder);
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        const ScopedSpan span("span." + std::to_string(t), "race");
      }
    });
  }
  std::string json;
  for (int i = 0; i < 50; ++i) json = recorder.to_json();
  for (auto& thread : threads) thread.join();
  TraceRecorder::set_active(nullptr);
  EXPECT_EQ(recorder.events().size(), static_cast<std::size_t>(kThreads) * kSpans);
  EXPECT_FALSE(json.empty());
}

}  // namespace
}  // namespace sp::obs
