// Tests for the ROA CSV interchange format and its integration with the
// validator.
#include "rpki/roa_csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "io/csv.h"

namespace sp::rpki {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

TEST(RoaCsv, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_roa_test.csv";
  const std::vector<Roa> roas = {
      {p("20.1.0.0/16"), 20, 65001},
      {p("2620:100::/32"), 48, 65101},
      {p("20.9.0.0/24"), 24, 65009},
  };
  ASSERT_TRUE(write_roa_csv(path, roas));
  const auto loaded = read_roa_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, roas);
  std::remove(path.c_str());
}

TEST(RoaCsv, AcceptsBareAsnNumbers) {
  const std::string path = ::testing::TempDir() + "/sp_roa_bare.csv";
  ASSERT_TRUE(io::write_csv_file(
      path, {{"asn", "prefix", "max_length"}, {"65001", "20.1.0.0/16", "16"}}));
  const auto loaded = read_roa_csv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].asn, 65001u);
  std::remove(path.c_str());
}

TEST(RoaCsv, RejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/sp_roa_bad.csv";
  const io::CsvRow header = {"asn", "prefix", "max_length"};
  // Bad ASN.
  ASSERT_TRUE(io::write_csv_file(path, {header, {"ASx", "20.1.0.0/16", "16"}}));
  EXPECT_FALSE(read_roa_csv(path).has_value());
  // Bad prefix.
  ASSERT_TRUE(io::write_csv_file(path, {header, {"AS1", "20.1.0.0", "16"}}));
  EXPECT_FALSE(read_roa_csv(path).has_value());
  // max_length below prefix length.
  ASSERT_TRUE(io::write_csv_file(path, {header, {"AS1", "20.1.0.0/16", "8"}}));
  EXPECT_FALSE(read_roa_csv(path).has_value());
  // max_length above family maximum.
  ASSERT_TRUE(io::write_csv_file(path, {header, {"AS1", "20.1.0.0/16", "33"}}));
  EXPECT_FALSE(read_roa_csv(path).has_value());
  // Wrong header.
  ASSERT_TRUE(io::write_csv_file(path, {{"nope"}, {"AS1", "20.1.0.0/16", "16"}}));
  EXPECT_FALSE(read_roa_csv(path).has_value());
  EXPECT_FALSE(read_roa_csv("/nonexistent/roa.csv").has_value());
  std::remove(path.c_str());
}

TEST(RoaCsv, LoadedRoasFeedTheValidator) {
  const std::string path = ::testing::TempDir() + "/sp_roa_validate.csv";
  ASSERT_TRUE(write_roa_csv(path, std::vector<Roa>{{p("20.1.0.0/16"), 24, 65001}}));
  const auto loaded = read_roa_csv(path);
  ASSERT_TRUE(loaded.has_value());
  Validator validator;
  for (const auto& roa : *loaded) ASSERT_TRUE(validator.add_roa(roa));
  EXPECT_EQ(validator.validate(p("20.1.7.0/24"), 65001), RovStatus::Valid);
  EXPECT_EQ(validator.validate(p("20.1.7.0/24"), 65002), RovStatus::Invalid);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sp::rpki
