// Graceful-stop contract of the campaign runner (the sp_pipeline
// SIGINT/SIGTERM path): flipping CampaignConfig::stop_flag mid-run lets
// the in-flight stage finish, finalizes every not-yet-started stage as
// Skipped (recorded in the manifest — exactly what resume re-runs), and
// a subsequent resume converges to artifacts byte-identical to an
// uninterrupted run. This is the library-level half of the kill-and-
// resume smoke in scripts/tier1.sh, which delivers a real SIGINT to a
// real sp_pipeline process.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "pipeline/campaign.h"
#include "pipeline/manifest.h"

namespace sp::pipeline {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

CampaignConfig small_config(std::string out_dir) {
  CampaignConfig config;
  config.synth.months = 3;
  config.synth.organization_count = 50;
  config.synth.probe_count = 50;
  config.threads = 2;
  config.out_dir = std::move(out_dir);
  return config;
}

RunManifest load_manifest(const std::string& out_dir) {
  std::string error;
  const auto manifest = RunManifest::load(Campaign::manifest_path(out_dir), &error);
  EXPECT_TRUE(manifest.has_value()) << error;
  return manifest.value_or(RunManifest{});
}

TEST(PipelineSignal, StopMidRunSkipsRestThenResumeMatchesUninterrupted) {
  const std::string dir_reference = fresh_dir("sp_signal_reference");
  const std::string dir_stopped = fresh_dir("sp_signal_stopped");

  const auto reference_report = Campaign(small_config(dir_reference)).run(/*resume=*/false);
  ASSERT_TRUE(reference_report.ok) << reference_report.error;

  // Interrupted run: request the stop from the observer after a few
  // stages complete — the exact point a signal handler would flip the
  // flag while the DAG is mid-flight.
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  auto stopped_config = small_config(dir_stopped);
  stopped_config.stop_flag = &stop;
  const auto stopped_report =
      Campaign(stopped_config).run(/*resume=*/false, [&](const StageResult& result) {
        if (result.status == StageStatus::Done && completed.fetch_add(1) + 1 == 4)
          stop.store(true);
      });

  EXPECT_FALSE(stopped_report.ok);  // interrupted, not complete
  EXPECT_EQ(stopped_report.failed_count, 0u);  // ...but nothing *failed*
  EXPECT_GT(stopped_report.skipped_count, 0u);
  EXPECT_GE(stopped_report.done_count, 4u);
  EXPECT_LT(stopped_report.done_count, reference_report.done_count);

  // The manifest records the skip set — the stop was durable, not lost.
  const RunManifest interrupted = load_manifest(dir_stopped);
  std::size_t recorded_skips = 0;
  for (const StageRecord& stage : interrupted.stages)
    if (stage.status == "skipped") ++recorded_skips;
  EXPECT_EQ(recorded_skips, stopped_report.skipped_count);

  // Resume without the flag: only the skipped cone re-runs, and every
  // artifact lands byte-identical to the uninterrupted reference.
  auto resume_config = small_config(dir_stopped);
  const auto resume_report = Campaign(resume_config).run(/*resume=*/true);
  ASSERT_TRUE(resume_report.ok) << resume_report.error;
  EXPECT_EQ(resume_report.cached_count, stopped_report.done_count);
  EXPECT_EQ(resume_report.done_count,
            reference_report.done_count - stopped_report.done_count);

  const RunManifest reference = load_manifest(dir_reference);
  const RunManifest resumed = load_manifest(dir_stopped);
  ASSERT_EQ(reference.stages.size(), resumed.stages.size());
  for (const StageRecord& stage : reference.stages) {
    const StageRecord* other = resumed.find(stage.name);
    ASSERT_NE(other, nullptr) << stage.name;
    EXPECT_EQ(stage.inputs_hash, other->inputs_hash) << stage.name;
    EXPECT_EQ(stage.outputs, other->outputs) << stage.name;
    for (const OutputRecord& output : stage.outputs) {
      EXPECT_EQ(read_file(dir_reference + "/" + output.path),
                read_file(dir_stopped + "/" + output.path))
          << output.path;
    }
  }
}

TEST(PipelineSignal, StopBeforeRunSkipsEverythingWithoutFailures) {
  const std::string dir = fresh_dir("sp_signal_preset");
  std::atomic<bool> stop{true};  // signal arrived before the first stage
  auto config = small_config(dir);
  config.stop_flag = &stop;
  const auto report = Campaign(config).run(/*resume=*/false);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failed_count, 0u);
  EXPECT_EQ(report.done_count, 0u);
  EXPECT_EQ(report.skipped_count, report.stages.size());

  // A later resume from the all-skipped manifest completes normally.
  const auto resume_report = Campaign(small_config(dir)).run(/*resume=*/true);
  EXPECT_TRUE(resume_report.ok) << resume_report.error;
  EXPECT_EQ(resume_report.done_count, report.skipped_count);
}

}  // namespace
}  // namespace sp::pipeline
