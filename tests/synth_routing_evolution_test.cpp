// Tests for routing evolution in the synthetic universe: monthly
// TABLE_DUMP_V2 dumps grow with the monitoring mesh, and replaying the
// BGP4MP update stream on the month-0 RIB reproduces each month's table.
#include <gtest/gtest.h>

#include "bgp/rib.h"
#include "mrt/codec.h"
#include "synth/universe.h"

namespace sp::synth {
namespace {

SynthConfig tiny_config() {
  SynthConfig config;
  config.organization_count = 100;
  config.months = 8;
  config.monitoring_v4_prefixes = 12;
  config.monitoring_v6_prefixes = 6;
  return config;
}

TEST(RoutingEvolution, TableGrowsMonotonically) {
  const SyntheticInternet universe(tiny_config());
  std::size_t previous = 0;
  for (int month = 0; month < universe.month_count(); ++month) {
    const auto rib = bgp::Rib::from_mrt(universe.mrt_dump_at(month));
    EXPECT_GE(rib.prefix_count(), previous) << "month " << month;
    previous = rib.prefix_count();
  }
  // The end-date dump equals the default mrt_dump().
  EXPECT_EQ(universe.mrt_dump().size(),
            universe.mrt_dump_at(universe.month_count() - 1).size());
}

TEST(RoutingEvolution, UpdateReplayReproducesEveryMonth) {
  const SyntheticInternet universe(tiny_config());
  bgp::Rib replayed = bgp::Rib::from_mrt(universe.mrt_dump_at(0));
  for (int month = 1; month < universe.month_count(); ++month) {
    const auto updates = universe.bgp4mp_updates_at(month);
    // The update stream must survive the wire codec before application —
    // exactly what a collector consumer does.
    std::string error;
    const auto decoded = mrt::decode_dump(mrt::encode_dump(updates), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    replayed.apply_updates(*decoded);

    const auto direct = bgp::Rib::from_mrt(universe.mrt_dump_at(month));
    ASSERT_EQ(replayed.prefix_count(), direct.prefix_count()) << "month " << month;
    // Spot-check: every announced prefix resolves with the same origin.
    for (const auto& prefix : direct.prefixes()) {
      ASSERT_EQ(replayed.origin_as(prefix), direct.origin_as(prefix))
          << prefix.to_string() << " month " << month;
    }
  }
}

TEST(RoutingEvolution, UpdatesCoverExactlyTheBirths) {
  const SyntheticInternet universe(tiny_config());
  std::size_t total_updates = 0;
  for (int month = 1; month < universe.month_count(); ++month) {
    total_updates += universe.bgp4mp_updates_at(month).size();
  }
  const auto& config = universe.config();
  const std::size_t sites = static_cast<std::size_t>(config.monitoring_v4_prefixes +
                                                     config.monitoring_v6_prefixes);
  // Every site not present at month 0 is announced exactly once.
  const auto rib0 = bgp::Rib::from_mrt(universe.mrt_dump_at(0));
  const auto rib_end = bgp::Rib::from_mrt(universe.mrt_dump());
  EXPECT_EQ(total_updates, rib_end.prefix_count() - rib0.prefix_count());
  EXPECT_LE(total_updates, sites);
}

TEST(RoutingEvolution, SnapshotNeverReferencesUnbornPrefixes) {
  const SyntheticInternet universe(tiny_config());
  for (const int month : {0, universe.month_count() / 2}) {
    const auto rib = bgp::Rib::from_mrt(universe.mrt_dump_at(month));
    const auto snapshot = universe.snapshot_at(month);
    for (const auto& entry : snapshot.entries()) {
      for (const auto& address : entry.v4) {
        ASSERT_TRUE(rib.lookup(IPAddress(address)).has_value())
            << address.to_string() << " month " << month;
      }
      for (const auto& address : entry.v6) {
        ASSERT_TRUE(rib.lookup(IPAddress(address)).has_value())
            << address.to_string() << " month " << month;
      }
    }
  }
}

}  // namespace
}  // namespace sp::synth
