// Cross-module edge cases that the per-module suites do not reach.
#include <gtest/gtest.h>

#include "core/sibling_sets.h"
#include "core/sptuner.h"
#include "dns/zone.h"
#include "test_fixtures.h"

namespace sp {
namespace {

using testsupport::ScenarioBuilder;

TEST(ZoneEdge, MultiQuestionQueryAnswersEach) {
  dns::ZoneDatabase zones;
  zones.add(dns::ResourceRecord::a(dns::DomainName::must_parse("a.example.org"),
                                   *IPv4Address::from_string("20.1.1.1")));
  zones.add(dns::ResourceRecord::aaaa(dns::DomainName::must_parse("b.example.org"),
                                      *IPv6Address::from_string("2620:100::1")));
  dns::Message query;
  query.questions.push_back(
      {dns::DomainName::must_parse("a.example.org"), dns::RecordType::A});
  query.questions.push_back(
      {dns::DomainName::must_parse("b.example.org"), dns::RecordType::AAAA});
  const auto response = zones.serve(query);
  EXPECT_EQ(response.header.rcode, 0);
  ASSERT_EQ(response.answers.size(), 2u);
  EXPECT_EQ(response.answers[0].type, dns::RecordType::A);
  EXPECT_EQ(response.answers[1].type, dns::RecordType::AAAA);
}

TEST(ZoneEdge, MixedKnownAndUnknownQuestionsAreNotNxdomain) {
  dns::ZoneDatabase zones;
  zones.add(dns::ResourceRecord::a(dns::DomainName::must_parse("a.example.org"),
                                   *IPv4Address::from_string("20.1.1.1")));
  dns::Message query;
  query.questions.push_back(
      {dns::DomainName::must_parse("a.example.org"), dns::RecordType::A});
  query.questions.push_back(
      {dns::DomainName::must_parse("missing.example.org"), dns::RecordType::A});
  const auto response = zones.serve(query);
  EXPECT_EQ(response.header.rcode, 0);  // some data was found
  EXPECT_EQ(response.answers.size(), 1u);
}

TEST(SiblingSetsEdge, SharedV6PrefixJoinsComponents) {
  // Two v4 prefixes, each best-matching the same v6 prefix, must form one
  // component via the shared v6 side.
  ScenarioBuilder builder;
  builder.announce("20.1.0.0/24", 1).announce("20.2.0.0/24", 2).announce("2620:100::/48", 3);
  builder.host("a.example.org", {"20.1.0.1"}, {"2620:100::1"});
  builder.host("b.example.org", {"20.2.0.1"}, {"2620:100::2"});
  const auto corpus = builder.corpus();
  const auto pairs = core::detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 2u);
  const auto sets = core::build_sibling_sets(corpus, pairs);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].member_pairs, 2u);
  EXPECT_DOUBLE_EQ(sets[0].similarity, 1.0);
}

TEST(SpTunerEdge, HostLengthInputsAreStable) {
  // A /32-/128 pair (host routes) cannot descend at all.
  ScenarioBuilder builder;
  builder.announce("20.1.1.7/32", 1).announce("2620:100::7/128", 2);
  builder.host("host.example.org", {"20.1.1.7"}, {"2620:100::7"});
  const auto corpus = builder.corpus();
  const auto pairs = core::detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  const core::SpTunerMs tuner(corpus, {.v4_threshold = 32, .v6_threshold = 128});
  const auto tuned = tuner.tune_pair(pairs[0]);
  ASSERT_EQ(tuned.size(), 1u);
  EXPECT_EQ(tuned[0], pairs[0]);
}

TEST(SpTunerEdge, ThresholdShallowerThanInputKeepsInput) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/26", 1).announce("2620:100::/64", 2);
  builder.host("x.example.org", {"20.1.1.9"}, {"2620:100::9"});
  const auto corpus = builder.corpus();
  const auto pairs = core::detect_sibling_prefixes(corpus);
  // Thresholds /24-/48 are shallower than the announced /26-/64: no move.
  const core::SpTunerMs tuner(corpus, {.v4_threshold = 24, .v6_threshold = 48});
  const auto result = tuner.tune_all(pairs);
  EXPECT_EQ(result.changed_count, 0u);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].v4.length(), 26u);
}

TEST(DateEdge, HashAndOrdering) {
  const Date a{2024, 9, 11};
  const Date b{2024, 9, 11};
  const Date c{2024, 9, 12};
  EXPECT_EQ(std::hash<Date>{}(a), std::hash<Date>{}(b));
  EXPECT_NE(std::hash<Date>{}(a), std::hash<Date>{}(c));
  EXPECT_LT(a, c);
  EXPECT_EQ(a.plus_months(0), a);
  EXPECT_EQ(Date({2024, 1, 15}).plus_months(-1).to_string(), "2023-12-15");
}

}  // namespace
}  // namespace sp
