// The rolling-campaign contract: stream mode (the default — one
// StreamDetector chained across the months) produces artifacts
// byte-identical to full mode (from-scratch detection per month); the
// per-month .spdl delta logs chain each sibdb snapshot to the next; and
// stale_stages catches checkpoints whose on-disk artifact was deleted or
// corrupted after the run ("stale", not "done").
#include "pipeline/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/sibdb.h"
#include "stream/spdl.h"

namespace sp::pipeline {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

CampaignConfig small_config(std::string out_dir, bool stream_detect) {
  CampaignConfig config;
  config.synth.months = 3;
  config.synth.organization_count = 50;
  config.synth.probe_count = 50;
  config.threads = 2;
  config.stream_detect = stream_detect;
  config.out_dir = std::move(out_dir);
  return config;
}

RunManifest load_manifest(const std::string& out_dir) {
  std::string error;
  const auto manifest = RunManifest::load(Campaign::manifest_path(out_dir), &error);
  EXPECT_TRUE(manifest.has_value()) << error;
  return manifest.value_or(RunManifest{});
}

/// Sorted out_dir-relative paths matching `prefix`…`suffix` (dates sort
/// lexicographically, so this is month order).
std::vector<std::string> artifacts_matching(const std::string& out_dir,
                                            const std::string& prefix,
                                            const std::string& suffix) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= prefix.size() + suffix.size() && name.starts_with(prefix) &&
        name.ends_with(suffix)) {
      paths.push_back(name);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(PipelineStream, StreamAndFullModesProduceIdenticalArtifacts) {
  const std::string dir_stream = fresh_dir("sp_campaign_stream");
  const std::string dir_full = fresh_dir("sp_campaign_fullmode");

  const auto stream_report = Campaign(small_config(dir_stream, true)).run(/*resume=*/false);
  ASSERT_TRUE(stream_report.ok) << stream_report.error;
  const auto full_report = Campaign(small_config(dir_full, false)).run(/*resume=*/false);
  ASSERT_TRUE(full_report.ok) << full_report.error;

  // The schedule is the same either way (sibdelta stages diff the sibdb
  // artifacts, so they run in both modes); only the detect DAG shape and
  // engine differ.
  EXPECT_EQ(stream_report.done_count, full_report.done_count);

  // Every artifact of the full run must exist byte-identically in the
  // stream run — the pairs CSVs are the detect stages' outputs, so this
  // is the incremental-vs-scratch identity check at campaign scope.
  const RunManifest full_manifest = load_manifest(dir_full);
  std::size_t compared = 0;
  for (const StageRecord& stage : full_manifest.stages) {
    for (const OutputRecord& output : stage.outputs) {
      EXPECT_EQ(read_file(dir_stream + "/" + output.path),
                read_file(dir_full + "/" + output.path))
          << output.path;
      ++compared;
    }
  }
  EXPECT_GT(compared, 10u);

  // The manifests disagree only about detect_mode and the extra stages.
  const RunManifest stream_manifest = load_manifest(dir_stream);
  EXPECT_EQ(stream_manifest.config_value("detect_mode"), "stream");
  EXPECT_EQ(full_manifest.config_value("detect_mode"), "full");
}

TEST(PipelineStream, DeltaLogsChainSnapshotsAcrossMonths) {
  const std::string dir = fresh_dir("sp_campaign_deltachain");
  const auto report = Campaign(small_config(dir, true)).run(/*resume=*/false);
  ASSERT_TRUE(report.ok) << report.error;

  const auto sibdbs = artifacts_matching(dir, "siblings-", ".sibdb");
  const auto deltas = artifacts_matching(dir, "delta-", ".spdl");
  ASSERT_EQ(sibdbs.size(), 3u);
  ASSERT_EQ(deltas.size(), 2u);  // months 1..2, each against its predecessor

  for (std::size_t m = 0; m < deltas.size(); ++m) {
    std::string error;
    const auto base = serve::SiblingDB::load(dir + "/" + sibdbs[m], &error);
    ASSERT_TRUE(base.has_value()) << error;
    const auto delta = stream::read_spdl(dir + "/" + deltas[m], &error);
    ASSERT_TRUE(delta.has_value()) << error;
    const std::string patched = dir + "/patched-" + std::to_string(m) + ".sibdb";
    ASSERT_TRUE(stream::apply_spdl(*base, *delta, patched, &error)) << error;
    EXPECT_EQ(read_file(patched), read_file(dir + "/" + sibdbs[m + 1]))
        << deltas[m] << " applied to " << sibdbs[m];
  }
}

TEST(PipelineStream, StaleStagesFlagsMissingAndCorruptedArtifacts) {
  const std::string dir = fresh_dir("sp_campaign_stale");
  const auto report = Campaign(small_config(dir, true)).run(/*resume=*/false);
  ASSERT_TRUE(report.ok) << report.error;
  const RunManifest manifest = load_manifest(dir);

  // A healthy run has nothing stale.
  EXPECT_TRUE(stale_stages(manifest, dir).empty());

  // Delete one artifact and corrupt another.
  const auto sibdbs = artifacts_matching(dir, "siblings-", ".sibdb");
  ASSERT_GE(sibdbs.size(), 2u);
  std::filesystem::remove(dir + "/" + sibdbs[0]);
  {
    std::fstream file(dir + "/" + sibdbs[1],
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(0);
    file.put('X');  // clobber the magic
  }

  const auto stale = stale_stages(manifest, dir);
  ASSERT_EQ(stale.size(), 2u);
  const auto find_reason = [&](const std::string& path) {
    for (const StaleStage& entry : stale) {
      if (entry.path == path) return entry.reason;
    }
    return std::string("not reported");
  };
  EXPECT_EQ(find_reason(sibdbs[0]), "missing");
  EXPECT_EQ(find_reason(sibdbs[1]), "hash mismatch");
  for (const StaleStage& entry : stale) {
    EXPECT_TRUE(entry.name.starts_with("sibdb[")) << entry.name;
  }
}

}  // namespace
}  // namespace sp::pipeline
