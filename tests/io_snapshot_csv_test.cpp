// Tests for the resolution-snapshot CSV interchange format.
#include "io/snapshot_csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "io/csv.h"

namespace sp::io {
namespace {

dns::ResolutionSnapshot example_snapshot() {
  dns::ResolutionSnapshot snapshot(Date{2024, 9, 11});
  dns::DomainResolution a;
  a.queried = dns::DomainName::must_parse("www.shop.example");
  a.response_name = dns::DomainName::must_parse("edge7.cdn.example");
  a.v4 = {*IPv4Address::from_string("20.1.1.10"), *IPv4Address::from_string("20.1.1.11")};
  a.v6 = {*IPv6Address::from_string("2620:100::10")};
  snapshot.add(std::move(a));

  dns::DomainResolution b;  // v4-only
  b.queried = dns::DomainName::must_parse("old.example");
  b.response_name = b.queried;
  b.v4 = {*IPv4Address::from_string("20.2.2.2")};
  snapshot.add(std::move(b));

  dns::DomainResolution c;  // v6-only
  c.queried = dns::DomainName::must_parse("new.example");
  c.response_name = c.queried;
  c.v6 = {*IPv6Address::from_string("2620:200::1")};
  snapshot.add(std::move(c));
  return snapshot;
}

TEST(SnapshotCsv, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_snapshot_test.csv";
  const auto snapshot = example_snapshot();
  ASSERT_TRUE(write_snapshot_csv(path, snapshot));

  const auto loaded = read_snapshot_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->date(), snapshot.date());
  ASSERT_EQ(loaded->domain_count(), 3u);
  EXPECT_EQ(loaded->dual_stack_count(), 1u);
  const auto& entry = loaded->entries()[0];
  EXPECT_EQ(entry.queried.text(), "www.shop.example");
  EXPECT_EQ(entry.response_name.text(), "edge7.cdn.example");
  ASSERT_EQ(entry.v4.size(), 2u);
  EXPECT_EQ(entry.v4[1].to_string(), "20.1.1.11");
  ASSERT_EQ(entry.v6.size(), 1u);
  EXPECT_TRUE(loaded->entries()[1].v6.empty());
  EXPECT_TRUE(loaded->entries()[2].v4.empty());
  std::remove(path.c_str());
}

TEST(SnapshotCsv, RejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/sp_snapshot_bad.csv";
  // Missing date row.
  ASSERT_TRUE(write_csv_file(path, {{"queried", "response", "v4_addrs", "v6_addrs"}}));
  EXPECT_FALSE(read_snapshot_csv(path).has_value());
  // Bad date.
  ASSERT_TRUE(write_csv_file(path, {{"#date", "2024/09/11"},
                                    {"queried", "response", "v4_addrs", "v6_addrs"}}));
  EXPECT_FALSE(read_snapshot_csv(path).has_value());
  // Bad month.
  ASSERT_TRUE(write_csv_file(path, {{"#date", "2024-13-11"},
                                    {"queried", "response", "v4_addrs", "v6_addrs"}}));
  EXPECT_FALSE(read_snapshot_csv(path).has_value());
  // Bad address.
  ASSERT_TRUE(write_csv_file(path, {{"#date", "2024-09-11"},
                                    {"queried", "response", "v4_addrs", "v6_addrs"},
                                    {"a.example", "a.example", "999.1.1.1", ""}}));
  EXPECT_FALSE(read_snapshot_csv(path).has_value());
  // Bad domain.
  ASSERT_TRUE(write_csv_file(path, {{"#date", "2024-09-11"},
                                    {"queried", "response", "v4_addrs", "v6_addrs"},
                                    {"bad..name", "a.example", "", ""}}));
  EXPECT_FALSE(read_snapshot_csv(path).has_value());
  // Wrong column count.
  ASSERT_TRUE(write_csv_file(path, {{"#date", "2024-09-11"},
                                    {"queried", "response", "v4_addrs", "v6_addrs"},
                                    {"a.example", "a.example", ""}}));
  EXPECT_FALSE(read_snapshot_csv(path).has_value());
  EXPECT_FALSE(read_snapshot_csv("/nonexistent/snapshot.csv").has_value());
  std::remove(path.c_str());
}

TEST(SnapshotCsv, EmptySnapshotRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_snapshot_empty.csv";
  ASSERT_TRUE(write_snapshot_csv(path, dns::ResolutionSnapshot(Date{2020, 9, 9})));
  const auto loaded = read_snapshot_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->domain_count(), 0u);
  EXPECT_EQ(loaded->date().to_string(), "2020-09-09");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sp::io
