// Tests for the RFC 1035 master-file parser and writer.
#include "dns/zonefile.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace sp::dns {
namespace {

DomainName n(const char* text) { return DomainName::must_parse(text); }

constexpr const char* kExampleZone = R"zone(
$ORIGIN example.org.
$TTL 300
@   IN SOA ns1 hostmaster ( 2024091101 7200 900
                            1209600 300 ) ; split across lines
@        IN NS  ns1
ns1      IN A   20.1.1.53
www 60   IN A   20.1.1.10
    60   IN AAAA 2620:100::10       ; owner inherited from www
blog     IN CNAME www
mail     IN MX  10 mx1.example.org. ; absolute exchange
txt      IN TXT "v=spf1 ip4:20.1.1.0/24 -all"
abs.example.net. IN A 20.9.9.9     ; absolute owner outside the origin
$ORIGIN sub.example.org.
deep     IN A   20.1.2.1
)zone";

TEST(ZoneFile, ParsesRealisticZone) {
  ZoneDatabase zones;
  const auto result = parse_zone_text(kExampleZone, zones);
  ASSERT_TRUE(result.ok()) << result.error->line << ": " << result.error->message;
  EXPECT_EQ(result.records_added, 10u);

  // SOA with parenthesized continuation.
  const auto soas = zones.records(n("example.org"), RecordType::SOA);
  ASSERT_EQ(soas.size(), 1u);
  const auto& soa = std::get<SoaData>(soas[0].data);
  EXPECT_EQ(soa.mname, n("ns1.example.org"));  // relative mname resolved
  EXPECT_EQ(soa.serial, 2024091101u);
  EXPECT_EQ(soa.expire, 1209600u);

  // Relative + inherited owners.
  const auto www_a = zones.records(n("www.example.org"), RecordType::A);
  ASSERT_EQ(www_a.size(), 1u);
  EXPECT_EQ(www_a[0].ttl, 60u);  // explicit TTL beats $TTL
  EXPECT_EQ(zones.records(n("www.example.org"), RecordType::AAAA).size(), 1u);

  // $TTL default.
  EXPECT_EQ(zones.records(n("ns1.example.org"), RecordType::A)[0].ttl, 300u);

  // CNAME, MX, TXT.
  EXPECT_EQ(std::get<DomainName>(
                zones.records(n("blog.example.org"), RecordType::CNAME)[0].data),
            n("www.example.org"));
  const auto& mx = std::get<MxData>(zones.records(n("mail.example.org"),
                                                  RecordType::MX)[0].data);
  EXPECT_EQ(mx.preference, 10);
  EXPECT_EQ(mx.exchange, n("mx1.example.org"));
  EXPECT_EQ(std::get<TxtData>(zones.records(n("txt.example.org"), RecordType::TXT)[0].data)
                .text,
            "v=spf1 ip4:20.1.1.0/24 -all");

  // Absolute owner and re-origined record.
  EXPECT_EQ(zones.records(n("abs.example.net"), RecordType::A).size(), 1u);
  EXPECT_EQ(zones.records(n("deep.sub.example.org"), RecordType::A).size(), 1u);
}

TEST(ZoneFile, ParsedZoneResolves) {
  ZoneDatabase zones;
  ASSERT_TRUE(parse_zone_text(kExampleZone, zones).ok());
  const auto result = zones.resolve(n("blog.example.org"));
  EXPECT_EQ(result.response_name, n("www.example.org"));
  EXPECT_TRUE(result.dual_stack());
}

TEST(ZoneFile, ReportsErrorsWithLineNumbers) {
  const auto expect_error = [](const char* text, const char* fragment) {
    ZoneDatabase zones;
    const auto result = parse_zone_text(text, zones);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_NE(result.error->message.find(fragment), std::string::npos)
        << result.error->message;
    EXPECT_GT(result.error->line, 0u);
  };
  expect_error("www IN A 999.1.1.1\n", "bad A address");
  expect_error("www IN AAAA nope\n", "bad AAAA");
  expect_error("www IN SRV 1 2 3 t.example.\n", "unsupported record type");
  expect_error("www IN MX ten mx.example.\n", "MX takes");
  expect_error("www IN\n", "missing record type");
  expect_error("$TTL soon\n", "bad $TTL");
  expect_error("   IN A 1.2.3.4\n", "no previous owner");
  expect_error("www IN TXT \"unterminated\n", "unterminated quoted string");
  expect_error("www IN A ( 1.2.3.4\n", "unbalanced '('");
}

TEST(ZoneFile, KeepsRecordsBeforeTheError) {
  ZoneDatabase zones;
  const auto result =
      parse_zone_text("a.example. IN A 20.1.1.1\nb.example. IN A bad\n", zones);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error->line, 2u);
  EXPECT_EQ(result.records_added, 1u);
  EXPECT_EQ(zones.records(n("a.example"), RecordType::A).size(), 1u);
}

TEST(ZoneFile, WriteThenParseRoundTrips) {
  ZoneDatabase zones;
  ASSERT_TRUE(parse_zone_text(kExampleZone, zones).ok());
  const std::string text = write_zone_text(zones);

  ZoneDatabase reparsed;
  const auto result = parse_zone_text(text, reparsed);
  ASSERT_TRUE(result.ok()) << result.error->message;
  EXPECT_EQ(reparsed.record_count(), zones.record_count());
  // Semantic spot checks survive the round trip.
  EXPECT_EQ(reparsed.records(n("www.example.org"), RecordType::A),
            zones.records(n("www.example.org"), RecordType::A));
  EXPECT_EQ(reparsed.records(n("example.org"), RecordType::SOA),
            zones.records(n("example.org"), RecordType::SOA));
}

TEST(ZoneFile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sp_zone_test.zone";
  ZoneDatabase zones;
  ASSERT_TRUE(parse_zone_text(kExampleZone, zones).ok());
  ASSERT_TRUE(write_zone_file(path, zones));

  ZoneDatabase loaded;
  const auto result = parse_zone_file(path, loaded);
  ASSERT_TRUE(result.ok()) << result.error->message;
  EXPECT_EQ(loaded.record_count(), zones.record_count());
  EXPECT_FALSE(parse_zone_file("/nonexistent/zone", loaded).ok());
  std::remove(path.c_str());
}

TEST(ZoneFile, DefaultOriginAppliesToRelativeNames) {
  ZoneDatabase zones;
  const auto result =
      parse_zone_text("www IN A 20.1.1.1\n", zones, n("fallback.example"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(zones.records(n("www.fallback.example"), RecordType::A).size(), 1u);
}

}  // namespace
}  // namespace sp::dns
