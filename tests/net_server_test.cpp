// Behavioral tests for the sp::net epoll server: slow-reader
// backpressure (reads pause at the high-water mark and the server's
// buffered output stays bounded), mid-frame disconnects, idle-timeout
// eviction, and — run under TSan by scripts/tier1.sh stage 2 — RELOAD
// racing concurrent QUERY pipelines over several connections while the
// per-generation hit tallies stay conserved (no count is lost when a
// snapshot retires mid-batch).
#include "net/server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "chaos/corrupt.h"
#include "net/client.h"
#include "net/protocol.h"
#include "serve/sibdb.h"
#include "serve/service.h"
#include "stream/spdl.h"

namespace sp::net {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

std::string write_fixture_db(const std::string& name) {
  std::vector<core::SiblingPair> pairs(1);
  pairs[0].v4 = p("20.1.0.0/16");
  pairs[0].v6 = p("2620:100::/32");
  pairs[0].similarity = 0.9;
  pairs[0].shared_domains = 2;
  pairs[0].v4_domain_count = 3;
  pairs[0].v6_domain_count = 4;
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(serve::write_sibdb(path, pairs));
  return path;
}

/// Polls `condition` every millisecond for up to `budget`.
template <typename Condition>
bool eventually(Condition condition,
                std::chrono::milliseconds budget = std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return condition();
}

TEST(NetServer, SlowReaderHitsHighWaterAndRecovers) {
  const std::string db = write_fixture_db("net_server_slow.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.high_water = 4096;  // tiny, so a handful of batches crosses it
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;

  // Pipeline QUERY frames whose responses expand ~15x and total far past
  // anything the kernel's socket buffers can absorb (~28 MB), and read
  // nothing: the server must pause reads instead of buffering the
  // pipeline's worth of responses in userspace. A writer thread pumps
  // the requests — by design the send cannot complete while the server
  // is wedged behind this slow reader.
  constexpr unsigned kFrames = 300;
  constexpr unsigned kBatch = 2048;
  std::vector<std::uint8_t> wire;
  for (unsigned id = 0; id < kFrames; ++id) {
    QueryRequest request;
    request.request_id = id;
    request.keys.assign(kBatch, p("20.1.2.3/32"));
    encode_query_request(wire, request);
  }
  std::atomic<bool> send_failed{false};
  std::thread writer([&] {
    std::string send_error;
    if (!client->send_bytes(wire, &send_error)) send_failed.store(true);
  });

  // Wait for the wedge: reads paused and the ingest counter flat across
  // a 50 ms window while most of the request stream is still unread.
  std::uint64_t ingested = 0;
  bool stalled = false;
  for (int round = 0; round < 200 && !stalled; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const ServerStats now = server.stats();
    stalled = now.reads_paused >= 1 && now.bytes_in == ingested && ingested > 0;
    ingested = now.bytes_in;
  }
  ASSERT_TRUE(stalled) << "server never paused reads";
  EXPECT_LT(ingested, wire.size());  // memory bounded: ingest stopped mid-stream

  // Now drain: reads must resume and every response arrive in order.
  for (unsigned id = 0; id < kFrames; ++id) {
    const auto frame = client->read_frame(&error, std::chrono::milliseconds(20000));
    ASSERT_TRUE(frame.has_value()) << "frame " << id << ": " << error;
    const auto response = parse_query_response(frame->body, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->request_id, id);
    EXPECT_EQ(response->answers.size(), kBatch);
  }
  writer.join();
  EXPECT_FALSE(send_failed.load());
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.reads_paused, 1u);
  EXPECT_EQ(stats.queries, std::uint64_t{kFrames} * kBatch);
  server.stop();
}

TEST(NetServer, MidFrameDisconnectCleansUp) {
  const std::string db = write_fixture_db("net_server_disconnect.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  ServerConfig config;
  config.workers = 2;
  obs::MetricsRegistry registry;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  {
    auto client = Client::connect("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(client.has_value()) << error;
    // A complete header promising 100 body bytes, then only 3 of them.
    QueryRequest request;
    request.request_id = 1;
    request.keys.assign(16, p("20.1.2.3/32"));
    std::vector<std::uint8_t> wire;
    encode_query_request(wire, request);
    ASSERT_TRUE(client->send_bytes({wire.data(), kHeaderSize + 3}, &error)) << error;
    ASSERT_TRUE(eventually([&] { return server.stats().connections_active == 1; }));
    client->close();  // disconnect mid-frame
  }
  ASSERT_TRUE(eventually([&] { return server.stats().connections_active == 0; }))
      << "connection was not reaped";
  const ServerStats stats = server.stats();
  // A truncated frame on a dead peer is not a protocol error, and no
  // response was ever owed.
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.frames_in, 0u);

  // The server keeps serving new connections afterwards.
  auto again = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  std::vector<std::uint8_t> stats_request;
  encode_stats_request(stats_request);
  ASSERT_TRUE(again->send_bytes(stats_request, &error)) << error;
  EXPECT_TRUE(again->read_frame(&error).has_value()) << error;
  server.stop();
}

TEST(NetServer, IdleConnectionsAreEvicted) {
  const std::string db = write_fixture_db("net_server_idle.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  ServerConfig config;
  config.workers = 1;
  config.idle_timeout = std::chrono::milliseconds(100);
  obs::MetricsRegistry registry;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  ASSERT_TRUE(eventually([&] { return server.stats().connections_active == 1; }));

  // Say nothing; the sweep must evict us and the socket report EOF.
  const auto frame = client->read_frame(&error, std::chrono::milliseconds(5000));
  EXPECT_FALSE(frame.has_value());
  EXPECT_TRUE(client->eof());
  ASSERT_TRUE(eventually([&] { return server.stats().idle_evictions >= 1; }));
  EXPECT_EQ(server.stats().connections_active, 0u);
  server.stop();
}

// The race the whole RCU design exists for: four connections pipelining
// QUERY batches while RELOADs swap snapshots underneath them. Asserts
// (under TSan in tier1 stage 2) that no answer is torn and that the
// per-generation tallies are conserved: everything the clients were
// answered is accounted to exactly one generation — in-flight batches
// that pinned a snapshot across its retirement keep counting into it,
// not into the void.
TEST(NetServer, ReloadUnderLoadConservesGenerationTallies) {
  const std::string db = write_fixture_db("net_server_race.sibdb");
  serve::SiblingService service(2);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  ServerConfig config;
  config.workers = 4;
  obs::MetricsRegistry registry;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr unsigned kClients = 4;
  constexpr unsigned kFramesPerClient = 40;
  constexpr unsigned kPipeline = 4;
  constexpr unsigned kBatch = 32;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned who = 0; who < kClients; ++who) {
    clients.emplace_back([&, who] {
      std::string client_error;
      auto client = Client::connect("127.0.0.1", server.port(), &client_error);
      if (!client) {
        failed.store(true);
        return;
      }
      unsigned sent = 0;
      unsigned received = 0;
      while (received < kFramesPerClient) {
        while (sent < kFramesPerClient && sent - received < kPipeline) {
          QueryRequest request;
          request.request_id = who * 1000 + sent;
          request.keys.assign(kBatch, p("20.1.2.3/32"));
          std::vector<std::uint8_t> wire;
          encode_query_request(wire, request);
          if (!client->send_bytes(wire, &client_error)) {
            failed.store(true);
            return;
          }
          ++sent;
        }
        const auto frame = client->read_frame(&client_error, std::chrono::milliseconds(10000));
        if (!frame) {
          failed.store(true);
          return;
        }
        const auto response = parse_query_response(frame->body, &client_error);
        if (!response || response->generation == 0 ||
            response->answers.size() != kBatch) {
          failed.store(true);
          return;
        }
        for (const auto& answer : response->answers) {
          // Never torn: every answer comes whole from some snapshot.
          if (!answer || answer->matched != p("20.1.0.0/16")) {
            failed.store(true);
            return;
          }
          hits.fetch_add(1);
        }
        answered.fetch_add(response->answers.size());
        ++received;
      }
    });
  }

  // Churn generations while the clients hammer: bare RELOADs on a fifth
  // connection, racing the snapshot swap against pinned batches.
  std::thread reloader([&] {
    std::string reload_error;
    auto client = Client::connect("127.0.0.1", server.port(), &reload_error);
    if (!client) {
      failed.store(true);
      return;
    }
    for (unsigned round = 0; round < 25; ++round) {
      std::vector<std::uint8_t> wire;
      encode_reload_request(wire, ReloadRequest{});
      if (!client->send_bytes(wire, &reload_error)) {
        failed.store(true);
        return;
      }
      const auto frame = client->read_frame(&reload_error, std::chrono::milliseconds(10000));
      if (!frame) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& thread : clients) thread.join();
  reloader.join();
  ASSERT_FALSE(failed.load());

  const std::uint64_t expected = kClients * kFramesPerClient * kBatch;
  EXPECT_EQ(answered.load(), expected);
  EXPECT_EQ(hits.load(), expected);

  // Conservation: every answered key is tallied in exactly one
  // generation (live, retired, or compacted) — the lazy retirement in
  // SiblingService::load() means a batch that crossed a swap still
  // lands in the generation it was answered from.
  const serve::ServiceStats stats = service.stats();
  std::uint64_t tallied = stats.compacted.queries;
  std::uint64_t tallied_hits = stats.compacted.hits;
  for (const serve::GenerationStats& generation : stats.generations) {
    tallied += generation.queries;
    tallied_hits += generation.hits;
  }
  EXPECT_EQ(tallied, expected);
  EXPECT_EQ(tallied_hits, expected);
  EXPECT_GE(stats.generations.size(), 2u);  // the churn actually happened
  server.stop();

  const ServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.queries, expected);
  EXPECT_EQ(server_stats.hits, expected);
  EXPECT_EQ(server_stats.reloads_ok, 25u);
}

// A peer that wedges the server's output buffer and then vanishes with
// an RST must not take the process down: flush_output sends with
// MSG_NOSIGNAL, so a write into the reset connection yields
// EPIPE/ECONNRESET (connection shed) instead of a fatal SIGPIPE. The
// server must keep answering on the next connection. (The stdio side of
// the same hazard — sp_serve's stdout dying mid-pipe — is covered by
// the dead-pipe check in scripts/tier1.sh, where the default SIGPIPE
// disposition genuinely kills an unhardened binary.)
TEST(NetServer, PeerResetWithWedgedOutputServerKeepsServing) {
  const std::string db = write_fixture_db("net_server_rst.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.high_water = 4096;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  for (int round = 0; round < 3; ++round) {
    auto wedger = Client::connect("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(wedger.has_value()) << error;
    // Pipeline enough batched queries that the responses overflow both
    // the kernel socket buffers and the high-water mark, then never
    // read a byte: the server parks output for this connection.
    std::vector<std::uint8_t> wire;
    for (unsigned frame = 0; frame < 64; ++frame) {
      QueryRequest request;
      request.request_id = frame;
      request.keys.assign(512, p("20.1.2.3/32"));
      encode_query_request(wire, request);
    }
    ASSERT_TRUE(wedger->send_bytes(wire, &error)) << error;
    ASSERT_TRUE(eventually([&] { return server.stats().reads_paused > 0; }));

    // RST the wedged connection: SO_LINGER with zero timeout discards
    // the queued data and resets instead of FIN-ing.
    const linger hard{1, 0};
    ASSERT_EQ(::setsockopt(wedger->fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard)), 0);
    wedger->close();

    // The process survived the write-into-reset; a fresh connection
    // still gets correct answers.
    auto probe = Client::connect("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(probe.has_value()) << error;
    QueryRequest request;
    request.request_id = 9000 + round;
    request.keys.push_back(p("20.1.2.3/32"));
    std::vector<std::uint8_t> probe_wire;
    encode_query_request(probe_wire, request);
    ASSERT_TRUE(probe->send_bytes(probe_wire, &error)) << error;
    const auto frame = probe->read_frame(&error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto response = parse_query_response(frame->body, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->request_id, request.request_id);
    ASSERT_EQ(response->answers.size(), 1u);
    ASSERT_TRUE(response->answers[0].has_value());
    EXPECT_EQ(response->answers[0]->matched, p("20.1.0.0/16"));
  }
  server.stop();
}

// Drives accept4 into EMFILE by exhausting the process fd limit, then
// verifies the acceptor backs off instead of spinning (bounded
// net.accept_errors growth while exhausted — a hot level-triggered loop
// racks up thousands per second), and that accepting resumes once
// descriptors free up.
TEST(NetServer, EmfileAcceptBackoffAndRecovery) {
  const std::string db = write_fixture_db("net_server_emfile.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.accept_backoff = std::chrono::milliseconds(50);
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit lowered = saved;
  lowered.rlim_cur = 128;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lowered), 0);

  // Open client sockets until the process (server included — same fd
  // table) runs dry. Completed handshakes the server cannot accept sit
  // in the listen backlog and poke the level-triggered epoll.
  std::vector<int> hogs;
  for (int i = 0; i < 256; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    hogs.push_back(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    (void)::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  ASSERT_TRUE(eventually([&] { return server.stats().accept_errors > 0; }));

  // Bounded, not spinning: with a 50ms backoff an exhausted 300ms
  // window admits ~6 retries; allow a generous margin. A hot accept
  // loop would add tens of thousands here.
  const std::uint64_t before = server.stats().accept_errors;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t during = server.stats().accept_errors - before;
  EXPECT_LE(during, 30u);

  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // Descriptors are back; within a backoff period the acceptor re-arms
  // and fresh connections are served again.
  ASSERT_TRUE(eventually([&] {
    std::string probe_error;
    auto probe = Client::connect("127.0.0.1", server.port(), &probe_error,
                                 std::chrono::milliseconds(500));
    if (!probe) return false;
    QueryRequest request;
    request.request_id = 77;
    request.keys.push_back(p("20.1.2.3/32"));
    std::vector<std::uint8_t> wire;
    encode_query_request(wire, request);
    if (!probe->send_bytes(wire, &probe_error)) return false;
    const auto frame = probe->read_frame(&probe_error, std::chrono::milliseconds(2000));
    return frame.has_value();
  }));
  server.stop();
  EXPECT_GE(server.stats().accept_errors, 1u);
}

// RELOAD pointing at corrupt artifacts — a torn .sibdb and a damaged
// .spdl delta, the soak harness's corrupt fixtures — must be rejected
// over TCP while the prior generation keeps answering on the very same
// pipelined connection.
TEST(NetServer, CorruptReloadOverTcpKeepsPriorGenerationServing) {
  const std::string db = write_fixture_db("net_server_corrupt_base.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;

  const auto query_generation = [&]() -> std::uint64_t {
    QueryRequest request;
    request.request_id = 1;
    request.keys.push_back(p("20.1.2.3/32"));
    std::vector<std::uint8_t> wire;
    encode_query_request(wire, request);
    EXPECT_TRUE(client->send_bytes(wire, &error)) << error;
    const auto frame = client->read_frame(&error);
    EXPECT_TRUE(frame.has_value()) << error;
    if (!frame) return 0;
    const auto response = parse_query_response(frame->body, &error);
    EXPECT_TRUE(response.has_value()) << error;
    if (!response) return 0;
    EXPECT_TRUE(response->answers.at(0).has_value());
    return response->generation;
  };
  const std::uint64_t baseline = query_generation();
  ASSERT_GT(baseline, 0u);

  // Corrupt variants of the snapshot we are serving and of a valid
  // delta log against it, produced by the chaos corruption kinds the
  // fuzz corpora are seeded from.
  const auto base_bytes = [&] {
    auto loaded = serve::SiblingDB::load(db, &error);
    EXPECT_TRUE(loaded.has_value()) << error;
    return std::vector<std::uint8_t>(loaded->raw_bytes().begin(), loaded->raw_bytes().end());
  }();
  auto base_db = serve::SiblingDB::load(db, &error);
  ASSERT_TRUE(base_db.has_value()) << error;
  const auto delta = stream::diff_sibdb(*base_db, *base_db, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  const auto delta_bytes = stream::encode_spdl(*delta);

  unsigned rejected = 0;
  for (const chaos::CorruptKind kind : chaos::kAllCorruptKinds) {
    const std::string tag(chaos::to_string(kind));
    for (const bool spdl : {false, true}) {
      const auto bad = chaos::corrupt_image(spdl ? delta_bytes : base_bytes, kind, 42);
      const std::string path = ::testing::TempDir() + "/net_corrupt_" + tag +
                               (spdl ? ".spdl" : ".sibdb");
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bad.data()),
                static_cast<std::streamsize>(bad.size()));
      ASSERT_TRUE(out.good());
      out.close();

      std::vector<std::uint8_t> wire;
      encode_reload_request(wire, ReloadRequest{path});
      ASSERT_TRUE(client->send_bytes(wire, &error)) << error;
      const auto frame = client->read_frame(&error);
      ASSERT_TRUE(frame.has_value()) << error;
      const auto response = parse_reload_response(frame->body, &error);
      ASSERT_TRUE(response.has_value()) << error;
      EXPECT_FALSE(response->ok) << "corrupt " << tag << (spdl ? " .spdl" : " .sibdb")
                                 << " was accepted";
      ++rejected;

      // Same connection, next frame: the old snapshot still answers at
      // the unchanged generation.
      EXPECT_EQ(query_generation(), baseline);
    }
  }
  EXPECT_EQ(rejected, 2 * chaos::kAllCorruptKinds.size());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.reloads_failed, rejected);
  EXPECT_EQ(stats.reloads_ok, 0u);
  server.stop();
}

}  // namespace
}  // namespace sp::net
