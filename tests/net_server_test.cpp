// Behavioral tests for the sp::net epoll server: slow-reader
// backpressure (reads pause at the high-water mark and the server's
// buffered output stays bounded), mid-frame disconnects, idle-timeout
// eviction, and — run under TSan by scripts/tier1.sh stage 2 — RELOAD
// racing concurrent QUERY pipelines over several connections while the
// per-generation hit tallies stay conserved (no count is lost when a
// snapshot retires mid-batch).
//
// sp-lint-file: atomics-ok(test counters aggregated after thread joins;
// nothing orders through them)
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/protocol.h"
#include "serve/sibdb.h"
#include "serve/service.h"

namespace sp::net {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

std::string write_fixture_db(const std::string& name) {
  std::vector<core::SiblingPair> pairs(1);
  pairs[0].v4 = p("20.1.0.0/16");
  pairs[0].v6 = p("2620:100::/32");
  pairs[0].similarity = 0.9;
  pairs[0].shared_domains = 2;
  pairs[0].v4_domain_count = 3;
  pairs[0].v6_domain_count = 4;
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(serve::write_sibdb(path, pairs));
  return path;
}

/// Polls `condition` every millisecond for up to `budget`.
template <typename Condition>
bool eventually(Condition condition,
                std::chrono::milliseconds budget = std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return condition();
}

TEST(NetServer, SlowReaderHitsHighWaterAndRecovers) {
  const std::string db = write_fixture_db("net_server_slow.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  obs::MetricsRegistry registry;
  ServerConfig config;
  config.workers = 1;
  config.high_water = 4096;  // tiny, so a handful of batches crosses it
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;

  // Pipeline QUERY frames whose responses expand ~15x and total far past
  // anything the kernel's socket buffers can absorb (~28 MB), and read
  // nothing: the server must pause reads instead of buffering the
  // pipeline's worth of responses in userspace. A writer thread pumps
  // the requests — by design the send cannot complete while the server
  // is wedged behind this slow reader.
  constexpr unsigned kFrames = 300;
  constexpr unsigned kBatch = 2048;
  std::vector<std::uint8_t> wire;
  for (unsigned id = 0; id < kFrames; ++id) {
    QueryRequest request;
    request.request_id = id;
    request.keys.assign(kBatch, p("20.1.2.3/32"));
    encode_query_request(wire, request);
  }
  std::atomic<bool> send_failed{false};
  std::thread writer([&] {
    std::string send_error;
    if (!client->send_bytes(wire, &send_error)) send_failed.store(true);
  });

  // Wait for the wedge: reads paused and the ingest counter flat across
  // a 50 ms window while most of the request stream is still unread.
  std::uint64_t ingested = 0;
  bool stalled = false;
  for (int round = 0; round < 200 && !stalled; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const ServerStats now = server.stats();
    stalled = now.reads_paused >= 1 && now.bytes_in == ingested && ingested > 0;
    ingested = now.bytes_in;
  }
  ASSERT_TRUE(stalled) << "server never paused reads";
  EXPECT_LT(ingested, wire.size());  // memory bounded: ingest stopped mid-stream

  // Now drain: reads must resume and every response arrive in order.
  for (unsigned id = 0; id < kFrames; ++id) {
    const auto frame = client->read_frame(&error, std::chrono::milliseconds(20000));
    ASSERT_TRUE(frame.has_value()) << "frame " << id << ": " << error;
    const auto response = parse_query_response(frame->body, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->request_id, id);
    EXPECT_EQ(response->answers.size(), kBatch);
  }
  writer.join();
  EXPECT_FALSE(send_failed.load());
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.reads_paused, 1u);
  EXPECT_EQ(stats.queries, std::uint64_t{kFrames} * kBatch);
  server.stop();
}

TEST(NetServer, MidFrameDisconnectCleansUp) {
  const std::string db = write_fixture_db("net_server_disconnect.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  ServerConfig config;
  config.workers = 2;
  obs::MetricsRegistry registry;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  {
    auto client = Client::connect("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(client.has_value()) << error;
    // A complete header promising 100 body bytes, then only 3 of them.
    QueryRequest request;
    request.request_id = 1;
    request.keys.assign(16, p("20.1.2.3/32"));
    std::vector<std::uint8_t> wire;
    encode_query_request(wire, request);
    ASSERT_TRUE(client->send_bytes({wire.data(), kHeaderSize + 3}, &error)) << error;
    ASSERT_TRUE(eventually([&] { return server.stats().connections_active == 1; }));
    client->close();  // disconnect mid-frame
  }
  ASSERT_TRUE(eventually([&] { return server.stats().connections_active == 0; }))
      << "connection was not reaped";
  const ServerStats stats = server.stats();
  // A truncated frame on a dead peer is not a protocol error, and no
  // response was ever owed.
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.frames_in, 0u);

  // The server keeps serving new connections afterwards.
  auto again = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  std::vector<std::uint8_t> stats_request;
  encode_stats_request(stats_request);
  ASSERT_TRUE(again->send_bytes(stats_request, &error)) << error;
  EXPECT_TRUE(again->read_frame(&error).has_value()) << error;
  server.stop();
}

TEST(NetServer, IdleConnectionsAreEvicted) {
  const std::string db = write_fixture_db("net_server_idle.sibdb");
  serve::SiblingService service(1);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  ServerConfig config;
  config.workers = 1;
  config.idle_timeout = std::chrono::milliseconds(100);
  obs::MetricsRegistry registry;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  ASSERT_TRUE(eventually([&] { return server.stats().connections_active == 1; }));

  // Say nothing; the sweep must evict us and the socket report EOF.
  const auto frame = client->read_frame(&error, std::chrono::milliseconds(5000));
  EXPECT_FALSE(frame.has_value());
  EXPECT_TRUE(client->eof());
  ASSERT_TRUE(eventually([&] { return server.stats().idle_evictions >= 1; }));
  EXPECT_EQ(server.stats().connections_active, 0u);
  server.stop();
}

// The race the whole RCU design exists for: four connections pipelining
// QUERY batches while RELOADs swap snapshots underneath them. Asserts
// (under TSan in tier1 stage 2) that no answer is torn and that the
// per-generation tallies are conserved: everything the clients were
// answered is accounted to exactly one generation — in-flight batches
// that pinned a snapshot across its retirement keep counting into it,
// not into the void.
TEST(NetServer, ReloadUnderLoadConservesGenerationTallies) {
  const std::string db = write_fixture_db("net_server_race.sibdb");
  serve::SiblingService service(2);
  std::string error;
  ASSERT_TRUE(service.load(db, &error)) << error;

  ServerConfig config;
  config.workers = 4;
  obs::MetricsRegistry registry;
  config.registry = &registry;
  Server server(service, config);
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr unsigned kClients = 4;
  constexpr unsigned kFramesPerClient = 40;
  constexpr unsigned kPipeline = 4;
  constexpr unsigned kBatch = 32;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (unsigned who = 0; who < kClients; ++who) {
    clients.emplace_back([&, who] {
      std::string client_error;
      auto client = Client::connect("127.0.0.1", server.port(), &client_error);
      if (!client) {
        failed.store(true);
        return;
      }
      unsigned sent = 0;
      unsigned received = 0;
      while (received < kFramesPerClient) {
        while (sent < kFramesPerClient && sent - received < kPipeline) {
          QueryRequest request;
          request.request_id = who * 1000 + sent;
          request.keys.assign(kBatch, p("20.1.2.3/32"));
          std::vector<std::uint8_t> wire;
          encode_query_request(wire, request);
          if (!client->send_bytes(wire, &client_error)) {
            failed.store(true);
            return;
          }
          ++sent;
        }
        const auto frame = client->read_frame(&client_error, std::chrono::milliseconds(10000));
        if (!frame) {
          failed.store(true);
          return;
        }
        const auto response = parse_query_response(frame->body, &client_error);
        if (!response || response->generation == 0 ||
            response->answers.size() != kBatch) {
          failed.store(true);
          return;
        }
        for (const auto& answer : response->answers) {
          // Never torn: every answer comes whole from some snapshot.
          if (!answer || answer->matched != p("20.1.0.0/16")) {
            failed.store(true);
            return;
          }
          hits.fetch_add(1);
        }
        answered.fetch_add(response->answers.size());
        ++received;
      }
    });
  }

  // Churn generations while the clients hammer: bare RELOADs on a fifth
  // connection, racing the snapshot swap against pinned batches.
  std::thread reloader([&] {
    std::string reload_error;
    auto client = Client::connect("127.0.0.1", server.port(), &reload_error);
    if (!client) {
      failed.store(true);
      return;
    }
    for (unsigned round = 0; round < 25; ++round) {
      std::vector<std::uint8_t> wire;
      encode_reload_request(wire, ReloadRequest{});
      if (!client->send_bytes(wire, &reload_error)) {
        failed.store(true);
        return;
      }
      const auto frame = client->read_frame(&reload_error, std::chrono::milliseconds(10000));
      if (!frame) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& thread : clients) thread.join();
  reloader.join();
  ASSERT_FALSE(failed.load());

  const std::uint64_t expected = kClients * kFramesPerClient * kBatch;
  EXPECT_EQ(answered.load(), expected);
  EXPECT_EQ(hits.load(), expected);

  // Conservation: every answered key is tallied in exactly one
  // generation (live, retired, or compacted) — the lazy retirement in
  // SiblingService::load() means a batch that crossed a swap still
  // lands in the generation it was answered from.
  const serve::ServiceStats stats = service.stats();
  std::uint64_t tallied = stats.compacted.queries;
  std::uint64_t tallied_hits = stats.compacted.hits;
  for (const serve::GenerationStats& generation : stats.generations) {
    tallied += generation.queries;
    tallied_hits += generation.hits;
  }
  EXPECT_EQ(tallied, expected);
  EXPECT_EQ(tallied_hits, expected);
  EXPECT_GE(stats.generations.size(), 2u);  // the churn actually happened
  server.stop();

  const ServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.queries, expected);
  EXPECT_EQ(server_stats.hits, expected);
  EXPECT_EQ(server_stats.reloads_ok, 25u);
}

}  // namespace
}  // namespace sp::net
