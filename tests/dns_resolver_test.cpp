// Tests for the iterative resolver: referral chains, glue, CNAME restarts,
// lame delegations, loop guards, and snapshot production.
#include "dns/resolver.h"

#include <gtest/gtest.h>

namespace sp::dns {
namespace {

DomainName n(const char* text) { return DomainName::must_parse(text); }
IPv4Address a4(const char* text) { return *IPv4Address::from_string(text); }
IPv6Address a6(const char* text) { return *IPv6Address::from_string(text); }

/// A three-level hierarchy: root → org TLD server → example.org server.
struct Hierarchy {
  ZoneDatabase root;
  ZoneDatabase org_tld;
  ZoneDatabase example_org;
  IterativeResolver resolver{n("a.root-servers.example")};

  Hierarchy() {
    // Root knows the org delegation + glue.
    root.add(ResourceRecord::ns(n("org"), n("ns.org-registry.example")));
    root.add(ResourceRecord::a(n("ns.org-registry.example"), a4("20.0.0.53")));

    // The org TLD server delegates example.org.
    org_tld.add(ResourceRecord::ns(n("example.org"), n("ns1.example.org")));
    org_tld.add(ResourceRecord::a(n("ns1.example.org"), a4("20.1.0.53")));

    // The example.org server is authoritative.
    example_org.add(ResourceRecord::soa(
        n("example.org"), SoaData{.mname = n("ns1.example.org"),
                                  .rname = n("hostmaster.example.org"),
                                  .serial = 1}));
    example_org.add(ResourceRecord::a(n("www.example.org"), a4("20.1.1.10")));
    example_org.add(ResourceRecord::aaaa(n("www.example.org"), a6("2620:100::10")));
    example_org.add(ResourceRecord::cname(n("blog.example.org"), n("www.example.org")));
    example_org.add(ResourceRecord::a(n("v4only.example.org"), a4("20.1.1.77")));

    resolver.register_server(n("a.root-servers.example"), &root);
    resolver.register_server(n("ns.org-registry.example"), &org_tld);
    resolver.register_server(n("ns1.example.org"), &example_org);
  }
};

TEST(IterativeResolver, FollowsReferralChainToAnswer) {
  Hierarchy h;
  IterativeResolver::Trace trace;
  const auto result = h.resolver.resolve(n("www.example.org"), &trace);
  ASSERT_EQ(result.v4.size(), 1u);
  EXPECT_EQ(result.v4[0], a4("20.1.1.10"));
  ASSERT_EQ(result.v6.size(), 1u);
  EXPECT_TRUE(result.dual_stack());
  EXPECT_EQ(result.response_name, n("www.example.org"));

  // Both the A and the AAAA pass walk root → org → example.org.
  ASSERT_GE(trace.servers_consulted.size(), 6u);
  EXPECT_EQ(trace.servers_consulted[0], n("a.root-servers.example"));
  EXPECT_EQ(trace.servers_consulted[1], n("ns.org-registry.example"));
  EXPECT_EQ(trace.servers_consulted[2], n("ns1.example.org"));
  EXPECT_GT(trace.wire_bytes, 0u);
  EXPECT_FALSE(trace.lame_delegation);
  EXPECT_FALSE(trace.referral_limit_hit);
}

TEST(IterativeResolver, CnameRestartsAtRoot) {
  Hierarchy h;
  const auto result = h.resolver.resolve(n("blog.example.org"));
  EXPECT_EQ(result.queried, n("blog.example.org"));
  EXPECT_EQ(result.response_name, n("www.example.org"));
  ASSERT_EQ(result.cname_chain.size(), 1u);
  ASSERT_EQ(result.v4.size(), 1u);
  EXPECT_TRUE(result.dual_stack());
}

TEST(IterativeResolver, SingleStackAnswer) {
  Hierarchy h;
  const auto result = h.resolver.resolve(n("v4only.example.org"));
  EXPECT_TRUE(result.has_v4());
  EXPECT_FALSE(result.has_v6());
}

TEST(IterativeResolver, NxdomainGivesNoAddresses) {
  Hierarchy h;
  const auto result = h.resolver.resolve(n("missing.example.org"));
  EXPECT_FALSE(result.has_v4());
  EXPECT_FALSE(result.has_v6());
}

TEST(IterativeResolver, LameDelegationIsReported) {
  Hierarchy h;
  // Delegate a zone to a server that is not registered anywhere.
  h.root.add(ResourceRecord::ns(n("net"), n("ns.unreachable.example")));
  IterativeResolver::Trace trace;
  const auto result = h.resolver.resolve(n("www.things.net"), &trace);
  EXPECT_FALSE(result.has_v4());
  EXPECT_TRUE(trace.lame_delegation);
}

TEST(IterativeResolver, SelfReferralDoesNotLoop) {
  ZoneDatabase broken;
  broken.add(ResourceRecord::ns(n("loop.example"), n("ns.root.example")));
  IterativeResolver resolver(n("ns.root.example"));
  resolver.register_server(n("ns.root.example"), &broken);
  IterativeResolver::Trace trace;
  const auto result = resolver.resolve(n("www.loop.example"), &trace);
  EXPECT_FALSE(result.has_v4());
  EXPECT_TRUE(trace.lame_delegation);
}

TEST(IterativeResolver, ReferralPingPongHitsLimit) {
  // Two servers that endlessly refer to each other.
  ZoneDatabase a;
  ZoneDatabase b;
  a.add(ResourceRecord::ns(n("pp.example"), n("ns-b.example")));
  b.add(ResourceRecord::ns(n("pp.example"), n("ns-a.example")));
  IterativeResolver resolver(n("ns-a.example"));
  resolver.register_server(n("ns-a.example"), &a);
  resolver.register_server(n("ns-b.example"), &b);
  IterativeResolver::Trace trace;
  const auto result = resolver.resolve(n("www.pp.example"), &trace);
  EXPECT_FALSE(result.has_v4());
  EXPECT_TRUE(trace.referral_limit_hit);
}

TEST(IterativeResolver, CnameLoopIsDetected) {
  Hierarchy h;
  h.example_org.add(ResourceRecord::cname(n("l1.example.org"), n("l2.example.org")));
  h.example_org.add(ResourceRecord::cname(n("l2.example.org"), n("l1.example.org")));
  const auto result = h.resolver.resolve(n("l1.example.org"));
  EXPECT_TRUE(result.cname_loop);
  EXPECT_FALSE(result.has_v4());
}

TEST(IterativeResolver, ResolveAllBuildsSnapshot) {
  Hierarchy h;
  const std::vector<DomainName> queries = {n("www.example.org"), n("blog.example.org"),
                                           n("v4only.example.org"),
                                           n("missing.example.org")};
  const auto snapshot = h.resolver.resolve_all(queries, Date{2024, 9, 11});
  EXPECT_EQ(snapshot.domain_count(), 3u);
  EXPECT_EQ(snapshot.dual_stack_count(), 2u);
  // The CNAME'd domain resolved to the canonical identity.
  EXPECT_EQ(snapshot.entries()[1].response_name, n("www.example.org"));
}

TEST(ZoneDatabase, ServeEmitsReferralWithGlue) {
  Hierarchy h;
  Message query;
  query.questions.push_back({n("www.example.org"), RecordType::A});
  const auto response = h.root.serve(query);
  EXPECT_EQ(response.header.rcode, 0);  // referral, not NXDOMAIN
  ASSERT_EQ(response.authorities.size(), 1u);
  EXPECT_EQ(response.authorities[0].type, RecordType::NS);
  ASSERT_EQ(response.additionals.size(), 1u);  // glue A record
  EXPECT_EQ(response.additionals[0].type, RecordType::A);
}

}  // namespace
}  // namespace sp::dns
