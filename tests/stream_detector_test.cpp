// StreamDetector byte-identity harness (ISSUE 8 acceptance property):
// applying month deltas incrementally must produce pair lists
// *byte-identical* (similarity doubles compared at the bit level) to a
// from-scratch exact run over the post-delta corpus — across seeds,
// event mixes, thread counts, the forced-sketch path and the full-rescan
// path. Also covers the dirty-set sparsity the subsystem exists for, and
// the error contract (apply before init, inconsistent deltas).
#include "stream/stream_detector.h"

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/corpus_delta.h"
#include "core/detect.h"

namespace sp::stream {
namespace {

using core::CorpusDelta;
using core::DetectIndex;
using core::DomainId;
using core::DomainSet;
using core::SiblingPair;

Prefix p(const char* text) { return Prefix::must_parse(text); }

constexpr std::uint32_t kSeeds[] = {1, 7, 42, 1337, 99991};
constexpr unsigned kThreadCounts[] = {1, 2, 4};

using EdgeMap = std::map<Prefix, std::set<DomainId>>;

/// Relative weights of the month-boundary events; the "event mixes" axis
/// of the identity property.
struct EventMix {
  const char* name;
  int add = 4;     // element gained by an existing prefix
  int remove = 3;  // element lost
  int birth = 2;   // new prefix appears
  int death = 1;   // existing prefix loses its whole set
};

constexpr EventMix kMixes[] = {
    {"balanced", 4, 3, 2, 1},
    {"churn-heavy", 8, 8, 1, 1},
    {"birth-heavy", 2, 1, 6, 0},
    {"death-heavy", 1, 4, 1, 5},
};

EdgeMap seeded_edges(std::uint32_t seed) {
  std::mt19937 rng(seed);
  EdgeMap edges;
  const int v4_count = 30 + static_cast<int>(rng() % 20);
  const int v6_count = 30 + static_cast<int>(rng() % 20);
  std::uniform_int_distribution<DomainId> element(0, 119);
  for (int i = 0; i < v4_count; ++i) {
    auto& set = edges[p(("10." + std::to_string(i) + ".0.0/24").c_str())];
    const int k = 1 + static_cast<int>(rng() % 5);
    for (int j = 0; j < k; ++j) set.insert(element(rng));
  }
  for (int i = 0; i < v6_count; ++i) {
    auto& set = edges[p(("2001:db8:" + std::to_string(i) + "::/48").c_str())];
    const int k = 1 + static_cast<int>(rng() % 5);
    for (int j = 0; j < k; ++j) set.insert(element(rng));
  }
  return edges;
}

void evolve(EdgeMap& edges, std::mt19937& rng, const EventMix& mix) {
  std::uniform_int_distribution<DomainId> element(0, 119);
  const int total = mix.add + mix.remove + mix.birth + mix.death;
  std::uniform_int_distribution<int> roll(0, total * 2 - 1);  // ~half the prefixes idle
  std::vector<Prefix> prefixes;
  for (const auto& [prefix, _] : edges) prefixes.push_back(prefix);
  int births = 0;
  for (const Prefix& prefix : prefixes) {
    const int r = roll(rng);
    auto& set = edges[prefix];
    if (r < mix.add) {
      set.insert(element(rng));
    } else if (r < mix.add + mix.remove) {
      if (!set.empty()) {
        auto it = set.begin();
        std::advance(it, static_cast<long>(rng() % set.size()));
        set.erase(it);
      }
    } else if (r < mix.add + mix.remove + mix.birth) {
      ++births;
    } else if (r < total) {
      set.clear();
    }
    if (set.empty()) edges.erase(prefix);
  }
  std::uniform_int_distribution<int> fresh(200, 250);
  for (int i = 0; i < births; ++i) {
    const bool v4 = (rng() % 2) == 0;
    const std::string text = v4 ? "10." + std::to_string(fresh(rng)) + ".0.0/24"
                                : "2001:db8:" + std::to_string(fresh(rng)) + "::/48";
    auto& set = edges[p(text.c_str())];
    const int k = 1 + static_cast<int>(rng() % 4);
    for (int j = 0; j < k; ++j) set.insert(element(rng));
  }
}

core::SetCorpus make_corpus(const EdgeMap& edges) {
  core::SetCorpus corpus;
  for (const auto& [prefix, elements] : edges) {
    for (const DomainId id : elements) corpus.add(prefix, id);
  }
  corpus.finalize();
  return corpus;
}

void expect_byte_identical(const std::vector<SiblingPair>& stream,
                           const std::vector<SiblingPair>& exact, const std::string& context) {
  ASSERT_EQ(stream.size(), exact.size()) << context;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(stream[i].v4, exact[i].v4) << context << " pair " << i;
    EXPECT_EQ(stream[i].v6, exact[i].v6) << context << " pair " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(stream[i].similarity),
              std::bit_cast<std::uint64_t>(exact[i].similarity))
        << context << " pair " << i << " similarity " << stream[i].similarity << " vs "
        << exact[i].similarity;
    EXPECT_EQ(stream[i].shared_domains, exact[i].shared_domains) << context << " pair " << i;
    EXPECT_EQ(stream[i].v4_domain_count, exact[i].v4_domain_count) << context << " pair " << i;
    EXPECT_EQ(stream[i].v6_domain_count, exact[i].v6_domain_count) << context << " pair " << i;
  }
}

/// Runs `months` chained applies under `options` and checks the stream
/// pair list against a from-scratch exact run after every month.
void run_identity_campaign(std::uint32_t seed, const EventMix& mix, StreamOptions options,
                           int months = 4) {
  std::mt19937 rng(seed ^ 0x5bd1e995u);
  EdgeMap edges = seeded_edges(seed);
  StreamDetector detector(options);
  {
    const core::SetCorpus corpus = make_corpus(edges);
    detector.init(corpus.detect_index());
    expect_byte_identical(detector.pairs(), core::detect_sibling_prefixes(corpus),
                          std::string(mix.name) + " seed " + std::to_string(seed) + " init");
  }
  for (int month = 1; month <= months; ++month) {
    evolve(edges, rng, mix);
    const core::SetCorpus corpus = make_corpus(edges);
    detector.apply(CorpusDelta::between(detector.index(), corpus.detect_index()));
    expect_byte_identical(detector.pairs(), core::detect_sibling_prefixes(corpus),
                          std::string(mix.name) + " seed " + std::to_string(seed) + " month " +
                              std::to_string(month));
  }
}

TEST(StreamDetector, IncrementalMatchesScratchAcrossSeedsAndThreads) {
  for (const std::uint32_t seed : kSeeds) {
    for (const unsigned threads : kThreadCounts) {
      StreamOptions options;
      options.threads = threads;
      run_identity_campaign(seed, kMixes[0], options);
    }
  }
}

TEST(StreamDetector, IncrementalMatchesScratchAcrossEventMixes) {
  for (const EventMix& mix : kMixes) {
    for (const std::uint32_t seed : {3u, 11u}) {
      StreamOptions options;
      options.threads = 2;
      run_identity_campaign(seed, mix, options);
    }
  }
}

TEST(StreamDetectorSketch, ForcedSketchPathStaysByteIdentical) {
  for (const std::uint32_t seed : {1u, 42u, 1337u}) {
    StreamOptions options;
    options.threads = 2;
    options.strategy = core::DetectStrategy::Sketch;
    options.sketch_min_dirty = 0;  // every apply routes through the LSH filter
    run_identity_campaign(seed, kMixes[1], options);
  }
}

TEST(StreamDetectorSketch, SketchThresholdGatesTheFilter) {
  std::mt19937 rng(5);
  EdgeMap edges = seeded_edges(5);
  StreamOptions options;
  options.strategy = core::DetectStrategy::Sketch;
  options.sketch_min_dirty = 0;
  StreamDetector detector(options);
  detector.init(make_corpus(edges).detect_index());
  evolve(edges, rng, kMixes[0]);
  detector.apply(CorpusDelta::between(detector.index(), make_corpus(edges).detect_index()));
  EXPECT_TRUE(detector.last_stats().used_sketch);

  // A huge threshold keeps small dirty sets on the exact path.
  StreamOptions exact_options = options;
  exact_options.sketch_min_dirty = 1u << 20;
  StreamDetector gated(exact_options);
  EdgeMap gated_edges = seeded_edges(5);
  std::mt19937 gated_rng(5);
  gated.init(make_corpus(gated_edges).detect_index());
  evolve(gated_edges, gated_rng, kMixes[0]);
  gated.apply(
      CorpusDelta::between(gated.index(), make_corpus(gated_edges).detect_index()));
  EXPECT_FALSE(gated.last_stats().used_sketch);
}

TEST(StreamDetectorFullRescan, ZeroFractionForcesFullRescanAndStaysIdentical) {
  for (const std::uint32_t seed : {7u, 99991u}) {
    StreamOptions options;
    options.threads = 2;
    options.full_rescan_fraction = 0.0;
    std::mt19937 rng(seed ^ 0x5bd1e995u);
    EdgeMap edges = seeded_edges(seed);
    StreamDetector detector(options);
    detector.init(make_corpus(edges).detect_index());
    evolve(edges, rng, kMixes[0]);
    const core::SetCorpus corpus = make_corpus(edges);
    detector.apply(CorpusDelta::between(detector.index(), corpus.detect_index()));
    EXPECT_TRUE(detector.last_stats().full_rescan);
    expect_byte_identical(detector.pairs(), core::detect_sibling_prefixes(corpus),
                          "full-rescan seed " + std::to_string(seed));
  }
}

TEST(StreamDetector, SmallDeltaKeepsDirtySetSparse) {
  EdgeMap edges = seeded_edges(42);
  StreamDetector detector;
  detector.init(make_corpus(edges).detect_index());

  // Touch one element on one prefix: the dirty set must stay well under
  // the universe (this is the whole point of the subsystem).
  auto& set = edges.begin()->second;
  DomainId fresh = 500;  // outside the seeded element range
  set.insert(fresh);
  const core::SetCorpus corpus = make_corpus(edges);
  detector.apply(CorpusDelta::between(detector.index(), corpus.detect_index()));

  const StreamApplyStats& stats = detector.last_stats();
  EXPECT_FALSE(stats.full_rescan);
  EXPECT_EQ(stats.delta_prefixes, 1u);
  EXPECT_EQ(stats.delta_edges, 1u);
  EXPECT_LT(stats.dirty_v4 + stats.dirty_v6, stats.sources_total / 2);
  expect_byte_identical(detector.pairs(), core::detect_sibling_prefixes(corpus), "sparse");
}

TEST(StreamDetector, EmptyDeltaIsANoOp) {
  const EdgeMap edges = seeded_edges(7);
  StreamDetector detector;
  detector.init(make_corpus(edges).detect_index());
  const std::vector<SiblingPair> before = detector.pairs();
  detector.apply(CorpusDelta{});
  EXPECT_EQ(detector.last_stats().dirty_v4 + detector.last_stats().dirty_v6, 0u);
  expect_byte_identical(detector.pairs(), before, "empty delta");
}

TEST(StreamDetector, ApplyBeforeInitThrows) {
  StreamDetector detector;
  EXPECT_FALSE(detector.initialized());
  EXPECT_THROW(detector.apply(CorpusDelta{}), std::logic_error);
}

TEST(StreamDetector, InconsistentDeltaThrowsAndKeepsState) {
  const EdgeMap edges = seeded_edges(1);
  StreamDetector detector;
  detector.init(make_corpus(edges).detect_index());
  const std::vector<SiblingPair> before = detector.pairs();

  CorpusDelta bad;
  bad.v4.push_back({p("10.0.0.0/24"), DomainSet{}, DomainSet{9999}});
  EXPECT_THROW(detector.apply(bad), std::invalid_argument);
  expect_byte_identical(detector.pairs(), before, "after bad delta");

  // The detector still works after the rejected apply.
  EdgeMap next = edges;
  next[p("10.0.0.0/24")].insert(777);
  const core::SetCorpus corpus = make_corpus(next);
  detector.apply(CorpusDelta::between(detector.index(), corpus.detect_index()));
  expect_byte_identical(detector.pairs(), core::detect_sibling_prefixes(corpus), "recovery");
}

TEST(StreamDetector, ReinitReplacesState) {
  StreamDetector detector;
  detector.init(make_corpus(seeded_edges(1)).detect_index());
  const core::SetCorpus other = make_corpus(seeded_edges(2));
  detector.init(other.detect_index());
  expect_byte_identical(detector.pairs(), core::detect_sibling_prefixes(other), "reinit");
}

}  // namespace
}  // namespace sp::stream
