// Compile-and-smoke test for the umbrella header: one include must expose
// the whole public API, and the subsystems must interoperate.
#include "sp.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndSmoke) {
  using namespace sp;

  // netbase + trie.
  PrefixSet acl;
  acl.add(Prefix::must_parse("20.1.0.0/16"));
  EXPECT_TRUE(acl.contains(IPAddress::must_parse("20.1.2.3")));

  // dns: zone text → resolution.
  dns::ZoneDatabase zones;
  ASSERT_TRUE(dns::parse_zone_text("www.example.org. IN A 20.1.2.3\n"
                                   "www.example.org. IN AAAA 2620:100::3\n",
                                   zones)
                  .ok());
  const auto resolution = zones.resolve(dns::DomainName::must_parse("www.example.org"));
  EXPECT_TRUE(resolution.dual_stack());

  // bgp + core: one-pair pipeline.
  bgp::Rib rib;
  rib.add_route(Prefix::must_parse("20.1.0.0/16"), 65001);
  rib.add_route(Prefix::must_parse("2620:100::/48"), 65101);
  dns::ResolutionSnapshot snapshot(Date{2024, 9, 11});
  snapshot.add({.queried = resolution.queried,
                .response_name = resolution.response_name,
                .v4 = resolution.v4,
                .v6 = resolution.v6});
  const auto corpus = core::DualStackCorpus::build(snapshot, rib);
  const auto pairs = core::detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);

  // rpki.
  rpki::Validator validator;
  ASSERT_TRUE(validator.add_roa({Prefix::must_parse("20.1.0.0/16"), 16, 65001}));
  EXPECT_EQ(validator.validate(pairs[0].v4, 65001), rpki::RovStatus::Valid);

  // he.
  const auto outcome = he::race({{IPAddress::must_parse("2620:100::3"), 20.0}},
                                {{IPAddress::must_parse("20.1.2.3"), 20.0}});
  EXPECT_TRUE(outcome.used_ipv6());
}

}  // namespace
