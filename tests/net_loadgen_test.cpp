// Determinism tests for the sp::net load generator: with a fixed seed
// and a fixed --requests count, two runs send byte-identical request
// streams (pinned by the per-connection FNV-1a64 hashes in the report)
// and land identical per-verb counters on the server — the property
// BENCH_net.json and the tier1.sh loopback smoke rely on to be
// reproducible.
#include "net/loadgen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/server.h"
#include "serve/sibdb.h"
#include "serve/service.h"

namespace sp::net {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

std::string write_fixture_db(const std::string& name) {
  std::vector<core::SiblingPair> pairs(1);
  pairs[0].v4 = p("20.0.0.0/8");
  pairs[0].v6 = p("2620::/16");
  pairs[0].similarity = 0.8;
  pairs[0].shared_domains = 2;
  pairs[0].v4_domain_count = 3;
  pairs[0].v6_domain_count = 4;
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(serve::write_sibdb(path, pairs));
  return path;
}

std::int64_t counter_value(const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return -1;
}

/// One complete run against a throwaway server with its own registry;
/// returns the report plus the server-side per-verb counters, so runs
/// are comparable without any shared mutable state between them.
struct RunOutcome {
  LoadGenReport report;
  std::int64_t query_frames = 0;
  std::int64_t queries = 0;
  std::int64_t hits = 0;
};

RunOutcome run_against_fresh_server(const std::string& db, LoadGenConfig config) {
  serve::SiblingService service(1);
  std::string error;
  EXPECT_TRUE(service.load(db, &error)) << error;
  obs::MetricsRegistry registry;
  ServerConfig server_config;
  server_config.workers = 2;
  server_config.registry = &registry;
  Server server(service, server_config);
  EXPECT_TRUE(server.start(&error)) << error;
  config.port = server.port();
  RunOutcome outcome;
  outcome.report = run_loadgen(config);
  outcome.hits = static_cast<std::int64_t>(server.stats().hits);
  server.stop();
  const obs::MetricsSnapshot snapshot = registry.scrape();
  outcome.query_frames = counter_value(snapshot, "net.frames.query");
  outcome.queries = counter_value(snapshot, "net.queries");
  return outcome;
}

TEST(NetLoadGen, SameSeedSendsIdenticalStreams) {
  const std::string db = write_fixture_db("net_loadgen_same.sibdb");
  LoadGenConfig config;
  config.connections = 3;
  config.pipeline = 4;
  config.batch = 16;
  config.seed = 42;
  config.requests = 30;
  // Half the keys land inside the served pair's spaces, so the hit
  // tallies exercised below are neither 0 nor 100%.
  config.v4_space = p("16.0.0.0/4");   // covers 20.0.0.0/8
  config.v6_space = p("2600::/12");    // covers 2620::/16
  config.v6_share = 0.25;

  const RunOutcome first = run_against_fresh_server(db, config);
  const RunOutcome second = run_against_fresh_server(db, config);
  ASSERT_TRUE(first.report.ok) << first.report.error;
  ASSERT_TRUE(second.report.ok) << second.report.error;

  // The whole point: byte-identical request streams, per connection.
  ASSERT_EQ(first.report.request_stream_hash.size(), config.connections);
  EXPECT_EQ(first.report.request_stream_hash, second.report.request_stream_hash);

  // Closed loop with a fixed --requests count: exact frame/key totals.
  const std::uint64_t frames = std::uint64_t{config.connections} * config.requests;
  EXPECT_EQ(first.report.frames_sent, frames);
  EXPECT_EQ(first.report.frames_received, frames);
  EXPECT_EQ(first.report.keys_sent, frames * config.batch);
  EXPECT_EQ(first.report.keys_answered, frames * config.batch);
  EXPECT_EQ(first.report.keys_sent, second.report.keys_sent);
  EXPECT_EQ(first.report.bytes_sent, second.report.bytes_sent);
  EXPECT_EQ(first.report.hits, second.report.hits);
  EXPECT_GT(first.report.hits, 0u);
  EXPECT_LT(first.report.hits, first.report.keys_answered);

  // And the server agrees, run over run, per verb.
  EXPECT_EQ(first.query_frames, static_cast<std::int64_t>(frames));
  EXPECT_EQ(first.query_frames, second.query_frames);
  EXPECT_EQ(first.queries, static_cast<std::int64_t>(frames * config.batch));
  EXPECT_EQ(first.queries, second.queries);
  EXPECT_EQ(first.hits, second.hits);
  EXPECT_EQ(first.hits, static_cast<std::int64_t>(first.report.hits));
}

TEST(NetLoadGen, DifferentSeedsDiverge) {
  const std::string db = write_fixture_db("net_loadgen_diverge.sibdb");
  LoadGenConfig config;
  config.connections = 2;
  config.pipeline = 2;
  config.batch = 8;
  config.requests = 10;
  config.seed = 1;
  const RunOutcome first = run_against_fresh_server(db, config);
  config.seed = 2;
  const RunOutcome second = run_against_fresh_server(db, config);
  ASSERT_TRUE(first.report.ok) << first.report.error;
  ASSERT_TRUE(second.report.ok) << second.report.error;
  // Same shape (frame and key counts are seed-independent)…
  EXPECT_EQ(first.report.frames_received, second.report.frames_received);
  EXPECT_EQ(first.report.keys_sent, second.report.keys_sent);
  // …but different keys: the streams must not collide.
  EXPECT_NE(first.report.request_stream_hash, second.report.request_stream_hash);
}

TEST(NetLoadGen, ReportJsonCarriesConfigAndHashes) {
  const std::string db = write_fixture_db("net_loadgen_json.sibdb");
  LoadGenConfig config;
  config.connections = 2;
  config.pipeline = 2;
  config.batch = 4;
  config.requests = 5;
  config.seed = 7;
  const RunOutcome outcome = run_against_fresh_server(db, config);
  ASSERT_TRUE(outcome.report.ok) << outcome.report.error;
  const std::string json = outcome.report.to_json(config);
  EXPECT_NE(json.find("\"bench\":\"net_loadgen\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seed\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"batch\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"request_stream_hash\":["), std::string::npos) << json;
  // Two connections → two 16-hex-digit stream hashes in the array.
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(outcome.report.request_stream_hash.at(0)));
  EXPECT_NE(json.find(hash_hex), std::string::npos) << json;
}

TEST(NetLoadGen, RefusesUnreachableServer) {
  LoadGenConfig config;
  config.host = "127.0.0.1";
  config.port = 1;  // nothing listens here
  config.connections = 1;
  config.requests = 1;
  const LoadGenReport report = run_loadgen(config);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
}

}  // namespace
}  // namespace sp::net
