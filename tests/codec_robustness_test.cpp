// Failure-injection tests: the wire decoders (DNS, MRT, CSV, snapshot CSV,
// sibling list) must never crash, hang, or mis-handle corrupted input —
// every byte stream either parses cleanly or is rejected with an error.
#include <gtest/gtest.h>

#include <random>

#include "core/sibling_list_io.h"
#include "dns/wire.h"
#include "io/csv.h"
#include "io/snapshot_csv.h"
#include "mrt/codec.h"
#include "mrt/file.h"

namespace sp {
namespace {

std::vector<std::uint8_t> random_bytes(std::mt19937& rng, std::size_t max_size) {
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> size(0, max_size);
  std::vector<std::uint8_t> out(size(rng));
  for (auto& b : out) b = static_cast<std::uint8_t>(byte(rng));
  return out;
}

class DecoderFuzzProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DecoderFuzzProperty, DnsDecoderSurvivesRandomBytes) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    std::string error;
    const auto message = dns::decode_message(bytes, &error);
    if (message) {
      // Whatever parsed must re-encode without crashing.
      (void)dns::encode_message(*message);
    } else {
      ASSERT_FALSE(error.empty());
    }
  }
}

TEST_P(DecoderFuzzProperty, MrtDecoderSurvivesRandomBytes) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    std::string error;
    const auto records = mrt::decode_dump(bytes, &error);
    if (records) {
      (void)mrt::encode_dump(*records);
    } else {
      ASSERT_FALSE(error.empty());
    }
  }
}

TEST_P(DecoderFuzzProperty, CsvParserSurvivesRandomText) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> size(0, 400);
  const char alphabet[] = "abc,\"\n\r\\|0123456789";
  for (int i = 0; i < 3000; ++i) {
    std::string text(size(rng), ' ');
    for (auto& c : text) {
      c = alphabet[static_cast<std::size_t>(byte(rng)) % (sizeof alphabet - 1)];
    }
    const auto rows = io::parse_csv(text);
    if (rows) {
      // Re-formatting each parsed row must parse back to the same row.
      for (const auto& row : *rows) {
        const auto back = io::parse_csv(io::format_csv_row(row) + "\n");
        ASSERT_TRUE(back.has_value());
        ASSERT_EQ(back->size(), 1u);
        ASSERT_EQ(back->front(), row);
      }
    }
  }
}

// Bit-flip corruption of structurally valid messages.
TEST_P(DecoderFuzzProperty, DnsDecoderSurvivesBitFlips) {
  std::mt19937 rng(GetParam() + 1000);
  dns::Message message;
  message.header.id = 7;
  message.questions.push_back(
      {dns::DomainName::must_parse("www.example.org"), dns::RecordType::A});
  message.answers.push_back(dns::ResourceRecord::cname(
      dns::DomainName::must_parse("www.example.org"),
      dns::DomainName::must_parse("edge.cdn.example")));
  message.answers.push_back(dns::ResourceRecord::a(
      dns::DomainName::must_parse("edge.cdn.example"), IPv4Address::from_octets(5, 6, 7, 8)));
  const auto wire = dns::encode_message(message);

  std::uniform_int_distribution<std::size_t> position(0, wire.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int i = 0; i < 4000; ++i) {
    auto corrupted = wire;
    corrupted[position(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    const auto decoded = dns::decode_message(corrupted);  // must not crash
    if (decoded) (void)dns::encode_message(*decoded);
  }
}

TEST_P(DecoderFuzzProperty, MrtDecoderSurvivesBitFlips) {
  std::mt19937 rng(GetParam() + 2000);
  mrt::RibRecord rib;
  rib.prefix = Prefix::must_parse("198.51.99.0/24");
  mrt::RibEntry entry;
  entry.attributes = mrt::PathAttributes::sequence({64500, 3356, 65001});
  entry.attributes.next_hop_v4 = *IPv4Address::from_string("192.0.2.1");
  rib.entries.push_back(entry);
  mrt::Bgp4mpUpdate update;
  update.peer_asn = 64500;
  update.local_asn = 65550;
  update.peer_address = IPAddress::must_parse("5.0.0.1");
  update.local_address = IPAddress::must_parse("5.0.0.2");
  update.attributes = mrt::PathAttributes::sequence({64500, 65001});
  update.announced = {Prefix::must_parse("20.7.0.0/16")};
  const std::vector<mrt::MrtRecord> records = {{0, rib}, {1, update}};
  const auto wire = mrt::encode_dump(records);

  std::uniform_int_distribution<std::size_t> position(0, wire.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int i = 0; i < 4000; ++i) {
    auto corrupted = wire;
    corrupted[position(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    const auto decoded = mrt::decode_dump(corrupted);  // must not crash
    if (decoded) (void)mrt::encode_dump(*decoded);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzProperty, ::testing::Values(71u, 72u, 73u));

TEST(FileFormatRobustness, SnapshotAndSiblingListRejectBinaryGarbage) {
  std::mt19937 rng(99);
  const std::string path = ::testing::TempDir() + "/sp_garbage.bin";
  for (int i = 0; i < 20; ++i) {
    const auto bytes = random_bytes(rng, 2000);
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
      }
      std::fclose(f);
    }
    (void)io::read_snapshot_csv(path);        // must not crash
    (void)core::read_sibling_list(path);      // must not crash
    std::string error;
    (void)mrt::read_file(path, &error);       // must not crash
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sp
