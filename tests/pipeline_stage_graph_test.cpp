// StageGraph scheduler: ordering, failure containment, cycle detection,
// observer delivery — and the concurrency stress the TSan stage runs.
#include "pipeline/stage_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/worker_pool.h"
#include "obs/trace.h"

namespace sp::pipeline {
namespace {

TEST(PipelineStageGraph, ExecutionsLandAsTraceSpans) {
  obs::TraceRecorder recorder;
  obs::TraceRecorder::set_active(&recorder);
  StageGraph graph;
  const auto a = graph.add("evolve[2024-09]", {}, [] { return StageOutcome::success(); });
  graph.add("detect[2024-09]", {a}, [] { return StageOutcome::success(); });
  core::WorkerPool pool(2);
  EXPECT_TRUE(graph.run(pool));
  obs::TraceRecorder::set_active(nullptr);

  std::set<std::string> names;
  for (const auto& event : recorder.events()) {
    EXPECT_EQ(event.category, "stage");
    names.insert(event.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{"evolve[2024-09]", "detect[2024-09]"}));
}

TEST(PipelineStageGraph, DiamondRunsInTopologicalOrderOnSerialPool) {
  StageGraph graph;
  std::vector<std::string> order;
  const auto body = [&order](std::string name) {
    return [&order, name = std::move(name)] {
      order.push_back(name);
      return StageOutcome::success();
    };
  };
  const auto a = graph.add("a", {}, body("a"));
  const auto b = graph.add("b", {a}, body("b"));
  const auto c = graph.add("c", {a}, body("c"));
  graph.add("d", {b, c}, body("d"));

  core::WorkerPool pool(1);
  EXPECT_TRUE(graph.run(pool));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");
  for (const StageResult& result : graph.results()) {
    EXPECT_EQ(result.status, StageStatus::Done);
    EXPECT_GT(result.peak_rss_kb, 0);
  }
}

TEST(PipelineStageGraph, ChainsStayOrderedAcrossWorkers) {
  constexpr int kChains = 4;
  constexpr int kLength = 12;
  StageGraph graph;
  std::mutex mutex;
  std::vector<std::vector<int>> seen(kChains);
  for (int chain = 0; chain < kChains; ++chain) {
    StageGraph::StageId previous = 0;
    for (int step = 0; step < kLength; ++step) {
      std::vector<StageGraph::StageId> deps;
      if (step > 0) deps.push_back(previous);
      previous = graph.add(
          "c" + std::to_string(chain) + "s" + std::to_string(step), std::move(deps),
          [&mutex, &seen, chain, step] {
            const std::lock_guard<std::mutex> lock(mutex);
            seen[chain].push_back(step);
            return StageOutcome::success();
          });
    }
  }
  core::WorkerPool pool(4);
  EXPECT_TRUE(graph.run(pool));
  for (int chain = 0; chain < kChains; ++chain) {
    ASSERT_EQ(seen[chain].size(), static_cast<std::size_t>(kLength));
    for (int step = 0; step < kLength; ++step) EXPECT_EQ(seen[chain][step], step);
  }
}

TEST(PipelineStageGraph, FailureSkipsDependentsButNotIndependentBranches) {
  StageGraph graph;
  std::atomic<int> executed{0};
  const auto ok = [&executed] {
    executed.fetch_add(1);
    return StageOutcome::success();
  };
  const auto root = graph.add("root", {}, ok);
  const auto bad = graph.add("bad", {root}, [&executed] {
    executed.fetch_add(1);
    return StageOutcome::failure("boom");
  });
  const auto doomed = graph.add("doomed", {bad}, ok);
  graph.add("doomed2", {doomed}, ok);
  graph.add("independent", {root}, ok);

  core::WorkerPool pool(2);
  EXPECT_FALSE(graph.run(pool));
  EXPECT_EQ(executed.load(), 3);  // root, bad, independent — doomed bodies never ran

  const auto& results = graph.results();
  EXPECT_EQ(results[root].status, StageStatus::Done);
  EXPECT_EQ(results[bad].status, StageStatus::Failed);
  EXPECT_EQ(results[bad].error, "boom");
  EXPECT_EQ(results[doomed].status, StageStatus::Skipped);
  EXPECT_NE(results[doomed].error.find("bad"), std::string::npos);
  EXPECT_EQ(results[doomed + 1].status, StageStatus::Skipped);
  EXPECT_EQ(results[doomed + 2].status, StageStatus::Done);
}

TEST(PipelineStageGraph, CachedStagesCountAsSuccess) {
  StageGraph graph;
  const auto a = graph.add("a", {}, [] { return StageOutcome::hit(); });
  graph.add("b", {a}, [] { return StageOutcome::success(); });
  core::WorkerPool pool(1);
  EXPECT_TRUE(graph.run(pool));
  EXPECT_EQ(graph.results()[a].status, StageStatus::Cached);
}

TEST(PipelineStageGraph, CycleThrowsBeforeAnythingExecutes) {
  StageGraph graph;
  std::atomic<int> executed{0};
  const auto body = [&executed] {
    executed.fetch_add(1);
    return StageOutcome::success();
  };
  const auto a = graph.add("a", {2}, body);  // depends on c: a -> c -> b -> a
  const auto b = graph.add("b", {a}, body);
  graph.add("c", {b}, body);
  core::WorkerPool pool(1);
  EXPECT_THROW((void)graph.run(pool), std::logic_error);
  EXPECT_EQ(executed.load(), 0);
}

TEST(PipelineStageGraph, UnknownDependencyIdThrows) {
  StageGraph graph;
  graph.add("a", {42}, [] { return StageOutcome::success(); });
  core::WorkerPool pool(1);
  EXPECT_THROW((void)graph.run(pool), std::out_of_range);
}

TEST(PipelineStageGraph, SecondRunThrows) {
  StageGraph graph;
  graph.add("a", {}, [] { return StageOutcome::success(); });
  core::WorkerPool pool(1);
  EXPECT_TRUE(graph.run(pool));
  EXPECT_THROW((void)graph.run(pool), std::logic_error);
}

TEST(PipelineStageGraph, ObserverSeesEveryTerminalStageExactlyOnce) {
  StageGraph graph;
  const auto root = graph.add("root", {}, [] { return StageOutcome::failure("no"); });
  graph.add("child", {root}, [] { return StageOutcome::success(); });
  graph.add("free", {}, [] { return StageOutcome::success(); });

  std::mutex mutex;
  std::vector<std::pair<std::string, StageStatus>> observed;
  graph.set_observer([&](const StageResult& result) {
    const std::lock_guard<std::mutex> lock(mutex);
    observed.emplace_back(result.name, result.status);
  });
  core::WorkerPool pool(2);
  EXPECT_FALSE(graph.run(pool));

  ASSERT_EQ(observed.size(), 3u);
  std::set<std::string> names;
  for (const auto& [name, status] : observed) {
    names.insert(name);
    if (name == "root") {
      EXPECT_EQ(status, StageStatus::Failed);
    } else if (name == "child") {
      EXPECT_EQ(status, StageStatus::Skipped);
    } else {
      EXPECT_EQ(status, StageStatus::Done);
    }
  }
  EXPECT_EQ(names.size(), 3u);
}

// The TSan target: a wide layered graph on a multi-worker pool, every
// stage touching shared state through the documented synchronization
// (results published by dependency edges, counters atomic).
TEST(PipelineStageGraph, StressLayeredGraphOnManyWorkers) {
  constexpr int kLayers = 8;
  constexpr int kWidth = 12;
  StageGraph graph;
  std::atomic<int> executed{0};
  std::vector<int> values(kLayers * kWidth, 0);  // written pre-deps, read post-deps

  std::vector<StageGraph::StageId> previous_layer;
  for (int layer = 0; layer < kLayers; ++layer) {
    std::vector<StageGraph::StageId> current;
    for (int i = 0; i < kWidth; ++i) {
      const int slot = layer * kWidth + i;
      // Every stage depends on two stages of the previous layer.
      std::vector<StageGraph::StageId> deps;
      if (layer > 0) {
        deps.push_back(previous_layer[static_cast<std::size_t>(i)]);
        deps.push_back(previous_layer[static_cast<std::size_t>((i + 1) % kWidth)]);
      }
      const std::vector<int> dep_slots =
          layer > 0 ? std::vector<int>{(layer - 1) * kWidth + i,
                                       (layer - 1) * kWidth + (i + 1) % kWidth}
                    : std::vector<int>{};
      current.push_back(graph.add(
          "s" + std::to_string(slot), std::move(deps),
          [&values, &executed, slot, dep_slots] {
            int sum = 1;
            for (const int dep : dep_slots) sum += values[static_cast<std::size_t>(dep)];
            values[static_cast<std::size_t>(slot)] = sum;
            executed.fetch_add(1);
            return StageOutcome::success();
          }));
    }
    previous_layer = std::move(current);
  }

  core::WorkerPool pool(4);
  EXPECT_TRUE(graph.run(pool));
  EXPECT_EQ(executed.load(), kLayers * kWidth);
  // Bottom layer values are a pure function of the DAG — spot-check one.
  EXPECT_GT(values[static_cast<std::size_t>((kLayers - 1) * kWidth)], kLayers);
}

}  // namespace
}  // namespace sp::pipeline
