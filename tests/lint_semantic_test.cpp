// sp_lint cross-file selftest (DESIGN.md §3.10): every semantic pass
// fires on its seeded fixtures with exact (line, rule) diagnostics, the
// stale-suppression audit distinguishes used from dead entries, and —
// the load-bearing assertion — the real tree's statically derived
// lock-rank graph matches the DESIGN.md §3.5 table exactly, with every
// derived acquired-after edge strictly rank-increasing.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/lint.h"
#include "lint/semantic.h"

namespace {

using sp::lint::Finding;

const std::string kSourceDir = std::string(SP_SOURCE_DIR);
const std::string kFixtureDir = kSourceDir + "/tests/lint_fixtures/";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

/// Lints one fixture through the full single-file pipeline; the label
/// keeps fixture paths stable in findings (and, for serve/, inside the
/// path-scoped passes).
std::vector<Finding> lint_fixture(const std::string& name) {
  return sp::lint::lint_file(kFixtureDir + name, name);
}

struct Expected {
  std::size_t line;
  const char* rule;
};

void expect_findings(const std::vector<Finding>& found, const std::vector<Expected>& expected) {
  ASSERT_EQ(found.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(found[i].line, expected[i].line) << found[i].message;
    EXPECT_EQ(found[i].rule, expected[i].rule);
    EXPECT_FALSE(found[i].suppressed) << found[i].file << ":" << found[i].line;
  }
}

// ---------------------------------------------------------------------------
// lock-rank fixtures

TEST(LintSemantic, LockRankInversionAndDuplicateRankFire) {
  const auto found = lint_fixture("lockrank_bad.h");
  expect_findings(found, {{10, "lock-rank"}, {22, "lock-rank"}});
  EXPECT_NE(found[0].message.find("inverts the documented order"), std::string::npos);
  EXPECT_NE(found[1].message.find("rank 30 is claimed by both"), std::string::npos);
}

TEST(LintSemantic, LockRankTransitiveInversionThroughOneCallFires) {
  const auto found = lint_fixture("lockrank_transitive.h");
  expect_findings(found, {{13, "lock-rank"}});
  EXPECT_NE(found[0].message.find("via call to 'helper'"), std::string::npos);
}

TEST(LintSemantic, LockRankOrderedNestingIsClean) {
  EXPECT_TRUE(lint_fixture("lockrank_ok.h").empty());
}

// ---------------------------------------------------------------------------
// layering fixtures (a mini-tree with its own layers.def, linted as
// explicit file roots — the walker excludes lint_fixtures directories)

TEST(LintSemantic, LayeringFixtureTreeFlagsEveryViolationShape) {
  const std::string root = kFixtureDir + "layering/src/";
  sp::lint::LintOptions options;
  options.layers_def_path = kFixtureDir + "layering/layers.def";
  const auto report = sp::lint::lint_paths({root + "aaa/base.h", root + "aaa/upward.h",
                                            root + "bbb/uses_rogue.cpp", root + "bbb/widget.h",
                                            root + "ccc/peer.h", root + "ddd/rogue.h"},
                                           options);
  ASSERT_EQ(report.findings.size(), 4u) << report.to_json();
  const auto& f = report.findings;
  EXPECT_TRUE(f[0].file.ends_with("aaa/upward.h"));
  EXPECT_EQ(f[0].line, 4u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_NE(f[0].message.find("upward dependency"), std::string::npos);
  EXPECT_TRUE(f[1].file.ends_with("bbb/uses_rogue.cpp"));
  EXPECT_EQ(f[1].line, 3u);
  EXPECT_NE(f[1].message.find("'ddd' is not declared"), std::string::npos);
  EXPECT_TRUE(f[2].file.ends_with("ccc/peer.h"));
  EXPECT_EQ(f[2].line, 4u);
  EXPECT_NE(f[2].message.find("same-layer dependency"), std::string::npos);
  EXPECT_TRUE(f[3].file.ends_with("ddd/rogue.h"));
  EXPECT_EQ(f[3].line, 1u);
  EXPECT_NE(f[3].message.find("not declared in layers.def"), std::string::npos);
}

TEST(LintSemantic, LayeringSanctionedAndDownwardEdgesAreClean) {
  const std::string root = kFixtureDir + "layering/src/";
  sp::lint::LintOptions options;
  options.layers_def_path = kFixtureDir + "layering/layers.def";
  // bbb/widget.h alone: includes aaa (downward) and ccc (allow-listed).
  const auto report = sp::lint::lint_paths({root + "bbb/widget.h"}, options);
  EXPECT_TRUE(report.findings.empty()) << report.to_json();
}

TEST(LintSemantic, LayeringMalformedDefIsItselfAFinding) {
  sp::lint::LintOptions options;
  options.layers_def_path = kFixtureDir + "layering/layers.def";
  // A bogus directive surfaces at the def's own file:line.
  sp::lint::SemanticOptions semantic;
  semantic.layers_def_text = "layer low aaa\nallot aaa bbb\n";
  semantic.layers_def_path = "layers.def";
  sp::lint::ProjectIndex empty;
  const auto findings = sp::lint::run_semantic_passes(empty, semantic);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "layers.def");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("unknown directive 'allot'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// snapshot-escape fixtures

TEST(LintSemantic, SnapshotEscapeFixtureFiresOnAllFourStores) {
  const auto found = lint_fixture("serve/snapshot_bad.cpp");
  expect_findings(found, {{19, "snapshot-escape"},
                          {20, "snapshot-escape"},
                          {25, "snapshot-escape"},
                          {29, "snapshot-escape"}});
  EXPECT_NE(found[0].message.find("member 'latest_'"), std::string::npos);
  EXPECT_NE(found[1].message.find("member container 'history_'"), std::string::npos);
  EXPECT_NE(found[2].message.find("out-parameter 'out'"), std::string::npos);
  EXPECT_NE(found[3].message.find("static local 'cached'"), std::string::npos);
}

TEST(LintSemantic, SnapshotEscapeSafeShapesAreClean) {
  EXPECT_TRUE(lint_fixture("serve/snapshot_ok.cpp").empty());
}

TEST(LintSemantic, SnapshotEscapeSuppressionSilencesWithReason) {
  const auto found = lint_fixture("serve/snapshot_suppressed.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 19u);
  EXPECT_EQ(found[0].rule, "snapshot-escape");
  EXPECT_TRUE(found[0].suppressed);
  EXPECT_NE(found[0].suppress_reason.find("keeps the snapshot alive"), std::string::npos);
}

TEST(LintSemantic, SnapshotEscapeIsScopedToServeAndNet) {
  // The same stores outside serve/ and net/ are someone else's
  // ownership model, not this rule's.
  const auto found = sp::lint::lint_file(kFixtureDir + "serve/snapshot_bad.cpp",
                                         "core/snapshot_bad.cpp");
  EXPECT_TRUE(found.empty());
}

// ---------------------------------------------------------------------------
// stale-suppression fixtures

TEST(LintSemantic, StaleSuppressionsAreFindings) {
  const auto found = lint_fixture("stale_bad.cpp");
  expect_findings(found, {{4, "stale-suppression"}, {8, "stale-suppression"}});
  EXPECT_NE(found[0].message.find("file-scoped"), std::string::npos);
  EXPECT_NE(found[0].message.find("silences nothing"), std::string::npos);
}

TEST(LintSemantic, UsedSuppressionIsNotStale) {
  const auto found = lint_fixture("stale_ok.cpp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "determinism");
  EXPECT_TRUE(found[0].suppressed);
}

TEST(LintSemantic, StalenessIsPerEntryWithinOneBlock) {
  const auto found = lint_fixture("stale_mixed.cpp");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].line, 6u);
  EXPECT_EQ(found[0].rule, "stale-suppression");
  EXPECT_FALSE(found[0].suppressed);
  EXPECT_EQ(found[1].line, 8u);
  EXPECT_EQ(found[1].rule, "determinism");
  EXPECT_TRUE(found[1].suppressed);
}

// ---------------------------------------------------------------------------
// the real tree re-derives DESIGN.md §3.5

/// Indexes every lintable file under the repo's src/ (the subsystems;
/// annotations and guard acquisitions all live there).
sp::lint::ProjectIndex index_real_tree() {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(kSourceDir + "/src"), end; it != end; ++it) {
    if (it->is_regular_file() && sp::lint::lintable_path(it->path().generic_string())) {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  sp::lint::ProjectIndex index;
  for (const std::string& file : files) {
    index.add_file(file, sp::lint::tokenize(slurp(file)));
  }
  return index;
}

TEST(LintSemantic, RealTreeRankGraphMatchesDesignTable) {
  const auto index = index_real_tree();
  const auto graph = sp::lint::derive_lock_graph(index);
  const auto documented = sp::lint::parse_design_ranks(slurp(kSourceDir + "/DESIGN.md"));
  ASSERT_FALSE(documented.empty());
  EXPECT_EQ(graph.ranks, documented);  // zero disagreements, both directions
  // Every statically derived acquired-after edge goes strictly rank-up.
  ASSERT_FALSE(graph.edges.empty());
  for (const auto& [from, to] : graph.edges) {
    ASSERT_TRUE(graph.ranks.count(from) == 1 && graph.ranks.count(to) == 1) << from << "→" << to;
    EXPECT_LT(graph.ranks.at(from), graph.ranks.at(to)) << from << "→" << to;
  }
  // The derivation is not vacuous: holding the worker-pool mutex, the
  // runtime lock-order registry's own mutex is acquired one call in.
  EXPECT_TRUE(graph.edges.count({"core.worker_pool.mutex", "lint.lock_order.registry_mutex"}));
}

TEST(LintSemantic, RealTreeSemanticPassesAndStaleAuditAreClean) {
  sp::lint::LintOptions options;
  options.design_md_path = kSourceDir + "/DESIGN.md";
  options.layers_def_path = kSourceDir + "/src/lint/layers.def";
  std::vector<std::string> roots;
  for (const std::string& root : sp::lint::default_roots()) {
    roots.push_back(kSourceDir + "/" + root);
  }
  const auto report = sp::lint::lint_paths(roots, options);
  for (const Finding& finding : report.findings) {
    EXPECT_TRUE(finding.suppressed) << finding.file << ":" << finding.line << " ["
                                    << finding.rule << "] " << finding.message;
  }
}

}  // namespace
