// Tests for WorkerPool's two dispatch modes: the original fork-join run()
// contract and the task-queue submit() mode the sp::pipeline StageGraph
// scheduler runs on. The mixed-mode and stress cases are raced under TSan
// by scripts/tier1.sh stage 2.
//
// sp-lint-file: atomics-ok(test counters are only read after the pool
// joins; the join publishes, so relaxed increments suffice)
#include "core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sp::core {
namespace {

TEST(WorkerPoolTask, ForkJoinRunsEveryWorkerExactlyOnce) {
  WorkerPool pool(4);
  ASSERT_EQ(pool.thread_count(), 4u);
  std::mutex mutex;
  std::multiset<unsigned> ids;
  pool.run([&](unsigned id) {
    std::lock_guard lock(mutex);
    ids.insert(id);
  });
  EXPECT_EQ(ids, (std::multiset<unsigned>{0, 1, 2, 3}));
}

TEST(WorkerPoolTask, SubmitExecutesEveryTask) {
  WorkerPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(WorkerPoolTask, SerialPoolRunsTasksInlineAndInOrder) {
  WorkerPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
    // Inline execution: the task completed before submit() returned.
    ASSERT_EQ(static_cast<int>(order.size()), i + 1);
  }
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(WorkerPoolTask, TasksMaySubmitFurtherTasks) {
  WorkerPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  // wait_idle only returns once the re-submitted generation drained too:
  // the queue must be empty AND no task running, so a parent still
  // executing keeps it blocked until its child is queued.
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 40);
}

TEST(WorkerPoolTask, ForkJoinAndTasksShareOnePool) {
  WorkerPool pool(4);
  std::atomic<int> task_count{0};
  std::atomic<int> join_count{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) {
      pool.submit([&task_count] { task_count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.run([&join_count](unsigned) { join_count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(task_count.load(), 160);
  EXPECT_EQ(join_count.load(), 40);
}

TEST(WorkerPoolTask, DestructionDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

// The pool's queue-depth gauge is process-wide (obs global registry) and
// balanced: every submit() adds 1 and the matching execution subtracts 1,
// from producer and worker threads concurrently. Once all pools are
// quiesced the gauge must read its pre-test value. Raced under TSan
// together with the scrape in obs_metrics_test.
TEST(WorkerPoolTask, QueueDepthGaugeBalancesUnderConcurrency) {
  const obs::Gauge depth = obs::MetricsRegistry::global().gauge("worker_pool.queue_depth");
  const std::int64_t before = depth.value();
  {
    WorkerPool pooled(4);
    WorkerPool inline_pool(1);  // no threads: submit() executes inline
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&pooled, &inline_pool] {
        for (int i = 0; i < 200; ++i) {
          pooled.submit([] {});
          inline_pool.submit([] {});
        }
      });
    }
    for (auto& producer : producers) producer.join();
    pooled.wait_idle();
    inline_pool.wait_idle();
  }
  EXPECT_EQ(depth.value(), before);

  // Wait/run latency histograms saw every pooled + inline task.
  const auto waits =
      obs::HistogramSnapshot::of(obs::MetricsRegistry::global().histogram("worker_pool.task_wait_us"));
  EXPECT_GE(waits.count, 1600u);
}

// Many producers hammering submit() from outside the pool while the pool
// also serves fork-join jobs — the TSan target for the shared-pool design.
TEST(WorkerPoolTask, ConcurrentProducersStress) {
  WorkerPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace sp::core
