// Tests for the .sibdb snapshot format: bit-exact round-trip through the
// mmap loader, CSV conversion, and a byte-mutation / truncation fuzz pass
// asserting that every corrupted image is rejected without crashing.
#include "serve/sibdb.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/sibling_list_io.h"

namespace sp::serve {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

core::SiblingPair make_pair(const char* v4, const char* v6, double similarity,
                            std::uint32_t shared, std::uint32_t v4_count,
                            std::uint32_t v6_count) {
  core::SiblingPair pair;
  pair.v4 = p(v4);
  pair.v6 = p(v6);
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = v4_count;
  pair.v6_domain_count = v6_count;
  return pair;
}

std::vector<core::SiblingPair> sample_pairs() {
  return {
      make_pair("20.1.0.0/16", "2620:100::/32", 0.75, 3, 4, 4),
      make_pair("20.1.2.0/24", "2620:100:1::/48", 1.0, 5, 5, 5),
      make_pair("198.51.100.0/24", "2001:db8:51::/48", 0.33333333333333331, 1, 3, 2),
      make_pair("0.0.0.0/0", "::/0", 0.015625, 1, 64, 64),
      make_pair("203.0.113.77/32", "2001:db8::1/128", 1.0, 2, 2, 2),
  };
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(ServeSibDb, RoundTripIsBitExact) {
  const auto pairs = sample_pairs();
  const std::string path = ::testing::TempDir() + "/sp_sibdb_roundtrip.sibdb";
  ASSERT_TRUE(write_sibdb(path, pairs, "unit-test"));

  std::string error;
  const auto db = SiblingDB::load(path, &error);
  ASSERT_TRUE(db.has_value()) << error;
  ASSERT_EQ(db->size(), pairs.size());
  EXPECT_FALSE(db->empty());
  EXPECT_EQ(db->source_label(), "unit-test");

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(db->v4_prefix(i), pairs[i].v4) << i;
    EXPECT_EQ(db->v6_prefix(i), pairs[i].v6) << i;
    // Bit-exact doubles: the whole point of the binary format vs CSV.
    EXPECT_EQ(db->similarity(i), pairs[i].similarity) << i;
    EXPECT_EQ(db->shared_domains(i), pairs[i].shared_domains) << i;
    EXPECT_EQ(db->v4_domain_count(i), pairs[i].v4_domain_count) << i;
    EXPECT_EQ(db->v6_domain_count(i), pairs[i].v6_domain_count) << i;
    EXPECT_EQ(db->pair(i), pairs[i]) << i;
  }
}

TEST(ServeSibDb, EmptyDatabaseRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sp_sibdb_empty.sibdb";
  ASSERT_TRUE(write_sibdb(path, {}));
  const auto db = SiblingDB::load(path);
  ASSERT_TRUE(db.has_value());
  EXPECT_TRUE(db->empty());
  EXPECT_EQ(db->source_label(), "");
}

TEST(ServeSibDb, MoveTransfersMapping) {
  const std::string path = ::testing::TempDir() + "/sp_sibdb_move.sibdb";
  ASSERT_TRUE(write_sibdb(path, sample_pairs()));
  auto db = SiblingDB::load(path);
  ASSERT_TRUE(db.has_value());
  SiblingDB moved = std::move(*db);
  EXPECT_EQ(moved.size(), sample_pairs().size());
  EXPECT_EQ(moved.v4_prefix(1), p("20.1.2.0/24"));
}

TEST(ServeSibDb, MissingFileIsRejected) {
  std::string error;
  EXPECT_FALSE(SiblingDB::load(::testing::TempDir() + "/sp_sibdb_nonexistent.sibdb", &error));
  EXPECT_FALSE(error.empty());
}

// Every single-byte mutation anywhere in the image must be rejected: the
// checksum covers the whole file with the checksum field zeroed, so a flip
// in the checksum itself is caught too.
TEST(ServeSibDb, EveryByteFlipIsRejected) {
  const std::string path = ::testing::TempDir() + "/sp_sibdb_fuzz.sibdb";
  ASSERT_TRUE(write_sibdb(path, sample_pairs(), "fuzz"));
  const auto image = read_file(path);
  ASSERT_FALSE(image.empty());

  const std::string mutated_path = ::testing::TempDir() + "/sp_sibdb_fuzz_mut.sibdb";
  for (std::size_t offset = 0; offset < image.size(); ++offset) {
    auto mutated = image;
    mutated[offset] ^= 0xFF;
    write_file(mutated_path, mutated);
    std::string error;
    EXPECT_FALSE(SiblingDB::load(mutated_path, &error).has_value())
        << "byte flip at offset " << offset << " was accepted";
  }
}

TEST(ServeSibDb, TruncationsAreRejected) {
  const std::string path = ::testing::TempDir() + "/sp_sibdb_trunc.sibdb";
  ASSERT_TRUE(write_sibdb(path, sample_pairs()));
  const auto image = read_file(path);
  ASSERT_GT(image.size(), 16u);

  const std::string truncated_path = ::testing::TempDir() + "/sp_sibdb_trunc_cut.sibdb";
  std::mt19937 rng(7u);
  std::uniform_int_distribution<std::size_t> cut(0, image.size() - 1);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t keep = cut(rng);
    write_file(truncated_path,
               std::vector<std::uint8_t>(image.begin(), image.begin() + keep));
    EXPECT_FALSE(SiblingDB::load(truncated_path).has_value())
        << "truncation to " << keep << " bytes was accepted";
  }
  // The degenerate cases explicitly.
  write_file(truncated_path, {});
  EXPECT_FALSE(SiblingDB::load(truncated_path).has_value());
  write_file(truncated_path, std::vector<std::uint8_t>(image.begin(), image.end() - 1));
  EXPECT_FALSE(SiblingDB::load(truncated_path).has_value());
}

TEST(ServeSibDb, GarbageFileIsRejected) {
  const std::string path = ::testing::TempDir() + "/sp_sibdb_garbage.sibdb";
  std::mt19937 rng(11u);
  std::vector<std::uint8_t> garbage(4096);
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
  write_file(path, garbage);
  std::string error;
  EXPECT_FALSE(SiblingDB::load(path, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ServeSibDb, ConvertSiblingList) {
  const auto pairs = sample_pairs();
  const std::string csv_path = ::testing::TempDir() + "/sp_sibdb_convert.csv";
  const std::string db_path = ::testing::TempDir() + "/sp_sibdb_convert.sibdb";
  ASSERT_TRUE(core::write_sibling_list(csv_path, pairs));

  std::string error;
  ASSERT_TRUE(convert_sibling_list(csv_path, db_path, &error)) << error;
  const auto db = SiblingDB::load(db_path, &error);
  ASSERT_TRUE(db.has_value()) << error;
  ASSERT_EQ(db->size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(db->v4_prefix(i), pairs[i].v4);
    EXPECT_EQ(db->v6_prefix(i), pairs[i].v6);
    // CSV carries %.9f, so similarity matches the reparsed value, not
    // necessarily the original double.
    EXPECT_NEAR(db->similarity(i), pairs[i].similarity, 1e-9);
  }
  EXPECT_EQ(db->source_label(), "converted from " + csv_path);
}

TEST(ServeSibDb, ConvertReportsOffendingCsvLine) {
  const std::string csv_path = ::testing::TempDir() + "/sp_sibdb_convert_bad.csv";
  const std::string db_path = ::testing::TempDir() + "/sp_sibdb_convert_bad.sibdb";
  std::ofstream out(csv_path, std::ios::trunc);
  out << "v4_prefix,v6_prefix,similarity,shared_domains,v4_domains,v6_domains\n";
  out << "20.1.0.0/16,2620:100::/32,0.750000000,3,4,4\n";
  out << "not-a-prefix,2620:100::/32,0.5,1,1,1\n";
  out.close();

  std::string error;
  EXPECT_FALSE(convert_sibling_list(csv_path, db_path, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("bad v4_prefix"), std::string::npos) << error;
}

}  // namespace
}  // namespace sp::serve
