// Protocol conformance battery for the sp::net wire format: checked-in
// byte-exact golden request/response vectors for every verb, incremental
// decoder edge cases (1-byte trickles, coalesced pipelines, zero-length
// and max-size batches, oversized/garbage frames), each exercised twice
// — once against the codec directly and once through a loopback socket
// against the real epoll event loop, so the vectors pin what actually
// travels on the wire, not just what the encoder emits.
#include "net/protocol.h"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "serve/sibdb.h"
#include "serve/service.h"

namespace sp::net {
namespace {

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  const auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    return static_cast<std::uint8_t>(c - 'a' + 10);
  };
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  constexpr char digits[] = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

Prefix p(const char* text) { return Prefix::must_parse(text); }

/// Drains a (non-blocking) socket until the peer closes; for the raw
/// HTTP reply, which ends with the server's close.
std::string read_until_eof(int fd) {
  std::string reply;
  while (true) {
    pollfd waiter{fd, POLLIN, 0};
    if (::poll(&waiter, 1, 5000) <= 0) break;
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got == 0) break;
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    reply.append(chunk, static_cast<std::size_t>(got));
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Golden vectors. These hex strings are the wire contract: a change that
// breaks any of them breaks every deployed client.

// QUERY id=7 with an address key, a prefix key and a v6 address key.
constexpr const char* kGoldenQueryRequest =
    "0124000000"  // type=QUERY, body_len=36
    "07000000"    // request_id=7
    "0300"        // count=3
    "042014010203"                              // 20.1.2.3/32 (address)
    "041014010000"                              // 20.1.0.0/16 (prefix LPM)
    "068026200100000000000000000000000001";     // 2620:100::1/128

// The answer the fixture snapshot gives that QUERY (gen=1): all three
// keys hit the 20.1.0.0/16 <-> 2620:100::/32 pair. The matched key is
// always on the query's family — the v6 key answers with the record's
// two prefixes swapped relative to the v4 keys.
constexpr const char* kGoldenQueryResponse =
    "8195000000"          // type=QUERY|0x80, body_len=149
    "07000000"            // request_id=7
    "0100000000000000"    // generation=1
    "0300"                // count=3
    "01"                  // answers[0]: hit
    "041014010000"                            //   matched 20.1.0.0/16
    "062026200100000000000000000000000000"    //   sibling 2620:100::/32
    "666666666666ee3f"                        //   similarity 0.95
    "03000000" "04000000" "05000000"          //   shared=3 v4=4 v6=5
    "01"                  // answers[1]: hit (same record)
    "041014010000"
    "062026200100000000000000000000000000"
    "666666666666ee3f"
    "03000000" "04000000" "05000000"
    "01"                  // answers[2]: hit from the v6 side
    "062026200100000000000000000000000000"    //   matched 2620:100::/32
    "041014010000"                            //   sibling 20.1.0.0/16
    "666666666666ee3f"
    "03000000" "04000000" "05000000";

constexpr const char* kGoldenBareReload = "02020000000000";
constexpr const char* kGoldenPathReload = "02090000000700612e7369626462";  // "a.sibdb"
constexpr const char* kGoldenStatsRequest = "0300000000";
constexpr const char* kGoldenMetricsRequest = "0400000000";
constexpr const char* kGoldenError = "7f050000000300626164";  // "bad"
// ok, generation=2
constexpr const char* kGoldenReloadOk = "8209000000" "01" "0200000000000000";
// failed, reason "nope"
constexpr const char* kGoldenReloadFail = "8207000000" "00" "0400" "6e6f7065";
// QUERY response id=9, gen=1, one miss.
constexpr const char* kGoldenMissResponse =
    "810f000000" "09000000" "0100000000000000" "0100" "00";

QueryRequest golden_query_request() {
  QueryRequest request;
  request.request_id = 7;
  request.keys = {p("20.1.2.3/32"), p("20.1.0.0/16"), p("2620:100::1/128")};
  return request;
}

TEST(NetProtocolGolden, QueryRequestBytes) {
  std::vector<std::uint8_t> wire;
  encode_query_request(wire, golden_query_request());
  EXPECT_EQ(to_hex(wire), kGoldenQueryRequest);

  std::string error;
  const auto body = from_hex(std::string(kGoldenQueryRequest).substr(2 * kHeaderSize));
  const auto parsed = parse_query_request(body, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, golden_query_request());
}

TEST(NetProtocolGolden, ReloadRequestBytes) {
  std::vector<std::uint8_t> bare;
  encode_reload_request(bare, ReloadRequest{});
  EXPECT_EQ(to_hex(bare), kGoldenBareReload);

  std::vector<std::uint8_t> with_path;
  encode_reload_request(with_path, ReloadRequest{"a.sibdb"});
  EXPECT_EQ(to_hex(with_path), kGoldenPathReload);

  std::string error;
  const auto body = from_hex(std::string(kGoldenPathReload).substr(2 * kHeaderSize));
  const auto parsed = parse_reload_request(body, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->path, "a.sibdb");
}

TEST(NetProtocolGolden, StatsAndMetricsRequestBytes) {
  std::vector<std::uint8_t> stats;
  encode_stats_request(stats);
  EXPECT_EQ(to_hex(stats), kGoldenStatsRequest);
  std::vector<std::uint8_t> metrics;
  encode_metrics_request(metrics);
  EXPECT_EQ(to_hex(metrics), kGoldenMetricsRequest);
}

TEST(NetProtocolGolden, ErrorFrameBytes) {
  std::vector<std::uint8_t> wire;
  encode_error(wire, "bad");
  EXPECT_EQ(to_hex(wire), kGoldenError);
  std::string error;
  const auto body = from_hex(std::string(kGoldenError).substr(2 * kHeaderSize));
  const auto message = parse_error_frame(body, &error);
  ASSERT_TRUE(message.has_value()) << error;
  EXPECT_EQ(*message, "bad");
}

TEST(NetProtocolGolden, ReloadResponseBytes) {
  std::vector<std::uint8_t> ok_wire;
  encode_reload_response(ok_wire, ReloadResponse{true, 2, ""});
  EXPECT_EQ(to_hex(ok_wire), kGoldenReloadOk);
  std::vector<std::uint8_t> fail_wire;
  encode_reload_response(fail_wire, ReloadResponse{false, 0, "nope"});
  EXPECT_EQ(to_hex(fail_wire), kGoldenReloadFail);

  std::string error;
  const auto parsed = parse_reload_response(
      from_hex(std::string(kGoldenReloadFail).substr(2 * kHeaderSize)), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->error, "nope");
}

TEST(NetProtocolGolden, QueryMissResponseBytes) {
  QueryResponse response;
  response.request_id = 9;
  response.generation = 1;
  response.answers.resize(1);
  std::vector<std::uint8_t> wire;
  encode_query_response(wire, response);
  EXPECT_EQ(to_hex(wire), kGoldenMissResponse);

  std::string error;
  const auto parsed = parse_query_response(
      from_hex(std::string(kGoldenMissResponse).substr(2 * kHeaderSize)), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, response);
}

TEST(NetProtocolGolden, QueryResponseRoundTripWithHit) {
  serve::SiblingAnswer answer;
  answer.matched = p("20.1.0.0/16");
  answer.sibling = p("2620:100::/32");
  answer.similarity = 0.95;
  answer.shared_domains = 3;
  answer.v4_domain_count = 4;
  answer.v6_domain_count = 5;
  serve::SiblingAnswer v6_answer = answer;
  v6_answer.matched = answer.sibling;
  v6_answer.sibling = answer.matched;
  QueryResponse response;
  response.request_id = 7;
  response.generation = 1;
  response.answers = {answer, answer, v6_answer};
  std::vector<std::uint8_t> wire;
  encode_query_response(wire, response);
  EXPECT_EQ(to_hex(wire), kGoldenQueryResponse);

  std::string error;
  const auto parsed =
      parse_query_response(from_hex(std::string(kGoldenQueryResponse).substr(2 * kHeaderSize)),
                           &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, response);
}

TEST(NetProtocolGolden, StatsPayloadRoundTripIs152Bytes) {
  StatsPayload stats;
  stats.generation = 3;
  stats.queries = 1000;
  stats.hits = 900;
  stats.frame_p50_us = 12.5;
  stats.frame_max_us = 99;
  std::vector<std::uint8_t> wire;
  encode_stats_response(wire, stats);
  EXPECT_EQ(wire.size(), kHeaderSize + 152);
  std::string error;
  const auto parsed =
      parse_stats_response(std::span(wire).subspan(kHeaderSize), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, stats);
}

// ---------------------------------------------------------------------------
// Decoder edge cases, direct.

TEST(NetFrameDecoder, OneByteTrickleMatchesWholeFeed) {
  const auto wire = from_hex(kGoldenQueryRequest);
  FrameDecoder whole;
  whole.feed(wire);
  const auto expected = whole.next();
  ASSERT_TRUE(expected.has_value());

  FrameDecoder trickle;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(trickle.next().has_value()) << "frame complete too early at byte " << i;
    trickle.feed({&wire[i], 1});
  }
  const auto got = trickle.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, *expected);
  EXPECT_FALSE(trickle.next().has_value());
  EXPECT_EQ(trickle.buffered(), 0u);
}

TEST(NetFrameDecoder, CoalescedPipelineYieldsFramesInOrder) {
  std::vector<std::uint8_t> wire = from_hex(kGoldenQueryRequest);
  const auto stats = from_hex(kGoldenStatsRequest);
  const auto reload = from_hex(kGoldenBareReload);
  wire.insert(wire.end(), stats.begin(), stats.end());
  wire.insert(wire.end(), reload.begin(), reload.end());

  FrameDecoder decoder;
  decoder.feed(wire);
  const auto first = decoder.next();
  const auto second = decoder.next();
  const auto third = decoder.next();
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(first->type, static_cast<std::uint8_t>(FrameType::kQuery));
  EXPECT_EQ(second->type, static_cast<std::uint8_t>(FrameType::kStats));
  EXPECT_TRUE(second->body.empty());
  EXPECT_EQ(third->type, static_cast<std::uint8_t>(FrameType::kReload));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.error());
}

TEST(NetFrameDecoder, OversizedDeclaredLengthPoisons) {
  FrameDecoder decoder;  // default max_body = kMaxBody
  decoder.feed(from_hex("01ffffff7f"));  // body_len = 0x7fffffff
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.error());
  EXPECT_EQ(decoder.error_message(),
            "frame body length 2147483647 exceeds limit 1048576");
  // Poisoned decoders never yield again, even fed a valid frame.
  decoder.feed(from_hex(kGoldenStatsRequest));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(NetFrameDecoder, TruncatedFrameJustWaits) {
  FrameDecoder decoder;
  const auto wire = from_hex(kGoldenQueryRequest);
  decoder.feed({wire.data(), wire.size() - 1});
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(decoder.buffered(), wire.size() - 1);
}

TEST(NetProtocolParse, ZeroLengthBatchIsValid) {
  QueryRequest request;
  request.request_id = 5;
  std::vector<std::uint8_t> wire;
  encode_query_request(wire, request);
  std::string error;
  const auto parsed = parse_query_request(std::span(wire).subspan(kHeaderSize), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->keys.empty());
}

TEST(NetProtocolParse, MaxBatchRoundTripsAndOverMaxRejects) {
  QueryRequest request;
  request.request_id = 1;
  request.keys.assign(kMaxBatch, p("20.1.2.3/32"));
  std::vector<std::uint8_t> wire;
  encode_query_request(wire, request);
  std::string error;
  auto parsed = parse_query_request(std::span(wire).subspan(kHeaderSize), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->keys.size(), kMaxBatch);

  // Same body with the count forged one past the cap.
  std::vector<std::uint8_t> forged(wire.begin() + kHeaderSize, wire.end());
  const std::uint16_t count = kMaxBatch + 1;
  forged[4] = static_cast<std::uint8_t>(count & 0xff);
  forged[5] = static_cast<std::uint8_t>(count >> 8);
  parsed = parse_query_request(forged, &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(error, "QUERY batch of 4097 keys exceeds max 4096");
}

TEST(NetProtocolParse, MalformedBodiesNameTheReason) {
  std::string error;
  EXPECT_FALSE(parse_query_request(from_hex("070000"), &error).has_value());
  EXPECT_EQ(error, "truncated QUERY header");
  EXPECT_FALSE(parse_query_request(from_hex("0700000001000520"), &error).has_value());
  EXPECT_EQ(error, "key family must be 4 or 6, got 5");
  EXPECT_FALSE(
      parse_query_request(from_hex("070000000100042114010203"), &error).has_value());
  EXPECT_EQ(error, "key prefix length 33 exceeds /32");
  EXPECT_FALSE(parse_query_request(from_hex("070000000100042014"), &error).has_value());
  EXPECT_EQ(error, "truncated key");
  // Valid single-key body plus one trailing byte.
  EXPECT_FALSE(
      parse_query_request(from_hex("070000000100042014010203ff"), &error).has_value());
  EXPECT_EQ(error, "QUERY body has trailing bytes");
}

// ---------------------------------------------------------------------------
// The same vectors through a loopback socket against the real event loop.

class NetProtocolLoopback : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<core::SiblingPair> pairs(1);
    pairs[0].v4 = p("20.1.0.0/16");
    pairs[0].v6 = p("2620:100::/32");
    pairs[0].similarity = 0.95;
    pairs[0].shared_domains = 3;
    pairs[0].v4_domain_count = 4;
    pairs[0].v6_domain_count = 5;
    // Unique per process: ctest runs each test case as its own process
    // and a shared path would let one process truncate-rewrite the file
    // while another still has it mmapped (SIGBUS).
    db_path_ = ::testing::TempDir() + "/net_protocol_test." + std::to_string(::getpid()) +
               ".sibdb";
    ASSERT_TRUE(serve::write_sibdb(db_path_, pairs));

    service_ = std::make_unique<serve::SiblingService>(1u);
    std::string error;
    ASSERT_TRUE(service_->load(db_path_, &error)) << error;

    ServerConfig config;
    config.workers = 2;
    config.registry = &registry_;  // scrapes/quantiles start from zero
    server_ = std::make_unique<Server>(*service_, config);
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override { server_->stop(); }

  Client connect_ok() {
    std::string error;
    auto client = Client::connect("127.0.0.1", server_->port(), &error);
    EXPECT_TRUE(client.has_value()) << error;
    return std::move(*client);
  }

  std::string db_path_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<serve::SiblingService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetProtocolLoopback, GoldenQueryAnswersGoldenResponse) {
  auto client = connect_ok();
  std::string error;
  ASSERT_TRUE(client.send_bytes(from_hex(kGoldenQueryRequest), &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  std::vector<std::uint8_t> wire;
  wire.push_back(frame->type);
  put_u32(wire, static_cast<std::uint32_t>(frame->body.size()));
  wire.insert(wire.end(), frame->body.begin(), frame->body.end());
  EXPECT_EQ(to_hex(wire), kGoldenQueryResponse);
}

TEST_F(NetProtocolLoopback, OneByteTrickleOverSocket) {
  auto client = connect_ok();
  std::string error;
  const auto wire = from_hex(kGoldenQueryRequest);
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(client.send_bytes({&byte, 1}, &error)) << error;
  }
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto response = parse_query_response(frame->body, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->request_id, 7u);
  ASSERT_EQ(response->answers.size(), 3u);
  EXPECT_TRUE(response->answers[0].has_value());
  EXPECT_TRUE(response->answers[2].has_value());
  EXPECT_EQ(response->answers[2]->matched, p("2620:100::/32"));
}

TEST_F(NetProtocolLoopback, CoalescedPipelineOverSocket) {
  auto client = connect_ok();
  std::string error;
  // Three pipelined QUERYs with distinct ids in a single send.
  std::vector<std::uint8_t> wire;
  for (std::uint32_t id = 10; id < 13; ++id) {
    QueryRequest request;
    request.request_id = id;
    request.keys = {p("20.1.2.3/32")};
    encode_query_request(wire, request);
  }
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  for (std::uint32_t id = 10; id < 13; ++id) {
    const auto frame = client.read_frame(&error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto response = parse_query_response(frame->body, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->request_id, id);  // in-order answering
  }
}

TEST_F(NetProtocolLoopback, ZeroLengthBatchOverSocket) {
  auto client = connect_ok();
  std::string error;
  QueryRequest request;
  request.request_id = 5;
  std::vector<std::uint8_t> wire;
  encode_query_request(wire, request);
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto response = parse_query_response(frame->body, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->request_id, 5u);
  EXPECT_EQ(response->generation, 1u);
  EXPECT_TRUE(response->answers.empty());
}

TEST_F(NetProtocolLoopback, MaxBatchOverSocket) {
  auto client = connect_ok();
  std::string error;
  QueryRequest request;
  request.request_id = 6;
  request.keys.assign(kMaxBatch, p("20.1.2.3/32"));
  std::vector<std::uint8_t> wire;
  encode_query_request(wire, request);
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto response = parse_query_response(frame->body, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->answers.size(), kMaxBatch);
  for (const auto& answer : response->answers) EXPECT_TRUE(answer.has_value());
}

TEST_F(NetProtocolLoopback, StatsFirstFrameIsDeterministic) {
  auto client = connect_ok();
  std::string error;
  ASSERT_TRUE(client.send_bytes(from_hex(kGoldenStatsRequest), &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  ASSERT_EQ(frame->type, static_cast<std::uint8_t>(FrameType::kStatsResponse));

  // A fresh server whose first-ever frame is this STATS answers exactly
  // this payload — every counter is forced, including the 5 bytes of the
  // request itself.
  StatsPayload expected;
  expected.generation = 1;
  expected.reloads = 1;  // the initial load
  expected.connections_accepted = 1;
  expected.connections_active = 1;
  expected.frames_in = 1;
  expected.bytes_in = 5;
  const auto parsed = parse_stats_response(frame->body, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, expected);

  std::vector<std::uint8_t> golden;
  encode_stats_response(golden, expected);
  std::vector<std::uint8_t> wire;
  wire.push_back(frame->type);
  put_u32(wire, static_cast<std::uint32_t>(frame->body.size()));
  wire.insert(wire.end(), frame->body.begin(), frame->body.end());
  EXPECT_EQ(to_hex(wire), to_hex(golden));
}

TEST_F(NetProtocolLoopback, ReloadOverSocketBumpsGeneration) {
  auto client = connect_ok();
  std::string error;
  // Explicit-path RELOAD (same file): generation 1 -> 2.
  std::vector<std::uint8_t> wire;
  encode_reload_request(wire, ReloadRequest{db_path_});
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  auto reload = parse_reload_response(frame->body, &error);
  ASSERT_TRUE(reload.has_value()) << error;
  EXPECT_TRUE(reload->ok);
  EXPECT_EQ(reload->generation, 2u);

  // Bare RELOAD: re-reads the current path, generation 2 -> 3.
  wire.clear();
  encode_reload_request(wire, ReloadRequest{});
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  reload = parse_reload_response(frame->body, &error);
  ASSERT_TRUE(reload.has_value()) << error;
  EXPECT_TRUE(reload->ok);
  EXPECT_EQ(reload->generation, 3u);

  // A failed RELOAD reports the reason and keeps serving generation 3.
  wire.clear();
  encode_reload_request(wire, ReloadRequest{"/nonexistent/x.sibdb"});
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  reload = parse_reload_response(frame->body, &error);
  ASSERT_TRUE(reload.has_value()) << error;
  EXPECT_FALSE(reload->ok);
  EXPECT_FALSE(reload->error.empty());

  wire.clear();
  QueryRequest request;
  request.request_id = 1;
  request.keys = {p("20.1.2.3/32")};
  encode_query_request(wire, request);
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto response = parse_query_response(frame->body, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->generation, 3u);
}

TEST_F(NetProtocolLoopback, MetricsVerbReturnsScrapeJson) {
  auto client = connect_ok();
  std::string error;
  // One QUERY first so the scrape has non-zero net.* counters.
  std::vector<std::uint8_t> wire = from_hex(kGoldenQueryRequest);
  ASSERT_TRUE(client.send_bytes(wire, &error)) << error;
  ASSERT_TRUE(client.read_frame(&error).has_value()) << error;

  ASSERT_TRUE(client.send_bytes(from_hex(kGoldenMetricsRequest), &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  ASSERT_EQ(frame->type, static_cast<std::uint8_t>(FrameType::kMetricsResponse));
  const std::string json(frame->body.begin(), frame->body.end());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"net.frames.query\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"net.queries\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("net.frame_us"), std::string::npos) << json;
}

TEST_F(NetProtocolLoopback, HttpGetMetricsOnSamePort) {
  auto client = connect_ok();
  std::string error;
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(client.send_bytes(
      {reinterpret_cast<const std::uint8_t*>(request.data()), request.size()}, &error))
      << error;
  // Read until EOF (Connection: close semantics).
  const std::string reply = read_until_eof(client.fd());
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(reply.find("\"counters\""), std::string::npos);

  auto other = connect_ok();
  const std::string bad = "GET /nope HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(other.send_bytes(
      {reinterpret_cast<const std::uint8_t*>(bad.data()), bad.size()}, &error))
      << error;
  const std::string not_found = read_until_eof(other.fd());
  EXPECT_EQ(not_found.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u) << not_found;
}

TEST_F(NetProtocolLoopback, UnknownTypeAnswersErrorAndCloses) {
  auto client = connect_ok();
  std::string error;
  ASSERT_TRUE(client.send_bytes(from_hex("5500000000"), &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  ASSERT_EQ(frame->type, static_cast<std::uint8_t>(FrameType::kError));
  const auto message = parse_error_frame(frame->body, &error);
  ASSERT_TRUE(message.has_value()) << error;
  EXPECT_EQ(*message, "unknown frame type 0x55");
  EXPECT_FALSE(client.read_frame(&error).has_value());
  EXPECT_TRUE(client.eof());  // server closed after the error frame
}

TEST_F(NetProtocolLoopback, OversizedFrameAnswersErrorAndCloses) {
  auto client = connect_ok();
  std::string error;
  ASSERT_TRUE(client.send_bytes(from_hex("01ffffff7f"), &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  ASSERT_EQ(frame->type, static_cast<std::uint8_t>(FrameType::kError));
  const auto message = parse_error_frame(frame->body, &error);
  ASSERT_TRUE(message.has_value()) << error;
  EXPECT_EQ(*message, "frame body length 2147483647 exceeds limit 1048576");
  EXPECT_FALSE(client.read_frame(&error).has_value());
  EXPECT_TRUE(client.eof());
}

TEST_F(NetProtocolLoopback, GarbageBodyAnswersDeterministicError) {
  auto client = connect_ok();
  std::string error;
  // QUERY whose body declares family 9.
  ASSERT_TRUE(client.send_bytes(from_hex("01080000000700000001000920"), &error)) << error;
  const auto frame = client.read_frame(&error);
  ASSERT_TRUE(frame.has_value()) << error;
  ASSERT_EQ(frame->type, static_cast<std::uint8_t>(FrameType::kError));
  const auto message = parse_error_frame(frame->body, &error);
  ASSERT_TRUE(message.has_value()) << error;
  EXPECT_EQ(*message, "key family must be 4 or 6, got 9");
  EXPECT_FALSE(client.read_frame(&error).has_value());
  EXPECT_TRUE(client.eof());
}

}  // namespace
}  // namespace sp::net
