// CorpusDelta / DetectIndexOverlay contract: `between` diffs two indexes
// into a canonical edge-level delta, and `apply` replays it so the
// overlay's index deep-equals DetectIndex::build over the post-delta
// sets — births, deaths and edits included. Inconsistent deltas throw
// std::invalid_argument and leave the index untouched.
#include "core/corpus_delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/detect_overlay.h"

namespace sp::core {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

/// The model corpus the tests evolve: prefix → element set, both
/// families in one ordered map (Prefix carries its family).
using EdgeMap = std::map<Prefix, std::set<DomainId>>;

DetectIndex build_index(const EdgeMap& edges) {
  std::unordered_map<Prefix, DomainSet> v4_sets;
  std::unordered_map<Prefix, DomainSet> v6_sets;
  for (const auto& [prefix, elements] : edges) {
    if (elements.empty()) continue;
    DomainSet set(elements.begin(), elements.end());
    (prefix.family() == Family::v4 ? v4_sets : v6_sets).emplace(prefix, std::move(set));
  }
  return DetectIndex::build(v4_sets, v6_sets);
}

void expect_side_equal(const DetectIndex::Side& a, const DetectIndex::Side& b,
                       const char* label) {
  EXPECT_EQ(a.prefixes, b.prefixes) << label;
  EXPECT_EQ(a.set_offsets, b.set_offsets) << label;
  EXPECT_EQ(a.set_elements, b.set_elements) << label;
  EXPECT_EQ(a.posting_offsets, b.posting_offsets) << label;
  EXPECT_EQ(a.postings, b.postings) << label;
}

void expect_index_equal(const DetectIndex& a, const DetectIndex& b) {
  expect_side_equal(a.v4, b.v4, "v4 side");
  expect_side_equal(a.v6, b.v6, "v6 side");
}

EdgeMap seeded_edges(std::uint32_t seed) {
  std::mt19937 rng(seed);
  EdgeMap edges;
  const int v4_count = 20 + static_cast<int>(rng() % 15);
  const int v6_count = 20 + static_cast<int>(rng() % 15);
  std::uniform_int_distribution<DomainId> element(0, 99);
  for (int i = 0; i < v4_count; ++i) {
    auto& set = edges[p(("10." + std::to_string(i) + ".0.0/24").c_str())];
    const int k = 1 + static_cast<int>(rng() % 6);
    for (int j = 0; j < k; ++j) set.insert(element(rng));
  }
  for (int i = 0; i < v6_count; ++i) {
    auto& set = edges[p(("2001:db8:" + std::to_string(i) + "::/48").c_str())];
    const int k = 1 + static_cast<int>(rng() % 6);
    for (int j = 0; j < k; ++j) set.insert(element(rng));
  }
  return edges;
}

/// One month of churn: element adds/removes on existing prefixes, a few
/// births, a few deaths.
void evolve(EdgeMap& edges, std::mt19937& rng) {
  std::uniform_int_distribution<DomainId> element(0, 99);
  std::vector<Prefix> prefixes;
  for (const auto& [prefix, _] : edges) prefixes.push_back(prefix);
  for (const Prefix& prefix : prefixes) {
    const int roll = static_cast<int>(rng() % 10);
    auto& set = edges[prefix];
    if (roll < 4) set.insert(element(rng));
    if (roll >= 3 && roll < 6 && !set.empty()) {
      auto it = set.begin();
      std::advance(it, static_cast<long>(rng() % set.size()));
      set.erase(it);
    }
    if (roll == 9) set.clear();  // prefix death
    if (set.empty()) edges.erase(prefix);
  }
  for (int i = 0; i < 3; ++i) {  // births on fresh prefix numbers
    const std::string v4 = "10." + std::to_string(200 + static_cast<int>(rng() % 40)) + ".0.0/24";
    const std::string v6 = "2001:db8:" + std::to_string(200 + rng() % 40) + "::/48";
    edges[p(v4.c_str())].insert(element(rng));
    edges[p(v6.c_str())].insert(element(rng));
  }
}

TEST(CorpusDelta, BetweenIdenticalIndexesIsEmpty) {
  const DetectIndex index = build_index(seeded_edges(7));
  const CorpusDelta delta = CorpusDelta::between(index, index);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.prefix_count(), 0u);
  EXPECT_EQ(delta.edge_count(), 0u);
}

TEST(CorpusDelta, BetweenThenApplyReproducesNextIndexAcrossSeeds) {
  for (const std::uint32_t seed : {1u, 7u, 42u, 1337u, 99991u}) {
    std::mt19937 rng(seed ^ 0x9e3779b9u);
    EdgeMap edges = seeded_edges(seed);
    DetectIndexOverlay overlay(build_index(edges));
    for (int month = 0; month < 4; ++month) {
      evolve(edges, rng);
      const DetectIndex next = build_index(edges);
      const CorpusDelta delta = CorpusDelta::between(overlay.index(), next);
      overlay.apply(delta);
      expect_index_equal(overlay.index(), next);
    }
  }
}

TEST(CorpusDelta, DeltasAreCanonical) {
  std::mt19937 rng(42);
  EdgeMap edges = seeded_edges(42);
  const DetectIndex base = build_index(edges);
  evolve(edges, rng);
  const CorpusDelta delta = CorpusDelta::between(base, build_index(edges));
  ASSERT_FALSE(delta.empty());
  for (const Family family : {Family::v4, Family::v6}) {
    const auto& side = delta.side(family);
    for (std::size_t i = 0; i < side.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(side[i - 1].prefix, side[i].prefix);
      }
      EXPECT_EQ(side[i].prefix.family(), family);
      EXPECT_TRUE(!side[i].added.empty() || !side[i].removed.empty());
      EXPECT_TRUE(std::is_sorted(side[i].added.begin(), side[i].added.end()));
      EXPECT_TRUE(std::is_sorted(side[i].removed.begin(), side[i].removed.end()));
      DomainSet both = set_intersection(side[i].added, side[i].removed);
      EXPECT_TRUE(both.empty()) << side[i].prefix.to_string();
    }
  }
}

TEST(CorpusDelta, BirthIsAddsAgainstAbsentRow) {
  EdgeMap base_edges = {{p("10.0.0.0/24"), {1, 2}}, {p("2001:db8::/48"), {1, 2}}};
  EdgeMap next_edges = base_edges;
  next_edges[p("10.1.0.0/24")] = {2, 3};
  const DetectIndex base = build_index(base_edges);
  const DetectIndex next = build_index(next_edges);
  const CorpusDelta delta = CorpusDelta::between(base, next);
  ASSERT_EQ(delta.v4.size(), 1u);
  EXPECT_EQ(delta.v4[0].prefix, p("10.1.0.0/24"));
  EXPECT_EQ(delta.v4[0].added, (DomainSet{2, 3}));
  EXPECT_TRUE(delta.v4[0].removed.empty());
  EXPECT_TRUE(delta.v6.empty());

  DetectIndexOverlay overlay(base);
  overlay.apply(delta);
  expect_index_equal(overlay.index(), next);
}

TEST(CorpusDelta, DeathEmptiesTheSet) {
  EdgeMap base_edges = {{p("10.0.0.0/24"), {1, 2}},
                        {p("10.1.0.0/24"), {2}},
                        {p("2001:db8::/48"), {1, 2}}};
  EdgeMap next_edges = base_edges;
  next_edges.erase(p("10.1.0.0/24"));
  const DetectIndex base = build_index(base_edges);
  const DetectIndex next = build_index(next_edges);
  const CorpusDelta delta = CorpusDelta::between(base, next);
  ASSERT_EQ(delta.v4.size(), 1u);
  EXPECT_EQ(delta.v4[0].prefix, p("10.1.0.0/24"));
  EXPECT_TRUE(delta.v4[0].added.empty());
  EXPECT_EQ(delta.v4[0].removed, (DomainSet{2}));
  EXPECT_EQ(delta.edge_count(), 1u);

  DetectIndexOverlay overlay(base);
  overlay.apply(delta);
  expect_index_equal(overlay.index(), next);
  EXPECT_EQ(overlay.index().v4.prefix_count(), 1u);
}

TEST(CorpusDelta, EdgeCountSumsBothDirections) {
  CorpusDelta delta;
  delta.v4.push_back({p("10.0.0.0/24"), DomainSet{1, 2}, DomainSet{3}});
  delta.v6.push_back({p("2001:db8::/48"), DomainSet{}, DomainSet{4, 5}});
  EXPECT_EQ(delta.prefix_count(), 2u);
  EXPECT_EQ(delta.edge_count(), 5u);
}

TEST(CorpusDelta, InconsistentDeltaThrowsAndLeavesIndexUnchanged) {
  const EdgeMap edges = {{p("10.0.0.0/24"), {1, 2}}, {p("2001:db8::/48"), {1}}};
  const DetectIndex base = build_index(edges);

  // Removal of an element the prefix does not hold.
  {
    DetectIndexOverlay overlay(base);
    CorpusDelta bad;
    bad.v4.push_back({p("10.0.0.0/24"), DomainSet{}, DomainSet{9}});
    EXPECT_THROW(overlay.apply(bad), std::invalid_argument);
    expect_index_equal(overlay.index(), base);
  }
  // Addition of an element already present.
  {
    DetectIndexOverlay overlay(base);
    CorpusDelta bad;
    bad.v4.push_back({p("10.0.0.0/24"), DomainSet{1}, DomainSet{}});
    EXPECT_THROW(overlay.apply(bad), std::invalid_argument);
    expect_index_equal(overlay.index(), base);
  }
  // Removal from a prefix that does not exist.
  {
    DetectIndexOverlay overlay(base);
    CorpusDelta bad;
    bad.v4.push_back({p("10.9.0.0/24"), DomainSet{}, DomainSet{1}});
    EXPECT_THROW(overlay.apply(bad), std::invalid_argument);
    expect_index_equal(overlay.index(), base);
  }
}

TEST(CorpusDelta, ApplyingSameDeltaTwiceThrows) {
  EdgeMap edges = {{p("10.0.0.0/24"), {1}}, {p("2001:db8::/48"), {1}}};
  const DetectIndex base = build_index(edges);
  EdgeMap next_edges = edges;
  next_edges[p("10.0.0.0/24")] = {2};
  const CorpusDelta delta = CorpusDelta::between(base, build_index(next_edges));

  DetectIndexOverlay overlay(base);
  overlay.apply(delta);
  const DetectIndex after = overlay.index();
  EXPECT_THROW(overlay.apply(delta), std::invalid_argument);
  expect_index_equal(overlay.index(), after);
}

}  // namespace
}  // namespace sp::core
