// Tests for domain sets, the interner, and the three similarity metrics,
// including the metric identities the paper's section 3.2 relies on.
#include "core/similarity.h"

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <random>

namespace sp::core {
namespace {

TEST(DomainSet, NormalizeSortsAndDedupes) {
  DomainSet set = {5, 1, 3, 1, 5};
  normalize(set);
  EXPECT_EQ(set, (DomainSet{1, 3, 5}));
}

TEST(DomainSet, InsertKeepsOrderAndUniqueness) {
  DomainSet set;
  insert_id(set, 7);
  insert_id(set, 3);
  insert_id(set, 7);
  insert_id(set, 9);
  EXPECT_EQ(set, (DomainSet{3, 7, 9}));
  EXPECT_TRUE(contains_id(set, 7));
  EXPECT_FALSE(contains_id(set, 8));
}

TEST(DomainSet, SetAlgebra) {
  const DomainSet a = {1, 2, 3, 5};
  const DomainSet b = {2, 3, 4};
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_EQ(set_intersection(a, b), (DomainSet{2, 3}));
  EXPECT_EQ(set_union(a, b), (DomainSet{1, 2, 3, 4, 5}));
  EXPECT_EQ(set_difference(a, b), (DomainSet{1, 5}));
  EXPECT_EQ(intersection_size(a, {}), 0u);
}

TEST(DomainInterner, AssignsDenseStableIds) {
  DomainInterner interner;
  const auto a = dns::DomainName::must_parse("a.example.org");
  const auto b = dns::DomainName::must_parse("b.example.org");
  EXPECT_EQ(interner.intern(a), 0u);
  EXPECT_EQ(interner.intern(b), 1u);
  EXPECT_EQ(interner.intern(a), 0u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.name(1), b);
  EXPECT_EQ(interner.find(a), std::optional<DomainId>{0});
  EXPECT_FALSE(interner.find(dns::DomainName::must_parse("c.example.org")).has_value());
}

TEST(Similarity, HandComputedValues) {
  const DomainSet a = {1, 2, 3, 4};
  const DomainSet b = {3, 4, 5, 6, 7, 8};
  // intersection 2, union 8, sizes 4 and 6.
  EXPECT_DOUBLE_EQ(jaccard(a, b), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(dice(a, b), 2.0 * 2.0 / 10.0);
  EXPECT_DOUBLE_EQ(overlap(a, b), 2.0 / 4.0);
}

TEST(Similarity, IdenticalSetsScoreOne) {
  const DomainSet a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(dice(a, a), 1.0);
  EXPECT_DOUBLE_EQ(overlap(a, a), 1.0);
}

TEST(Similarity, DisjointSetsScoreZero) {
  const DomainSet a = {1, 2};
  const DomainSet b = {3, 4};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 0.0);
  EXPECT_DOUBLE_EQ(dice(a, b), 0.0);
  EXPECT_DOUBLE_EQ(overlap(a, b), 0.0);
}

TEST(Similarity, EmptySetsScoreZero) {
  EXPECT_DOUBLE_EQ(jaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(dice({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(overlap({}, {}), 0.0);
}

TEST(Similarity, OverlapSaturatesOnSubsets) {
  // The paper's reason for rejecting the overlap coefficient: a subset
  // relation forces the value to 1 regardless of the size difference.
  const DomainSet small = {4, 5};
  const DomainSet large = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(overlap(small, large), 1.0);
  EXPECT_LT(jaccard(small, large), 1.0);
  EXPECT_LT(dice(small, large), 1.0);
}

TEST(Similarity, MetricNames) {
  EXPECT_EQ(metric_name(Metric::Jaccard), "jaccard");
  EXPECT_EQ(metric_name(Metric::Dice), "dice");
  EXPECT_EQ(metric_name(Metric::Overlap), "overlap");
}

// Property sweep: bounds, symmetry, and the pairwise order relations
// Jaccard <= Dice <= Overlap on random sets.
class SimilarityProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimilarityProperty, InvariantsOnRandomSets) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> size_dist(0, 40);
  std::uniform_int_distribution<DomainId> id_dist(0, 60);

  const auto random_set = [&] {
    DomainSet set;
    for (int i = size_dist(rng); i > 0; --i) set.push_back(id_dist(rng));
    normalize(set);
    return set;
  };

  for (int i = 0; i < 2000; ++i) {
    const DomainSet a = random_set();
    const DomainSet b = random_set();
    for (const Metric metric : {Metric::Jaccard, Metric::Dice, Metric::Overlap}) {
      const double ab = similarity(metric, a, b);
      const double ba = similarity(metric, b, a);
      ASSERT_GE(ab, 0.0);
      ASSERT_LE(ab, 1.0);
      ASSERT_DOUBLE_EQ(ab, ba);  // symmetry
    }
    const double j = jaccard(a, b);
    const double d = dice(a, b);
    const double o = overlap(a, b);
    ASSERT_LE(j, d + 1e-12);  // Jaccard never exceeds Dice
    ASSERT_LE(d, o + 1e-12);  // Dice never exceeds overlap
    // Jaccard/Dice bijection: d = 2j / (1 + j).
    ASSERT_NEAR(d, 2.0 * j / (1.0 + j), 1e-9);
    // Value 1 iff sets are equal and non-empty (for Jaccard and Dice).
    if (!a.empty() || !b.empty()) {
      ASSERT_EQ(j == 1.0, a == b && !a.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperty, ::testing::Values(31u, 32u, 33u, 34u));

TEST(SimilarityFromSizes, SurvivesSizeSumOverflow) {
  // size_a + size_b wraps size_t here; the guarded double path must kick
  // in and return the mathematically correct (in-range) quotient instead
  // of dividing by a wrapped union.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();

  // Jaccard with both sets at max and full overlap: |∩| = max,
  // |∪| = max + max - max = max → exactly 1.
  EXPECT_DOUBLE_EQ(similarity_from_sizes(Metric::Jaccard, kMax, kMax, kMax), 1.0);
  // Disjoint sets at max: 0 / 2·max = 0.
  EXPECT_DOUBLE_EQ(similarity_from_sizes(Metric::Jaccard, 0, kMax, kMax), 0.0);
  // Half overlap: |∩| = max/2, |∪| = 1.5·max → 1/3 (double rounding slack).
  EXPECT_NEAR(similarity_from_sizes(Metric::Jaccard, kMax / 2, kMax, kMax), 1.0 / 3.0, 1e-9);

  // Dice denominator 2·max wraps to ~0 without the guard. Full overlap →
  // 2·max / 2·max = 1; disjoint → 0; half → 0.5.
  EXPECT_DOUBLE_EQ(similarity_from_sizes(Metric::Dice, kMax, kMax, kMax), 1.0);
  EXPECT_DOUBLE_EQ(similarity_from_sizes(Metric::Dice, 0, kMax, kMax), 0.0);
  EXPECT_NEAR(similarity_from_sizes(Metric::Dice, kMax / 2, kMax, kMax), 0.5, 1e-9);

  // Overlap never sums sizes — max inputs are fine as-is.
  EXPECT_DOUBLE_EQ(similarity_from_sizes(Metric::Overlap, kMax, kMax, kMax), 1.0);

  // Values stay within [0, 1] across the wrap boundary.
  for (const std::size_t b : {kMax, kMax - 1, kMax / 2 + 1}) {
    for (const Metric metric : {Metric::Jaccard, Metric::Dice, Metric::Overlap}) {
      const double value = similarity_from_sizes(metric, kMax / 4, kMax, b);
      EXPECT_GE(value, 0.0) << metric_name(metric);
      EXPECT_LE(value, 1.0) << metric_name(metric);
    }
  }
}

TEST(SimilarityFromSizes, InRangeSumsKeepBitExactIntegerPath) {
  // Just below the wrap boundary the original integer arithmetic must be
  // used: result identical to the directly computed quotient.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  const std::size_t a = kMax / 2;
  const std::size_t b = kMax - a;  // a + b == kMax exactly: no wrap
  const std::size_t shared = 1000;
  const double expected = static_cast<double>(shared) / static_cast<double>(a + b - shared);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(similarity_from_sizes(Metric::Jaccard, shared, a, b)),
            std::bit_cast<std::uint64_t>(expected));
}

}  // namespace
}  // namespace sp::core
