// Tests for LookupEngine: the full publish path (write_sibling_list CSV ->
// sibdb conversion -> mmap load -> engine) checked against a linear-scan
// oracle for every stored prefix and for random addresses inside and
// outside the covered space, across random seeds.
#include "serve/lookup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/sibling_list_io.h"
#include "core/worker_pool.h"
#include "serve/sibdb.h"

namespace sp::serve {
namespace {

Prefix p(const char* text) { return Prefix::must_parse(text); }

core::SiblingPair make_pair(const Prefix& v4, const Prefix& v6, double similarity,
                            std::uint32_t shared = 1) {
  core::SiblingPair pair;
  pair.v4 = v4;
  pair.v6 = v6;
  pair.similarity = similarity;
  pair.shared_domains = shared;
  pair.v4_domain_count = shared + 1;
  pair.v6_domain_count = shared + 2;
  return pair;
}

// The semantics the engine promises: the most specific stored prefix
// covering the query; among records sharing that prefix, the highest
// similarity, breaking ties by file order.
std::optional<SiblingAnswer> oracle(const SiblingDB& db, const IPAddress& address) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const Prefix stored =
        address.family() == Family::v4 ? db.v4_prefix(i) : db.v6_prefix(i);
    if (stored.family() != address.family() || !stored.contains(address)) continue;
    if (!best) {
      best = i;
      continue;
    }
    const Prefix current =
        address.family() == Family::v4 ? db.v4_prefix(*best) : db.v6_prefix(*best);
    if (stored.length() > current.length() ||
        (stored.length() == current.length() && db.similarity(i) > db.similarity(*best))) {
      best = i;
    }
  }
  if (!best) return std::nullopt;
  const std::size_t i = *best;
  SiblingAnswer answer;
  if (address.family() == Family::v4) {
    answer.matched = db.v4_prefix(i);
    answer.sibling = db.v6_prefix(i);
  } else {
    answer.matched = db.v6_prefix(i);
    answer.sibling = db.v4_prefix(i);
  }
  answer.similarity = db.similarity(i);
  answer.shared_domains = db.shared_domains(i);
  answer.v4_domain_count = db.v4_domain_count(i);
  answer.v6_domain_count = db.v6_domain_count(i);
  return answer;
}

TEST(ServeLookup, BasicBothFamilies) {
  std::vector<core::SiblingPair> pairs = {
      make_pair(p("20.1.0.0/16"), p("2620:100::/32"), 0.75),
      make_pair(p("20.1.2.0/24"), p("2620:100:1::/48"), 1.0),
  };
  const std::string path = ::testing::TempDir() + "/sp_lookup_basic.sibdb";
  ASSERT_TRUE(write_sibdb(path, pairs));
  const auto db = SiblingDB::load(path);
  ASSERT_TRUE(db.has_value());
  const LookupEngine engine(*db);
  EXPECT_EQ(engine.v4_prefix_count(), 2u);
  EXPECT_EQ(engine.v6_prefix_count(), 2u);

  const auto hit = engine.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->matched, p("20.1.2.0/24"));
  EXPECT_EQ(hit->sibling, p("2620:100:1::/48"));
  EXPECT_EQ(hit->similarity, 1.0);

  const auto v6_hit = engine.query(*IPAddress::from_string("2620:100:1::42"));
  ASSERT_TRUE(v6_hit.has_value());
  EXPECT_EQ(v6_hit->matched, p("2620:100:1::/48"));
  EXPECT_EQ(v6_hit->sibling, p("20.1.2.0/24"));

  const auto v6_shallow = engine.query(*IPAddress::from_string("2620:100:ffff::1"));
  ASSERT_TRUE(v6_shallow.has_value());
  EXPECT_EQ(v6_shallow->matched, p("2620:100::/32"));

  EXPECT_FALSE(engine.query(IPAddress(*IPv4Address::from_string("21.0.0.1"))).has_value());
  EXPECT_FALSE(engine.query(*IPAddress::from_string("2001:db8::1")).has_value());
}

TEST(ServeLookup, PrefixQueriesMatchMostSpecificContainer) {
  std::vector<core::SiblingPair> pairs = {
      make_pair(p("20.0.0.0/8"), p("2620::/24"), 0.25),
      make_pair(p("20.1.0.0/16"), p("2620:100::/32"), 0.75),
  };
  const std::string path = ::testing::TempDir() + "/sp_lookup_prefix.sibdb";
  ASSERT_TRUE(write_sibdb(path, pairs));
  const auto db = SiblingDB::load(path);
  ASSERT_TRUE(db.has_value());
  const LookupEngine engine(*db);

  // Exact match.
  auto hit = engine.query(p("20.1.0.0/16"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->matched, p("20.1.0.0/16"));
  // More specific query falls into the /16.
  hit = engine.query(p("20.1.2.0/24"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->matched, p("20.1.0.0/16"));
  // Less specific than anything stored: only the /8 contains a /7? No —
  // a /7 contains the /8, not vice versa, so it must miss.
  EXPECT_FALSE(engine.query(p("20.0.0.0/7")).has_value());
  // v6 side works too.
  hit = engine.query(p("2620:100:1::/48"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->matched, p("2620:100::/32"));
}

TEST(ServeLookup, DuplicatePrefixAnswersHighestSimilarityFirstInFile) {
  std::vector<core::SiblingPair> pairs = {
      make_pair(p("20.1.0.0/16"), p("2620:100::/32"), 0.5, 1),
      make_pair(p("20.1.0.0/16"), p("2620:200::/32"), 0.9, 2),  // winner
      make_pair(p("20.1.0.0/16"), p("2620:300::/32"), 0.9, 3),  // tie, later in file
      make_pair(p("20.1.0.0/16"), p("2620:400::/32"), 0.7, 4),
  };
  const std::string path = ::testing::TempDir() + "/sp_lookup_dup.sibdb";
  ASSERT_TRUE(write_sibdb(path, pairs));
  const auto db = SiblingDB::load(path);
  ASSERT_TRUE(db.has_value());
  const LookupEngine engine(*db);
  EXPECT_EQ(engine.v4_prefix_count(), 1u);

  const auto hit = engine.query(IPAddress(*IPv4Address::from_string("20.1.2.3")));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sibling, p("2620:200::/32"));
  EXPECT_EQ(hit->similarity, 0.9);
  EXPECT_EQ(hit->shared_domains, 2u);
}

// The acceptance property: CSV -> sibdb -> mmap -> engine agrees with the
// linear-scan oracle over the loaded records, for every stored prefix and
// for random probes inside and outside the covered space.
class ServeLookupProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ServeLookupProperty, FullPathMatchesLinearScanOracle) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<unsigned> v4_len(8, 32);
  std::uniform_int_distribution<unsigned> v6_len(24, 64);
  std::uniform_real_distribution<double> sim(0.0, 1.0);

  // Cluster v4 into 20.0.0.0/10 and v6 into 2620::/16 so overlaps happen.
  std::vector<core::SiblingPair> pairs;
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t v4_bits = 0x14000000u | (word(rng) & 0x003FFFFFu);
    IPv6Address::Bytes v6_bytes{};
    v6_bytes[0] = 0x26;
    v6_bytes[1] = 0x20;
    for (int b = 2; b < 9; ++b) v6_bytes[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(word(rng));
    pairs.push_back(make_pair(
        Prefix::of(IPAddress(IPv4Address(v4_bits)), v4_len(rng)),
        Prefix::of(IPAddress(IPv6Address(v6_bytes)), v6_len(rng)), sim(rng),
        1 + (word(rng) % 8)));
  }

  const std::string seed_tag = std::to_string(GetParam());
  const std::string csv_path = ::testing::TempDir() + "/sp_lookup_prop_" + seed_tag + ".csv";
  const std::string db_path = ::testing::TempDir() + "/sp_lookup_prop_" + seed_tag + ".sibdb";
  ASSERT_TRUE(core::write_sibling_list(csv_path, pairs));
  std::string error;
  ASSERT_TRUE(convert_sibling_list(csv_path, db_path, &error)) << error;
  const auto db = SiblingDB::load(db_path, &error);
  ASSERT_TRUE(db.has_value()) << error;
  ASSERT_EQ(db->size(), pairs.size());

  const LookupEngine engine(*db);
  core::WorkerPool pool(2);

  // Probe set: every stored prefix's network address (both families), plus
  // random addresses inside the clusters and far outside them.
  std::vector<IPAddress> probes;
  for (std::size_t i = 0; i < db->size(); ++i) {
    probes.push_back(db->v4_prefix(i).address());
    probes.push_back(db->v6_prefix(i).address());
  }
  for (int i = 0; i < 2000; ++i) {
    probes.emplace_back(IPv4Address(0x14000000u | (word(rng) & 0x003FFFFFu)));
    probes.emplace_back(IPv4Address(word(rng)));  // mostly outside 20/10
    IPv6Address::Bytes v6_bytes{};
    for (auto& b : v6_bytes) b = static_cast<std::uint8_t>(word(rng));
    v6_bytes[0] = 0x26;
    v6_bytes[1] = 0x20;
    probes.emplace_back(IPv6Address(v6_bytes));
  }

  const auto serial = engine.query_many(probes);
  const auto pooled = engine.query_many(probes, &pool);
  ASSERT_EQ(serial.size(), probes.size());
  ASSERT_EQ(pooled.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto expected = oracle(*db, probes[i]);
    ASSERT_EQ(serial[i], expected) << probes[i].to_string();
    ASSERT_EQ(pooled[i], serial[i]) << probes[i].to_string();
    ASSERT_EQ(engine.query(probes[i]), expected) << probes[i].to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeLookupProperty, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace sp::serve
