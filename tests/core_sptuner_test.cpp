// Tests for SP-Tuner-MS (Algorithm 1) and SP-Tuner-LS (Algorithm 2):
// hand-built refinement scenarios plus property sweeps for the tuning
// invariants (similarity never decreases, shared domains never lost,
// thresholds respected, outputs stay inside their inputs).
#include "core/sptuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "test_fixtures.h"

namespace sp::core {
namespace {

using testsupport::ScenarioBuilder;

Prefix p(const char* text) { return Prefix::must_parse(text); }

// An org announcing one v4 /24 whose two /25 halves host two distinct
// service groups, matching two separate v6 /48s. Detection on announced
// prefixes yields imperfect pairs; splitting the /24 yields two perfect
// ones.
ScenarioBuilder split_scenario() {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("2620:100::/48", 2).announce("2620:200::/48", 3);
  // Group X in 20.1.1.0/25 ↔ 2620:100::/48.
  builder.host("x1.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("x2.example.org", {"20.1.1.2"}, {"2620:100::2"});
  // Group Y in 20.1.1.128/25 ↔ 2620:200::/48.
  builder.host("y1.example.org", {"20.1.1.129"}, {"2620:200::1"});
  builder.host("y2.example.org", {"20.1.1.130"}, {"2620:200::2"});
  return builder;
}

TEST(SpTunerMs, SplitsMixedPrefixIntoPerfectPairs) {
  const auto corpus = split_scenario().corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  // Announced-prefix detection: (v4 /24, each /48) with jaccard 2/4.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 0.5);

  const SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto result = tuner.tune_all(pairs);

  // Every output pair must be perfect now.
  ASSERT_FALSE(result.pairs.empty());
  for (const auto& pair : result.pairs) {
    EXPECT_DOUBLE_EQ(pair.similarity, 1.0) << pair.v4.to_string() << " " << pair.v6.to_string();
  }
  EXPECT_EQ(result.changed_count, 2u);

  // The X group lives under 20.1.1.0/25, the Y group under 20.1.1.128/25.
  bool saw_x = false;
  bool saw_y = false;
  for (const auto& pair : result.pairs) {
    if (p("20.1.1.0/25").contains(pair.v4) && p("2620:100::/48").contains(pair.v6)) {
      saw_x = true;
    }
    if (p("20.1.1.128/25").contains(pair.v4) && p("2620:200::/48").contains(pair.v6)) {
      saw_y = true;
    }
  }
  EXPECT_TRUE(saw_x);
  EXPECT_TRUE(saw_y);
}

TEST(SpTunerMs, BranchTrackingLosesNoSharedDomain) {
  const auto corpus = split_scenario().corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  const SpTunerMs tuner(corpus, {});

  // Per-pair invariant: every domain *shared* within a pair survives its
  // tuning; across the whole pair list, all four domains stay covered.
  const auto collect_shared = [&corpus](const std::vector<SiblingPair>& tuned) {
    DomainSet covered;
    for (const auto& pair : tuned) {
      const DomainSet shared = set_intersection(corpus.domains_within(pair.v4),
                                                corpus.domains_within(pair.v6));
      covered.insert(covered.end(), shared.begin(), shared.end());
    }
    normalize(covered);
    return covered;
  };

  // Pair 0 shares exactly the X group (2 domains).
  EXPECT_EQ(collect_shared(tuner.tune_pair(pairs[0])).size(), 2u);

  DomainSet all_covered;
  for (const auto& pair : pairs) {
    const DomainSet covered = collect_shared(tuner.tune_pair(pair));
    all_covered.insert(all_covered.end(), covered.begin(), covered.end());
  }
  normalize(all_covered);
  EXPECT_EQ(all_covered.size(), 4u);
}

TEST(SpTunerMs, DescendsToThresholdOnPlateau) {
  // A single-domain pair stays at jaccard 1 all the way down, so tuning
  // must shrink it exactly to the thresholds (the paper's 86.95% of pairs
  // landing on /28-/96).
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("2620:100::/48", 2);
  builder.host("solo.example.org", {"20.1.1.77"}, {"2620:100::77"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);

  const SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto tuned = tuner.tune_pair(pairs[0]);
  ASSERT_EQ(tuned.size(), 1u);
  EXPECT_EQ(tuned[0].v4.length(), 28u);
  EXPECT_EQ(tuned[0].v6.length(), 96u);
  EXPECT_DOUBLE_EQ(tuned[0].similarity, 1.0);
  EXPECT_TRUE(pairs[0].v4.contains(tuned[0].v4));
  EXPECT_TRUE(pairs[0].v6.contains(tuned[0].v6));
  EXPECT_TRUE(tuned[0].v4.contains(IPAddress::must_parse("20.1.1.77")));
  EXPECT_TRUE(tuned[0].v6.contains(IPAddress::must_parse("2620:100::77")));
}

TEST(SpTunerMs, RoutableThresholdStopsAt24And48) {
  ScenarioBuilder builder;
  builder.announce("20.1.0.0/16", 1).announce("2620:100::/32", 2);
  builder.host("solo.example.org", {"20.1.1.77"}, {"2620:100::77"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);

  const SpTunerMs tuner(corpus, {.v4_threshold = 24, .v6_threshold = 48});
  const auto tuned = tuner.tune_pair(pairs[0]);
  ASSERT_EQ(tuned.size(), 1u);
  EXPECT_EQ(tuned[0].v4.length(), 24u);
  EXPECT_EQ(tuned[0].v6.length(), 48u);
}

TEST(SpTunerMs, InputMoreSpecificThanThresholdIsKept) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/30", 1).announce("2620:100::/112", 2);
  builder.host("tiny.example.org", {"20.1.1.1"}, {"2620:100::1"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);

  const SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto tuned = tuner.tune_pair(pairs[0]);
  ASSERT_EQ(tuned.size(), 1u);
  // Already deeper than the thresholds: nothing to do.
  EXPECT_EQ(tuned[0].v4, p("20.1.1.0/30"));
  EXPECT_EQ(tuned[0].v6, p("2620:100::/112"));
}

TEST(SpTunerMs, TuneAllCountsChangedPairs) {
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/28", 1).announce("2620:100::/96", 2);
  builder.host("fixed.example.org", {"20.1.1.1"}, {"2620:100::1"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  const SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto result = tuner.tune_all(pairs);
  EXPECT_EQ(result.input_count, 1u);
  EXPECT_EQ(result.changed_count, 0u);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], pairs[0]);
}

// ---------------------------------------------------------------------------
// SP-Tuner-LS
// ---------------------------------------------------------------------------

TEST(SpTunerLs, MergesFragmentedAnnouncementsWhenBeneficial) {
  // The org announces its /24 as two /25s; domains of one service group
  // span both halves, so each /25 pair has jaccard 1/2 against the v6 /48
  // that hosts both domains. The covering /24 (same origin AS) scores 1.
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/25", 1).announce("20.1.1.128/25", 1);
  builder.announce("20.1.1.0/24", 1);  // covering announcement, same origin
  builder.announce("2620:100::/48", 2);
  builder.host("a.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("b.example.org", {"20.1.1.129"}, {"2620:100::2"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);

  const SiblingPair* half_pair = nullptr;
  for (const auto& pair : pairs) {
    if (pair.v4 == p("20.1.1.0/25")) half_pair = &pair;
  }
  ASSERT_NE(half_pair, nullptr);
  EXPECT_DOUBLE_EQ(half_pair->similarity, 0.5);

  const SpTunerLs tuner(corpus, builder.rib(), {.v4_levels_up = 1, .v6_levels_up = 4});
  const auto tuned = tuner.tune_pair(*half_pair);
  EXPECT_EQ(tuned.v4, p("20.1.1.0/24"));
  EXPECT_EQ(tuned.v6, p("2620:100::/48"));
  EXPECT_DOUBLE_EQ(tuned.similarity, 1.0);
}

TEST(SpTunerLs, StopsAtOriginAsChange) {
  // Same layout, but the covering /24 is originated by a different AS:
  // Algorithm 2's IsASnumChange check forbids the merge.
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/25", 1).announce("20.1.1.128/25", 1);
  builder.announce("20.1.1.0/24", 99);  // different origin
  builder.announce("2620:100::/48", 2);
  builder.host("a.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("b.example.org", {"20.1.1.129"}, {"2620:100::2"});
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);

  const SiblingPair* half_pair = nullptr;
  for (const auto& pair : pairs) {
    if (pair.v4 == p("20.1.1.0/25")) half_pair = &pair;
  }
  ASSERT_NE(half_pair, nullptr);

  const SpTunerLs tuner(corpus, builder.rib(), {});
  const auto tuned = tuner.tune_pair(*half_pair);
  EXPECT_EQ(tuned.v4, half_pair->v4);  // unchanged
  EXPECT_EQ(tuned.v6, half_pair->v6);
}

TEST(SpTunerLs, NoImprovementReturnsInput) {
  // The paper's Figure 22 finding: going less specific usually pulls in
  // unrelated domains and does not help.
  ScenarioBuilder builder;
  builder.announce("20.1.1.0/24", 1).announce("20.1.0.0/16", 1);
  builder.announce("2620:100::/48", 2);
  builder.host("a.example.org", {"20.1.1.1"}, {"2620:100::1"});
  builder.host("unrelated.example.org", {"20.1.2.1"}, {});  // v4-only noise... not DS
  const auto corpus = builder.corpus();
  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_EQ(pairs.size(), 1u);

  const SpTunerLs tuner(corpus, builder.rib(), {});
  const auto result = tuner.tune_all(pairs);
  EXPECT_EQ(result.changed_count, 0u);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].v4, pairs[0].v4);
}

// ---------------------------------------------------------------------------
// Property sweep: tuning invariants on randomized corpora.
// ---------------------------------------------------------------------------

class SpTunerProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SpTunerProperty, InvariantsOnRandomCorpora) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> org_count_dist(2, 6);
  std::uniform_int_distribution<int> domain_count_dist(1, 8);
  std::uniform_int_distribution<int> offset_dist(1, 200);
  std::uniform_int_distribution<int> group_dist(0, 3);

  for (int round = 0; round < 20; ++round) {
    ScenarioBuilder builder;
    const int orgs = org_count_dist(rng);
    for (int org = 0; org < orgs; ++org) {
      const std::string v4_base = "20." + std::to_string(org + 1) + ".0.0/16";
      const std::string v6_base = "2620:" + std::to_string(org + 1) + "00::/32";
      builder.announce(v4_base, 1000 + static_cast<std::uint32_t>(org));
      builder.announce(v6_base, 2000 + static_cast<std::uint32_t>(org));
      const int domains = domain_count_dist(rng);
      for (int d = 0; d < domains; ++d) {
        // Cluster addresses into /24 (v4) and /48 (v6) chunks by group, so
        // refinement has structure to find.
        const int group = group_dist(rng);
        const std::string v4 = "20." + std::to_string(org + 1) + "." +
                               std::to_string(group) + "." + std::to_string(offset_dist(rng));
        const std::string v6 = "2620:" + std::to_string(org + 1) + "00:" +
                               std::to_string(group) + "::" + std::to_string(offset_dist(rng));
        const std::string name = "d" + std::to_string(org) + "-" + std::to_string(d) +
                                 ".example.org";
        builder.host(name, {v4.c_str()}, {v6.c_str()});
      }
    }

    const auto corpus = builder.corpus();
    const auto pairs = detect_sibling_prefixes(corpus);
    const SpTunerConfig config{.v4_threshold = 28, .v6_threshold = 96};
    const SpTunerMs tuner(corpus, config);

    for (const auto& pair : pairs) {
      const auto tuned = tuner.tune_pair(pair);
      ASSERT_FALSE(tuned.empty());

      double best = 0.0;
      DomainSet shared_covered;
      for (const auto& out : tuned) {
        // Outputs stay inside the input pair.
        ASSERT_TRUE(pair.v4.contains(out.v4))
            << pair.v4.to_string() << " !contains " << out.v4.to_string();
        ASSERT_TRUE(pair.v6.contains(out.v6));
        // Thresholds respected (unless the input was already deeper).
        ASSERT_LE(out.v4.length(), std::max(config.v4_threshold, pair.v4.length()));
        ASSERT_LE(out.v6.length(), std::max(config.v6_threshold, pair.v6.length()));
        // Similarity recomputation is consistent.
        const DomainSet d4 = corpus.domains_within(out.v4);
        const DomainSet d6 = corpus.domains_within(out.v6);
        ASSERT_NEAR(out.similarity, jaccard(d4, d6), 1e-9);
        best = std::max(best, out.similarity);
        const DomainSet shared = set_intersection(d4, d6);
        shared_covered.insert(shared_covered.end(), shared.begin(), shared.end());
      }
      // Tuning never made the best pair worse.
      ASSERT_GE(best + 1e-9, pair.similarity);

      // Every shared domain of the input pair survives in some output.
      normalize(shared_covered);
      const DomainSet input_shared =
          set_intersection(corpus.domains_within(pair.v4), corpus.domains_within(pair.v6));
      for (const DomainId id : input_shared) {
        ASSERT_TRUE(contains_id(shared_covered, id))
            << "lost domain " << corpus.interner().name(id).text();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpTunerProperty, ::testing::Values(41u, 42u, 43u, 44u, 45u));

}  // namespace
}  // namespace sp::core
