// RunManifest JSON round-trip over non-ASCII content. The writer emits
// raw UTF-8 bytes (escaping only quotes, backslashes and control
// characters); the strict parser accepts those raw bytes but rejects
// \uXXXX escapes above 0x7F — it has no UTF-8 encoder, so accepting them
// would silently mangle the string. A manifest naming stages or paths in
// any language must survive save → load byte-for-byte.
#include "pipeline/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace sp::pipeline {
namespace {

RunManifest non_ascii_manifest() {
  RunManifest manifest;
  manifest.campaign = "längsschnitt — 縦断 キャンペーン";
  manifest.config.emplace_back("répertoire", "./données/mañana");
  manifest.config.emplace_back("seed", "42");
  StageRecord stage;
  stage.name = "detect[2024-09] (früh)";
  stage.status = "done";
  stage.inputs_hash = 0x0123456789abcdefULL;
  stage.outputs.push_back({"pärchen-2024-09.csv", 0xfedcba9876543210ULL});
  stage.outputs.push_back({"シブリング.sibdb", 7});
  stage.wall_ms = 12.5;
  stage.peak_rss_kb = 1024;
  manifest.stages.push_back(stage);
  StageRecord failed;
  failed.name = "export[2024-10]";
  failed.status = "failed";
  failed.error = "датотека не постоји: snapshot-2024-10.csv";
  manifest.stages.push_back(failed);
  return manifest;
}

TEST(PipelineManifestUtf8, InMemoryJsonRoundTrip) {
  const RunManifest manifest = non_ascii_manifest();
  const std::string json = manifest.to_json();
  // Raw UTF-8 bytes in the document, not \u escapes.
  EXPECT_NE(json.find("縦断"), std::string::npos);
  EXPECT_NE(json.find("pärchen"), std::string::npos);
  EXPECT_EQ(json.find("\\u7e26"), std::string::npos);

  std::string error;
  const auto parsed = RunManifest::from_json(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->campaign, manifest.campaign);
  EXPECT_EQ(parsed->config, manifest.config);
  EXPECT_EQ(parsed->stages, manifest.stages);
}

TEST(PipelineManifestUtf8, FileRoundTrip) {
  const RunManifest manifest = non_ascii_manifest();
  const std::string path = ::testing::TempDir() + "manifest_utf8_test.json";
  std::string error;
  ASSERT_TRUE(manifest.save(path, &error)) << error;
  const auto loaded = RunManifest::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->campaign, manifest.campaign);
  EXPECT_EQ(loaded->stages, manifest.stages);
  std::remove(path.c_str());
}

TEST(PipelineManifestUtf8, AsciiUnicodeEscapesStillParse) {
  // \u up to 0x7F is plain ASCII and accepted.
  const std::string json =
      "{\"version\":1,\"campaign\":\"a\\u0041b\",\"config\":{},\"stages\":[]}";
  const auto parsed = RunManifest::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->campaign, "aAb");
}

TEST(PipelineManifestUtf8, NonAsciiUnicodeEscapeRejected) {
  // The \\u00e9 escape (for 'é') would need a UTF-8 encoder the strict
  // parser does not have; it must reject, not mis-decode.
  const std::string json =
      "{\"version\":1,\"campaign\":\"caf\\u00e9\",\"config\":{},\"stages\":[]}";
  std::string error;
  const auto parsed = RunManifest::from_json(json, &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sp::pipeline
