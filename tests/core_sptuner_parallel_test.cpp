// Tests for the multi-threaded SP-Tuner: exact agreement with the serial
// implementation on the synthetic workload, at several thread counts.
#include <gtest/gtest.h>

#include "core/sptuner.h"
#include "synth/universe.h"

namespace sp::core {
namespace {

class SpTunerParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpTunerParallel, MatchesSerialExactly) {
  synth::SynthConfig config;
  config.organization_count = 250;
  config.months = 3;
  config.monitoring_v4_prefixes = 10;
  config.monitoring_v6_prefixes = 5;
  const synth::SyntheticInternet universe(config);
  const auto corpus =
      DualStackCorpus::build(universe.snapshot_at(universe.month_count() - 1),
                             universe.rib());
  const auto pairs = detect_sibling_prefixes(corpus);
  ASSERT_GT(pairs.size(), 100u);

  const SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto serial = tuner.tune_all(pairs);
  const auto parallel = tuner.tune_all_parallel(pairs, GetParam());

  EXPECT_EQ(parallel.input_count, serial.input_count);
  EXPECT_EQ(parallel.changed_count, serial.changed_count);
  ASSERT_EQ(parallel.pairs.size(), serial.pairs.size());
  for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
    EXPECT_EQ(parallel.pairs[i], serial.pairs[i]);
    EXPECT_DOUBLE_EQ(parallel.pairs[i].similarity, serial.pairs[i].similarity);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpTunerParallel, ::testing::Values(0u, 1u, 2u, 7u));

TEST(SpTunerParallelEdge, EmptyInput) {
  synth::SynthConfig config;
  config.organization_count = 30;
  config.months = 2;
  const synth::SyntheticInternet universe(config);
  const auto corpus = DualStackCorpus::build(universe.snapshot_at(0), universe.rib());
  const SpTunerMs tuner(corpus, {});
  const auto result = tuner.tune_all_parallel({}, 4);
  EXPECT_EQ(result.input_count, 0u);
  EXPECT_TRUE(result.pairs.empty());
}

}  // namespace
}  // namespace sp::core
