// Tests for SOA records: wire round-trip and RFC 2308 negative answers.
#include <gtest/gtest.h>

#include "dns/zone.h"

namespace sp::dns {
namespace {

DomainName n(const char* text) { return DomainName::must_parse(text); }

SoaData example_soa() {
  return SoaData{.mname = n("ns1.example.org"),
                 .rname = n("hostmaster.example.org"),
                 .serial = 2024091101,
                 .refresh = 7200,
                 .retry = 900,
                 .expire = 1209600,
                 .minimum = 300};
}

TEST(DnsSoa, WireRoundTrip) {
  Message message;
  message.header.qr = true;
  message.authorities.push_back(ResourceRecord::soa(n("example.org"), example_soa()));
  std::string error;
  const auto decoded = decode_message(encode_message(message), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(*decoded, message);
  const auto& soa = std::get<SoaData>(decoded->authorities[0].data);
  EXPECT_EQ(soa.serial, 2024091101u);
  EXPECT_EQ(soa.mname, n("ns1.example.org"));
}

TEST(DnsSoa, NamesInsideSoaAreCompressed) {
  // The SOA's mname/rname share the zone suffix with the owner name; with
  // compression the encoding must be well below the uncompressed size.
  Message message;
  message.authorities.push_back(ResourceRecord::soa(n("example.org"), example_soa()));
  const auto wire = encode_message(message);
  // Uncompressed: 13 (owner) + 17 + 24 names; compressed replaces the
  // repeated "example.org" suffixes with 2-byte pointers.
  EXPECT_LT(wire.size(), 12u + 13u + 10u + 20u + (4u + 2u) + (11u + 2u) + 20u + 10u);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(DnsSoa, NxdomainCarriesClosestEnclosingSoa) {
  ZoneDatabase zones;
  zones.add(ResourceRecord::soa(n("example.org"), example_soa()));
  zones.add(ResourceRecord::a(n("www.example.org"), *IPv4Address::from_string("20.1.1.1")));

  Message query;
  query.questions.push_back({n("missing.deep.example.org"), RecordType::A});
  const auto response = zones.serve(query);
  EXPECT_EQ(response.header.rcode, 3);
  ASSERT_EQ(response.authorities.size(), 1u);
  EXPECT_EQ(response.authorities[0].type, RecordType::SOA);
  EXPECT_EQ(response.authorities[0].name, n("example.org"));
  // And the negative response survives the wire.
  const auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, response);
}

TEST(DnsSoa, NxdomainWithoutZoneSoaHasEmptyAuthority) {
  ZoneDatabase zones;
  zones.add(ResourceRecord::a(n("www.example.org"), *IPv4Address::from_string("20.1.1.1")));
  Message query;
  query.questions.push_back({n("missing.other.net"), RecordType::A});
  const auto response = zones.serve(query);
  EXPECT_EQ(response.header.rcode, 3);
  EXPECT_TRUE(response.authorities.empty());
}

TEST(DnsSoa, ExplicitSoaQuery) {
  ZoneDatabase zones;
  zones.add(ResourceRecord::soa(n("example.org"), example_soa()));
  Message query;
  query.questions.push_back({n("example.org"), RecordType::SOA});
  const auto response = zones.serve(query);
  EXPECT_EQ(response.header.rcode, 0);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type, RecordType::SOA);
}

}  // namespace
}  // namespace sp::dns
