// Fuzz target: sp::io::parse_csv must reject malformed input with
// nullopt — never crash — and whatever it accepts must survive a
// format → parse round trip unchanged (the published-artifact
// invariant: re-exporting a parsed list is lossless).
#include <cstdint>
#include <string>
#include <string_view>

#include "io/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto rows = sp::io::parse_csv(text);
  if (!rows) return 0;

  std::string formatted;
  for (const sp::io::CsvRow& row : *rows) {
    formatted += sp::io::format_csv_row(row);
    formatted += '\n';
  }
  const auto again = sp::io::parse_csv(formatted);
  if (!again || *again != *rows) __builtin_trap();
  return 0;
}
