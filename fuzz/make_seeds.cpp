// Generates the checked-in seed corpora under fuzz/corpus/<target>/.
// Seeds come from the project's own writers (format_csv_row,
// encode_dump, RunManifest::to_json, write_sibdb) plus a few handwritten
// edge cases, so every corpus starts on the accept path and mutation
// explores the reject boundary from valid inputs outward. Deterministic:
// re-running over an existing corpus rewrites identical bytes.
//
// Usage: sp_make_fuzz_seeds <corpus root>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/corrupt.h"
#include "core/detect.h"
#include "io/csv.h"
#include "mrt/codec.h"
#include "net/protocol.h"
#include "netbase/prefix.h"
#include "pipeline/manifest.h"
#include "serve/sibdb.h"
#include "sketch/signature.h"
#include "stream/spdl.h"
#include "synth/universe.h"

namespace {

namespace fs = std::filesystem;

bool write_seed(const fs::path& dir, const std::string& name, const void* data,
                std::size_t size) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "make_seeds: cannot write %s\n", (dir / name).c_str());
    return false;
  }
  return true;
}

bool write_seed(const fs::path& dir, const std::string& name, const std::string& text) {
  return write_seed(dir, name, text.data(), text.size());
}

bool write_seed(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  return write_seed(dir, name, bytes.data(), bytes.size());
}

std::string csv_document() {
  std::string text;
  const std::vector<sp::io::CsvRow> rows = {
      {"v4_prefix", "v6_prefix", "similarity"},
      {"192.0.2.0/24", "2001:db8::/32", "0.9375"},
      {"plain", "has,comma", "has \"quote\""},
      {"multi\nline", "", "trailing"},
  };
  for (const sp::io::CsvRow& row : rows) {
    text += sp::io::format_csv_row(row);
    text += '\n';
  }
  return text;
}

bool make_csv_seeds(const fs::path& root) {
  const std::string document = csv_document();
  for (const char* target : {"parse_csv", "csv_stream"}) {
    if (!write_seed(root / target, "list.csv", document)) return false;
    if (!write_seed(root / target, "empty_field.csv", std::string("a,,c\n"))) return false;
    if (!write_seed(root / target, "crlf.csv", std::string("a,b\r\nc,d\r\n"))) return false;
    if (!write_seed(root / target, "unbalanced.csv", std::string("a,\"open\n"))) return false;
  }
  return true;
}

bool make_mrt_seeds(const fs::path& root) {
  const sp::synth::SyntheticInternet internet;
  if (!write_seed(root / "mrt_codec", "rib.mrt", sp::mrt::encode_dump(internet.mrt_dump()))) {
    return false;
  }
  if (!write_seed(root / "mrt_codec", "updates.mrt",
                  sp::mrt::encode_dump(internet.bgp4mp_updates_at(1)))) {
    return false;
  }
  const std::uint8_t truncated[] = {0x00, 0x00, 0x00, 0x00, 0x00, 0x0d};
  return write_seed(root / "mrt_codec", "truncated.mrt", truncated, sizeof(truncated));
}

bool make_manifest_seeds(const fs::path& root) {
  sp::pipeline::RunManifest manifest;
  manifest.campaign = "fuzz-seed";
  manifest.config = {{"months", "12"}, {"threshold", "0.5"}};
  sp::pipeline::StageRecord stage;
  stage.name = "detect";
  stage.status = "done";
  stage.inputs_hash = 0x1234abcd5678ef00ULL;
  stage.outputs.push_back({"siblings.csv", 0xfeedface0badf00dULL});
  stage.wall_ms = 12.5;
  manifest.stages.push_back(stage);
  if (!write_seed(root / "manifest_json", "run.json", manifest.to_json())) return false;

  const sp::pipeline::RunManifest empty;
  if (!write_seed(root / "manifest_json", "empty.json", empty.to_json())) return false;
  return write_seed(root / "manifest_json", "not_json.json", std::string("{\"version\":"));
}

bool make_sibdb_seeds(const fs::path& root) {
  std::error_code ec;
  fs::create_directories(root / "sibdb_open", ec);

  const std::vector<sp::core::SiblingPair> pairs = {
      {sp::Prefix::must_parse("192.0.2.0/24"), sp::Prefix::must_parse("2001:db8:1::/48"), 0.875,
       7, 8, 9},
      {sp::Prefix::must_parse("198.51.100.0/24"), sp::Prefix::must_parse("2001:db8:2::/48"), 0.5,
       3, 6, 6},
  };
  const std::string valid = (root / "sibdb_open" / "valid.sibdb").string();
  if (!sp::serve::write_sibdb(valid, pairs, "fuzz seed corpus")) {
    std::fprintf(stderr, "make_seeds: write_sibdb failed\n");
    return false;
  }
  const std::string empty = (root / "sibdb_open" / "empty.sibdb").string();
  if (!sp::serve::write_sibdb(empty, {}, "")) return false;

  // A header-sized prefix of the valid file: parses the magic, fails the
  // declared-size check.
  std::ifstream in(valid, std::ios::binary);
  std::vector<char> head(128);
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  if (!write_seed(root / "sibdb_open", "truncated.sibdb", head.data(),
                  static_cast<std::size_t>(in.gcount()))) {
    return false;
  }

  // The soak harness's corrupt-swap variants (sp::chaos): the corpus
  // covers exactly the damage the chaos RELOAD churn throws at a live
  // server, so fuzzing and soaking exercise the same reject boundary.
  const auto loaded = sp::serve::SiblingDB::load(valid);
  if (!loaded) return false;
  for (const sp::chaos::CorruptKind kind : sp::chaos::kAllCorruptKinds) {
    const std::string name =
        std::string("chaos_") + std::string(sp::chaos::to_string(kind)) + ".sibdb";
    if (!write_seed(root / "sibdb_open", name,
                    sp::chaos::corrupt_image(loaded->raw_bytes(), kind, /*seed=*/1))) {
      return false;
    }
  }
  return true;
}

bool make_net_frame_seeds(const fs::path& root) {
  // Seeds lead with the chunk-pattern selector byte the harness strips;
  // the wire bytes come from the project's own encoders so mutation
  // starts from every verb's accept path.
  const auto seed = [&](const std::string& name, std::uint8_t pattern,
                        const std::vector<std::uint8_t>& wire) {
    std::vector<std::uint8_t> input;
    input.push_back(pattern);
    input.insert(input.end(), wire.begin(), wire.end());
    return write_seed(root / "net_frame", name, input);
  };

  std::vector<std::uint8_t> pipelined;
  sp::net::QueryRequest query;
  query.request_id = 7;
  query.keys = {sp::Prefix::must_parse("192.0.2.1/32"), sp::Prefix::must_parse("2001:db8::/32")};
  sp::net::encode_query_request(pipelined, query);
  sp::net::encode_reload_request(pipelined, {});
  sp::net::encode_stats_request(pipelined);
  sp::net::encode_metrics_request(pipelined);
  if (!seed("pipeline.bin", 0, pipelined)) return false;

  std::vector<std::uint8_t> responses;
  sp::net::QueryResponse answer;
  answer.request_id = 7;
  answer.generation = 3;
  answer.answers.push_back(std::nullopt);
  sp::net::encode_query_response(responses, answer);
  sp::net::encode_reload_response(responses, {true, 4, ""});
  sp::net::encode_stats_response(responses, sp::net::StatsPayload{});
  sp::net::encode_error(responses, "bad");
  if (!seed("responses.bin", 1, responses)) return false;

  // The reject boundary: an oversized declared length must poison both
  // decoders identically.
  std::vector<std::uint8_t> oversized;
  oversized.push_back(0x01);
  sp::net::put_u32(oversized, 0x7fffffff);
  if (!seed("oversized.bin", 2, oversized)) return false;

  // A split header: the whole stream is a partial frame, zero yields.
  return seed("partial.bin", 3, {0x01, 0x03});
}

bool make_sketch_sig_seeds(const fs::path& root) {
  // A valid "SPSK" blob from the project's own serializer: mixed small
  // (complete) and over-k (truncated) signatures on both families.
  std::unordered_map<sp::Prefix, sp::core::DomainSet> v4_sets;
  std::unordered_map<sp::Prefix, sp::core::DomainSet> v6_sets;
  for (sp::core::DomainId element = 0; element < 10; ++element) {
    v4_sets[sp::Prefix::must_parse("192.0.2.0/24")].push_back(element);
    v6_sets[sp::Prefix::must_parse("2001:db8::/32")].push_back(element);
  }
  for (sp::core::DomainId element = 0; element < 200; ++element) {
    v4_sets[sp::Prefix::must_parse("198.51.100.0/24")].push_back(element);
    v6_sets[sp::Prefix::must_parse("2001:db8:1::/48")].push_back(element % 40);
  }
  for (auto* sets : {&v4_sets, &v6_sets}) {
    for (auto& [prefix, set] : *sets) sp::core::normalize(set);
  }
  const auto index = sp::core::DetectIndex::build(v4_sets, v6_sets);
  const sp::sketch::SketchParams params{.k = 16};
  const std::string v4_blob =
      sp::sketch::SignatureSet::build(index.v4, params).serialize();
  const std::string v6_blob =
      sp::sketch::SignatureSet::build(index.v6, params).serialize();
  if (!write_seed(root / "sketch_sig", "v4.spsk", v4_blob)) return false;
  if (!write_seed(root / "sketch_sig", "v6.spsk", v6_blob)) return false;

  // The reject boundary: a truncated blob and a corrupt hash ordering.
  if (!write_seed(root / "sketch_sig", "truncated.spsk",
                  v4_blob.substr(0, v4_blob.size() / 2))) {
    return false;
  }
  std::string corrupt = v4_blob;
  // Zero the final hash (8 little-endian bytes): 0 can never follow a
  // strictly ascending run, so this seed sits exactly on the reject path.
  for (std::size_t i = corrupt.size() - 8; i < corrupt.size(); ++i) corrupt[i] = 0;
  return write_seed(root / "sketch_sig", "corrupt.spsk", corrupt);
}

bool make_stream_delta_seeds(const fs::path& root) {
  // A real delta from the project's own differ: two snapshots with a
  // removal, a changed record, and an insertion between them.
  std::error_code ec;
  fs::create_directories(root / "stream_delta", ec);
  const std::vector<sp::core::SiblingPair> base_pairs = {
      {sp::Prefix::must_parse("192.0.2.0/24"), sp::Prefix::must_parse("2001:db8:1::/48"), 0.875,
       7, 8, 9},
      {sp::Prefix::must_parse("198.51.100.0/24"), sp::Prefix::must_parse("2001:db8:2::/48"), 0.5,
       3, 6, 6},
  };
  const std::vector<sp::core::SiblingPair> target_pairs = {
      {sp::Prefix::must_parse("192.0.2.0/24"), sp::Prefix::must_parse("2001:db8:1::/48"), 0.75,
       6, 8, 9},
      {sp::Prefix::must_parse("203.0.113.0/24"), sp::Prefix::must_parse("2001:db8:3::/48"), 1.0,
       4, 4, 4},
  };
  const std::string base_path = (root / "stream_delta" / "base.sibdb.tmp").string();
  const std::string target_path = (root / "stream_delta" / "target.sibdb.tmp").string();
  if (!sp::serve::write_sibdb(base_path, base_pairs, "fuzz seed base") ||
      !sp::serve::write_sibdb(target_path, target_pairs, "fuzz seed target")) {
    std::fprintf(stderr, "make_seeds: write_sibdb failed\n");
    return false;
  }
  const auto base = sp::serve::SiblingDB::load(base_path);
  const auto target = sp::serve::SiblingDB::load(target_path);
  fs::remove(base_path, ec);
  fs::remove(target_path, ec);
  if (!base || !target) return false;
  const auto delta = sp::stream::diff_sibdb(*base, *target);
  if (!delta) return false;
  if (!write_seed(root / "stream_delta", "month.spdl", sp::stream::encode_spdl(*delta))) {
    return false;
  }

  // The identity delta: header-only image (both sections empty).
  sp::stream::SibdbDelta identity;
  identity.label = "fuzz seed target";
  identity.base_hash = delta->base_hash;
  identity.base_pair_count = delta->base_pair_count;
  identity.result_hash = delta->base_hash;
  if (!write_seed(root / "stream_delta", "identity.spdl",
                  sp::stream::encode_spdl(identity))) {
    return false;
  }

  // The reject boundary: a truncated image (checksum can't verify) and a
  // version from the future.
  const std::vector<std::uint8_t> image = sp::stream::encode_spdl(*delta);
  if (!write_seed(root / "stream_delta", "truncated.spdl",
                  std::vector<std::uint8_t>(image.begin(), image.begin() + 64))) {
    return false;
  }
  std::vector<std::uint8_t> future = image;
  future[8] = 0xff;  // version field, little-endian u32 at offset 8
  if (!write_seed(root / "stream_delta", "future_version.spdl", future)) return false;

  // The soak harness's corrupt-swap variants (sp::chaos), mirroring the
  // sibdb_open corpus: same seeded damage, applied to the delta format.
  for (const sp::chaos::CorruptKind kind : sp::chaos::kAllCorruptKinds) {
    const std::string name =
        std::string("chaos_") + std::string(sp::chaos::to_string(kind)) + ".spdl";
    if (!write_seed(root / "stream_delta", name,
                    sp::chaos::corrupt_image(image, kind, /*seed=*/1))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  if (!make_csv_seeds(root) || !make_mrt_seeds(root) || !make_manifest_seeds(root) ||
      !make_sibdb_seeds(root) || !make_net_frame_seeds(root) || !make_sketch_sig_seeds(root) ||
      !make_stream_delta_seeds(root)) {
    return 1;
  }
  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}
