// Fuzz target: RunManifest::from_json must reject arbitrary bytes with
// nullopt — never crash — and any document it accepts must be stable
// under to_json → from_json → to_json (the resume contract: a manifest
// rewritten by a later run parses back to the same state).
#include <cstdint>
#include <string>
#include <string_view>

#include "pipeline/manifest.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto manifest = sp::pipeline::RunManifest::from_json(text);
  if (!manifest) return 0;

  const std::string serialized = manifest->to_json();
  const auto again = sp::pipeline::RunManifest::from_json(serialized);
  if (!again || again->to_json() != serialized) __builtin_trap();
  return 0;
}
