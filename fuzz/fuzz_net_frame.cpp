// Fuzz target: the incremental net::FrameDecoder must be
// chunking-invariant — feeding a byte stream whole or in arbitrary
// slices yields the identical frame sequence, the identical poison
// state and the identical error text (the property the epoll server
// leans on: TCP segmentation must never change what a client said).
// Each decoded frame body is then pushed through the matching
// body parser, which must reject or accept without crashing.
//
// Input layout: byte 0 selects the chunking pattern for the second
// decoder (1-byte trickle, prime-sized slices, split-in-halves, …);
// the rest is the wire stream.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/protocol.h"

namespace {

using sp::net::Frame;
using sp::net::FrameDecoder;
using sp::net::FrameType;

std::vector<Frame> drain(FrameDecoder& decoder) {
  std::vector<Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  return frames;
}

void exercise_parsers(const Frame& frame) {
  std::string error;
  const std::span<const std::uint8_t> body(frame.body);
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kQuery:
      (void)sp::net::parse_query_request(body, &error);
      break;
    case FrameType::kReload:
      (void)sp::net::parse_reload_request(body, &error);
      break;
    case FrameType::kQueryResponse:
      (void)sp::net::parse_query_response(body, &error);
      break;
    case FrameType::kReloadResponse:
      (void)sp::net::parse_reload_response(body, &error);
      break;
    case FrameType::kStatsResponse:
      (void)sp::net::parse_stats_response(body, &error);
      break;
    case FrameType::kError:
      (void)sp::net::parse_error_frame(body, &error);
      break;
    default:
      break;  // STATS/METRICS requests and unknown types carry raw bodies
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const unsigned pattern = data[0];
  const std::span<const std::uint8_t> stream(data + 1, size - 1);

  // Reference: the whole stream in one feed.
  FrameDecoder whole;
  whole.feed(stream);
  const std::vector<Frame> expected = drain(whole);

  // Same stream, sliced per the selector byte.
  FrameDecoder chunked;
  std::vector<Frame> actual;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    std::size_t step;
    switch (pattern % 4) {
      case 0:  step = 1; break;                       // 1-byte trickle
      case 1:  step = 7; break;                       // prime slices
      case 2:  step = (offset % 2 == 0) ? 2 : 13; break;  // alternating
      default: step = std::max<std::size_t>(1, (stream.size() - offset) / 2); break;
    }
    step = std::min(step, stream.size() - offset);
    chunked.feed(stream.subspan(offset, step));
    offset += step;
    // Interleave draining with feeding — the server does the same.
    auto frames = drain(chunked);
    actual.insert(actual.end(), std::make_move_iterator(frames.begin()),
                  std::make_move_iterator(frames.end()));
  }
  auto tail = drain(chunked);
  actual.insert(actual.end(), std::make_move_iterator(tail.begin()),
                std::make_move_iterator(tail.end()));

  if (actual != expected) __builtin_trap();
  if (chunked.error() != whole.error()) __builtin_trap();
  if (chunked.error_message() != whole.error_message()) __builtin_trap();
  // A healthy decoder never buffers more than one partial frame.
  if (!whole.error() && whole.buffered() > sp::net::kHeaderSize + sp::net::kMaxBody) {
    __builtin_trap();
  }

  for (const Frame& frame : expected) exercise_parsers(frame);
  return 0;
}
