// Fuzz target: the MRT/BGP4MP cursor must stop cleanly (error or
// end-of-input) on arbitrary bytes — bounds-checked, never crashing —
// and every record it does decode must re-encode without faulting.
#include <cstdint>
#include <span>
#include <vector>

#include "mrt/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  sp::mrt::Cursor cursor(bytes);
  std::vector<sp::mrt::MrtRecord> records;
  while (auto record = cursor.next()) {
    records.push_back(std::move(*record));
    if (records.size() >= 4096) break;  // bound memory on adversarial dumps
  }
  (void)cursor.error();

  (void)sp::mrt::encode_dump(records);

  // The whole-dump wrapper must agree with the cursor on acceptance.
  (void)sp::mrt::decode_dump(bytes);
  return 0;
}
