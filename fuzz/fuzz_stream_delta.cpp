// Fuzz target: decode_spdl over arbitrary bytes must either reject with
// a reason or accept an image that round-trips exactly —
// encode_spdl(*decode_spdl(bytes)) == bytes. The canonical sequential
// layout admits exactly one encoding per delta, so any accepted input
// that fails to round-trip means the validator let a non-canonical (or
// silently mangled) delta through: a rolling campaign would patch a
// snapshot with bytes the producer never wrote.
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "stream/spdl.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string error;
  const auto delta = sp::stream::decode_spdl({data, size}, &error);
  if (!delta) {
    // Rejections must carry a reason — a silent nullopt is a bug too.
    if (error.empty()) __builtin_trap();
    return 0;
  }
  const std::vector<std::uint8_t> encoded = sp::stream::encode_spdl(*delta);
  if (encoded.size() != size || std::memcmp(encoded.data(), data, size) != 0) {
    __builtin_trap();
  }
  return 0;
}
