// Fuzz target: SignatureSet::deserialize over arbitrary bytes must either
// reject (returning nullopt with a reason) or yield a signature set that
// is safe to use — every view in bounds, the LSH index buildable, and the
// round-trip canonical (serialize(deserialize(b)) == b for accepted b).
// Truncated, bit-flipped or adversarial blobs must never crash or
// over-allocate before validation fails.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sketch/lsh.h"
#include "sketch/signature.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view blob(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto parsed = sp::sketch::SignatureSet::deserialize(blob, &error);
  if (!parsed.has_value()) {
    // Reject path must always explain itself.
    if (error.empty()) __builtin_trap();
    return 0;
  }

  // Accepted: the format is canonical, so re-serializing must reproduce
  // the input bytes exactly.
  if (parsed->serialize() != blob) __builtin_trap();

  // Every signature view must stay in bounds and feed the LSH index.
  for (std::uint32_t dense = 0; dense < parsed->prefix_count(); ++dense) {
    const sp::sketch::SignatureView view = parsed->of(dense);
    if (view.hashes.size() > parsed->k()) __builtin_trap();
    (void)view.complete(parsed->k());
  }
  const sp::sketch::LshIndex lsh = sp::sketch::LshIndex::build(*parsed);
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t dense = 0; dense < parsed->prefix_count(); ++dense) {
    lsh.candidates_of(parsed->of(dense), candidates);
    for (const std::uint32_t candidate : candidates) {
      if (candidate >= parsed->prefix_count()) __builtin_trap();
    }
  }
  return 0;
}
