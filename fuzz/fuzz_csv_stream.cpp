// Fuzz target: the streaming CSV parser is differentially checked
// against the in-memory one — same dialect, so same accept/reject
// decision and, on accept, identical rows in identical order.
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "io/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::istringstream in{std::string(text)};
  std::vector<sp::io::CsvRow> streamed;
  const sp::io::CsvStreamStatus status =
      sp::io::read_csv_stream(in, [&](sp::io::CsvRow&& row, std::size_t) {
        streamed.push_back(std::move(row));
        return true;
      });

  const auto parsed = sp::io::parse_csv(text);
  if (status.ok != parsed.has_value()) __builtin_trap();
  if (parsed && *parsed != streamed) __builtin_trap();
  return 0;
}
