// Fuzz target: SiblingDB::load over arbitrary file bytes must either
// reject (validation failure) or yield a snapshot whose accessors stay
// in bounds — truncated, bit-flipped or adversarial .sibdb files must
// never crash a serving process. The input arrives as bytes and is
// staged through a temp file because the loader's contract is mmap.
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "serve/sibdb.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  char path[] = "/tmp/sp_fuzz_sibdb_XXXXXX";
  const int fd = mkstemp(path);
  if (fd < 0) return 0;
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) break;
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);

  if (written == size) {
    std::string error;
    auto db = sp::serve::SiblingDB::load(path, &error);
    if (db) {
      // Validation passed: every accessor over every record must be safe.
      (void)db->source_label();
      for (std::size_t i = 0; i < db->size(); ++i) {
        (void)db->v4_prefix(i);
        (void)db->v6_prefix(i);
        (void)db->similarity(i);
        (void)db->shared_domains(i);
        (void)db->v4_domain_count(i);
        (void)db->v6_domain_count(i);
      }
    }
  }
  ::unlink(path);
  return 0;
}
