// Standalone fuzz driver used when libFuzzer is unavailable (gcc
// builds, SP_FUZZ_LIBFUZZER off): replays every corpus file through the
// target's LLVMFuzzerTestOneInput, then runs a fixed number of
// deterministic splitmix-derived mutations of each seed. No rand(), no
// wall clock — two runs over the same corpus execute byte-identical
// inputs, so a crash found locally reproduces locally.
//
// Usage: fuzz_<target> <corpus file or dir>...
//   SP_FUZZ_MUTATIONS   mutated inputs per seed (default 256)
//
// libFuzzer-style dash flags are ignored so CI scripts can pass the
// same command line to either driver.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "synth/determinism.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Applies 1–4 point edits (xor, overwrite, truncate, insert) chosen by
/// a splitmix chain keyed on (seed index, round): fully deterministic.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed, std::uint64_t key) {
  using sp::synth::mix64;
  std::vector<std::uint8_t> bytes = seed;
  std::uint64_t state = mix64(key ^ 0x9e3779b97f4a7c15ULL);
  const unsigned edits = 1 + static_cast<unsigned>(state & 3);
  for (unsigned edit = 0; edit < edits; ++edit) {
    state = mix64(state + edit + 1);
    if (bytes.empty()) {
      bytes.push_back(static_cast<std::uint8_t>(state));
      continue;
    }
    const std::size_t at = state % bytes.size();
    const auto value = static_cast<std::uint8_t>(state >> 16);
    switch ((state >> 8) & 3) {
      case 0: bytes[at] ^= value; break;
      case 1: bytes[at] = value; break;
      case 2: bytes.resize(at); break;
      default: bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at), value); break;
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag: ignore
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (fs::recursive_directory_iterator it(arg, ec), end; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec)) paths.push_back(it->path().generic_string());
      }
    } else if (fs::is_regular_file(arg, ec)) {
      paths.push_back(arg);
    }
  }
  std::sort(paths.begin(), paths.end());

  std::uint64_t mutations = 256;
  if (const char* env = std::getenv("SP_FUZZ_MUTATIONS")) {
    mutations = std::strtoull(env, nullptr, 10);
  }

  std::uint64_t executed = 0;
  for (std::size_t seed_index = 0; seed_index < paths.size(); ++seed_index) {
    const std::vector<std::uint8_t> seed = read_file(paths[seed_index]);
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++executed;
    for (std::uint64_t round = 0; round < mutations; ++round) {
      const std::vector<std::uint8_t> bytes =
          mutate(seed, sp::synth::mix64(seed_index) + round);
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++executed;
    }
  }
  std::printf("fuzz driver: %zu seeds, %llu inputs executed, no crashes\n", paths.size(),
              static_cast<unsigned long long>(executed));
  return paths.empty() ? 2 : 0;
}
