file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_organizations.dir/bench_fig14_15_organizations.cpp.o"
  "CMakeFiles/bench_fig14_15_organizations.dir/bench_fig14_15_organizations.cpp.o.d"
  "bench_fig14_15_organizations"
  "bench_fig14_15_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
