file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_hypergiants.dir/bench_fig17_hypergiants.cpp.o"
  "CMakeFiles/bench_fig17_hypergiants.dir/bench_fig17_hypergiants.cpp.o.d"
  "bench_fig17_hypergiants"
  "bench_fig17_hypergiants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_hypergiants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
