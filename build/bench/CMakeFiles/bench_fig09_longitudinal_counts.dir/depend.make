# Empty dependencies file for bench_fig09_longitudinal_counts.
# This may be replaced when dependencies are built.
