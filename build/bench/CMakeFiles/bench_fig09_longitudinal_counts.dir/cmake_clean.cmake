file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_longitudinal_counts.dir/bench_fig09_longitudinal_counts.cpp.o"
  "CMakeFiles/bench_fig09_longitudinal_counts.dir/bench_fig09_longitudinal_counts.cpp.o.d"
  "bench_fig09_longitudinal_counts"
  "bench_fig09_longitudinal_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_longitudinal_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
