file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_domain_counts.dir/bench_fig08_domain_counts.cpp.o"
  "CMakeFiles/bench_fig08_domain_counts.dir/bench_fig08_domain_counts.cpp.o.d"
  "bench_fig08_domain_counts"
  "bench_fig08_domain_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_domain_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
