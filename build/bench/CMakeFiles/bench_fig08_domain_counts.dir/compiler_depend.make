# Empty compiler generated dependencies file for bench_fig08_domain_counts.
# This may be replaced when dependencies are built.
