# Empty dependencies file for bench_fig16_business_types.
# This may be replaced when dependencies are built.
