# Empty dependencies file for bench_ablation_address_vs_prefix.
# This may be replaced when dependencies are built.
