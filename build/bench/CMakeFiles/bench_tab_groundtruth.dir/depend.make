# Empty dependencies file for bench_tab_groundtruth.
# This may be replaced when dependencies are built.
