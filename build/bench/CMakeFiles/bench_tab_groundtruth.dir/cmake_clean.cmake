file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_groundtruth.dir/bench_tab_groundtruth.cpp.o"
  "CMakeFiles/bench_tab_groundtruth.dir/bench_tab_groundtruth.cpp.o.d"
  "bench_tab_groundtruth"
  "bench_tab_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
