# Empty compiler generated dependencies file for bench_fig22_sptuner_ls.
# This may be replaced when dependencies are built.
