file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_sptuner_ls.dir/bench_fig22_sptuner_ls.cpp.o"
  "CMakeFiles/bench_fig22_sptuner_ls.dir/bench_fig22_sptuner_ls.cpp.o.d"
  "bench_fig22_sptuner_ls"
  "bench_fig22_sptuner_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_sptuner_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
