# Empty compiler generated dependencies file for bench_ablation_alias_detection.
# This may be replaced when dependencies are built.
