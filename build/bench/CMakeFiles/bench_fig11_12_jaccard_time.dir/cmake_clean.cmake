file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_jaccard_time.dir/bench_fig11_12_jaccard_time.cpp.o"
  "CMakeFiles/bench_fig11_12_jaccard_time.dir/bench_fig11_12_jaccard_time.cpp.o.d"
  "bench_fig11_12_jaccard_time"
  "bench_fig11_12_jaccard_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_jaccard_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
