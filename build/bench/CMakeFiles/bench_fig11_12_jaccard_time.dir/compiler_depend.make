# Empty compiler generated dependencies file for bench_fig11_12_jaccard_time.
# This may be replaced when dependencies are built.
