# Empty dependencies file for bench_fig01_dataset_growth.
# This may be replaced when dependencies are built.
