# Empty compiler generated dependencies file for bench_fig18_rpki_rov.
# This may be replaced when dependencies are built.
