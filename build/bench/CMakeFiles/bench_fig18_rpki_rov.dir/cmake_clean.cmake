file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_rpki_rov.dir/bench_fig18_rpki_rov.cpp.o"
  "CMakeFiles/bench_fig18_rpki_rov.dir/bench_fig18_rpki_rov.cpp.o.d"
  "bench_fig18_rpki_rov"
  "bench_fig18_rpki_rov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_rpki_rov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
