# Empty compiler generated dependencies file for bench_fig06_portscan_overlap.
# This may be replaced when dependencies are built.
