file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_variants.dir/bench_appendix_variants.cpp.o"
  "CMakeFiles/bench_appendix_variants.dir/bench_appendix_variants.cpp.o.d"
  "bench_appendix_variants"
  "bench_appendix_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
