# Empty dependencies file for bench_fig02_similarity_metrics.
# This may be replaced when dependencies are built.
