file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_similarity_metrics.dir/bench_fig02_similarity_metrics.cpp.o"
  "CMakeFiles/bench_fig02_similarity_metrics.dir/bench_fig02_similarity_metrics.cpp.o.d"
  "bench_fig02_similarity_metrics"
  "bench_fig02_similarity_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_similarity_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
