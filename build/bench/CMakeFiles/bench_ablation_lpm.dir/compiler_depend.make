# Empty compiler generated dependencies file for bench_ablation_lpm.
# This may be replaced when dependencies are built.
