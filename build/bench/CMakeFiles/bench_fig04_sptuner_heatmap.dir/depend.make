# Empty dependencies file for bench_fig04_sptuner_heatmap.
# This may be replaced when dependencies are built.
