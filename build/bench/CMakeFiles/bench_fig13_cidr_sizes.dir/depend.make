# Empty dependencies file for bench_fig13_cidr_sizes.
# This may be replaced when dependencies are built.
