# Empty dependencies file for bench_ablation_sibling_sets.
# This may be replaced when dependencies are built.
