file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sibling_sets.dir/bench_ablation_sibling_sets.cpp.o"
  "CMakeFiles/bench_ablation_sibling_sets.dir/bench_ablation_sibling_sets.cpp.o.d"
  "bench_ablation_sibling_sets"
  "bench_ablation_sibling_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sibling_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
