file(REMOVE_RECURSE
  "CMakeFiles/dualstack_policy_audit.dir/dualstack_policy_audit.cpp.o"
  "CMakeFiles/dualstack_policy_audit.dir/dualstack_policy_audit.cpp.o.d"
  "dualstack_policy_audit"
  "dualstack_policy_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dualstack_policy_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
