# Empty compiler generated dependencies file for dualstack_policy_audit.
# This may be replaced when dependencies are built.
