# Empty compiler generated dependencies file for policy_impact.
# This may be replaced when dependencies are built.
