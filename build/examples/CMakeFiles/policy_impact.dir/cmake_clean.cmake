file(REMOVE_RECURSE
  "CMakeFiles/policy_impact.dir/policy_impact.cpp.o"
  "CMakeFiles/policy_impact.dir/policy_impact.cpp.o.d"
  "policy_impact"
  "policy_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
