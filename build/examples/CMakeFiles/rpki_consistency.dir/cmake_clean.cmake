file(REMOVE_RECURSE
  "CMakeFiles/rpki_consistency.dir/rpki_consistency.cpp.o"
  "CMakeFiles/rpki_consistency.dir/rpki_consistency.cpp.o.d"
  "rpki_consistency"
  "rpki_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpki_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
