# Empty compiler generated dependencies file for rpki_consistency.
# This may be replaced when dependencies are built.
