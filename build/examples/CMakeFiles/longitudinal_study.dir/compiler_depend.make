# Empty compiler generated dependencies file for longitudinal_study.
# This may be replaced when dependencies are built.
