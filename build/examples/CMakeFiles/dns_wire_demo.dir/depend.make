# Empty dependencies file for dns_wire_demo.
# This may be replaced when dependencies are built.
