file(REMOVE_RECURSE
  "CMakeFiles/dns_wire_demo.dir/dns_wire_demo.cpp.o"
  "CMakeFiles/dns_wire_demo.dir/dns_wire_demo.cpp.o.d"
  "dns_wire_demo"
  "dns_wire_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_wire_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
