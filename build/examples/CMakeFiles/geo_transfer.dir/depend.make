# Empty dependencies file for geo_transfer.
# This may be replaced when dependencies are built.
