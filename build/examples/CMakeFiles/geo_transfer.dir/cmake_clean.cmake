file(REMOVE_RECURSE
  "CMakeFiles/geo_transfer.dir/geo_transfer.cpp.o"
  "CMakeFiles/geo_transfer.dir/geo_transfer.cpp.o.d"
  "geo_transfer"
  "geo_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
