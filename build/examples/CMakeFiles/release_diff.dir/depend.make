# Empty dependencies file for release_diff.
# This may be replaced when dependencies are built.
