file(REMOVE_RECURSE
  "CMakeFiles/release_diff.dir/release_diff.cpp.o"
  "CMakeFiles/release_diff.dir/release_diff.cpp.o.d"
  "release_diff"
  "release_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
