
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/release_diff.cpp" "examples/CMakeFiles/release_diff.dir/release_diff.cpp.o" "gcc" "examples/CMakeFiles/release_diff.dir/release_diff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alias/CMakeFiles/sp_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/sp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/he/CMakeFiles/sp_he.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/sp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/sp_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/sp_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/asinfo/CMakeFiles/sp_asinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/sp_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
