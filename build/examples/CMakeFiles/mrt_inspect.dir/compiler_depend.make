# Empty compiler generated dependencies file for mrt_inspect.
# This may be replaced when dependencies are built.
