file(REMOVE_RECURSE
  "CMakeFiles/sp_pipeline.dir/sp_pipeline.cpp.o"
  "CMakeFiles/sp_pipeline.dir/sp_pipeline.cpp.o.d"
  "sp_pipeline"
  "sp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
