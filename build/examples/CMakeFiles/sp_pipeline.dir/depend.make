# Empty dependencies file for sp_pipeline.
# This may be replaced when dependencies are built.
