# Empty dependencies file for asinfo_test.
# This may be replaced when dependencies are built.
