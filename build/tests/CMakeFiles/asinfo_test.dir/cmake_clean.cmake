file(REMOVE_RECURSE
  "CMakeFiles/asinfo_test.dir/asinfo_test.cpp.o"
  "CMakeFiles/asinfo_test.dir/asinfo_test.cpp.o.d"
  "asinfo_test"
  "asinfo_test.pdb"
  "asinfo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asinfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
