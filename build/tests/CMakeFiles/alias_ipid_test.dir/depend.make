# Empty dependencies file for alias_ipid_test.
# This may be replaced when dependencies are built.
