file(REMOVE_RECURSE
  "CMakeFiles/alias_ipid_test.dir/alias_ipid_test.cpp.o"
  "CMakeFiles/alias_ipid_test.dir/alias_ipid_test.cpp.o.d"
  "alias_ipid_test"
  "alias_ipid_test.pdb"
  "alias_ipid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_ipid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
