# Empty compiler generated dependencies file for core_longitudinal_test.
# This may be replaced when dependencies are built.
