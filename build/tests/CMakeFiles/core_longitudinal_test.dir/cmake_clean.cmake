file(REMOVE_RECURSE
  "CMakeFiles/core_longitudinal_test.dir/core_longitudinal_test.cpp.o"
  "CMakeFiles/core_longitudinal_test.dir/core_longitudinal_test.cpp.o.d"
  "core_longitudinal_test"
  "core_longitudinal_test.pdb"
  "core_longitudinal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_longitudinal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
