# Empty dependencies file for io_snapshot_csv_test.
# This may be replaced when dependencies are built.
