file(REMOVE_RECURSE
  "CMakeFiles/io_snapshot_csv_test.dir/io_snapshot_csv_test.cpp.o"
  "CMakeFiles/io_snapshot_csv_test.dir/io_snapshot_csv_test.cpp.o.d"
  "io_snapshot_csv_test"
  "io_snapshot_csv_test.pdb"
  "io_snapshot_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_snapshot_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
