file(REMOVE_RECURSE
  "CMakeFiles/dns_rdns_test.dir/dns_rdns_test.cpp.o"
  "CMakeFiles/dns_rdns_test.dir/dns_rdns_test.cpp.o.d"
  "dns_rdns_test"
  "dns_rdns_test.pdb"
  "dns_rdns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_rdns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
