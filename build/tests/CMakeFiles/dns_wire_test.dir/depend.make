# Empty dependencies file for dns_wire_test.
# This may be replaced when dependencies are built.
