file(REMOVE_RECURSE
  "CMakeFiles/dns_zone_test.dir/dns_zone_test.cpp.o"
  "CMakeFiles/dns_zone_test.dir/dns_zone_test.cpp.o.d"
  "dns_zone_test"
  "dns_zone_test.pdb"
  "dns_zone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_zone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
