# Empty dependencies file for dns_zone_test.
# This may be replaced when dependencies are built.
