file(REMOVE_RECURSE
  "CMakeFiles/rpki_roa_csv_test.dir/rpki_roa_csv_test.cpp.o"
  "CMakeFiles/rpki_roa_csv_test.dir/rpki_roa_csv_test.cpp.o.d"
  "rpki_roa_csv_test"
  "rpki_roa_csv_test.pdb"
  "rpki_roa_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpki_roa_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
