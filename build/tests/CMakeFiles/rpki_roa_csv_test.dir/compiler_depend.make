# Empty compiler generated dependencies file for rpki_roa_csv_test.
# This may be replaced when dependencies are built.
