file(REMOVE_RECURSE
  "CMakeFiles/dns_edns_test.dir/dns_edns_test.cpp.o"
  "CMakeFiles/dns_edns_test.dir/dns_edns_test.cpp.o.d"
  "dns_edns_test"
  "dns_edns_test.pdb"
  "dns_edns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_edns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
