# Empty dependencies file for dns_edns_test.
# This may be replaced when dependencies are built.
