file(REMOVE_RECURSE
  "CMakeFiles/core_setcorpus_test.dir/core_setcorpus_test.cpp.o"
  "CMakeFiles/core_setcorpus_test.dir/core_setcorpus_test.cpp.o.d"
  "core_setcorpus_test"
  "core_setcorpus_test.pdb"
  "core_setcorpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_setcorpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
