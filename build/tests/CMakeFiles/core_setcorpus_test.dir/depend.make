# Empty dependencies file for core_setcorpus_test.
# This may be replaced when dependencies are built.
