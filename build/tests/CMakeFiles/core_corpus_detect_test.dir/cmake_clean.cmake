file(REMOVE_RECURSE
  "CMakeFiles/core_corpus_detect_test.dir/core_corpus_detect_test.cpp.o"
  "CMakeFiles/core_corpus_detect_test.dir/core_corpus_detect_test.cpp.o.d"
  "core_corpus_detect_test"
  "core_corpus_detect_test.pdb"
  "core_corpus_detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_corpus_detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
