# Empty dependencies file for core_corpus_detect_test.
# This may be replaced when dependencies are built.
