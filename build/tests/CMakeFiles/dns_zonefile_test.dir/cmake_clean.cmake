file(REMOVE_RECURSE
  "CMakeFiles/dns_zonefile_test.dir/dns_zonefile_test.cpp.o"
  "CMakeFiles/dns_zonefile_test.dir/dns_zonefile_test.cpp.o.d"
  "dns_zonefile_test"
  "dns_zonefile_test.pdb"
  "dns_zonefile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_zonefile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
