# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for trie_flat_lpm_test.
