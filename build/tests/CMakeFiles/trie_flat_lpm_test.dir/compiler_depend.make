# Empty compiler generated dependencies file for trie_flat_lpm_test.
# This may be replaced when dependencies are built.
