file(REMOVE_RECURSE
  "CMakeFiles/trie_flat_lpm_test.dir/trie_flat_lpm_test.cpp.o"
  "CMakeFiles/trie_flat_lpm_test.dir/trie_flat_lpm_test.cpp.o.d"
  "trie_flat_lpm_test"
  "trie_flat_lpm_test.pdb"
  "trie_flat_lpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_flat_lpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
