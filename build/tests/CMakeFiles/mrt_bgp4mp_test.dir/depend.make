# Empty dependencies file for mrt_bgp4mp_test.
# This may be replaced when dependencies are built.
