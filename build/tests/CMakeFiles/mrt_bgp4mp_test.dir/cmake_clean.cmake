file(REMOVE_RECURSE
  "CMakeFiles/mrt_bgp4mp_test.dir/mrt_bgp4mp_test.cpp.o"
  "CMakeFiles/mrt_bgp4mp_test.dir/mrt_bgp4mp_test.cpp.o.d"
  "mrt_bgp4mp_test"
  "mrt_bgp4mp_test.pdb"
  "mrt_bgp4mp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrt_bgp4mp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
