# Empty compiler generated dependencies file for asinfo_csv_test.
# This may be replaced when dependencies are built.
