file(REMOVE_RECURSE
  "CMakeFiles/asinfo_csv_test.dir/asinfo_csv_test.cpp.o"
  "CMakeFiles/asinfo_csv_test.dir/asinfo_csv_test.cpp.o.d"
  "asinfo_csv_test"
  "asinfo_csv_test.pdb"
  "asinfo_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asinfo_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
