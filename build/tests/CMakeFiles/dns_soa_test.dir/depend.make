# Empty dependencies file for dns_soa_test.
# This may be replaced when dependencies are built.
