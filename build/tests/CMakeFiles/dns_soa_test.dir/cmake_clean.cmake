file(REMOVE_RECURSE
  "CMakeFiles/dns_soa_test.dir/dns_soa_test.cpp.o"
  "CMakeFiles/dns_soa_test.dir/dns_soa_test.cpp.o.d"
  "dns_soa_test"
  "dns_soa_test.pdb"
  "dns_soa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_soa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
