file(REMOVE_RECURSE
  "CMakeFiles/netbase_ip_test.dir/netbase_ip_test.cpp.o"
  "CMakeFiles/netbase_ip_test.dir/netbase_ip_test.cpp.o.d"
  "netbase_ip_test"
  "netbase_ip_test.pdb"
  "netbase_ip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
