# Empty dependencies file for netbase_ip_test.
# This may be replaced when dependencies are built.
