# Empty dependencies file for he_happy_eyeballs_test.
# This may be replaced when dependencies are built.
