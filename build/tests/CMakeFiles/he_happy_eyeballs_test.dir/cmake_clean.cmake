file(REMOVE_RECURSE
  "CMakeFiles/he_happy_eyeballs_test.dir/he_happy_eyeballs_test.cpp.o"
  "CMakeFiles/he_happy_eyeballs_test.dir/he_happy_eyeballs_test.cpp.o.d"
  "he_happy_eyeballs_test"
  "he_happy_eyeballs_test.pdb"
  "he_happy_eyeballs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/he_happy_eyeballs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
