# Empty dependencies file for netbase_prefix_set_test.
# This may be replaced when dependencies are built.
