file(REMOVE_RECURSE
  "CMakeFiles/netbase_prefix_set_test.dir/netbase_prefix_set_test.cpp.o"
  "CMakeFiles/netbase_prefix_set_test.dir/netbase_prefix_set_test.cpp.o.d"
  "netbase_prefix_set_test"
  "netbase_prefix_set_test.pdb"
  "netbase_prefix_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase_prefix_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
