# Empty dependencies file for mrt_codec_test.
# This may be replaced when dependencies are built.
