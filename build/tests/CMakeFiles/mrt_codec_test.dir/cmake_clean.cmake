file(REMOVE_RECURSE
  "CMakeFiles/mrt_codec_test.dir/mrt_codec_test.cpp.o"
  "CMakeFiles/mrt_codec_test.dir/mrt_codec_test.cpp.o.d"
  "mrt_codec_test"
  "mrt_codec_test.pdb"
  "mrt_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrt_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
