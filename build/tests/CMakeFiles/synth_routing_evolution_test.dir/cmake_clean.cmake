file(REMOVE_RECURSE
  "CMakeFiles/synth_routing_evolution_test.dir/synth_routing_evolution_test.cpp.o"
  "CMakeFiles/synth_routing_evolution_test.dir/synth_routing_evolution_test.cpp.o.d"
  "synth_routing_evolution_test"
  "synth_routing_evolution_test.pdb"
  "synth_routing_evolution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_routing_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
