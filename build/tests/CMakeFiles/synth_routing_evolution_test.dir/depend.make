# Empty dependencies file for synth_routing_evolution_test.
# This may be replaced when dependencies are built.
