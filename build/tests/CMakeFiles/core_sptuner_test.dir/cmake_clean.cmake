file(REMOVE_RECURSE
  "CMakeFiles/core_sptuner_test.dir/core_sptuner_test.cpp.o"
  "CMakeFiles/core_sptuner_test.dir/core_sptuner_test.cpp.o.d"
  "core_sptuner_test"
  "core_sptuner_test.pdb"
  "core_sptuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sptuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
