# Empty dependencies file for core_sptuner_test.
# This may be replaced when dependencies are built.
