file(REMOVE_RECURSE
  "CMakeFiles/netbase_reserved_test.dir/netbase_reserved_test.cpp.o"
  "CMakeFiles/netbase_reserved_test.dir/netbase_reserved_test.cpp.o.d"
  "netbase_reserved_test"
  "netbase_reserved_test.pdb"
  "netbase_reserved_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase_reserved_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
