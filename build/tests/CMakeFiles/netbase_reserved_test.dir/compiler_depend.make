# Empty compiler generated dependencies file for netbase_reserved_test.
# This may be replaced when dependencies are built.
