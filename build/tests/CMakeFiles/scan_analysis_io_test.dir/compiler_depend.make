# Empty compiler generated dependencies file for scan_analysis_io_test.
# This may be replaced when dependencies are built.
