file(REMOVE_RECURSE
  "CMakeFiles/scan_analysis_io_test.dir/scan_analysis_io_test.cpp.o"
  "CMakeFiles/scan_analysis_io_test.dir/scan_analysis_io_test.cpp.o.d"
  "scan_analysis_io_test"
  "scan_analysis_io_test.pdb"
  "scan_analysis_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_analysis_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
