file(REMOVE_RECURSE
  "CMakeFiles/synth_distribution_test.dir/synth_distribution_test.cpp.o"
  "CMakeFiles/synth_distribution_test.dir/synth_distribution_test.cpp.o.d"
  "synth_distribution_test"
  "synth_distribution_test.pdb"
  "synth_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
