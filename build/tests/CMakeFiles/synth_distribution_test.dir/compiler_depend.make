# Empty compiler generated dependencies file for synth_distribution_test.
# This may be replaced when dependencies are built.
