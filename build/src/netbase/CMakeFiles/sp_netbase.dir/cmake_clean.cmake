file(REMOVE_RECURSE
  "CMakeFiles/sp_netbase.dir/ip.cpp.o"
  "CMakeFiles/sp_netbase.dir/ip.cpp.o.d"
  "CMakeFiles/sp_netbase.dir/prefix.cpp.o"
  "CMakeFiles/sp_netbase.dir/prefix.cpp.o.d"
  "CMakeFiles/sp_netbase.dir/prefix_set.cpp.o"
  "CMakeFiles/sp_netbase.dir/prefix_set.cpp.o.d"
  "libsp_netbase.a"
  "libsp_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
