file(REMOVE_RECURSE
  "libsp_netbase.a"
)
