# Empty compiler generated dependencies file for sp_netbase.
# This may be replaced when dependencies are built.
