file(REMOVE_RECURSE
  "CMakeFiles/sp_analysis.dir/stats.cpp.o"
  "CMakeFiles/sp_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/sp_analysis.dir/table.cpp.o"
  "CMakeFiles/sp_analysis.dir/table.cpp.o.d"
  "libsp_analysis.a"
  "libsp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
