# Empty dependencies file for sp_scan.
# This may be replaced when dependencies are built.
