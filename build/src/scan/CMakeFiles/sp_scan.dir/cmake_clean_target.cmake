file(REMOVE_RECURSE
  "libsp_scan.a"
)
