file(REMOVE_RECURSE
  "CMakeFiles/sp_scan.dir/portscan.cpp.o"
  "CMakeFiles/sp_scan.dir/portscan.cpp.o.d"
  "libsp_scan.a"
  "libsp_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
