# Empty dependencies file for sp_mrt.
# This may be replaced when dependencies are built.
