file(REMOVE_RECURSE
  "libsp_mrt.a"
)
