
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrt/codec.cpp" "src/mrt/CMakeFiles/sp_mrt.dir/codec.cpp.o" "gcc" "src/mrt/CMakeFiles/sp_mrt.dir/codec.cpp.o.d"
  "/root/repo/src/mrt/file.cpp" "src/mrt/CMakeFiles/sp_mrt.dir/file.cpp.o" "gcc" "src/mrt/CMakeFiles/sp_mrt.dir/file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sp_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
