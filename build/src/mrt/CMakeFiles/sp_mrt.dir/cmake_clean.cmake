file(REMOVE_RECURSE
  "CMakeFiles/sp_mrt.dir/codec.cpp.o"
  "CMakeFiles/sp_mrt.dir/codec.cpp.o.d"
  "CMakeFiles/sp_mrt.dir/file.cpp.o"
  "CMakeFiles/sp_mrt.dir/file.cpp.o.d"
  "libsp_mrt.a"
  "libsp_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
