file(REMOVE_RECURSE
  "libsp_synth.a"
)
