file(REMOVE_RECURSE
  "CMakeFiles/sp_synth.dir/universe.cpp.o"
  "CMakeFiles/sp_synth.dir/universe.cpp.o.d"
  "libsp_synth.a"
  "libsp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
