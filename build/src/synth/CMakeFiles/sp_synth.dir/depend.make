# Empty dependencies file for sp_synth.
# This may be replaced when dependencies are built.
