file(REMOVE_RECURSE
  "CMakeFiles/sp_dns.dir/name.cpp.o"
  "CMakeFiles/sp_dns.dir/name.cpp.o.d"
  "CMakeFiles/sp_dns.dir/resolver.cpp.o"
  "CMakeFiles/sp_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/sp_dns.dir/snapshot.cpp.o"
  "CMakeFiles/sp_dns.dir/snapshot.cpp.o.d"
  "CMakeFiles/sp_dns.dir/wire.cpp.o"
  "CMakeFiles/sp_dns.dir/wire.cpp.o.d"
  "CMakeFiles/sp_dns.dir/zone.cpp.o"
  "CMakeFiles/sp_dns.dir/zone.cpp.o.d"
  "CMakeFiles/sp_dns.dir/zonefile.cpp.o"
  "CMakeFiles/sp_dns.dir/zonefile.cpp.o.d"
  "libsp_dns.a"
  "libsp_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
