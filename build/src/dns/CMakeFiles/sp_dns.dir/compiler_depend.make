# Empty compiler generated dependencies file for sp_dns.
# This may be replaced when dependencies are built.
