file(REMOVE_RECURSE
  "libsp_dns.a"
)
