
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/corpus.cpp" "src/core/CMakeFiles/sp_core.dir/corpus.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/corpus.cpp.o.d"
  "/root/repo/src/core/detect.cpp" "src/core/CMakeFiles/sp_core.dir/detect.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/detect.cpp.o.d"
  "/root/repo/src/core/domain_set.cpp" "src/core/CMakeFiles/sp_core.dir/domain_set.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/domain_set.cpp.o.d"
  "/root/repo/src/core/groundtruth.cpp" "src/core/CMakeFiles/sp_core.dir/groundtruth.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/groundtruth.cpp.o.d"
  "/root/repo/src/core/longitudinal.cpp" "src/core/CMakeFiles/sp_core.dir/longitudinal.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/longitudinal.cpp.o.d"
  "/root/repo/src/core/portscan_compare.cpp" "src/core/CMakeFiles/sp_core.dir/portscan_compare.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/portscan_compare.cpp.o.d"
  "/root/repo/src/core/probes_io.cpp" "src/core/CMakeFiles/sp_core.dir/probes_io.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/probes_io.cpp.o.d"
  "/root/repo/src/core/sibling_diff.cpp" "src/core/CMakeFiles/sp_core.dir/sibling_diff.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/sibling_diff.cpp.o.d"
  "/root/repo/src/core/sibling_list_io.cpp" "src/core/CMakeFiles/sp_core.dir/sibling_list_io.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/sibling_list_io.cpp.o.d"
  "/root/repo/src/core/sibling_sets.cpp" "src/core/CMakeFiles/sp_core.dir/sibling_sets.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/sibling_sets.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/sp_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/sptuner.cpp" "src/core/CMakeFiles/sp_core.dir/sptuner.cpp.o" "gcc" "src/core/CMakeFiles/sp_core.dir/sptuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sp_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/sp_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/sp_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/sp_mrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
