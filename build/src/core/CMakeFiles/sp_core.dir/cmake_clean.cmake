file(REMOVE_RECURSE
  "CMakeFiles/sp_core.dir/corpus.cpp.o"
  "CMakeFiles/sp_core.dir/corpus.cpp.o.d"
  "CMakeFiles/sp_core.dir/detect.cpp.o"
  "CMakeFiles/sp_core.dir/detect.cpp.o.d"
  "CMakeFiles/sp_core.dir/domain_set.cpp.o"
  "CMakeFiles/sp_core.dir/domain_set.cpp.o.d"
  "CMakeFiles/sp_core.dir/groundtruth.cpp.o"
  "CMakeFiles/sp_core.dir/groundtruth.cpp.o.d"
  "CMakeFiles/sp_core.dir/longitudinal.cpp.o"
  "CMakeFiles/sp_core.dir/longitudinal.cpp.o.d"
  "CMakeFiles/sp_core.dir/portscan_compare.cpp.o"
  "CMakeFiles/sp_core.dir/portscan_compare.cpp.o.d"
  "CMakeFiles/sp_core.dir/probes_io.cpp.o"
  "CMakeFiles/sp_core.dir/probes_io.cpp.o.d"
  "CMakeFiles/sp_core.dir/sibling_diff.cpp.o"
  "CMakeFiles/sp_core.dir/sibling_diff.cpp.o.d"
  "CMakeFiles/sp_core.dir/sibling_list_io.cpp.o"
  "CMakeFiles/sp_core.dir/sibling_list_io.cpp.o.d"
  "CMakeFiles/sp_core.dir/sibling_sets.cpp.o"
  "CMakeFiles/sp_core.dir/sibling_sets.cpp.o.d"
  "CMakeFiles/sp_core.dir/similarity.cpp.o"
  "CMakeFiles/sp_core.dir/similarity.cpp.o.d"
  "CMakeFiles/sp_core.dir/sptuner.cpp.o"
  "CMakeFiles/sp_core.dir/sptuner.cpp.o.d"
  "libsp_core.a"
  "libsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
