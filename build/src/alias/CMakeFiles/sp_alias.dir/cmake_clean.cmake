file(REMOVE_RECURSE
  "CMakeFiles/sp_alias.dir/ipid.cpp.o"
  "CMakeFiles/sp_alias.dir/ipid.cpp.o.d"
  "libsp_alias.a"
  "libsp_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
