file(REMOVE_RECURSE
  "libsp_alias.a"
)
