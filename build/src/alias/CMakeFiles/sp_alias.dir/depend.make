# Empty dependencies file for sp_alias.
# This may be replaced when dependencies are built.
