file(REMOVE_RECURSE
  "libsp_he.a"
)
