# Empty dependencies file for sp_he.
# This may be replaced when dependencies are built.
