file(REMOVE_RECURSE
  "CMakeFiles/sp_he.dir/happy_eyeballs.cpp.o"
  "CMakeFiles/sp_he.dir/happy_eyeballs.cpp.o.d"
  "libsp_he.a"
  "libsp_he.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_he.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
