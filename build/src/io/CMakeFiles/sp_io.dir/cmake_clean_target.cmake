file(REMOVE_RECURSE
  "libsp_io.a"
)
