file(REMOVE_RECURSE
  "CMakeFiles/sp_io.dir/csv.cpp.o"
  "CMakeFiles/sp_io.dir/csv.cpp.o.d"
  "CMakeFiles/sp_io.dir/snapshot_csv.cpp.o"
  "CMakeFiles/sp_io.dir/snapshot_csv.cpp.o.d"
  "libsp_io.a"
  "libsp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
