# Empty compiler generated dependencies file for sp_io.
# This may be replaced when dependencies are built.
