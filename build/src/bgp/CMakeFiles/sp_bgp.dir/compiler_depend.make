# Empty compiler generated dependencies file for sp_bgp.
# This may be replaced when dependencies are built.
