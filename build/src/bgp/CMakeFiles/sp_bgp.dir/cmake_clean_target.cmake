file(REMOVE_RECURSE
  "libsp_bgp.a"
)
