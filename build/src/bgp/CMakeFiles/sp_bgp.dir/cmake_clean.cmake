file(REMOVE_RECURSE
  "CMakeFiles/sp_bgp.dir/rib.cpp.o"
  "CMakeFiles/sp_bgp.dir/rib.cpp.o.d"
  "libsp_bgp.a"
  "libsp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
