
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asinfo/as_org.cpp" "src/asinfo/CMakeFiles/sp_asinfo.dir/as_org.cpp.o" "gcc" "src/asinfo/CMakeFiles/sp_asinfo.dir/as_org.cpp.o.d"
  "/root/repo/src/asinfo/asdb.cpp" "src/asinfo/CMakeFiles/sp_asinfo.dir/asdb.cpp.o" "gcc" "src/asinfo/CMakeFiles/sp_asinfo.dir/asdb.cpp.o.d"
  "/root/repo/src/asinfo/asinfo_csv.cpp" "src/asinfo/CMakeFiles/sp_asinfo.dir/asinfo_csv.cpp.o" "gcc" "src/asinfo/CMakeFiles/sp_asinfo.dir/asinfo_csv.cpp.o.d"
  "/root/repo/src/asinfo/cdn_hg.cpp" "src/asinfo/CMakeFiles/sp_asinfo.dir/cdn_hg.cpp.o" "gcc" "src/asinfo/CMakeFiles/sp_asinfo.dir/cdn_hg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sp_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sp_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
