file(REMOVE_RECURSE
  "libsp_asinfo.a"
)
