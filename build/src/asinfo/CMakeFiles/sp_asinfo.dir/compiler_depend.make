# Empty compiler generated dependencies file for sp_asinfo.
# This may be replaced when dependencies are built.
