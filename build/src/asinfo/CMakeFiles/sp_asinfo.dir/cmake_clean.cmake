file(REMOVE_RECURSE
  "CMakeFiles/sp_asinfo.dir/as_org.cpp.o"
  "CMakeFiles/sp_asinfo.dir/as_org.cpp.o.d"
  "CMakeFiles/sp_asinfo.dir/asdb.cpp.o"
  "CMakeFiles/sp_asinfo.dir/asdb.cpp.o.d"
  "CMakeFiles/sp_asinfo.dir/asinfo_csv.cpp.o"
  "CMakeFiles/sp_asinfo.dir/asinfo_csv.cpp.o.d"
  "CMakeFiles/sp_asinfo.dir/cdn_hg.cpp.o"
  "CMakeFiles/sp_asinfo.dir/cdn_hg.cpp.o.d"
  "libsp_asinfo.a"
  "libsp_asinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_asinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
