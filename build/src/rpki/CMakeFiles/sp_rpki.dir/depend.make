# Empty dependencies file for sp_rpki.
# This may be replaced when dependencies are built.
