file(REMOVE_RECURSE
  "libsp_rpki.a"
)
