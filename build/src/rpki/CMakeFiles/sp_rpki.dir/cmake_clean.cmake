file(REMOVE_RECURSE
  "CMakeFiles/sp_rpki.dir/roa_csv.cpp.o"
  "CMakeFiles/sp_rpki.dir/roa_csv.cpp.o.d"
  "CMakeFiles/sp_rpki.dir/rov.cpp.o"
  "CMakeFiles/sp_rpki.dir/rov.cpp.o.d"
  "libsp_rpki.a"
  "libsp_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
