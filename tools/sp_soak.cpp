// sp_soak — seeded soak & chaos driver for the serve path (src/chaos).
//
//   sp_soak --dir /tmp/soak --seconds 30 --seed 7
//   sp_soak --dir /tmp/soak --minutes 30 --fd-limit 512 --max-rss-kb 524288
//   sp_soak --dir /tmp/soak --seconds 60 --connect 127.0.0.1:4647
//
// Default mode owns an in-process sp::net::Server and checks the full
// invariant set (liveness, corrupt-swap rejection, per-generation query
// conservation, byte-correct final sweep, RSS/p99 bounds). --connect
// points the same seeded schedule at an already-listening sp_serve
// (started with --listen); process-local checks are skipped, and the
// target must be able to read --dir (the reload fixtures live there).
//
// Exit status: 0 when every invariant held, 1 otherwise. The event
// schedule is a pure function of --seed, so a failing run replays.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "chaos/soak.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir DIR [--seconds N | --minutes N] [--seed S]\n"
               "          [--workers N] [--threads N] [--pairs N] [--fd-limit N]\n"
               "          [--max-rss-kb N] [--max-p99-us X] [--connect HOST:PORT] [--json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sp::chaos::SoakConfig config;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.workdir = v;
    } else if (arg == "--seconds") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.duration = std::chrono::seconds(std::strtoll(v, nullptr, 10));
    } else if (arg == "--minutes") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.duration = std::chrono::minutes(std::strtoll(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.server_workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.query_threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--pairs") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.pair_count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fd-limit") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.fd_soft_limit = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-rss-kb") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.max_rss_kb = std::strtol(v, nullptr, 10);
    } else if (arg == "--max-p99-us") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.max_p99_us = std::strtod(v, nullptr);
    } else if (arg == "--connect") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      const std::string target = v;
      const auto colon = target.rfind(':');
      if (colon == std::string::npos) return usage(argv[0]);
      config.connect_host = target.substr(0, colon);
      config.connect_port =
          static_cast<std::uint16_t>(std::strtoul(target.c_str() + colon + 1, nullptr, 10));
    } else if (arg == "--json") {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (config.workdir.empty()) return usage(argv[0]);

  const sp::chaos::SoakReport report = sp::chaos::run_soak(config);
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("soak %s: %llu events (%llu bursts, %llu reloads, %llu delta, "
                "%llu corrupt rejected, %llu faults), %llu client queries, "
                "sweep %llu keys / %llu mismatches, p99 %.1fus, peak RSS %ld kB\n",
                report.ok ? "OK" : "FAILED",
                static_cast<unsigned long long>(report.events),
                static_cast<unsigned long long>(report.query_events),
                static_cast<unsigned long long>(report.valid_reloads),
                static_cast<unsigned long long>(report.delta_reloads),
                static_cast<unsigned long long>(report.corrupt_reloads),
                static_cast<unsigned long long>(report.fault_events),
                static_cast<unsigned long long>(report.client_queries),
                static_cast<unsigned long long>(report.sweep_keys),
                static_cast<unsigned long long>(report.sweep_mismatches),
                report.p99_us, report.peak_rss_kb);
    for (const auto& violation : report.violations)
      std::printf("  violation: %s\n", violation.c_str());
  }
  return report.ok ? 0 : 1;
}
