// sp_lint — the project-invariant static analyzer CLI.
//
//   sp_lint [--json] [--root <dir>] [path...]
//
// With no paths, walks the default roots (src examples tests tools
// fuzz) under --root (default: current directory). Prints file:line
// diagnostics (or a JSON report with --json) and exits 1 when any
// unsuppressed finding remains — the contract tier1.sh stage 4 and the
// CI lint job enforce. Suppressed findings are listed with their
// reasons so the escape hatches stay auditable.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--root <dir>] [path...]\n"
               "  --json        machine-readable report on stdout\n"
               "  --root <dir>  directory the default roots are relative to\n"
               "  path...       files or directories to lint instead of the defaults\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  std::error_code ec;
  std::filesystem::current_path(root, ec);
  if (ec) {
    std::fprintf(stderr, "sp_lint: cannot chdir to %s\n", root.c_str());
    return 2;
  }
  if (paths.empty()) paths = sp::lint::default_roots();

  const sp::lint::LintReport report = sp::lint::lint_paths(paths);
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    for (const sp::lint::Finding& finding : report.findings) {
      if (finding.suppressed) {
        std::printf("%s:%zu: suppressed [%s] (%s)\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.suppress_reason.c_str());
      } else {
        std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str());
      }
    }
    std::printf("sp_lint: %zu files, %zu findings (%zu suppressed)\n", report.files_scanned,
                report.unsuppressed_count(), report.suppressed_count());
  }
  return report.unsuppressed_count() == 0 ? 0 : 1;
}
