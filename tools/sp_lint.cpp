// sp_lint — the project-invariant static analyzer CLI.
//
//   sp_lint [--json] [--root <dir>] [--rule <name>] [path...]
//
// With no paths, walks the default roots (src examples tests tools
// fuzz) under --root (default: current directory). Runs the per-file
// rule catalog plus the cross-file semantic passes — lock-rank (against
// DESIGN.md §3.5 when present), layering (against src/lint/layers.def
// when present), snapshot-escape, and the stale-suppression audit.
// Prints file:line diagnostics (or a JSON report with --json) and exits
// 1 when any unsuppressed finding remains — the contract tier1.sh
// stage 8 and the CI lint job enforce. Suppressed findings are listed
// with their reasons so the escape hatches stay auditable.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--root <dir>] [--rule <name>] [path...]\n"
               "  --json          machine-readable report on stdout\n"
               "  --root <dir>    directory the default roots are relative to\n"
               "  --rule <name>   report only findings of one rule\n"
               "  --design <md>   DESIGN.md for the lock-rank cross-check\n"
               "                  (default: <root>/DESIGN.md when present)\n"
               "  --layers <def>  layering declaration for the layering pass\n"
               "                  (default: <root>/src/lint/layers.def when present)\n"
               "  path...         files or directories to lint instead of the defaults\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string root = ".";
  std::string rule;
  std::string design;
  std::string layers;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rule = argv[++i];
    } else if (std::strcmp(argv[i], "--design") == 0 && i + 1 < argc) {
      design = argv[++i];
    } else if (std::strcmp(argv[i], "--layers") == 0 && i + 1 < argc) {
      layers = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  std::error_code ec;
  std::filesystem::current_path(root, ec);
  if (ec) {
    std::fprintf(stderr, "sp_lint: cannot chdir to %s\n", root.c_str());
    return 2;
  }
  // Auto-detection only makes sense for the whole-tree walk: the
  // DESIGN.md cross-check asserts every documented lock is annotated
  // *somewhere*, which is vacuously violated when linting one file.
  sp::lint::LintOptions options;
  if (paths.empty()) {
    paths = sp::lint::default_roots();
    options = sp::lint::LintOptions::detect(".");
  }
  if (!design.empty()) options.design_md_path = design;
  if (!layers.empty()) options.layers_def_path = layers;
  options.rule_filter = rule;

  const sp::lint::LintReport report = sp::lint::lint_paths(paths, options);
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    for (const sp::lint::Finding& finding : report.findings) {
      if (finding.suppressed) {
        std::printf("%s:%zu: suppressed [%s] (%s)\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.suppress_reason.c_str());
      } else {
        std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str());
      }
    }
    std::printf("sp_lint: %zu files, %zu findings (%zu suppressed)\n", report.files_scanned,
                report.unsuppressed_count(), report.suppressed_count());
  }
  return report.unsuppressed_count() == 0 ? 0 : 1;
}
