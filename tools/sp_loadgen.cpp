// sp_loadgen — closed-loop load generator for the sp_serve TCP front-end.
//
//   sp_loadgen --host 127.0.0.1 --port 9000 [options]
//
// Options (defaults in brackets):
//   --connections N   concurrent connections [4]
//   --pipeline N      QUERY frames in flight per connection [8]
//   --batch N         keys per QUERY frame [256]
//   --seed N          key-stream seed [1]
//   --v6-share F      fraction of v6 keys [0.25]
//   --v4-space P      v4 key space, e.g. 20.0.0.0/8 [0.0.0.0/0]
//   --v6-space P      v6 key space, e.g. 2600::/12 [::/0]
//   --requests N      frames per connection (deterministic byte streams;
//                     0 = run for --duration instead) [0]
//   --duration MS     wall-clock run length in duration mode [5000]
//   --json            emit the full report as one JSON object (the
//                     BENCH_net.json format) instead of the text summary
//
// The key stream is a pure function of (seed, connection, frame, slot),
// so two runs with the same seed and --requests send byte-identical
// request streams — the per-connection FNV-1a64 hashes in the report
// (and the net_loadgen determinism test) pin this.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/loadgen.h"

using namespace sp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sp_loadgen --host H --port P [--connections N] [--pipeline N]\n"
               "                  [--batch N] [--seed N] [--v6-share F] [--v4-space P]\n"
               "                  [--v6-space P] [--requests N] [--duration MS] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::LoadGenConfig config;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--host") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.host = value;
    } else if (arg == "--port") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.port = static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--connections") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.connections = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--pipeline") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.pipeline = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--batch") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.batch = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--v6-share") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.v6_share = std::strtod(value, nullptr);
    } else if (arg == "--v4-space" || arg == "--v6-space") {
      const char* value = next();
      if (value == nullptr) return usage();
      const auto prefix = Prefix::from_string(value);
      if (!prefix) {
        std::fprintf(stderr, "cannot parse %s '%s'\n", arg.c_str(), value);
        return 2;
      }
      (arg == "--v4-space" ? config.v4_space : config.v6_space) = *prefix;
    } else if (arg == "--requests") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.requests = std::strtoull(value, nullptr, 10);
    } else if (arg == "--duration") {
      const char* value = next();
      if (value == nullptr) return usage();
      config.duration = std::chrono::milliseconds(std::strtoll(value, nullptr, 10));
    } else {
      return usage();
    }
  }
  if (config.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return usage();
  }
  if ((config.v4_space.family() != Family::v4) || (config.v6_space.family() != Family::v6)) {
    std::fprintf(stderr, "--v4-space must be IPv4 and --v6-space IPv6\n");
    return 2;
  }

  const net::LoadGenReport report = net::run_loadgen(config);
  if (json) {
    std::printf("%s\n", report.to_json(config).c_str());
  } else {
    std::printf("qps=%.0f keys=%llu hits=%llu frames=%llu elapsed_s=%.3f "
                "p50_us=%.1f p90_us=%.1f p99_us=%.1f max_us=%llu\n",
                report.qps, static_cast<unsigned long long>(report.keys_answered),
                static_cast<unsigned long long>(report.hits),
                static_cast<unsigned long long>(report.frames_received), report.elapsed_s,
                report.p50_us, report.p90_us, report.p99_us,
                static_cast<unsigned long long>(report.max_us));
  }
  if (!report.ok) {
    std::fprintf(stderr, "loadgen failed: %s\n", report.error.c_str());
    return 1;
  }
  return 0;
}
