#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# pass over the threaded engines (parallel detection, SP-Tuner, obs
# metrics/tracing), an ASan/UBSan pass over the parser-heavy I/O
# (CSV fuzz round-trip, Happy Eyeballs, manifest UTF-8), and the
# project linter (sp_lint) over the whole tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Stage 1: the canonical tier-1 build and test run (see ROADMAP.md).
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Stage 2: race the threaded code paths under ThreadSanitizer. Only the
# thread-bearing test binaries are built — the figure benches and examples
# don't need instrumentation. The serve suite covers the RCU hot-reload
# race and the pooled batch lookups; the pipeline suite covers the DAG
# scheduler (layered-graph stress on a multi-worker pool) and the worker
# pool's task-queue mode it runs on; the obs suites race sharded metric
# increments and trace spans against concurrent scrapes/serialization.
# ReloadChurn is excluded: it is single-threaded (1000 sequential
# loads proving retired-stats boundedness) and TSan only slows it.
cmake -B build-tsan -S . -DSP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target core_detect_parallel_test \
  core_sptuner_parallel_test serve_lookup_test serve_service_test \
  core_worker_pool_test pipeline_stage_graph_test \
  obs_metrics_test obs_trace_test
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
  -R 'DetectParallel|Parallel|Serve|PipelineStageGraph|WorkerPool|Obs' \
  -E 'ReloadChurn')

# Stage 3: memory-safety pass over the byte-level parsers under
# AddressSanitizer + UBSan. The CSV suite includes a seeded fuzz-style
# round-trip property test (adversarial quote/CR/LF/comma fields), so
# this stage doubles as a bounded fuzz run on both CSV parsers.
cmake -B build-asan -S . -DSP_SANITIZE=address,undefined
cmake --build build-asan -j "$JOBS" --target io_csv_test \
  he_happy_eyeballs_test pipeline_manifest_test
(cd build-asan && ctest --output-on-failure -j "$JOBS" \
  -R 'Csv|HappyEyeballs|PipelineManifest')

# Stage 4: the project linter. Every finding in the tree must either be
# fixed or carry an explicit sp-lint suppression with a reason; zero
# unsuppressed findings is the bar (see DESIGN.md §3.5).
cmake --build build -j "$JOBS" --target sp_lint
./build/tools/sp_lint --json > build/sp_lint_report.json
python3 - <<'EOF'
import json
report = json.load(open("build/sp_lint_report.json"))
print(f"sp_lint: {report['files_scanned']} files, "
      f"{report['unsuppressed']} unsuppressed, {report['suppressed']} suppressed")
if report["unsuppressed"] != 0:
    for finding in report["findings"]:
        if not finding["suppressed"]:
            print(f"  {finding['file']}:{finding['line']}: "
                  f"[{finding['rule']}] {finding['message']}")
    raise SystemExit(1)
EOF
