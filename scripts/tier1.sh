#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# pass over the threaded engines (parallel detection, SP-Tuner, sketch
# detection, obs metrics/tracing), an ASan/UBSan pass over the
# parser-heavy I/O (CSV fuzz round-trip, Happy Eyeballs, manifest
# UTF-8), a loopback end-to-end smoke of the sp_serve TCP front-end, a
# sketch-vs-exact identity smoke on a scaled universe, an
# incremental-vs-scratch stream identity smoke, a chaos soak smoke
# (seeded fault injection against the serve path — plain with RSS/p99
# bounds, under ASan, and in external mode against a real sp_serve —
# plus a SIGINT-and-resume smoke on sp_pipeline), and the project
# linter (sp_lint) over the whole tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Stage 1: the canonical tier-1 build and test run (see ROADMAP.md).
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Stage 2: race the threaded code paths under ThreadSanitizer. Only the
# thread-bearing test binaries are built — the figure benches and examples
# don't need instrumentation. The serve suite covers the RCU hot-reload
# race and the pooled batch lookups; the pipeline suite covers the DAG
# scheduler (layered-graph stress on a multi-worker pool) and the worker
# pool's task-queue mode it runs on; the obs suites race sharded metric
# increments and trace spans against concurrent scrapes/serialization.
# ReloadChurn is excluded: it is single-threaded (1000 sequential
# loads proving retired-stats boundedness) and TSan only slows it.
# The net suites race the epoll workers: pipelined QUERY traffic over
# several connections against RELOAD hot-swaps, slow-reader
# backpressure, and the acceptor's inbox handoff. The sketch suites
# race the shard-parallel signature build and the sketch detection
# workers against each other (every test asserts byte-identity with
# the exact engine, so a race would also surface as a wrong answer).
# The stream suites race the delta re-scan workers (byte-identity with
# the exact engine across thread counts) and delta hot-reloads against
# concurrent sp_serve queries. The chaos soak suite races the entire
# serving stack at once — probe threads, fault injection, RELOAD churn —
# and the signal suite races the graceful-stop flag against the DAG
# scheduler's in-flight stages.
cmake -B build-tsan -S . -DSP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target core_detect_parallel_test \
  core_sptuner_parallel_test serve_lookup_test serve_service_test \
  core_worker_pool_test pipeline_stage_graph_test \
  obs_metrics_test obs_trace_test net_server_test net_protocol_test \
  sketch_detect_test sketch_signature_test \
  stream_detector_test stream_spdl_test stream_serve_delta_test \
  chaos_scenario_test chaos_soak_test pipeline_signal_test
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
  -R 'DetectParallel|Parallel|Serve|PipelineStageGraph|PipelineSignal|WorkerPool|Obs|NetServer|NetProtocol|Sketch|Signature|Lsh|SynthScale|Stream|Chaos' \
  -E 'ReloadChurn')

# Stage 3: memory-safety pass over the byte-level parsers under
# AddressSanitizer + UBSan. The CSV suite includes a seeded fuzz-style
# round-trip property test (adversarial quote/CR/LF/comma fields), so
# this stage doubles as a bounded fuzz run on both CSV parsers.
cmake -B build-asan -S . -DSP_SANITIZE=address,undefined
cmake --build build-asan -j "$JOBS" --target io_csv_test \
  he_happy_eyeballs_test pipeline_manifest_test
(cd build-asan && ctest --output-on-failure -j "$JOBS" \
  -R 'Csv|HappyEyeballs|PipelineManifest')

# Stage 4: loopback end-to-end smoke of the TCP front-end — the real
# binaries, a real socket. Convert a tiny fixture, start sp_serve
# --listen on an ephemeral port (the LISTENING line is the contract),
# drive it with sp_loadgen for 5 s, and scrape /metrics over plain HTTP.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/pairs.csv" <<'CSV'
v4_prefix,v6_prefix,similarity,shared_domains,v4_domains,v6_domains
20.0.0.0/8,2620::/16,0.9,3,4,5
CSV
./build/examples/sp_serve --convert "$SMOKE_DIR/pairs.csv" "$SMOKE_DIR/pairs.sibdb"
./build/examples/sp_serve --listen 127.0.0.1:0 "$SMOKE_DIR/pairs.sibdb" --workers 2 \
  > "$SMOKE_DIR/serve.out" 2> "$SMOKE_DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 100); do
  grep -q '^LISTENING ' "$SMOKE_DIR/serve.out" && break
  sleep 0.1
done
PORT="$(sed -n 's/^LISTENING .*:\([0-9]*\)$/\1/p' "$SMOKE_DIR/serve.out")"
[ -n "$PORT" ] || { echo "tier1: sp_serve --listen never bound" >&2; exit 1; }
./build/tools/sp_loadgen --host 127.0.0.1 --port "$PORT" \
  --connections 2 --pipeline 4 --batch 64 --duration 5000 --v4-space 16.0.0.0/4 --json \
  | tee "$SMOKE_DIR/loadgen.json"
python3 - "$SMOKE_DIR/loadgen.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["ok"], report.get("error")
assert report["keys_answered"] > 0 and report["hits"] > 0, report
print(f"net smoke: {report['qps']:.0f} keys/s, {report['hits']} hits")
EOF
if command -v curl > /dev/null; then
  curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '"net.queries"' \
    || { echo "tier1: /metrics scrape failed" >&2; exit 1; }
fi
kill -INT "$SERVE_PID" && wait "$SERVE_PID"

# SIGPIPE regression: a supervisor tailing our stdout can exit first
# (`| head -1` reads the LISTENING line and quits), so the STOPPED line
# written at shutdown hits a dead pipe. Without the SIG_IGN(SIGPIPE) in
# sp_serve's main() the write kills the process (exit 141 / SIGPIPE);
# with it the write fails harmlessly and shutdown completes with 0.
./build/examples/sp_serve --listen 127.0.0.1:0 "$SMOKE_DIR/pairs.sibdb" --workers 1 \
  > >(head -1 > "$SMOKE_DIR/sigpipe.out") 2> /dev/null &
SIGPIPE_PID=$!
for _ in $(seq 100); do
  grep -q '^LISTENING ' "$SMOKE_DIR/sigpipe.out" 2> /dev/null && break
  sleep 0.1
done
sleep 0.3  # let the head reader exit so the stdout pipe is truly dead
kill -INT "$SIGPIPE_PID"
wait "$SIGPIPE_PID" && SIGPIPE_STATUS=0 || SIGPIPE_STATUS=$?
if [ "$SIGPIPE_STATUS" -ne 0 ]; then
  echo "tier1: sp_serve died writing to a dead stdout pipe (status $SIGPIPE_STATUS)" >&2
  exit 1
fi

# Stage 5: sketch-at-scale smoke — both detection engines on a scaled
# universe (replicated hypergiant edge clusters, the regime the sketch
# filter exists for); sp_sketch_scale exits non-zero on any byte
# difference between the sketch and exact outputs. Small org/month
# counts keep the universe build to a few seconds; the checked-in
# BENCH_sketch.json carries the full scale-10 numbers.
./build/examples/sp_sketch_scale --scale 2 --orgs 8 --months 3 --threads 2

# Stage 6: incremental-vs-scratch smoke — the stream engine chained
# across three synthetic months, memcmp-compared against a from-scratch
# exact run after every month (sp_stream_smoke exits non-zero on the
# first byte difference; see DESIGN.md §3.8 for the dirty-set argument).
./build/examples/sp_stream_smoke --months 3 --threads 2

# Stage 7: chaos soak smoke — sp_soak runs a seeded fault schedule
# (query bursts, slow and mid-frame-disconnecting readers, connection
# floods, RELOAD churn with valid, delta and corrupt images) against the
# serve path and audits every invariant: liveness, corrupt-swap
# rejection, per-generation query conservation, a byte-correct final
# sweep against a fresh oracle. Three flavors:
#
# (a) plain build with hard resource bounds. The RSS ceiling is the
#     regression net for the retired-snapshot engine retention bug: the
#     service used to keep up to 64 retired snapshots (≈80 MB of
#     DIR-24-8 tables each) alive just for their tally counters, so
#     reload churn pushed peak RSS past 3 GB. Post-fix the same run
#     stays under ~300 MB; 900 MB trips only on a regression.
./build/tools/sp_soak --dir "$SMOKE_DIR/soak" --seconds 12 --seed 7 \
  --max-rss-kb 900000 --max-p99-us 50000
#
# (b) the same driver under ASan/UBSan: memory-safety over the whole
#     serving stack while faults fly (no RSS/p99 bounds — ASan inflates
#     both).
cmake --build build-asan -j "$JOBS" --target sp_soak
./build-asan/tools/sp_soak --dir "$SMOKE_DIR/soak-asan" --seconds 12 --seed 8
#
# (c) external mode against a real sp_serve --listen process — the
#     actual shipped binary, its signal handling and stdout contract
#     included. In-process-only audits (conservation, RSS) don't apply;
#     liveness, rejection and the final sweep do.
./build/examples/sp_serve --listen 127.0.0.1:0 "$SMOKE_DIR/pairs.sibdb" --workers 2 \
  > "$SMOKE_DIR/soak-serve.out" 2> "$SMOKE_DIR/soak-serve.err" &
SOAK_SERVE_PID=$!
for _ in $(seq 100); do
  grep -q '^LISTENING ' "$SMOKE_DIR/soak-serve.out" && break
  sleep 0.1
done
SOAK_PORT="$(sed -n 's/^LISTENING .*:\([0-9]*\)$/\1/p' "$SMOKE_DIR/soak-serve.out")"
[ -n "$SOAK_PORT" ] || { echo "tier1: soak sp_serve never bound" >&2; exit 1; }
./build/tools/sp_soak --dir "$SMOKE_DIR/soak-ext" --seconds 10 --seed 9 \
  --connect "127.0.0.1:$SOAK_PORT"
kill -INT "$SOAK_SERVE_PID" && wait "$SOAK_SERVE_PID"

# Signal-and-resume smoke: a real SIGINT to a real sp_pipeline process
# mid-campaign. Graceful stop exits 130 (or 0 if the campaign won the
# race and finished); resume must then converge to a complete manifest.
# The library-level byte-identity proof lives in pipeline_signal_test;
# this checks the process-level signal plumbing.
./build/examples/sp_pipeline run "$SMOKE_DIR/camp" --months 12 --orgs 1500 --threads 2 \
  > "$SMOKE_DIR/camp.out" 2>&1 &
CAMP_PID=$!
sleep 1
kill -INT "$CAMP_PID" 2> /dev/null || true
wait "$CAMP_PID" && CAMP_STATUS=0 || CAMP_STATUS=$?
if [ "$CAMP_STATUS" -ne 130 ] && [ "$CAMP_STATUS" -ne 0 ]; then
  echo "tier1: sp_pipeline SIGINT exited $CAMP_STATUS (want 130 or 0)" >&2
  cat "$SMOKE_DIR/camp.out" >&2
  exit 1
fi
./build/examples/sp_pipeline resume "$SMOKE_DIR/camp" --threads 2

# Stage 8: the project linter — the per-file rule catalog plus the
# cross-file semantic passes (DESIGN.md §3.10): lock-rank against the
# §3.5 table, the layering DAG against src/lint/layers.def, the
# snapshot-escape rule, and the stale-suppression audit (both auto-
# detected from the repo root). Every finding in the tree must either
# be fixed or carry an explicit sp-lint suppression with a reason; zero
# unsuppressed findings is the bar.
cmake --build build -j "$JOBS" --target sp_lint_cli
./build/tools/sp_lint --json > build/sp_lint_report.json
python3 - <<'EOF'
import json
report = json.load(open("build/sp_lint_report.json"))
print(f"sp_lint: {report['files_scanned']} files, "
      f"{report['unsuppressed']} unsuppressed, {report['suppressed']} suppressed")
if report["files_scanned"] < 100:
    raise SystemExit("sp_lint walked suspiciously few files — wrong cwd?")
if report["unsuppressed"] != 0:
    for finding in report["findings"]:
        if not finding["suppressed"]:
            print(f"  {finding['file']}:{finding['line']}: "
                  f"[{finding['rule']}] {finding['message']}")
    raise SystemExit(1)
EOF
