#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# pass over the threaded engines (parallel detection, SP-Tuner).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Stage 1: the canonical tier-1 build and test run (see ROADMAP.md).
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Stage 2: race the threaded code paths under ThreadSanitizer. Only the
# thread-bearing test binaries are built — the figure benches and examples
# don't need instrumentation. The serve suite covers the RCU hot-reload
# race and the pooled batch lookups; the pipeline suite covers the DAG
# scheduler (layered-graph stress on a multi-worker pool) and the worker
# pool's task-queue mode it runs on.
cmake -B build-tsan -S . -DSP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target core_detect_parallel_test \
  core_sptuner_parallel_test serve_lookup_test serve_service_test \
  core_worker_pool_test pipeline_stage_graph_test
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
  -R 'DetectParallel|Parallel|Serve|PipelineStageGraph|WorkerPool')
