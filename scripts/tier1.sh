#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# pass over the threaded engines (parallel detection, SP-Tuner, obs
# metrics/tracing) and an ASan/UBSan pass over the parser-heavy I/O
# (CSV fuzz round-trip, Happy Eyeballs, manifest UTF-8).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# Stage 1: the canonical tier-1 build and test run (see ROADMAP.md).
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Stage 2: race the threaded code paths under ThreadSanitizer. Only the
# thread-bearing test binaries are built — the figure benches and examples
# don't need instrumentation. The serve suite covers the RCU hot-reload
# race and the pooled batch lookups; the pipeline suite covers the DAG
# scheduler (layered-graph stress on a multi-worker pool) and the worker
# pool's task-queue mode it runs on; the obs suites race sharded metric
# increments and trace spans against concurrent scrapes/serialization.
cmake -B build-tsan -S . -DSP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target core_detect_parallel_test \
  core_sptuner_parallel_test serve_lookup_test serve_service_test \
  core_worker_pool_test pipeline_stage_graph_test \
  obs_metrics_test obs_trace_test
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
  -R 'DetectParallel|Parallel|Serve|PipelineStageGraph|WorkerPool|Obs')

# Stage 3: memory-safety pass over the byte-level parsers under
# AddressSanitizer + UBSan. The CSV suite includes a seeded fuzz-style
# round-trip property test (adversarial quote/CR/LF/comma fields), so
# this stage doubles as a bounded fuzz run on both CSV parsers.
cmake -B build-asan -S . -DSP_SANITIZE=address,undefined
cmake --build build-asan -j "$JOBS" --target io_csv_test \
  he_happy_eyeballs_test pipeline_manifest_test
(cd build-asan && ctest --output-on-failure -j "$JOBS" \
  -R 'Csv|HappyEyeballs|PipelineManifest')
