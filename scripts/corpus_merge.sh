#!/usr/bin/env bash
# corpus_merge.sh — deterministic, content-addressed merge of fuzz
# inputs into a checked-in corpus directory.
#
#   scripts/corpus_merge.sh <target> <src_dir>...
#   scripts/corpus_merge.sh --selftest
#
# Copies every regular file found under the source directories into
# fuzz/corpus/<target>/, deduplicating by content: an input whose
# sha256 already exists anywhere in the destination (under any name) is
# skipped. New files are named <sha256-prefix>.<ext> so the merged
# corpus is independent of source naming, source ordering, and of how
# many times the merge runs — merging the same inputs twice is a no-op,
# which is exactly what lets CI fold a fuzz run's findings back into
# the tree without churning the checked-in corpus.
#
# <target> must be an existing fuzz/corpus/ subdirectory (one per fuzz
# harness); a typo'd target is an error, not a new directory.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

hash_of() {
  sha256sum "$1" | cut -d' ' -f1
}

# merge <dest_dir> <src_dir>... — prints "merged skipped" counts.
merge() {
  local dest="$1"
  shift
  declare -A have=()
  local f
  while IFS= read -r -d '' f; do
    have["$(hash_of "$f")"]=1
  done < <(find "$dest" -maxdepth 1 -type f -print0)

  local merged=0 skipped=0
  # Sort for a deterministic scan order; dedup is content-based so the
  # result set is order-independent anyway, but the log should be too.
  while IFS= read -r -d '' f; do
    local h base ext name
    h="$(hash_of "$f")"
    if [[ -n "${have[$h]:-}" ]]; then
      skipped=$((skipped + 1))
      continue
    fi
    have["$h"]=1
    base="$(basename "$f")"
    ext="${base##*.}"
    if [[ "$ext" == "$base" || "$base" == .* ]]; then ext="bin"; fi
    name="${h:0:16}.${ext}"
    cp "$f" "$dest/$name"
    echo "  + $name  (from ${f})"
    merged=$((merged + 1))
  done < <(find "$@" -maxdepth 1 -type f -print0 | sort -z)
  echo "merged $merged, skipped $skipped duplicates"
}

selftest() {
  local dest src1 src2 before after again
  sandbox="$(mktemp -d)"  # global: the EXIT trap outlives this function
  trap 'rm -rf "$sandbox"' EXIT
  dest="$sandbox/corpus"
  src1="$sandbox/run1"
  src2="$sandbox/run2"
  mkdir -p "$dest" "$src1" "$src2"
  printf 'alpha' > "$dest/seed.csv"
  printf 'alpha' > "$src1/dup_of_seed.csv"       # content dup under a new name
  printf 'beta'  > "$src1/fresh.csv"
  printf 'beta'  > "$src2/fresh_again.csv"       # dup across source dirs
  printf 'gamma' > "$src2/noext"                 # extension fallback

  merge "$dest" "$src1" "$src2" > /dev/null
  before="$(ls "$dest" | sort)"
  [[ "$(ls "$dest" | wc -l)" -eq 3 ]] || { echo "FAIL: expected 3 files, got: $before"; exit 1; }
  ls "$dest" | grep -q '\.bin$' || { echo "FAIL: extension fallback missing"; exit 1; }

  # Idempotency: the same merge again changes nothing — names or bytes.
  after="$(find "$dest" -type f -exec sha256sum {} + | sort)"
  merge "$dest" "$src1" "$src2" > /dev/null
  again="$(find "$dest" -type f -exec sha256sum {} + | sort)"
  [[ "$after" == "$again" ]] || { echo "FAIL: re-merge was not a no-op"; exit 1; }

  # Determinism: a fresh destination fed the same inputs converges to the
  # same content-addressed names.
  local dest2
  dest2="$sandbox/corpus2"
  mkdir -p "$dest2"
  printf 'alpha' > "$dest2/seed.csv"
  merge "$dest2" "$src2" "$src1" > /dev/null   # reversed source order
  [[ "$(ls "$dest2" | sort)" == "$before" ]] || { echo "FAIL: merge not deterministic"; exit 1; }

  echo "corpus_merge selftest OK"
}

if [[ "${1:-}" == "--selftest" ]]; then
  selftest
  exit 0
fi

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <target> <src_dir>...   (or --selftest)" >&2
  exit 2
fi

target="$1"
shift
dest="$repo_root/fuzz/corpus/$target"
if [[ ! -d "$dest" ]]; then
  echo "error: unknown fuzz target '$target' — no $dest" >&2
  echo "known targets: $(ls "$repo_root/fuzz/corpus" | tr '\n' ' ')" >&2
  exit 2
fi
for src in "$@"; do
  [[ -d "$src" ]] || { echo "error: source '$src' is not a directory" >&2; exit 2; }
done

merge "$dest" "$@"
