#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ file in the tree against
# .clang-format. Gated on the tool being present so environments without
# a clang toolchain (the gcc-only container, minimal CI runners) skip
# cleanly instead of failing: exit 0 + a notice, because formatting is a
# style gate, not a correctness gate.
#
# Usage: scripts/format.sh [--check]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="fix"
if [[ "${1:-}" == "--check" ]]; then
  mode="check"
fi

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format.sh: clang-format not found; skipping (style gate only)"
  exit 0
fi

mapfile -t files < <(find src examples tests tools fuzz \
  \( -name '*.cpp' -o -name '*.cc' -o -name '*.h' -o -name '*.hpp' \) \
  -not -path '*/build*' -not -path '*/corpus/*' | sort)

if [[ "$mode" == "check" ]]; then
  clang-format --dry-run --Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
else
  clang-format -i "${files[@]}"
  echo "format.sh: ${#files[@]} files formatted"
fi
