// DNS substrate demo: an authoritative server loop over the wire codec.
//
// Builds a zone with CNAME chains, then answers raw RFC 1035 query bytes
// exactly like a resolver-facing front end would (no sockets; the byte
// path is the point). Shows how the "response name" identity the sibling
// methodology relies on emerges from CNAME chasing.
//
// Run: ./build/examples/dns_wire_demo
#include <cstdio>

#include "dns/snapshot.h"
#include "dns/zone.h"

using namespace sp;
using namespace sp::dns;

namespace {

void query_and_print(const ZoneDatabase& zones, const char* name, RecordType type) {
  // Client side: build and serialize the query.
  Message query;
  query.header.id = 0x4242;
  query.questions.push_back({DomainName::must_parse(name), type});
  const auto query_wire = encode_message(query);
  std::printf("query  %-28s %-5s (%zu bytes on the wire)\n", name,
              record_type_name(type).data(), query_wire.size());

  // Server side: parse the bytes, answer, serialize the response.
  const auto parsed_query = decode_message(query_wire);
  if (!parsed_query) {
    std::printf("  server failed to parse query\n");
    return;
  }
  const Message response = zones.serve(*parsed_query);
  const auto response_wire = encode_message(response);

  // Client side again: parse the response bytes.
  const auto parsed = decode_message(response_wire);
  if (!parsed) {
    std::printf("  client failed to parse response\n");
    return;
  }
  std::printf("  rcode %u, %zu answers (%zu bytes, name compression on)\n",
              parsed->header.rcode, parsed->answers.size(), response_wire.size());
  for (const auto& record : parsed->answers) {
    std::printf("    %-28s %-5s ", record.name.to_string().c_str(),
                record_type_name(record.type).data());
    switch (record.type) {
      case RecordType::A:
        std::printf("%s\n", std::get<IPv4Address>(record.data).to_string().c_str());
        break;
      case RecordType::AAAA:
        std::printf("%s\n", std::get<IPv6Address>(record.data).to_string().c_str());
        break;
      case RecordType::CNAME:
      case RecordType::NS:
        std::printf("%s\n", std::get<DomainName>(record.data).to_string().c_str());
        break;
      default:
        std::printf("...\n");
        break;
    }
  }
}

}  // namespace

int main() {
  // A zone where two customer domains CNAME into the same CDN edge — after
  // chasing, both share one "response name" identity.
  ZoneDatabase zones;
  zones.add(ResourceRecord::cname(DomainName::must_parse("www.shop-a.com"),
                                  DomainName::must_parse("edge7.cdn.example")));
  zones.add(ResourceRecord::cname(DomainName::must_parse("www.shop-b.com"),
                                  DomainName::must_parse("edge7.cdn.example")));
  zones.add(ResourceRecord::a(DomainName::must_parse("edge7.cdn.example"),
                              *IPv4Address::from_string("20.1.1.10")));
  zones.add(ResourceRecord::aaaa(DomainName::must_parse("edge7.cdn.example"),
                                 *IPv6Address::from_string("2620:100::10")));
  zones.add(ResourceRecord::a(DomainName::must_parse("direct.example.org"),
                              *IPv4Address::from_string("20.2.2.2")));

  query_and_print(zones, "www.shop-a.com", RecordType::A);
  query_and_print(zones, "www.shop-b.com", RecordType::AAAA);
  query_and_print(zones, "direct.example.org", RecordType::A);
  query_and_print(zones, "missing.example.org", RecordType::A);

  // The snapshot view the sibling pipeline consumes: note both shop
  // domains collapse into the single edge identity.
  const std::vector<DomainName> queries = {DomainName::must_parse("www.shop-a.com"),
                                           DomainName::must_parse("www.shop-b.com"),
                                           DomainName::must_parse("direct.example.org")};
  const auto snapshot = ResolutionSnapshot::resolve_all(zones, queries, Date{2024, 9, 11});
  std::printf("\nsnapshot: %zu resolved domains, %zu dual-stack\n", snapshot.domain_count(),
              snapshot.dual_stack_count());
  for (const auto& entry : snapshot.entries()) {
    std::printf("  %s -> identity %s (%zu A, %zu AAAA)\n", entry.queried.to_string().c_str(),
                entry.response_name.to_string().c_str(), entry.v4.size(), entry.v6.size());
  }
  return 0;
}
