// Geolocation transfer: IPv4 → IPv6 via sibling prefixes.
//
// The paper's introduction names this as a concrete application: a
// geolocation provider has rich IPv4 coverage but sparse IPv6 coverage;
// sibling prefixes let it transfer v4 locations to the v6 prefixes
// hosting the same services. The synthetic universe knows each
// organization's true location, so the example also measures the accuracy
// of the transfer.
//
// Run: ./build/examples/geo_transfer
#include <cstdio>
#include <map>
#include <unordered_map>

#include "core/detect.h"
#include "synth/determinism.h"
#include "synth/universe.h"

using namespace sp;

namespace {

const char* kCountries[] = {"DE", "US", "JP", "BR", "FR", "IN", "ZA", "AU", "NL", "SE"};

// Each org's true location: deterministic from its id (the ground truth a
// geo provider tries to learn).
const char* true_country(const synth::OrgSpec& org) {
  return kCountries[synth::pick(std::size(kCountries), 0x6E0u, org.id)];
}

}  // namespace

int main() {
  synth::SynthConfig config;
  config.organization_count = 600;
  config.months = 13;
  const synth::SyntheticInternet universe(config);

  // The provider's asset: a v4 geo database covering every v4 prefix
  // (derived from the true locations).
  std::unordered_map<Prefix, const char*> v4_geo;
  for (const auto& org : universe.orgs()) {
    for (const auto& prefix : org.v4_prefixes) v4_geo[prefix] = true_country(org);
  }
  std::printf("IPv4 geo database: %zu prefixes\n", v4_geo.size());

  // Detect siblings and transfer.
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);

  std::unordered_map<Prefix, const char*> v6_geo;  // transferred entries
  std::size_t conflicts = 0;
  for (const auto& pair : pairs) {
    const auto it = v4_geo.find(pair.v4);
    if (it == v4_geo.end()) continue;
    const auto [existing, inserted] = v6_geo.try_emplace(pair.v6, it->second);
    if (!inserted && existing->second != it->second) ++conflicts;
  }

  // Score against the truth.
  std::size_t scored = 0;
  std::size_t correct = 0;
  for (const auto& org : universe.orgs()) {
    for (const auto& prefix : org.v6_prefixes) {
      const auto it = v6_geo.find(prefix);
      if (it == v6_geo.end()) continue;
      ++scored;
      if (std::string_view(it->second) == true_country(org)) ++correct;
    }
  }

  std::size_t v6_total = 0;
  for (const auto& org : universe.orgs()) v6_total += org.v6_prefixes.size();
  std::printf("transferred locations to %zu of %zu IPv6 prefixes (%.1f%% coverage),"
              " %zu conflicting transfers\n",
              v6_geo.size(), v6_total,
              100.0 * static_cast<double>(v6_geo.size()) / static_cast<double>(v6_total),
              conflicts);
  std::printf("accuracy on transferred prefixes: %zu of %zu correct (%.1f%%)\n", correct,
              scored, 100.0 * static_cast<double>(correct) / static_cast<double>(scored));
  std::printf("\nerrors come from cross-organization pairs (multi-CDN hosting and the\n"
              "monitoring mesh) — exactly the cases the paper flags for manual review;\n"
              "filtering to same-organization pairs removes them at the cost of coverage.\n");

  // The refined recipe: only transfer over same-org pairs.
  std::unordered_map<Prefix, const char*> filtered_geo;
  for (const auto& pair : pairs) {
    const auto v4_route = universe.rib().lookup(pair.v4);
    const auto v6_route = universe.rib().lookup(pair.v6);
    if (!v4_route || !v6_route ||
        !universe.as_orgs().same_org(v4_route->origin_as, v6_route->origin_as)) {
      continue;
    }
    const auto it = v4_geo.find(pair.v4);
    if (it != v4_geo.end()) filtered_geo.emplace(pair.v6, it->second);
  }
  std::size_t filtered_correct = 0;
  std::size_t filtered_scored = 0;
  for (const auto& org : universe.orgs()) {
    for (const auto& prefix : org.v6_prefixes) {
      const auto it = filtered_geo.find(prefix);
      if (it == filtered_geo.end()) continue;
      ++filtered_scored;
      if (std::string_view(it->second) == true_country(org)) ++filtered_correct;
    }
  }
  std::printf("\nsame-org-only transfer: %zu prefixes covered, accuracy %.1f%%\n",
              filtered_geo.size(),
              100.0 * static_cast<double>(filtered_correct) /
                  static_cast<double>(filtered_scored));
  return 0;
}
