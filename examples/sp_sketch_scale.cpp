// Detection at scale: the sketch engine vs the exact engine on a scaled
// synthetic universe.
//
// The synth `scale` knob multiplies domain and monitoring-site counts and
// switches hypergiant CDNs to replicated edge deployments — the regime
// the paper's full-universe runs live in, where the exact engine's
// candidate sets explode. The sketch engine (bottom-k signatures + LSH
// banding, sp::sketch) prunes candidates while provably reproducing the
// exact output byte for byte.
//
// Run: ./build/examples/sp_sketch_scale [--scale N] [--threads T]
//      [--orgs N] [--months N] [--skip-exact] [--quiet]
//
// Exit code 0 when the sketch and exact pair lists are identical (or
// --skip-exact was given), 1 on a mismatch — which makes this binary the
// tier-1 scale smoke check.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/detect.h"
#include "sketch/detect_sketch.h"
#include "synth/universe.h"

using namespace sp;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  synth::SynthConfig config;
  unsigned threads = 1;
  bool run_exact = true;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> int {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    if (arg == "--scale") {
      config.scale = next();
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(next());
    } else if (arg == "--orgs") {
      config.organization_count = next();
    } else if (arg == "--months") {
      config.months = next();
    } else if (arg == "--skip-exact") {
      run_exact = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale N] [--threads T] [--orgs N] [--months N]"
                   " [--skip-exact] [--quiet]\n",
                   argv[0]);
      return 2;
    }
  }

  auto start = std::chrono::steady_clock::now();
  const synth::SyntheticInternet universe(config);
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const double build_ms = ms_since(start);
  if (!quiet) {
    std::printf("universe: scale %d, %zu orgs, %zu domains (%.0f ms to build)\n",
                config.scale, universe.orgs().size(), universe.domains().size(), build_ms);
  }

  start = std::chrono::steady_clock::now();
  sketch::SketchStats stats;
  const auto sketched = sketch::detect_sibling_prefixes(
      corpus, {.threads = threads, .strategy = core::DetectStrategy::Sketch}, {}, &stats);
  const double sketch_ms = ms_since(start);
  if (!quiet) {
    std::printf("sketch:   %zu pairs in %.0f ms (%.0f ms signatures, "
                "%zu/%zu sources fell back, %zu LSH candidates, "
                "%zu estimates skipped, %zu survivors verified)\n",
                sketched.size(), sketch_ms, stats.signature_build_ms,
                stats.sources_fallback, stats.sources_total, stats.lsh_candidates,
                stats.estimates_skipped, stats.survivors_verified);
    std::printf("          directions %.0f + %.0f ms, merge %.0f ms\n",
                stats.scan.v4_direction_ms, stats.scan.v6_direction_ms, stats.scan.merge_ms);
  }

  if (!run_exact) return 0;

  start = std::chrono::steady_clock::now();
  core::DetectStats exact_stats;
  const auto exact =
      core::detect_sibling_prefixes(corpus, {.threads = threads, .stats = &exact_stats});
  const double exact_ms = ms_since(start);
  if (!quiet) {
    std::printf("exact:    %zu pairs in %.0f ms (%llu candidates evaluated) — "
                "sketch speedup %.1fx\n",
                exact.size(), exact_ms,
                static_cast<unsigned long long>(exact_stats.candidates_evaluated),
                sketch_ms > 0.0 ? exact_ms / sketch_ms : 0.0);
  }

  if (sketched.size() != exact.size()) {
    std::fprintf(stderr, "MISMATCH: %zu sketch pairs vs %zu exact pairs\n", sketched.size(),
                 exact.size());
    return 1;
  }
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (sketched[i].v4 != exact[i].v4 || sketched[i].v6 != exact[i].v6 ||
        std::memcmp(&sketched[i].similarity, &exact[i].similarity, sizeof(double)) != 0) {
      std::fprintf(stderr, "MISMATCH at pair %zu\n", i);
      return 1;
    }
  }
  if (!quiet) std::printf("identity: sketch output is byte-identical to exact\n");
  return 0;
}
