// RPKI consistency audit for sibling prefixes (paper section 4.8).
//
// For every sibling pair, validate both announcements against the ROA set
// and flag the inconsistent combinations: a pair where only one family is
// protected (valid + not-found) loses resilience, and conflicting or
// invalid statuses risk unreachability over one protocol. The output is
// the remediation list an operator would work through.
//
// Run: ./build/examples/rpki_consistency
#include <array>
#include <cstdio>

#include "core/detect.h"
#include "rpki/rov.h"
#include "synth/universe.h"

using namespace sp;

int main() {
  synth::SynthConfig config;
  config.organization_count = 600;
  config.months = 13;
  const synth::SyntheticInternet universe(config);
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);

  rpki::Validator validator;
  for (const auto& roa : universe.roas_at(universe.month_count() - 1)) {
    (void)validator.add_roa(roa);
  }
  std::printf("validating %zu sibling pairs against %zu ROAs\n\n", pairs.size(),
              validator.roa_count());

  std::array<std::size_t, rpki::kPairRovStatusCount> counts{};
  std::size_t remediation_shown = 0;
  for (const auto& pair : pairs) {
    const auto v4_route = universe.rib().lookup(pair.v4);
    const auto v6_route = universe.rib().lookup(pair.v6);
    if (!v4_route || !v6_route) continue;
    const auto v4_status = validator.validate(v4_route->prefix, v4_route->origin_as);
    const auto v6_status = validator.validate(v6_route->prefix, v6_route->origin_as);
    const auto status = rpki::classify_pair(v4_status, v6_status);
    ++counts[static_cast<std::size_t>(status)];

    // Print the first few actionable findings.
    if (status != rpki::PairRovStatus::BothValid &&
        status != rpki::PairRovStatus::BothNotFound && remediation_shown < 8) {
      ++remediation_shown;
      std::printf("  [%s] %s (AS%u is %s) <-> %s (AS%u is %s)\n",
                  rpki::pair_rov_status_name(status).data(), pair.v4.to_string().c_str(),
                  v4_route->origin_as, rpki::rov_status_name(v4_status).data(),
                  pair.v6.to_string().c_str(), v6_route->origin_as,
                  rpki::rov_status_name(v6_status).data());
    }
  }

  std::printf("\nROV status of sibling pairs:\n");
  std::size_t total = 0;
  for (const auto count : counts) total += count;
  for (int i = 0; i < rpki::kPairRovStatusCount; ++i) {
    std::printf("  %-22s %6zu (%.1f%%)\n",
                rpki::pair_rov_status_name(static_cast<rpki::PairRovStatus>(i)).data(),
                counts[static_cast<std::size_t>(i)],
                100.0 * static_cast<double>(counts[static_cast<std::size_t>(i)]) /
                    static_cast<double>(total));
  }

  const std::size_t needs_roa =
      counts[static_cast<std::size_t>(rpki::PairRovStatus::ValidNotFound)];
  std::printf("\nrecommendation: create ROAs for the unprotected side of the %zu"
              " valid/not-found pairs first — one family is already protected,\n"
              "the other is an open hijack path for the same services.\n",
              needs_roa);
  return 0;
}
