// The monthly publication workflow: generate this month's sibling list,
// diff it against last month's release, and print the changelog a
// subscriber would consume (the paper publishes such a list at
// sibling-prefixes.github.io).
//
// Run: ./build/examples/release_diff
#include <cstdio>
#include <string>

#include "core/detect.h"
#include "core/sibling_diff.h"
#include "core/sibling_list_io.h"
#include "core/sptuner.h"
#include "synth/universe.h"

using namespace sp;

namespace {

std::vector<core::SiblingPair> release_for_month(const synth::SyntheticInternet& universe,
                                                 int month) {
  const auto corpus =
      core::DualStackCorpus::build(universe.snapshot_at(month), universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);
  const core::SpTunerMs tuner(corpus, {.v4_threshold = 24, .v6_threshold = 48});
  return tuner.tune_all(pairs).pairs;
}

}  // namespace

int main() {
  synth::SynthConfig config;
  config.organization_count = 500;
  config.months = 14;
  const synth::SyntheticInternet universe(config);
  const int this_month = universe.month_count() - 1;
  const int last_month = this_month - 1;

  // Last month's release, round-tripped through the published CSV format.
  const std::string previous_path = "siblings_previous.csv";
  const auto previous = release_for_month(universe, last_month);
  if (!core::write_sibling_list(previous_path, previous)) {
    std::fprintf(stderr, "cannot write %s\n", previous_path.c_str());
    return 1;
  }
  const auto published = core::read_sibling_list(previous_path);
  if (!published) {
    std::fprintf(stderr, "cannot reload %s\n", previous_path.c_str());
    return 1;
  }

  const auto current = release_for_month(universe, this_month);
  const auto diff = core::diff_sibling_lists(*published, current);

  std::printf("release %s -> %s\n",
              universe.date_of_month(last_month).to_string().c_str(),
              universe.date_of_month(this_month).to_string().c_str());
  std::printf("  previous release: %zu pairs\n", published->size());
  std::printf("  current release:  %zu pairs\n", current.size());
  std::printf("  added %zu, removed %zu, similarity changed %zu, unchanged %zu\n\n",
              diff.added.size(), diff.removed.size(), diff.changed.size(),
              diff.unchanged.size());

  std::printf("changelog preview:\n");
  std::size_t shown = 0;
  for (const auto& pair : diff.added) {
    if (++shown > 5) break;
    std::printf("  + %-20s <-> %-26s (jaccard %.2f)\n", pair.v4.to_string().c_str(),
                pair.v6.to_string().c_str(), pair.similarity);
  }
  shown = 0;
  for (const auto& pair : diff.removed) {
    if (++shown > 5) break;
    std::printf("  - %-20s <-> %-26s\n", pair.v4.to_string().c_str(),
                pair.v6.to_string().c_str());
  }
  shown = 0;
  for (const auto& change : diff.changed) {
    if (++shown > 5) break;
    std::printf("  ~ %-20s <-> %-26s jaccard %.2f -> %.2f\n",
                change.before.v4.to_string().c_str(),
                change.before.v6.to_string().c_str(), change.before.similarity,
                change.after.similarity);
  }

  const std::string current_path = "siblings_current.csv";
  if (core::write_sibling_list(current_path, current)) {
    std::printf("\npublished %s (%zu pairs)\n", current_path.c_str(), current.size());
  }
  std::printf("subscribers apply the %zu added and %zu removed pairs to their ACLs;\n"
              "unchanged pairs (%zu, %.1f%%) need no action.\n",
              diff.added.size(), diff.removed.size(), diff.unchanged.size(),
              100.0 * static_cast<double>(diff.unchanged.size()) /
                  static_cast<double>(current.size()));
  return 0;
}
