// Longitudinal sibling study: how stable are sibling prefixes over a year?
//
// Mirrors the paper's section 4.1/4.3 workflow: track dual-stack domains
// over monthly snapshots, report visibility and stability, then classify
// how the pair list evolved between the first and the last snapshot.
//
// Run: ./build/examples/longitudinal_study
#include <cstdio>

#include "core/detect.h"
#include "core/longitudinal.h"
#include "synth/universe.h"

using namespace sp;

int main() {
  synth::SynthConfig config;
  config.organization_count = 600;
  config.months = 13;  // one year of monthly snapshots
  const synth::SyntheticInternet universe(config);

  core::LongitudinalTracker tracker;
  std::vector<core::SiblingPair> first_pairs;
  std::vector<core::SiblingPair> last_pairs;
  for (int month = 0; month < universe.month_count(); ++month) {
    const auto snapshot = universe.snapshot_at(month);
    tracker.add_snapshot(snapshot, universe.rib());
    if (month == 0 || month == universe.month_count() - 1) {
      const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
      auto pairs = core::detect_sibling_prefixes(corpus);
      (month == 0 ? first_pairs : last_pairs) = std::move(pairs);
    }
    std::printf("ingested %s (%zu domains)\n",
                universe.date_of_month(month).to_string().c_str(),
                universe.snapshot_at(month).domain_count());
  }

  std::printf("\ntracked %zu dual-stack domains across %zu snapshots\n",
              tracker.tracked_domain_count(), tracker.snapshot_count());
  const auto histogram = tracker.visibility_histogram();
  std::printf("consistently visible (all %zu snapshots): %zu (%.1f%%)\n",
              tracker.snapshot_count(), tracker.consistent_domain_count(),
              100.0 * static_cast<double>(tracker.consistent_domain_count()) /
                  static_cast<double>(tracker.tracked_domain_count()));
  std::printf("seen exactly once: %zu (%.1f%%)\n", histogram.front(),
              100.0 * static_cast<double>(histogram.front()) /
                  static_cast<double>(tracker.tracked_domain_count()));

  const auto stability = tracker.stability();
  const std::size_t year = stability.v4_prefix_stable.size() - 1;
  std::printf("\nof the consistent domains, compared with one year ago:\n");
  std::printf("  same v4 prefix: %.1f%%   same v6 prefix: %.1f%%\n",
              stability.v4_prefix_stable[year] * 100.0,
              stability.v6_prefix_stable[year] * 100.0);
  std::printf("  same addresses (both families): %.1f%%\n",
              stability.address_stable[year] * 100.0);

  const auto report = core::classify_pair_changes(first_pairs, last_pairs);
  std::printf("\npair list evolution (%zu -> %zu pairs):\n", first_pairs.size(),
              last_pairs.size());
  std::printf("  new: %zu, unchanged: %zu, changed similarity: %zu\n", report.fresh.size(),
              report.unchanged.size(), report.changed_new.size());
  if (!report.changed_new.empty()) {
    double down = 0;
    for (std::size_t i = 0; i < report.changed_new.size(); ++i) {
      if (report.changed_new[i] < report.changed_old[i]) ++down;
    }
    std::printf("  of the changed pairs, %.0f%% decreased in similarity\n",
                100.0 * down / static_cast<double>(report.changed_new.size()));
  }
  std::printf("\ntakeaway: consistent dual-stack domains are stable enough to make\n"
              "sibling prefixes meaningful across months (paper section 4.1).\n");
  return 0;
}
