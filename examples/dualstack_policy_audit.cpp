// Operator scenario: extending IPv4 policies to IPv6 with sibling prefixes
// (the paper's motivating use case in sections 1 and 6).
//
// An operator maintains an IPv4 blocklist. For each blocked prefix this
// example finds the sibling IPv6 prefixes — the ones hosting the same
// services — so the block can be applied consistently on both families,
// closing the "switch to IPv6" backdoor. The full sibling list is also
// exported as the CSV artifact the paper publishes.
//
// Run: ./build/examples/dualstack_policy_audit [output.csv]
#include <cstdio>
#include <string>

#include "core/detect.h"
#include "core/sibling_list_io.h"
#include "core/sptuner.h"
#include "synth/universe.h"

using namespace sp;

int main(int argc, char** argv) {
  // Stand-in for the operator's measurement feeds (DNS + Routeviews).
  synth::SynthConfig config;
  config.organization_count = 600;
  config.months = 13;
  const synth::SyntheticInternet universe(config);
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);
  const core::SpTunerMs tuner(corpus, {.v4_threshold = 24, .v6_threshold = 48});
  const auto tuned = tuner.tune_all(pairs);
  std::printf("sibling dataset: %zu pairs (default), %zu after SP-Tuner /24-/48\n\n",
              pairs.size(), tuned.pairs.size());

  // The operator's IPv4 blocklist: take three v4 prefixes that actually
  // appear in pairs, as stand-ins for abuse sources.
  std::vector<Prefix> blocklist;
  for (std::size_t i = 0; i < tuned.pairs.size() && blocklist.size() < 3; i += 97) {
    blocklist.push_back(tuned.pairs[i].v4);
  }

  std::printf("IPv4 blocklist audit:\n");
  for (const auto& blocked : blocklist) {
    std::printf("  blocked %s\n", blocked.to_string().c_str());
    bool found = false;
    for (const auto& pair : tuned.pairs) {
      if (pair.v4 != blocked) continue;
      found = true;
      std::printf("    -> extend block to %-24s (jaccard %.2f, %u shared domains)\n",
                  pair.v6.to_string().c_str(), pair.similarity, pair.shared_domains);
    }
    if (!found) std::printf("    -> no sibling IPv6 prefix known\n");
  }

  // Reverse direction: an IPv6 prefix to be rate-limited — what is its
  // IPv4 counterpart?
  const Prefix v6_target = tuned.pairs.front().v6;
  std::printf("\nIPv6 -> IPv4 lookup for %s:\n", v6_target.to_string().c_str());
  for (const auto& pair : tuned.pairs) {
    if (pair.v6 == v6_target) {
      std::printf("  sibling IPv4 prefix %s (jaccard %.2f)\n", pair.v4.to_string().c_str(),
                  pair.similarity);
    }
  }

  // Publish the list (the sibling-prefixes.github.io artifact format).
  const std::string path = argc > 1 ? argv[1] : "sibling_prefixes.csv";
  if (core::write_sibling_list(path, tuned.pairs)) {
    std::printf("\nwrote %zu pairs to %s\n", tuned.pairs.size(), path.c_str());
    const auto reloaded = core::read_sibling_list(path);
    std::printf("reload check: %s\n",
                reloaded && reloaded->size() == tuned.pairs.size() ? "ok" : "FAILED");
  }
  return 0;
}
