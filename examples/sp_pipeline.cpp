// sp_pipeline — the whole system as one command-line tool.
//
// Consumes the two files a real deployment would feed it:
//   * an MRT TABLE_DUMP_V2 RIB dump (Routeviews format), and
//   * a resolution-snapshot CSV (see io/snapshot_csv.h),
// runs detection + SP-Tuner and writes the sibling-prefix list CSV.
//
// Usage:
//   sp_pipeline <rib.mrt> <snapshot.csv> <out.csv> [v4_threshold v6_threshold]
//   sp_pipeline --demo                # generate inputs, then run on them
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/detect.h"
#include "core/sibling_list_io.h"
#include "core/sptuner.h"
#include "dns/zonefile.h"
#include "io/snapshot_csv.h"
#include "mrt/file.h"
#include "synth/universe.h"

#include <unordered_set>

using namespace sp;

namespace {

int run(const std::string& mrt_path, const std::string& snapshot_path,
        const std::string& out_path, unsigned v4_threshold, unsigned v6_threshold) {
  std::string error;
  const auto records = mrt::read_file(mrt_path, &error);
  if (!records) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", mrt_path.c_str(), error.c_str());
    return 1;
  }
  const auto rib = bgp::Rib::from_mrt(*records);
  std::printf("RIB: %zu prefixes from %zu MRT records\n", rib.prefix_count(),
              records->size());

  // Input flexibility: a ".zone" master file is resolved into a snapshot
  // (every owner name queried through the zone's CNAME chains); anything
  // else is read as a snapshot CSV.
  std::optional<dns::ResolutionSnapshot> snapshot;
  if (snapshot_path.ends_with(".zone")) {
    dns::ZoneDatabase zones;
    const auto parsed = dns::parse_zone_file(snapshot_path, zones);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", snapshot_path.c_str(),
                   parsed.error->line, parsed.error->message.c_str());
      return 1;
    }
    std::unordered_set<dns::DomainName> owners;
    zones.visit_records([&owners](const dns::ResourceRecord& record) {
      if (record.type == dns::RecordType::A || record.type == dns::RecordType::AAAA ||
          record.type == dns::RecordType::CNAME) {
        owners.insert(record.name);
      }
    });
    const std::vector<dns::DomainName> queries(owners.begin(), owners.end());
    snapshot = dns::ResolutionSnapshot::resolve_all(zones, queries, Date{2024, 9, 11});
    std::printf("zone %s: %zu records -> %zu resolvable names\n", snapshot_path.c_str(),
                parsed.records_added, snapshot->domain_count());
  } else {
    snapshot = io::read_snapshot_csv(snapshot_path);
  }
  if (!snapshot) {
    std::fprintf(stderr, "error: cannot parse snapshot %s\n", snapshot_path.c_str());
    return 1;
  }
  std::printf("snapshot %s: %zu domains, %zu dual-stack\n",
              snapshot->date().to_string().c_str(), snapshot->domain_count(),
              snapshot->dual_stack_count());

  const auto corpus = core::DualStackCorpus::build(*snapshot, rib);
  std::printf("corpus: %zu DS identities on %zu v4 / %zu v6 prefixes"
              " (%zu reserved addresses discarded, %zu unmapped)\n",
              corpus.ds_domain_count(), corpus.stats().v4_prefixes,
              corpus.stats().v6_prefixes, corpus.stats().discarded_reserved,
              corpus.stats().unmapped_addresses);

  auto pairs = core::detect_sibling_prefixes(corpus);
  std::printf("detected %zu sibling pairs (BGP-announced sizes)\n", pairs.size());

  if (v4_threshold != 0) {
    const core::SpTunerMs tuner(corpus,
                                {.v4_threshold = v4_threshold, .v6_threshold = v6_threshold});
    auto result = tuner.tune_all(pairs);
    std::printf("SP-Tuner(/%u,/%u): %zu pairs, %zu inputs refined\n", v4_threshold,
                v6_threshold, result.pairs.size(), result.changed_count);
    pairs = std::move(result.pairs);
  }

  if (!core::write_sibling_list(out_path, pairs)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu pairs to %s\n", pairs.size(), out_path.c_str());
  return 0;
}

int demo() {
  std::printf("--demo: generating synthetic inputs\n");
  synth::SynthConfig config;
  config.organization_count = 500;
  config.months = 2;
  const synth::SyntheticInternet universe(config);
  if (!mrt::write_file("demo_rib.mrt", universe.mrt_dump())) return 1;
  if (!io::write_snapshot_csv("demo_snapshot.csv",
                              universe.snapshot_at(universe.month_count() - 1))) {
    return 1;
  }
  std::printf("wrote demo_rib.mrt and demo_snapshot.csv\n\n");
  return run("demo_rib.mrt", "demo_snapshot.csv", "demo_siblings.csv", 28, 96);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--demo") return demo();
  if (argc != 4 && argc != 6) {
    std::fprintf(stderr,
                 "usage: %s <rib.mrt> <snapshot.csv|zonefile.zone> <out.csv> [v4_thresh v6_thresh]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  unsigned v4_threshold = 0;
  unsigned v6_threshold = 0;
  if (argc == 6) {
    v4_threshold = static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10));
    v6_threshold = static_cast<unsigned>(std::strtoul(argv[5], nullptr, 10));
    if (v4_threshold == 0 || v4_threshold > 32 || v6_threshold == 0 || v6_threshold > 128) {
      std::fprintf(stderr, "error: thresholds must be 1-32 (v4) and 1-128 (v6)\n");
      return 2;
    }
  }
  return run(argv[1], argv[2], argv[3], v4_threshold, v6_threshold);
}
