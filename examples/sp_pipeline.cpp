// sp_pipeline — the whole system as one command-line tool.
//
// Campaign mode runs the paper's longitudinal workflow as a checkpointed
// stage DAG (src/pipeline): one RIB + snapshot + corpus + detection +
// SP-Tuner + published list + .sibdb per month, consecutive-release
// diffs, and a final longitudinal series. A killed run resumes from its
// manifest, re-running only incomplete stages; the dated .sibdb outputs
// are directly RELOAD-able by sp_serve.
//
//   sp_pipeline run <out_dir> [--months N] [--orgs N] [--seed S]
//                   [--threads T] [--v4 N] [--v6 N] [--trace FILE]
//                   [--detect stream|full]
//   sp_pipeline resume <out_dir> [--threads T] [--trace FILE]
//   sp_pipeline status <out_dir>                 # per-stage manifest table;
//                                                # re-hashes artifacts and
//                                                # reports deleted/corrupted
//                                                # outputs as "stale"
//
// --detect stream (the default) runs detection incrementally: each month
// applies a corpus delta to the previous month's warm detector state and
// re-scores only the affected prefixes; the pairs CSVs are byte-identical
// to --detect full. Consecutive .sibdb snapshots are additionally diffed
// into delta-<date>.spdl patch files sp_serve can RELOAD directly.
//
// --trace writes a Chrome-trace-format JSON of every stage execution
// (one span per stage, on the worker that ran it) — load it in Perfetto
// or chrome://tracing to see the DAG schedule.
//
// One-shot mode consumes the two files a real deployment would feed it —
// an MRT TABLE_DUMP_V2 RIB dump (Routeviews format) and a
// resolution-snapshot CSV (see io/snapshot_csv.h) — and runs detection +
// SP-Tuner to a sibling-prefix list CSV:
//
//   sp_pipeline <rib.mrt> <snapshot.csv> <out.csv> [v4_threshold v6_threshold]
//   sp_pipeline --demo                # generate inputs, then run on them
//
// Campaign runs stop gracefully on SIGINT/SIGTERM: the in-flight stage
// finishes, everything not yet started is recorded as skipped, and the
// manifest stays resumable — `sp_pipeline resume <out_dir>` converges to
// the byte-identical artifacts of an uninterrupted run.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/detect.h"
#include "core/sibling_list_io.h"
#include "core/sptuner.h"
#include "dns/zonefile.h"
#include "io/snapshot_csv.h"
#include "mrt/file.h"
#include "pipeline/campaign.h"
#include "synth/universe.h"

#include <unordered_map>
#include <unordered_set>

using namespace sp;

namespace {

int run(const std::string& mrt_path, const std::string& snapshot_path,
        const std::string& out_path, unsigned v4_threshold, unsigned v6_threshold) {
  std::string error;
  const auto records = mrt::read_file(mrt_path, &error);
  if (!records) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", mrt_path.c_str(), error.c_str());
    return 1;
  }
  const auto rib = bgp::Rib::from_mrt(*records);
  std::printf("RIB: %zu prefixes from %zu MRT records\n", rib.prefix_count(),
              records->size());

  // Input flexibility: a ".zone" master file is resolved into a snapshot
  // (every owner name queried through the zone's CNAME chains); anything
  // else is read as a snapshot CSV.
  std::optional<dns::ResolutionSnapshot> snapshot;
  if (snapshot_path.ends_with(".zone")) {
    dns::ZoneDatabase zones;
    const auto parsed = dns::parse_zone_file(snapshot_path, zones);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", snapshot_path.c_str(),
                   parsed.error->line, parsed.error->message.c_str());
      return 1;
    }
    std::unordered_set<dns::DomainName> owners;
    zones.visit_records([&owners](const dns::ResourceRecord& record) {
      if (record.type == dns::RecordType::A || record.type == dns::RecordType::AAAA ||
          record.type == dns::RecordType::CNAME) {
        owners.insert(record.name);
      }
    });
    const std::vector<dns::DomainName> queries(owners.begin(), owners.end());
    snapshot = dns::ResolutionSnapshot::resolve_all(zones, queries, Date{2024, 9, 11});
    std::printf("zone %s: %zu records -> %zu resolvable names\n", snapshot_path.c_str(),
                parsed.records_added, snapshot->domain_count());
  } else {
    snapshot = io::read_snapshot_csv(snapshot_path);
  }
  if (!snapshot) {
    std::fprintf(stderr, "error: cannot parse snapshot %s\n", snapshot_path.c_str());
    return 1;
  }
  std::printf("snapshot %s: %zu domains, %zu dual-stack\n",
              snapshot->date().to_string().c_str(), snapshot->domain_count(),
              snapshot->dual_stack_count());

  const auto corpus = core::DualStackCorpus::build(*snapshot, rib);
  std::printf("corpus: %zu DS identities on %zu v4 / %zu v6 prefixes"
              " (%zu reserved addresses discarded, %zu unmapped)\n",
              corpus.ds_domain_count(), corpus.stats().v4_prefixes,
              corpus.stats().v6_prefixes, corpus.stats().discarded_reserved,
              corpus.stats().unmapped_addresses);

  auto pairs = core::detect_sibling_prefixes(corpus);
  std::printf("detected %zu sibling pairs (BGP-announced sizes)\n", pairs.size());

  if (v4_threshold != 0) {
    const core::SpTunerMs tuner(corpus,
                                {.v4_threshold = v4_threshold, .v6_threshold = v6_threshold});
    auto result = tuner.tune_all(pairs);
    std::printf("SP-Tuner(/%u,/%u): %zu pairs, %zu inputs refined\n", v4_threshold,
                v6_threshold, result.pairs.size(), result.changed_count);
    pairs = std::move(result.pairs);
  }

  if (!core::write_sibling_list(out_path, pairs)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu pairs to %s\n", pairs.size(), out_path.c_str());
  return 0;
}

int demo() {
  std::printf("--demo: generating synthetic inputs\n");
  synth::SynthConfig config;
  config.organization_count = 500;
  config.months = 2;
  const synth::SyntheticInternet universe(config);
  if (!mrt::write_file("demo_rib.mrt", universe.mrt_dump())) return 1;
  if (!io::write_snapshot_csv("demo_snapshot.csv",
                              universe.snapshot_at(universe.month_count() - 1))) {
    return 1;
  }
  std::printf("wrote demo_rib.mrt and demo_snapshot.csv\n\n");
  return run("demo_rib.mrt", "demo_snapshot.csv", "demo_siblings.csv", 28, 96);
}

// --- Campaign mode -------------------------------------------------------

// SIGINT/SIGTERM graceful stop. A lock-free std::atomic<bool> store is
// async-signal-safe; the stage graph polls it between stage dispatches.
std::atomic<bool> g_campaign_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free);

void handle_campaign_stop(int) { g_campaign_stop.store(true); }

void install_campaign_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_campaign_stop;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void print_stage(const pipeline::StageResult& result) {
  if (result.status == pipeline::StageStatus::Failed ||
      result.status == pipeline::StageStatus::Skipped) {
    std::printf("[%s] %s%s%s\n", std::string(to_string(result.status)).c_str(),
                result.name.c_str(), result.error.empty() ? "" : ": ",
                result.error.c_str());
    return;
  }
  std::printf("[%s] %s (%.1f ms)\n", std::string(to_string(result.status)).c_str(),
              result.name.c_str(), result.wall_ms);
}

int run_campaign(pipeline::Campaign campaign, bool resume) {
  const auto report = campaign.run(resume, print_stage);
  if (!report.error.empty()) {
    std::fprintf(stderr, "error: %s\n", report.error.c_str());
    return 1;
  }
  const bool interrupted = g_campaign_stop.load();
  std::printf("%s: %zu done, %zu cached, %zu failed, %zu skipped in %.1f ms "
              "(peak RSS %ld KB)\nmanifest: %s\n",
              report.ok ? "OK" : (interrupted ? "INTERRUPTED" : "FAILED"), report.done_count,
              report.cached_count, report.failed_count, report.skipped_count,
              report.total_wall_ms, report.peak_rss_kb, report.manifest_path.c_str());
  if (interrupted) {
    std::printf("interrupted by signal; `sp_pipeline resume %s` picks up the "
                "skipped stages\n",
                campaign.config().out_dir.c_str());
    // The conventional "killed by signal" exit status, so supervisors and
    // the signal-resume smoke can tell a graceful stop from a failure.
    return 130;
  }
  return report.ok ? 0 : 1;
}

int campaign_run(int argc, char** argv) {
  pipeline::CampaignConfig config;
  config.out_dir = argv[2];
  config.synth.months = 6;
  config.synth.organization_count = 300;
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const long value = std::strtol(argv[i + 1], nullptr, 10);
    if (flag == "--months") config.synth.months = static_cast<int>(value);
    else if (flag == "--orgs") config.synth.organization_count = static_cast<int>(value);
    else if (flag == "--seed") config.synth.seed = static_cast<std::uint64_t>(value);
    else if (flag == "--threads") config.threads = static_cast<unsigned>(value);
    else if (flag == "--v4") config.v4_threshold = static_cast<unsigned>(value);
    else if (flag == "--v6") config.v6_threshold = static_cast<unsigned>(value);
    else if (flag == "--trace") config.trace_path = argv[i + 1];
    else if (flag == "--detect") {
      const std::string mode = argv[i + 1];
      if (mode != "stream" && mode != "full") {
        std::fprintf(stderr, "error: --detect must be 'stream' or 'full'\n");
        return 2;
      }
      config.stream_detect = mode == "stream";
    }
    else {
      std::fprintf(stderr, "error: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  install_campaign_signal_handlers();
  config.stop_flag = &g_campaign_stop;
  return run_campaign(pipeline::Campaign(std::move(config)), /*resume=*/false);
}

int campaign_resume(int argc, char** argv) {
  const std::string out_dir = argv[2];
  unsigned threads = 1;
  std::string trace_path;
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    } else if (flag == "--trace") {
      trace_path = argv[i + 1];
    }
  }
  std::string error;
  const auto manifest =
      pipeline::RunManifest::load(pipeline::Campaign::manifest_path(out_dir), &error);
  if (!manifest) {
    std::fprintf(stderr, "error: cannot load manifest: %s\n", error.c_str());
    return 1;
  }
  auto config = pipeline::config_from_manifest(*manifest, out_dir, threads);
  config.trace_path = std::move(trace_path);
  install_campaign_signal_handlers();
  config.stop_flag = &g_campaign_stop;
  return run_campaign(pipeline::Campaign(std::move(config)), /*resume=*/true);
}

int campaign_status(const std::string& out_dir) {
  std::string error;
  const auto manifest =
      pipeline::RunManifest::load(pipeline::Campaign::manifest_path(out_dir), &error);
  if (!manifest) {
    std::fprintf(stderr, "error: cannot load manifest: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", manifest->campaign.c_str());

  // A "done" record whose artifact was deleted or corrupted since the
  // run is stale, not done — resume would re-run it, and a serving
  // deployment must not RELOAD it. Revalidate every recorded output.
  std::unordered_map<std::string, std::string> stale_reason;
  for (const auto& entry : pipeline::stale_stages(*manifest, out_dir)) {
    auto& reason = stale_reason[entry.name];
    if (!reason.empty()) reason += "; ";
    reason += entry.path + " " + entry.reason;
  }

  std::size_t done = 0, cached = 0, failed = 0, skipped = 0, stale = 0;
  for (const auto& stage : manifest->stages) {
    const auto stale_it = stale_reason.find(stage.name);
    const bool is_stale = stale_it != stale_reason.end();
    const std::string& status = is_stale ? "stale" : stage.status;
    const std::string& note = is_stale ? stale_it->second : stage.error;
    std::printf("  %-8s %-28s %9.1f ms  %zu output%s%s%s\n", status.c_str(),
                stage.name.c_str(), stage.wall_ms, stage.outputs.size(),
                stage.outputs.size() == 1 ? "" : "s", note.empty() ? "" : "  ", note.c_str());
    if (is_stale) ++stale;
    else if (stage.status == "done") ++done;
    else if (stage.status == "cached") ++cached;
    else if (stage.status == "failed") ++failed;
    else if (stage.status == "skipped") ++skipped;
  }
  std::printf("%zu stages: %zu done, %zu cached, %zu failed, %zu skipped, %zu stale\n",
              manifest->stages.size(), done, cached, failed, skipped, stale);
  return failed == 0 && stale == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--demo") return demo();
  if (argc >= 3 && std::string(argv[1]) == "run") return campaign_run(argc, argv);
  if (argc >= 3 && std::string(argv[1]) == "resume") return campaign_resume(argc, argv);
  if (argc == 3 && std::string(argv[1]) == "status") return campaign_status(argv[2]);
  if (argc != 4 && argc != 6) {
    std::fprintf(stderr,
                 "usage: %s run <out_dir> [--months N] [--orgs N] [--seed S] [--threads T]"
                 " [--v4 N] [--v6 N] [--trace FILE] [--detect stream|full]\n"
                 "       %s resume <out_dir> [--threads T] [--trace FILE]\n"
                 "       %s status <out_dir>\n"
                 "       %s <rib.mrt> <snapshot.csv|zonefile.zone> <out.csv> [v4_thresh v6_thresh]\n"
                 "       %s --demo\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  unsigned v4_threshold = 0;
  unsigned v6_threshold = 0;
  if (argc == 6) {
    v4_threshold = static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10));
    v6_threshold = static_cast<unsigned>(std::strtoul(argv[5], nullptr, 10));
    if (v4_threshold == 0 || v4_threshold > 32 || v6_threshold == 0 || v6_threshold > 128) {
      std::fprintf(stderr, "error: thresholds must be 1-32 (v4) and 1-128 (v6)\n");
      return 2;
    }
  }
  return run(argv[1], argv[2], argv[3], v4_threshold, v6_threshold);
}
