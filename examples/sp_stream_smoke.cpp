// Rolling detection at campaign shape: the stream engine chained across
// synthetic months vs a from-scratch exact run per month.
//
// Month 0 initializes a StreamDetector; every later month is applied as
// a CorpusDelta against the previous month's corpus. After each month
// the incremental pair list is memcmp-compared (prefixes, bit-level
// similarity doubles, counts) against core::detect_sibling_prefixes over
// that month's corpus — the ISSUE 8 byte-identity contract, exercised
// end-to-end on synth data. tier1.sh runs this as the stream smoke.
//
// Run: ./build/examples/sp_stream_smoke [--months N] [--threads T]
//      [--orgs N] [--scale N] [--sketch] [--quiet]
//
// Exit code 0 when every month matched, 1 on a mismatch, 2 on usage.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/corpus_delta.h"
#include "core/detect.h"
#include "stream/stream_detector.h"
#include "synth/universe.h"

using namespace sp;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Byte-level pair list comparison; prints the first divergence.
bool identical(const std::vector<core::SiblingPair>& stream,
               const std::vector<core::SiblingPair>& exact, int month) {
  if (stream.size() != exact.size()) {
    std::fprintf(stderr, "MISMATCH month %d: %zu stream pairs vs %zu exact pairs\n", month,
                 stream.size(), exact.size());
    return false;
  }
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (stream[i].v4 != exact[i].v4 || stream[i].v6 != exact[i].v6 ||
        std::memcmp(&stream[i].similarity, &exact[i].similarity, sizeof(double)) != 0 ||
        stream[i].shared_domains != exact[i].shared_domains ||
        stream[i].v4_domain_count != exact[i].v4_domain_count ||
        stream[i].v6_domain_count != exact[i].v6_domain_count) {
      std::fprintf(stderr, "MISMATCH month %d at pair %zu\n", month, i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  synth::SynthConfig config;
  config.months = 6;
  stream::StreamOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> int {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    if (arg == "--months") {
      config.months = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(next());
    } else if (arg == "--orgs") {
      config.organization_count = next();
    } else if (arg == "--scale") {
      config.scale = next();
    } else if (arg == "--sketch") {
      options.strategy = core::DetectStrategy::Sketch;
      options.sketch_min_dirty = 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--months N] [--threads T] [--orgs N] [--scale N]"
                   " [--sketch] [--quiet]\n",
                   argv[0]);
      return 2;
    }
  }

  auto start = std::chrono::steady_clock::now();
  const synth::SyntheticInternet universe(config);
  if (!quiet) {
    std::printf("universe: %d months, %zu orgs (%.0f ms to build)\n", universe.month_count(),
                universe.orgs().size(), ms_since(start));
  }

  stream::StreamDetector detector(options);
  double stream_total_ms = 0.0;
  double exact_total_ms = 0.0;
  for (int month = 0; month < universe.month_count(); ++month) {
    const auto corpus =
        core::DualStackCorpus::build(universe.snapshot_at(month), universe.rib());

    start = std::chrono::steady_clock::now();
    if (month == 0) {
      detector.init(corpus.detect_index());
    } else {
      detector.apply(core::CorpusDelta::between(detector.index(), corpus.detect_index()));
    }
    const double stream_ms = ms_since(start);
    stream_total_ms += stream_ms;

    start = std::chrono::steady_clock::now();
    const auto exact = core::detect_sibling_prefixes(corpus, {.threads = options.threads});
    const double exact_ms = ms_since(start);
    exact_total_ms += exact_ms;

    if (!identical(detector.pairs(), exact, month)) return 1;
    if (!quiet) {
      const stream::StreamApplyStats& stats = detector.last_stats();
      std::printf("month %d: %zu pairs, %zu/%zu dirty sources%s, "
                  "stream %.0f ms vs exact %.0f ms\n",
                  month, detector.pairs().size(), stats.dirty_v4 + stats.dirty_v6,
                  stats.sources_total,
                  stats.used_sketch ? " (sketch)" : (stats.full_rescan ? " (full)" : ""),
                  stream_ms, exact_ms);
    }
  }
  if (!quiet) {
    std::printf("identity: every month byte-identical; stream %.0f ms vs exact %.0f ms "
                "(%.1fx)\n",
                stream_total_ms, exact_total_ms,
                stream_total_ms > 0.0 ? exact_total_ms / stream_total_ms : 0.0);
  }
  return 0;
}
