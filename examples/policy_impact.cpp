// Why inconsistent dual-stack policies fail silently — and how sibling
// prefixes fix them (the paper's introduction, made executable).
//
// An operator blocks an abusive service on IPv4 only. Clients run Happy
// Eyeballs (RFC 8305), so the block does nothing: connections silently
// shift to IPv6. Extending the block to the sibling IPv6 prefixes closes
// the backdoor. The aggregated ACL is built with PrefixSet.
//
// Run: ./build/examples/policy_impact
#include <cstdio>

#include "core/detect.h"
#include "he/happy_eyeballs.h"
#include "netbase/prefix_set.h"
#include "synth/universe.h"

using namespace sp;

namespace {

/// Simulates a client population connecting to one dual-stack service
/// under a given blocklist; returns how many connections succeeded and on
/// which family.
struct TrafficReport {
  int connected_v6 = 0;
  int connected_v4 = 0;
  int blocked = 0;
};

TrafficReport simulate_clients(const IPAddress& v6_endpoint, const IPAddress& v4_endpoint,
                               const PrefixSet& blocklist, int clients) {
  TrafficReport report;
  for (int i = 0; i < clients; ++i) {
    // Per-client RTT jitter (deterministic).
    const double base_rtt = 20.0 + (i % 7) * 5.0;
    const he::Endpoint v6{v6_endpoint, base_rtt + 2.0, !blocklist.contains(v6_endpoint)};
    const he::Endpoint v4{v4_endpoint, base_rtt, !blocklist.contains(v4_endpoint)};
    const auto outcome = he::race({v6}, {v4});
    if (!outcome.connected()) {
      ++report.blocked;
    } else if (outcome.used_ipv6()) {
      ++report.connected_v6;
    } else {
      ++report.connected_v4;
    }
  }
  return report;
}

void print_report(const char* label, const TrafficReport& report) {
  std::printf("  %-34s v6 %3d, v4 %3d, blocked %3d\n", label, report.connected_v6,
              report.connected_v4, report.blocked);
}

}  // namespace

int main() {
  synth::SynthConfig config;
  config.organization_count = 400;
  config.months = 2;
  const synth::SyntheticInternet universe(config);
  const auto snapshot = universe.snapshot_at(universe.month_count() - 1);
  const auto corpus = core::DualStackCorpus::build(snapshot, universe.rib());
  const auto pairs = core::detect_sibling_prefixes(corpus);

  // Pick an abusive service: a dual-stack domain with one address per
  // family whose v4 prefix appears in the sibling list.
  const dns::DomainResolution* service = nullptr;
  for (const auto& entry : snapshot.entries()) {
    if (entry.dual_stack()) {
      const auto route = universe.rib().lookup(IPAddress(entry.v4.front()));
      if (!route) continue;
      for (const auto& pair : pairs) {
        if (pair.v4 == route->prefix) {
          service = &entry;
          break;
        }
      }
    }
    if (service != nullptr) break;
  }
  if (service == nullptr) {
    std::fprintf(stderr, "no suitable service found\n");
    return 1;
  }
  const IPAddress v4_endpoint(service->v4.front());
  const IPAddress v6_endpoint(service->v6.front());
  const Prefix v4_prefix = universe.rib().lookup(v4_endpoint)->prefix;
  std::printf("abusive service: %s at %s / %s\n", service->response_name.to_string().c_str(),
              v4_endpoint.to_string().c_str(), v6_endpoint.to_string().c_str());

  constexpr int kClients = 200;
  std::printf("\n%d Happy Eyeballs clients connecting:\n", kClients);

  // Scenario 0: no policy.
  print_report("no block:", simulate_clients(v6_endpoint, v4_endpoint, {}, kClients));

  // Scenario 1: IPv4-only block — the naive ACL.
  PrefixSet v4_only;
  v4_only.add(v4_prefix);
  print_report("IPv4-only block:",
               simulate_clients(v6_endpoint, v4_endpoint, v4_only, kClients));

  // Scenario 2: sibling-aware block — extend to the sibling v6 prefixes.
  PrefixSet sibling_aware = v4_only;
  std::size_t extended = 0;
  for (const auto& pair : pairs) {
    if (pair.v4 == v4_prefix) {
      sibling_aware.add(pair.v6);
      ++extended;
    }
  }
  std::printf("\nextending the ACL with %zu sibling IPv6 prefix(es); aggregated ACL has"
              " %zu entries covering both families\n",
              extended, sibling_aware.size());
  print_report("sibling-aware block:",
               simulate_clients(v6_endpoint, v4_endpoint, sibling_aware, kClients));

  std::printf("\ntakeaway: the IPv4-only block changed nothing for users — Happy Eyeballs\n"
              "silently moved every connection to IPv6. Only the sibling-aware policy\n"
              "actually blocks the service on both families (paper sections 1 and 6).\n");
  return 0;
}
