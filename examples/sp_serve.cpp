// The sibling lookup service CLI: load a .sibdb snapshot and answer
// line-oriented queries from stdin — the operator-facing front of the
// sp::serve subsystem.
//
//   sp_serve <db.sibdb>                    serve queries from stdin
//   sp_serve --convert <in.csv> <out.sibdb>  CSV release -> binary snapshot
//   sp_serve --listen <host:port> <db.sibdb> [--workers N]
//                                          serve the binary TCP protocol
//                                          (net/protocol.h) until SIGINT;
//                                          prints "LISTENING host:port"
//                                          once bound (port 0 = ephemeral,
//                                          the line reports the real one)
//
// Query protocol (one per line):
//   <address>            LPM lookup, either family ("20.1.2.3", "2620:100::1")
//   <prefix>             LPM lookup for a whole prefix ("20.1.0.0/16")
//   RELOAD <path>        hot-swap to a new snapshot; queries keep serving.
//                        A ".spdl" path is a delta log: it is applied to
//                        the served snapshot (stream/reload.h) and the
//                        patched .sibdb written next to it is swapped in
//   RELOAD               re-read the current snapshot's file (the
//                        publisher — e.g. sp_pipeline — replaced it in place)
//   STATS                print service counters
//
// Run: ./build/examples/sp_serve siblings.sibdb < queries.txt
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "net/server.h"
#include "serve/service.h"
#include "stream/reload.h"

using namespace sp;

namespace {

void print_answer(const std::string& query, const serve::SiblingAnswer& answer,
                  std::uint64_t generation) {
  std::printf("HIT %s matched=%s sibling=%s similarity=%.9f shared=%u v4_domains=%u "
              "v6_domains=%u gen=%llu\n",
              query.c_str(), answer.matched.to_string().c_str(),
              answer.sibling.to_string().c_str(), answer.similarity, answer.shared_domains,
              answer.v4_domain_count, answer.v6_domain_count,
              static_cast<unsigned long long>(generation));
}

void print_stats(const serve::ServiceStats& stats) {
  std::printf("STATS gen=%llu queries=%llu hits=%llu misses=%llu batches=%llu "
              "batch_queries=%llu reloads=%llu query_ms=%.3f batch_ms=%.3f\n",
              static_cast<unsigned long long>(stats.generation),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.batch_queries),
              static_cast<unsigned long long>(stats.reloads), stats.query_ms_total,
              stats.batch_ms_total);
  // Distribution line: log₂-histogram quantile estimates (obs/metrics.h),
  // exact max; all in microseconds.
  std::printf("STATS latency query_p50_us=%.1f query_p90_us=%.1f query_p99_us=%.1f "
              "query_max_us=%llu batch_p50_us=%.1f batch_p90_us=%.1f batch_p99_us=%.1f "
              "batch_max_us=%llu\n",
              stats.query_p50_us, stats.query_p90_us, stats.query_p99_us,
              static_cast<unsigned long long>(stats.query_max_us), stats.batch_p50_us,
              stats.batch_p90_us, stats.batch_p99_us,
              static_cast<unsigned long long>(stats.batch_max_us));
  // Generations older than the retained window, folded into one bucket
  // so reload churn cannot grow this report (or service memory) forever.
  if (stats.compacted_generations > 0) {
    std::printf("STATS gen=compacted(%llu) served=%llu hits=%llu hit_rate=%.4f\n",
                static_cast<unsigned long long>(stats.compacted_generations),
                static_cast<unsigned long long>(stats.compacted.queries),
                static_cast<unsigned long long>(stats.compacted.hits),
                stats.compacted.hit_rate());
  }
  // One line per snapshot generation this process has served (the last is
  // the live one): how much traffic it answered and how well it covered it.
  for (const serve::GenerationStats& gen : stats.generations) {
    std::printf("STATS gen=%llu served=%llu hits=%llu hit_rate=%.4f\n",
                static_cast<unsigned long long>(gen.generation),
                static_cast<unsigned long long>(gen.queries),
                static_cast<unsigned long long>(gen.hits), gen.hit_rate());
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: sp_serve <db.sibdb>\n"
               "       sp_serve --convert <in.csv> <out.sibdb>\n"
               "       sp_serve --listen <host:port> <db.sibdb> [--workers N]\n");
  return 2;
}

// sp-lint: atomics-ok(volatile sig_atomic_t is the one type the C++
// standard guarantees safe to write from a signal handler; no
// cross-thread ordering rides on it — the main loop only polls it)
volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

/// `sp_serve --listen host:port db [--workers N]`: TCP front-end until
/// SIGINT/SIGTERM. The LISTENING line is the machine-readable contract
/// tier1.sh and the CI smoke parse for the bound (possibly ephemeral)
/// port, so it goes to stdout and is flushed before blocking.
int run_listen(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string endpoint = argv[2];
  const std::string db_path = argv[3];
  net::ServerConfig config;
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--listen expects host:port, got '%s'\n", endpoint.c_str());
    return 2;
  }
  config.host = endpoint.substr(0, colon);
  config.port = static_cast<std::uint16_t>(std::strtoul(endpoint.c_str() + colon + 1, nullptr, 10));
  for (int i = 4; i < argc; ++i) {
    if (std::string(argv[i]) == "--workers" && i + 1 < argc) {
      config.workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return usage();
    }
  }

  serve::SiblingService service;
  std::string error;
  if (!service.load(db_path, &error)) {
    std::fprintf(stderr, "cannot load %s: %s\n", db_path.c_str(), error.c_str());
    return 1;
  }
  net::Server server(service, config);
  if (!server.start(&error)) {
    std::fprintf(stderr, "cannot listen on %s: %s\n", endpoint.c_str(), error.c_str());
    return 1;
  }
  std::printf("LISTENING %s:%u\n", config.host.c_str(), server.port());
  std::fflush(stdout);

  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  while (g_stop == 0) {
    const timespec nap{0, 100 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }
  server.stop();
  // Machine-readable shutdown marker, mirroring LISTENING. A supervisor
  // tailing stdout may be gone by now (`| head -1`), making this write
  // hit a dead pipe — exactly the case the SIG_IGN(SIGPIPE) in main()
  // exists for; scripts/tier1.sh asserts we exit 0 here, not die on 141.
  std::printf("STOPPED %s:%u\n", config.host.c_str(), server.port());
  std::fflush(stdout);
  const net::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "served %llu connections, %llu frames, %llu queries (%llu hits), "
               "%llu protocol errors\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A dead peer must never kill the service: the TCP path already sends
  // with MSG_NOSIGNAL, but stdout/stderr may be pipes (a supervisor, a
  // `| head`) whose reader can exit first — without SIG_IGN the next
  // printf would terminate the process mid-serve with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc >= 2 && std::string(argv[1]) == "--convert") {
    if (argc != 4) return usage();
    std::string error;
    if (!serve::convert_sibling_list(argv[2], argv[3], &error)) {
      std::fprintf(stderr, "convert failed: %s\n", error.c_str());
      return 1;
    }
    std::string load_error;
    const auto db = serve::SiblingDB::load(argv[3], &load_error);
    if (!db) {
      std::fprintf(stderr, "wrote %s but it does not load back: %s\n", argv[3],
                   load_error.c_str());
      return 1;
    }
    std::printf("wrote %s: %zu pairs, %zu bytes\n", argv[3], db->size(), db->mapped_bytes());
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "--listen") return run_listen(argc, argv);
  if (argc != 2) return usage();

  serve::SiblingService service;
  std::string error;
  if (!service.load(argv[1], &error)) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  {
    const auto snapshot = service.snapshot();
    std::fprintf(stderr, "serving %s: %zu pairs (%zu v4 / %zu v6 prefixes)\n", argv[1],
                 snapshot->db.size(), snapshot->engine.v4_prefix_count(),
                 snapshot->engine.v6_prefix_count());
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "STATS") {
      print_stats(service.stats());
      continue;
    }
    if (line == "RELOAD") {
      if (service.reload(&error)) {
        const auto snapshot = service.snapshot();
        std::printf("RELOADED %s gen=%llu\n", snapshot->path.c_str(),
                    static_cast<unsigned long long>(snapshot->generation));
      } else {
        std::printf("ERR reload: %s\n", error.c_str());
      }
      continue;
    }
    if (line.rfind("RELOAD ", 0) == 0) {
      const std::string path = line.substr(7);
      const bool ok = sp::stream::is_spdl_path(path)
                          ? sp::stream::apply_delta_and_reload(service, path, &error)
                          : service.load(path, &error);
      if (ok) {
        std::printf("RELOADED %s gen=%llu\n", path.c_str(),
                    static_cast<unsigned long long>(service.stats().generation));
      } else {
        std::printf("ERR reload %s: %s\n", path.c_str(), error.c_str());
      }
      continue;
    }
    const std::uint64_t generation = service.stats().generation;
    if (line.find('/') != std::string::npos) {
      const auto prefix = Prefix::from_string(line);
      if (!prefix) {
        std::printf("ERR bad prefix: %s\n", line.c_str());
        continue;
      }
      if (const auto answer = service.query(*prefix)) {
        print_answer(line, *answer, generation);
      } else {
        std::printf("MISS %s\n", line.c_str());
      }
      continue;
    }
    const auto address = IPAddress::from_string(line);
    if (!address) {
      std::printf("ERR bad address: %s\n", line.c_str());
      continue;
    }
    if (const auto answer = service.query(*address)) {
      print_answer(line, *answer, generation);
    } else {
      std::printf("MISS %s\n", line.c_str());
    }
  }
  print_stats(service.stats());
  return 0;
}
