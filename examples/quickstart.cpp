// Quickstart: the sibling-prefix pipeline on a hand-built mini Internet.
//
//   1. announce prefixes in a BGP RIB,
//   2. resolve domains into a DNS snapshot,
//   3. build the dual-stack corpus,
//   4. detect sibling prefix pairs (best Jaccard match),
//   5. refine them with SP-Tuner-MS.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/detect.h"
#include "core/sptuner.h"

using namespace sp;

int main() {
  // 1. The routing table: one org with a v4 /24 and two v6 /48s, plus an
  //    unrelated org.
  bgp::Rib rib;
  rib.add_route(Prefix::must_parse("20.1.1.0/24"), 65001);
  rib.add_route(Prefix::must_parse("2620:100::/48"), 65101);
  rib.add_route(Prefix::must_parse("2620:200::/48"), 65101);
  rib.add_route(Prefix::must_parse("198.51.99.0/24"), 65009);

  // 2. DNS resolutions: four dual-stack domains. The first two live in the
  //    low half of the /24 and in 2620:100::/48; the other two in the high
  //    half and 2620:200::/48 — the subnet structure SP-Tuner discovers.
  dns::ResolutionSnapshot snapshot(Date{2024, 9, 11});
  const auto host = [&snapshot](const char* name, const char* v4, const char* v6) {
    dns::DomainResolution entry;
    entry.queried = dns::DomainName::must_parse(name);
    entry.response_name = entry.queried;
    entry.v4.push_back(*IPv4Address::from_string(v4));
    entry.v6.push_back(*IPv6Address::from_string(v6));
    snapshot.add(std::move(entry));
  };
  host("shop.example.org", "20.1.1.10", "2620:100::10");
  host("blog.example.org", "20.1.1.11", "2620:100::11");
  host("mail.example.org", "20.1.1.140", "2620:200::40");
  host("api.example.org", "20.1.1.141", "2620:200::41");

  // 3. Corpus: dual-stack domains mapped to announced prefixes.
  const auto corpus = core::DualStackCorpus::build(snapshot, rib);
  std::printf("corpus: %zu dual-stack domains, %zu v4 / %zu v6 prefixes\n",
              corpus.ds_domain_count(), corpus.stats().v4_prefixes,
              corpus.stats().v6_prefixes);

  // 4. Detection: each prefix pairs with its best Jaccard counterpart.
  const auto pairs = core::detect_sibling_prefixes(corpus);
  std::printf("\ndefault (BGP-announced) sibling pairs:\n");
  for (const auto& pair : pairs) {
    std::printf("  %-18s <-> %-18s jaccard %.2f (%u shared domains)\n",
                pair.v4.to_string().c_str(), pair.v6.to_string().c_str(), pair.similarity,
                pair.shared_domains);
  }

  // 5. SP-Tuner: split the /24 into the halves that actually match.
  const core::SpTunerMs tuner(corpus, {.v4_threshold = 28, .v6_threshold = 96});
  const auto tuned = tuner.tune_all(pairs);
  std::printf("\nafter SP-Tuner (/28, /96):\n");
  for (const auto& pair : tuned.pairs) {
    std::printf("  %-18s <-> %-22s jaccard %.2f\n", pair.v4.to_string().c_str(),
                pair.v6.to_string().c_str(), pair.similarity);
  }
  std::printf("\n%zu of %zu input pairs were refined\n", tuned.changed_count,
              tuned.input_count);
  return 0;
}
