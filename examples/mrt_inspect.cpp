// MRT dump inspector: writes a TABLE_DUMP_V2 file (RFC 6396), reads it
// back with the streaming cursor, and summarizes the RIB — the Routeviews
// consumption path of the pipeline as a standalone tool.
//
// Run: ./build/examples/mrt_inspect [dump.mrt]
//   Without an argument, a synthetic dump is generated, written to a
//   temporary file and inspected. With an argument, that file is parsed.
#include <cstdio>
#include <map>
#include <string>

#include "bgp/rib.h"
#include "mrt/file.h"
#include "synth/universe.h"

using namespace sp;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    synth::SynthConfig config;
    config.organization_count = 400;
    config.months = 2;
    const synth::SyntheticInternet universe(config);
    path = "synthetic_rib.mrt";
    if (!mrt::write_file(path, universe.mrt_dump())) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("generated synthetic dump: %s\n", path.c_str());
  }

  std::string error;
  const auto records = mrt::read_file(path, &error);
  if (!records) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  std::size_t peer_tables = 0;
  std::size_t v4_records = 0;
  std::size_t v6_records = 0;
  std::size_t entries = 0;
  std::map<unsigned, std::size_t> v4_lengths;
  std::map<unsigned, std::size_t> v6_lengths;
  for (const auto& record : *records) {
    if (const auto* table = std::get_if<mrt::PeerIndexTable>(&record.body)) {
      ++peer_tables;
      std::printf("peer index table: view \"%s\", %zu peers\n", table->view_name.c_str(),
                  table->peers.size());
      for (const auto& peer : table->peers) {
        std::printf("  peer AS%u at %s\n", peer.asn, peer.address.to_string().c_str());
      }
      continue;
    }
    const auto& rib_record = std::get<mrt::RibRecord>(record.body);
    entries += rib_record.entries.size();
    if (rib_record.prefix.family() == Family::v4) {
      ++v4_records;
      ++v4_lengths[rib_record.prefix.length()];
    } else {
      ++v6_records;
      ++v6_lengths[rib_record.prefix.length()];
    }
  }
  std::printf("\n%zu records: %zu peer tables, %zu IPv4 + %zu IPv6 RIB records,"
              " %zu peer entries\n",
              records->size(), peer_tables, v4_records, v6_records, entries);

  std::printf("\nIPv4 prefix length distribution:\n");
  for (const auto& [length, count] : v4_lengths) {
    std::printf("  /%-3u %zu\n", length, count);
  }
  std::printf("IPv6 prefix length distribution:\n");
  for (const auto& [length, count] : v6_lengths) {
    std::printf("  /%-3u %zu\n", length, count);
  }

  // Load the RIB and exercise longest-prefix match.
  const auto rib = bgp::Rib::from_mrt(*records);
  std::printf("\nRIB: %zu prefixes, %zu observed with multiple origins (MOAS)\n",
              rib.prefix_count(), rib.moas_count());
  const auto prefixes = rib.prefixes();
  if (!prefixes.empty()) {
    const auto& probe = prefixes[prefixes.size() / 2];
    const auto hit = rib.lookup(probe.address());
    if (hit) {
      std::printf("longest match for %s -> %s originated by AS%u\n",
                  probe.address().to_string().c_str(), hit->prefix.to_string().c_str(),
                  hit->origin_as);
    }
  }
  return 0;
}
