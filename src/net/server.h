// sp::net::Server — the epoll TCP front-end for the sibling lookup
// service (the ROADMAP's "network front-end for sp::serve" item).
//
// Architecture:
//
//   * One listening socket, accepted by worker 0 only (the single
//     acceptor), with accepted connections handed round-robin to the N
//     worker event loops through per-worker inboxes (mutex + eventfd
//     wakeup).
//   * The N event loops are pinned to core::WorkerPool threads: start()
//     spawns one driver thread whose pool_.run(worker_loop) fork-join
//     dispatch hosts every loop for the server's lifetime (worker 0 on
//     the driver thread itself), and stop() joins them all through the
//     same barrier.
//   * Each loop is a level-triggered epoll: EPOLLIN while the connection
//     is reading, EPOLLOUT only while output is buffered. Connections
//     never migrate between workers, so connection state needs no lock.
//
// Per connection:
//
//   * an incremental FrameDecoder absorbs whatever the kernel delivers —
//     1-byte trickles and coalesced pipelines decode identically;
//   * responses append to an output buffer flushed opportunistically;
//     when more than `high_water` bytes are buffered (a slow or stalled
//     reader) the worker *pauses reads* (drops EPOLLIN) until the buffer
//     drains below half the mark, so one slow client caps its own memory
//     instead of growing the server's — the reads_paused counter and the
//     net_server_test slow-reader case pin this;
//   * an idle timeout (no bytes read) and a write timeout (buffered
//     output making no progress) evict dead peers on a periodic sweep.
//
// Queries pin the RCU snapshot per frame exactly as SiblingService does:
// the worker copies the shared_ptr once, answers every key in the batch
// from that snapshot inline (net workers are already the parallel unit;
// no inner fork-join), counts into the snapshot's per-generation tally,
// and drops the pin — RELOAD stays race-free under live traffic.
//
// Protocol errors (bad length, unknown type, malformed body) answer with
// one ERROR frame and close after it flushes. A connection whose first
// byte is 'G' is served as minimal HTTP/1.1 instead: `GET /metrics`
// returns the obs MetricsRegistry scrape as JSON (curl-able), anything
// else 404; either way the connection closes after the response.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/worker_pool.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace sp::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the bound one
  unsigned workers = 0;    // event loops; 0 = hardware concurrency, capped at 8
  std::size_t max_body = kMaxBody;
  /// Pause reading a connection once this many response bytes are
  /// buffered; resume below half of it.
  std::size_t high_water = 1u << 20;
  std::chrono::milliseconds idle_timeout{30000};
  std::chrono::milliseconds write_timeout{10000};
  /// How long the acceptor stays unregistered after fd exhaustion
  /// (EMFILE/ENFILE) before retrying. Level-triggered epoll would
  /// otherwise re-deliver the listen event immediately and spin the
  /// acceptor at 100% CPU while the process is out of descriptors.
  std::chrono::milliseconds accept_backoff{250};
  /// Registry for the net.* metrics and the METRICS/`/metrics` scrape.
  /// Null = the process-global registry (the CLI default); tests pass a
  /// private registry so scrapes and quantiles start from zero.
  obs::MetricsRegistry* registry = nullptr;
};

/// Point-in-time server counters (exact; plain atomics, not obs shards).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t queries = 0;  // keys answered
  std::uint64_t hits = 0;
  std::uint64_t batches = 0;  // QUERY frames answered
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t reads_paused = 0;
  std::uint64_t idle_evictions = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t accept_errors = 0;  // accept4 failures (EMFILE backoffs included)
};

class Server {
 public:
  /// The service must outlive the server. Does not listen yet.
  explicit Server(serve::SiblingService& service, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event loops in the background.
  /// Returns false (with a reason) on bind/listen failure.
  [[nodiscard]] bool start(std::string* error);

  /// Signals every loop, closes all connections and joins. Idempotent.
  void stop();

  /// The bound port (meaningful after start(); resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  [[nodiscard]] ServerStats stats() const;

  /// The STATS verb's payload as the worker builds it (exposed so the
  /// conformance suite asserts the exact bytes a fresh server answers).
  [[nodiscard]] StatsPayload stats_payload() const;

 private:
  struct Connection;
  struct Worker;

  void worker_loop(unsigned worker_id);
  void accept_ready(Worker& worker);
  void adopt_inbox(Worker& worker);
  void connection_readable(Worker& worker, Connection& connection);
  void connection_writable(Worker& worker, Connection& connection);
  void dispatch_frame(Connection& connection, const Frame& frame);
  void handle_http(Connection& connection);
  void flush_output(Worker& worker, Connection& connection);
  void update_interest(Worker& worker, Connection& connection);
  void close_connection(Worker& worker, Connection& connection);
  void sweep_timeouts(Worker& worker);
  void fail_connection(Connection& connection, const std::string& message);

  serve::SiblingService& service_;
  ServerConfig config_;
  unsigned worker_count_;
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  // Acceptor backoff state: worker 0 is the only acceptor, so these are
  // only ever touched from its event loop — no lock needed.
  bool accept_paused_ = false;
  std::chrono::steady_clock::time_point accept_resume_at_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_worker_{0};  // round-robin accept target
  std::unique_ptr<core::WorkerPool> pool_;     // hosts the event loops
  std::thread driver_;                         // runs pool_->run(worker_loop)

  // Exact counters; seq_cst fetch_add is one locked add on x86 and these
  // are off the per-key hot path (one update per frame/connection).
  std::atomic<std::uint64_t> accepted_{0}, active_{0};
  std::atomic<std::uint64_t> frames_in_{0}, frames_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0}, bytes_out_{0};
  std::atomic<std::uint64_t> queries_{0}, hits_{0}, batches_{0};
  std::atomic<std::uint64_t> reloads_ok_{0}, reloads_failed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0}, reads_paused_{0};
  std::atomic<std::uint64_t> idle_evictions_{0}, write_timeouts_{0}, http_requests_{0};
  std::atomic<std::uint64_t> accept_errors_{0};

  obs::Histogram frame_us_;   // net.frame_us: QUERY frame service time
  obs::Counter obs_queries_;  // net.queries: keys answered (METRICS scrape)
  obs::Counter obs_query_frames_;    // net.frames.query
  obs::Counter obs_reload_frames_;   // net.frames.reload
  obs::Counter obs_stats_frames_;    // net.frames.stats
  obs::Counter obs_metrics_frames_;  // net.frames.metrics
  obs::Counter obs_accept_errors_;   // net.accept_errors
};

}  // namespace sp::net
