#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sp::net {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Milliseconds left before `deadline`, clamped at zero.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)), eof_(other.eof_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    eof_ = other.eof_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Client> Client::connect(const std::string& host, std::uint16_t port,
                                      std::string* error,
                                      std::chrono::milliseconds timeout) {
  const auto address = IPAddress::from_string(host);
  if (!address) {
    set_error(error, "cannot parse host '" + host + "'");
    return std::nullopt;
  }
  const int family = address->is_v4() ? AF_INET : AF_INET6;
  const int fd = ::socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return std::nullopt;
  }
  sockaddr_storage storage{};
  socklen_t length = 0;
  if (address->is_v4()) {
    auto* v4 = reinterpret_cast<sockaddr_in*>(&storage);
    v4->sin_family = AF_INET;
    v4->sin_port = htons(port);
    v4->sin_addr.s_addr = htonl(address->v4().value());
    length = sizeof(sockaddr_in);
  } else {
    auto* v6 = reinterpret_cast<sockaddr_in6*>(&storage);
    v6->sin6_family = AF_INET6;
    v6->sin6_port = htons(port);
    std::memcpy(v6->sin6_addr.s6_addr, address->v6().bytes().data(), 16);
    length = sizeof(sockaddr_in6);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&storage), length) != 0 &&
      errno != EINPROGRESS) {
    set_error(error, std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return std::nullopt;
  }
  pollfd waiter{fd, POLLOUT, 0};
  const int ready = ::poll(&waiter, 1, static_cast<int>(timeout.count()));
  if (ready <= 0) {
    set_error(error, "connect timed out");
    ::close(fd);
    return std::nullopt;
  }
  int status = 0;
  socklen_t status_len = sizeof(status);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &status, &status_len) != 0 || status != 0) {
    set_error(error, std::string("connect: ") + std::strerror(status != 0 ? status : errno));
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

bool Client::send_bytes(std::span<const std::uint8_t> bytes, std::string* error) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd waiter{fd_, POLLOUT, 0};
      if (::poll(&waiter, 1, 5000) <= 0) {
        set_error(error, "send stalled");
        return false;
      }
      continue;
    }
    set_error(error, std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::optional<Frame> Client::read_frame(std::string* error,
                                        std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (auto frame = decoder_.next()) return frame;
    if (decoder_.error()) {
      set_error(error, decoder_.error_message());
      return std::nullopt;
    }
    if (eof_) {
      set_error(error, "");
      return std::nullopt;
    }
    pollfd waiter{fd_, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, remaining_ms(deadline));
    if (ready == 0) {
      set_error(error, "read timed out");
      return std::nullopt;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      set_error(error, std::string("poll: ") + std::strerror(errno));
      return std::nullopt;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) {
      eof_ = true;
      continue;  // drain whatever the decoder still holds
    }
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      set_error(error, std::string("recv: ") + std::strerror(errno));
      return std::nullopt;
    }
    decoder_.feed({chunk, static_cast<std::size_t>(got)});
  }
}

}  // namespace sp::net
