#include "net/protocol.h"

#include <bit>
#include <cstring>

namespace sp::net {

bool is_request_type(std::uint8_t type) noexcept {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kReload:
    case FrameType::kStats:
    case FrameType::kMetrics:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// FrameDecoder

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return;  // the connection is dead; do not grow the buffer
  // Compact once the consumed prefix dominates, so a long-lived pipelined
  // connection never grows its buffer past one frame plus one chunk.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint32_t body_len = static_cast<std::uint32_t>(head[1]) |
                                 (static_cast<std::uint32_t>(head[2]) << 8) |
                                 (static_cast<std::uint32_t>(head[3]) << 16) |
                                 (static_cast<std::uint32_t>(head[4]) << 24);
  if (body_len > max_body_) {
    poisoned_ = true;
    error_ = "frame body length " + std::to_string(body_len) + " exceeds limit " +
             std::to_string(max_body_);
    return std::nullopt;
  }
  if (available < kHeaderSize + body_len) return std::nullopt;
  Frame frame;
  frame.type = head[0];
  frame.body.assign(head + kHeaderSize, head + kHeaderSize + body_len);
  consumed_ += kHeaderSize + body_len;
  return frame;
}

// ---------------------------------------------------------------------------
// Little-endian primitives

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (unsigned shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (unsigned shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint8_t ByteReader::u8() {
  if (!ok || pos + 1 > data.size()) {
    ok = false;
    return 0;
  }
  return data[pos++];
}

std::uint16_t ByteReader::u16() {
  if (!ok || pos + 2 > data.size()) {
    ok = false;
    return 0;
  }
  const std::uint16_t v =
      static_cast<std::uint16_t>(data[pos] | (static_cast<std::uint16_t>(data[pos + 1]) << 8));
  pos += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!ok || pos + 4 > data.size()) {
    ok = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
  pos += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!ok || pos + 8 > data.size()) {
    ok = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
  pos += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (!ok || pos + n > data.size()) {
    ok = false;
    return {};
  }
  const auto view = data.subspan(pos, n);
  pos += n;
  return view;
}

// ---------------------------------------------------------------------------
// Frame assembly

namespace {

/// Appends the 5-byte header for `type` with a placeholder length and
/// returns the index of the length field, to be patched by seal().
std::size_t open_frame(std::vector<std::uint8_t>& out, FrameType type) {
  out.push_back(static_cast<std::uint8_t>(type));
  const std::size_t length_at = out.size();
  put_u32(out, 0);
  return length_at;
}

void seal_frame(std::vector<std::uint8_t>& out, std::size_t length_at) {
  const std::size_t body_len = out.size() - length_at - 4;
  for (unsigned i = 0; i < 4; ++i) {
    out[length_at + i] = static_cast<std::uint8_t>(body_len >> (8 * i));
  }
}

void fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

void put_key(std::vector<std::uint8_t>& out, const Prefix& key) {
  out.push_back(key.family() == Family::v4 ? 4 : 6);
  out.push_back(static_cast<std::uint8_t>(key.length()));
  const auto& storage = key.address().storage();
  const std::size_t width = key.family() == Family::v4 ? 4 : 16;
  out.insert(out.end(), storage.begin(), storage.begin() + static_cast<std::ptrdiff_t>(width));
}

std::optional<Prefix> read_key(ByteReader& reader, std::string* error) {
  const std::uint8_t family = reader.u8();
  const std::uint8_t length = reader.u8();
  if (!reader.ok) {
    fail(error, "truncated key");
    return std::nullopt;
  }
  if (family != 4 && family != 6) {
    fail(error, "key family must be 4 or 6, got " + std::to_string(family));
    return std::nullopt;
  }
  const std::size_t width = family == 4 ? 4 : 16;
  const auto raw = reader.bytes(width);
  if (!reader.ok) {
    fail(error, "truncated key");
    return std::nullopt;
  }
  const unsigned max_length = family == 4 ? 32 : 128;
  if (length > max_length) {
    fail(error, "key prefix length " + std::to_string(length) + " exceeds /" +
                    std::to_string(max_length));
    return std::nullopt;
  }
  IPAddress address;
  if (family == 4) {
    address = IPv4Address::from_octets(raw[0], raw[1], raw[2], raw[3]);
  } else {
    IPv6Address::Bytes bytes;
    std::memcpy(bytes.data(), raw.data(), bytes.size());
    address = IPv6Address(bytes);
  }
  return Prefix::of(address, length);  // canonicalises stray host bits
}

void encode_query_request(std::vector<std::uint8_t>& out, const QueryRequest& request) {
  const std::size_t at = open_frame(out, FrameType::kQuery);
  put_u32(out, request.request_id);
  put_u16(out, static_cast<std::uint16_t>(request.keys.size()));
  for (const Prefix& key : request.keys) put_key(out, key);
  seal_frame(out, at);
}

std::optional<QueryRequest> parse_query_request(std::span<const std::uint8_t> body,
                                                std::string* error) {
  ByteReader reader{body};
  QueryRequest request;
  request.request_id = reader.u32();
  const std::uint16_t count = reader.u16();
  if (!reader.ok) {
    fail(error, "truncated QUERY header");
    return std::nullopt;
  }
  if (count > kMaxBatch) {
    fail(error, "QUERY batch of " + std::to_string(count) + " keys exceeds max " +
                    std::to_string(kMaxBatch));
    return std::nullopt;
  }
  request.keys.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    auto key = read_key(reader, error);
    if (!key) return std::nullopt;
    request.keys.push_back(*key);
  }
  if (!reader.done()) {
    fail(error, "QUERY body has trailing bytes");
    return std::nullopt;
  }
  return request;
}

void encode_query_response(std::vector<std::uint8_t>& out, const QueryResponse& response) {
  const std::size_t at = open_frame(out, FrameType::kQueryResponse);
  put_u32(out, response.request_id);
  put_u64(out, response.generation);
  put_u16(out, static_cast<std::uint16_t>(response.answers.size()));
  for (const auto& answer : response.answers) {
    out.push_back(answer.has_value() ? 1 : 0);
    if (!answer) continue;
    put_key(out, answer->matched);
    put_key(out, answer->sibling);
    put_f64(out, answer->similarity);
    put_u32(out, answer->shared_domains);
    put_u32(out, answer->v4_domain_count);
    put_u32(out, answer->v6_domain_count);
  }
  seal_frame(out, at);
}

std::optional<QueryResponse> parse_query_response(std::span<const std::uint8_t> body,
                                                  std::string* error) {
  ByteReader reader{body};
  QueryResponse response;
  response.request_id = reader.u32();
  response.generation = reader.u64();
  const std::uint16_t count = reader.u16();
  if (!reader.ok) {
    fail(error, "truncated QUERY response header");
    return std::nullopt;
  }
  if (count > kMaxBatch) {
    fail(error, "QUERY response of " + std::to_string(count) + " answers exceeds max " +
                    std::to_string(kMaxBatch));
    return std::nullopt;
  }
  response.answers.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint8_t hit = reader.u8();
    if (!reader.ok || hit > 1) {
      fail(error, "bad answer hit flag");
      return std::nullopt;
    }
    if (hit == 0) {
      response.answers.emplace_back(std::nullopt);
      continue;
    }
    serve::SiblingAnswer answer;
    auto matched = read_key(reader, error);
    if (!matched) return std::nullopt;
    auto sibling = read_key(reader, error);
    if (!sibling) return std::nullopt;
    answer.matched = *matched;
    answer.sibling = *sibling;
    answer.similarity = reader.f64();
    answer.shared_domains = reader.u32();
    answer.v4_domain_count = reader.u32();
    answer.v6_domain_count = reader.u32();
    if (!reader.ok) {
      fail(error, "truncated answer");
      return std::nullopt;
    }
    response.answers.emplace_back(answer);
  }
  if (!reader.done()) {
    fail(error, "QUERY response has trailing bytes");
    return std::nullopt;
  }
  return response;
}

void encode_reload_request(std::vector<std::uint8_t>& out, const ReloadRequest& request) {
  const std::size_t at = open_frame(out, FrameType::kReload);
  put_u16(out, static_cast<std::uint16_t>(request.path.size()));
  out.insert(out.end(), request.path.begin(), request.path.end());
  seal_frame(out, at);
}

std::optional<ReloadRequest> parse_reload_request(std::span<const std::uint8_t> body,
                                                  std::string* error) {
  ByteReader reader{body};
  const std::uint16_t length = reader.u16();
  const auto raw = reader.bytes(length);
  if (!reader.ok || !reader.done()) {
    fail(error, "malformed RELOAD body");
    return std::nullopt;
  }
  ReloadRequest request;
  request.path.assign(raw.begin(), raw.end());
  return request;
}

void encode_reload_response(std::vector<std::uint8_t>& out, const ReloadResponse& response) {
  const std::size_t at = open_frame(out, FrameType::kReloadResponse);
  out.push_back(response.ok ? 1 : 0);
  if (response.ok) {
    put_u64(out, response.generation);
  } else {
    put_u16(out, static_cast<std::uint16_t>(response.error.size()));
    out.insert(out.end(), response.error.begin(), response.error.end());
  }
  seal_frame(out, at);
}

std::optional<ReloadResponse> parse_reload_response(std::span<const std::uint8_t> body,
                                                    std::string* error) {
  ByteReader reader{body};
  const std::uint8_t ok = reader.u8();
  if (!reader.ok || ok > 1) {
    fail(error, "malformed RELOAD response");
    return std::nullopt;
  }
  ReloadResponse response;
  response.ok = ok == 1;
  if (response.ok) {
    response.generation = reader.u64();
  } else {
    const std::uint16_t length = reader.u16();
    const auto raw = reader.bytes(length);
    response.error.assign(raw.begin(), raw.end());
  }
  if (!reader.ok || !reader.done()) {
    fail(error, "malformed RELOAD response");
    return std::nullopt;
  }
  return response;
}

void encode_stats_request(std::vector<std::uint8_t>& out) {
  seal_frame(out, open_frame(out, FrameType::kStats));
}

void encode_stats_response(std::vector<std::uint8_t>& out, const StatsPayload& stats) {
  const std::size_t at = open_frame(out, FrameType::kStatsResponse);
  put_u64(out, stats.generation);
  put_u64(out, stats.reloads);
  put_u64(out, stats.connections_accepted);
  put_u64(out, stats.connections_active);
  put_u64(out, stats.frames_in);
  put_u64(out, stats.frames_out);
  put_u64(out, stats.bytes_in);
  put_u64(out, stats.bytes_out);
  put_u64(out, stats.queries);
  put_u64(out, stats.hits);
  put_u64(out, stats.batches);
  put_u64(out, stats.protocol_errors);
  put_u64(out, stats.reads_paused);
  put_u64(out, stats.idle_evictions);
  put_u64(out, stats.http_requests);
  put_f64(out, stats.frame_p50_us);
  put_f64(out, stats.frame_p90_us);
  put_f64(out, stats.frame_p99_us);
  put_u64(out, stats.frame_max_us);
  seal_frame(out, at);
}

std::optional<StatsPayload> parse_stats_response(std::span<const std::uint8_t> body,
                                                 std::string* error) {
  ByteReader reader{body};
  StatsPayload stats;
  stats.generation = reader.u64();
  stats.reloads = reader.u64();
  stats.connections_accepted = reader.u64();
  stats.connections_active = reader.u64();
  stats.frames_in = reader.u64();
  stats.frames_out = reader.u64();
  stats.bytes_in = reader.u64();
  stats.bytes_out = reader.u64();
  stats.queries = reader.u64();
  stats.hits = reader.u64();
  stats.batches = reader.u64();
  stats.protocol_errors = reader.u64();
  stats.reads_paused = reader.u64();
  stats.idle_evictions = reader.u64();
  stats.http_requests = reader.u64();
  stats.frame_p50_us = reader.f64();
  stats.frame_p90_us = reader.f64();
  stats.frame_p99_us = reader.f64();
  stats.frame_max_us = reader.u64();
  if (!reader.ok || !reader.done()) {
    fail(error, "malformed STATS response");
    return std::nullopt;
  }
  return stats;
}

void encode_metrics_request(std::vector<std::uint8_t>& out) {
  seal_frame(out, open_frame(out, FrameType::kMetrics));
}

void encode_metrics_response(std::vector<std::uint8_t>& out, std::string_view json) {
  const std::size_t at = open_frame(out, FrameType::kMetricsResponse);
  out.insert(out.end(), json.begin(), json.end());
  seal_frame(out, at);
}

void encode_error(std::vector<std::uint8_t>& out, std::string_view message) {
  const std::size_t at = open_frame(out, FrameType::kError);
  put_u16(out, static_cast<std::uint16_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  seal_frame(out, at);
}

std::optional<std::string> parse_error_frame(std::span<const std::uint8_t> body,
                                             std::string* error) {
  ByteReader reader{body};
  const std::uint16_t length = reader.u16();
  const auto raw = reader.bytes(length);
  if (!reader.ok || !reader.done()) {
    fail(error, "malformed ERROR frame");
    return std::nullopt;
  }
  return std::string(raw.begin(), raw.end());
}

}  // namespace sp::net
