#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <thread>
#include <utility>

#include "net/client.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/rss.h"
#include "synth/determinism.h"

namespace sp::net {

namespace {

// Purpose tags keep the family choice and the two halves of the address
// on independent hash streams of the same (seed, conn, frame, slot) key.
constexpr std::uint64_t kPurposeFamily = 0xFA;
constexpr std::uint64_t kPurposeAddrLo = 0xAD;
constexpr std::uint64_t kPurposeAddrHi = 0xAE;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& hash, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= kFnvPrime;
  }
}

/// The deterministic key for (conn, frame, slot): a uniform host address
/// inside the configured v4 or v6 space.
Prefix key_for(const LoadGenConfig& config, unsigned conn, std::uint64_t frame, unsigned slot) {
  const std::uint64_t seed = config.seed;
  const std::uint64_t entity = synth::mix(conn, frame, slot);
  const bool v6 = synth::unit(seed ^ kPurposeFamily, entity) < config.v6_share;
  if (!v6) {
    const unsigned length = config.v4_space.length();
    const std::uint32_t mask =
        length >= 32 ? 0u : static_cast<std::uint32_t>(0xFFFFFFFFull >> length);
    const auto low = static_cast<std::uint32_t>(synth::mix(seed ^ kPurposeAddrLo, entity));
    const std::uint32_t value = config.v4_space.address().v4().value() | (low & mask);
    return Prefix::host(IPAddress(IPv4Address(value)));
  }
  const std::uint64_t lo = synth::mix(seed ^ kPurposeAddrLo, entity);
  const std::uint64_t hi = synth::mix(seed ^ kPurposeAddrHi, entity);
  IPv6Address::Bytes bytes{};
  for (unsigned i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    bytes[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  // Overlay the space's network bits on top of the random host bits.
  const auto& space = config.v6_space.address().storage();
  const unsigned length = config.v6_space.length();
  for (unsigned i = 0; i < length / 8; ++i) bytes[i] = space[i];
  if (length % 8 != 0) {
    const auto keep = static_cast<std::uint8_t>(0xFF << (8 - length % 8));
    bytes[length / 8] =
        static_cast<std::uint8_t>((space[length / 8] & keep) | (bytes[length / 8] & ~keep));
  }
  return Prefix::host(IPAddress(IPv6Address(bytes)));
}

struct ConnOutcome {
  bool ok = false;
  std::string error;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t keys_sent = 0;
  std::uint64_t keys_answered = 0;
  std::uint64_t hits = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t hash = kFnvOffset;
};

/// One connection's closed loop: keep `pipeline` frames in flight, read
/// responses in order, stop per `requests` or the shared deadline.
void run_connection(const LoadGenConfig& config, unsigned conn,
                    std::chrono::steady_clock::time_point deadline, obs::Histogram latency,
                    ConnOutcome& outcome) {
  std::string error;
  auto client = Client::connect(config.host, config.port, &error);
  if (!client) {
    outcome.error = "connection " + std::to_string(conn) + ": " + error;
    return;
  }

  std::uint64_t next_frame = 0;
  std::deque<std::pair<std::uint32_t, std::chrono::steady_clock::time_point>> in_flight;
  std::vector<std::uint8_t> wire;
  QueryRequest request;

  const auto can_send = [&] {
    if (config.requests > 0) return next_frame < config.requests;
    return std::chrono::steady_clock::now() < deadline;
  };
  const auto send_one = [&]() -> bool {
    request.request_id = static_cast<std::uint32_t>(next_frame);
    request.keys.clear();
    for (unsigned slot = 0; slot < config.batch; ++slot) {
      request.keys.push_back(key_for(config, conn, next_frame, slot));
    }
    wire.clear();
    encode_query_request(wire, request);
    fnv_mix(outcome.hash, wire);
    if (!client->send_bytes(wire, &error)) {
      outcome.error = "connection " + std::to_string(conn) + ": " + error;
      return false;
    }
    outcome.frames_sent += 1;
    outcome.keys_sent += request.keys.size();
    outcome.bytes_sent += wire.size();
    in_flight.emplace_back(request.request_id, std::chrono::steady_clock::now());
    next_frame += 1;
    return true;
  };

  while (true) {
    while (in_flight.size() < config.pipeline && can_send()) {
      if (!send_one()) return;
    }
    if (in_flight.empty()) break;  // nothing left to send or await
    auto frame = client->read_frame(&error, std::chrono::milliseconds(10000));
    if (!frame) {
      outcome.error = "connection " + std::to_string(conn) + ": " +
                      (error.empty() ? "server closed mid-run" : error);
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    outcome.frames_received += 1;
    outcome.bytes_received += kHeaderSize + frame->body.size();
    if (frame->type != static_cast<std::uint8_t>(FrameType::kQueryResponse)) {
      outcome.error = "connection " + std::to_string(conn) + ": unexpected frame type";
      return;
    }
    auto response = parse_query_response(frame->body, &error);
    if (!response) {
      outcome.error = "connection " + std::to_string(conn) + ": " + error;
      return;
    }
    if (in_flight.empty() || response->request_id != in_flight.front().first) {
      outcome.error = "connection " + std::to_string(conn) + ": responses out of order";
      return;
    }
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        now - in_flight.front().second);
    latency.record(static_cast<std::uint64_t>(waited.count()));
    in_flight.pop_front();
    outcome.keys_answered += response->answers.size();
    for (const auto& answer : response->answers) {
      if (answer.has_value()) outcome.hits += 1;
    }
  }
  outcome.ok = true;
}

void append_number(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

}  // namespace

LoadGenReport run_loadgen(const LoadGenConfig& config) {
  LoadGenReport report;
  if (config.batch == 0 || config.batch > kMaxBatch || config.pipeline == 0 ||
      config.connections == 0) {
    report.error = "invalid config: connections, pipeline and batch must be positive, batch <= " +
                   std::to_string(kMaxBatch);
    return report;
  }

  // A private registry so quantiles cover exactly this run.
  obs::MetricsRegistry registry;
  const obs::Histogram latency = registry.histogram("loadgen.frame_us");

  std::vector<ConnOutcome> outcomes(config.connections);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + config.duration;
  {
    std::vector<std::thread> threads;
    threads.reserve(config.connections);
    for (unsigned conn = 0; conn < config.connections; ++conn) {
      threads.emplace_back(run_connection, std::cref(config), conn, deadline, latency,
                           std::ref(outcomes[conn]));
    }
    for (auto& thread : threads) thread.join();
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(std::chrono::steady_clock::now() -
                                                                start);

  report.ok = true;
  for (const auto& outcome : outcomes) {
    if (!outcome.ok && report.ok) {
      report.ok = false;
      report.error = outcome.error;
    }
    report.frames_sent += outcome.frames_sent;
    report.frames_received += outcome.frames_received;
    report.keys_sent += outcome.keys_sent;
    report.keys_answered += outcome.keys_answered;
    report.hits += outcome.hits;
    report.bytes_sent += outcome.bytes_sent;
    report.bytes_received += outcome.bytes_received;
    report.request_stream_hash.push_back(outcome.hash);
  }
  report.elapsed_s = elapsed.count();
  report.qps = report.elapsed_s > 0.0
                   ? static_cast<double>(report.keys_answered) / report.elapsed_s
                   : 0.0;
  const auto snapshot = obs::HistogramSnapshot::of(latency);
  report.p50_us = snapshot.quantile(0.50);
  report.p90_us = snapshot.quantile(0.90);
  report.p99_us = snapshot.quantile(0.99);
  report.max_us = snapshot.max;
  return report;
}

std::string LoadGenReport::to_json(const LoadGenConfig& config) const {
  std::string out = "{\"bench\":\"net_loadgen\",\"ok\":";
  out += ok ? "true" : "false";
  if (!ok) {
    out += ",\"error\":\"";
    for (const char c : error) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += ",\"config\":{\"connections\":";
  append_u64(out, config.connections);
  out += ",\"pipeline\":";
  append_u64(out, config.pipeline);
  out += ",\"batch\":";
  append_u64(out, config.batch);
  out += ",\"seed\":";
  append_u64(out, config.seed);
  out += ",\"v6_share\":";
  append_number(out, config.v6_share);
  out += ",\"v4_space\":\"" + config.v4_space.to_string() + "\"";
  out += ",\"v6_space\":\"" + config.v6_space.to_string() + "\"";
  out += ",\"requests\":";
  append_u64(out, config.requests);
  out += ",\"duration_ms\":";
  append_u64(out, static_cast<std::uint64_t>(config.duration.count()));
  out += "},\"frames_sent\":";
  append_u64(out, frames_sent);
  out += ",\"frames_received\":";
  append_u64(out, frames_received);
  out += ",\"keys_sent\":";
  append_u64(out, keys_sent);
  out += ",\"keys_answered\":";
  append_u64(out, keys_answered);
  out += ",\"hits\":";
  append_u64(out, hits);
  out += ",\"bytes_sent\":";
  append_u64(out, bytes_sent);
  out += ",\"bytes_received\":";
  append_u64(out, bytes_received);
  out += ",\"elapsed_s\":";
  append_number(out, elapsed_s);
  out += ",\"qps\":";
  append_number(out, qps);
  out += ",\"p50_us\":";
  append_number(out, p50_us);
  out += ",\"p90_us\":";
  append_number(out, p90_us);
  out += ",\"p99_us\":";
  append_number(out, p99_us);
  out += ",\"max_us\":";
  append_u64(out, max_us);
  // The same memory field every bench JSON artifact carries (obs/rss.h),
  // so one parser covers the google-benchmark and loadgen reports alike.
  out += ",\"sp_peak_rss_kb\":";
  append_u64(out, static_cast<std::uint64_t>(std::max(0L, obs::peak_rss_kb())));
  out += ",\"request_stream_hash\":[";
  for (std::size_t i = 0; i < request_stream_hash.size(); ++i) {
    if (i != 0) out += ',';
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "\"%016" PRIx64 "\"", request_stream_hash[i]);
    out += buffer;
  }
  out += "]}";
  return out;
}

}  // namespace sp::net
