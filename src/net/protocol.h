// sp::net wire protocol — the length-prefixed pipelined binary frames the
// epoll front-end (net/server.h) speaks over TCP.
//
// Framing. Every message is one frame:
//
//   offset  size  field
//   0       1     type       (verb / response discriminator, see below)
//   1       4     body_len   (u32, little-endian, <= kMaxBody)
//   5       n     body       (body_len bytes, layout per type)
//
// The type byte leads so the very first octet of a connection
// distinguishes the binary protocol from a curl-style HTTP request: no
// frame type is ever 'G' (0x47), so a leading 'G' routes the connection
// to the minimal `GET /metrics` HTTP handler instead (server.cpp).
//
// All integers are little-endian. Doubles travel as the little-endian
// bytes of their IEEE-754 bit pattern. Prefixes and addresses share one
// Key encoding:
//
//   u8 family (4 or 6) | u8 prefix_len | 4 (v4) or 16 (v6) address bytes
//
// A full-length key (/32, /128) means an address lookup; anything
// shorter is a whole-prefix LPM lookup. Host bits need not be zero on
// the wire — the server canonicalises via Prefix::of.
//
// Verbs (client -> server):
//   0x01 QUERY    u32 request_id | u16 count | count x Key   (count <= kMaxBatch)
//   0x02 RELOAD   u16 path_len | path bytes   (path_len == 0: bare reload)
//   0x03 STATS    empty body
//   0x04 METRICS  empty body
//
// Responses (server -> client):
//   0x81 QUERY    u32 request_id | u64 generation | u16 count | count x Answer
//                 Answer = u8 hit | if hit: Key matched, Key sibling,
//                          f64 similarity, u32 shared, u32 v4dc, u32 v6dc
//   0x82 RELOAD   u8 ok | if ok: u64 generation, else u16 len | error text
//   0x83 STATS    StatsPayload (fixed 152-byte struct, see below)
//   0x84 METRICS  UTF-8 JSON body (obs MetricsRegistry scrape)
//   0x7f ERROR    u16 len | message — sent once on a protocol violation,
//                 then the connection is closed
//
// Pipelining: a client may send any number of request frames without
// waiting; the server answers them in order on the same connection.
// The decoder below is incremental — it accepts bytes as they arrive
// (1-byte trickles, coalesced pipelines) and yields complete frames.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netbase/prefix.h"
#include "serve/lookup.h"

namespace sp::net {

/// Frame type bytes. Requests have the high bit clear, responses set;
/// kError is the one response a request of any type can provoke.
enum class FrameType : std::uint8_t {
  kQuery = 0x01,
  kReload = 0x02,
  kStats = 0x03,
  kMetrics = 0x04,
  kQueryResponse = 0x81,
  kReloadResponse = 0x82,
  kStatsResponse = 0x83,
  kMetricsResponse = 0x84,
  kError = 0x7f,
};

/// Hard cap on a frame body; a declared length above this poisons the
/// connection (error frame + close) before any allocation happens.
inline constexpr std::size_t kMaxBody = 1u << 20;

/// Largest key count in one QUERY frame.
inline constexpr std::size_t kMaxBatch = 4096;

/// Frame header bytes on the wire (type + body length).
inline constexpr std::size_t kHeaderSize = 5;

/// True for bytes that name a valid request verb.
[[nodiscard]] bool is_request_type(std::uint8_t type) noexcept;

/// One decoded frame: the type byte and its raw body.
struct Frame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> body;

  [[nodiscard]] friend bool operator==(const Frame&, const Frame&) = default;
};

/// Incremental frame decoder. feed() accepts arbitrary byte chunks;
/// next() yields complete frames in arrival order. A malformed length
/// (body_len > max_body) poisons the decoder: error() turns true,
/// next() never yields again — the server answers with an ERROR frame
/// and closes. Identical byte streams yield identical frame sequences
/// regardless of how they were chunked (fuzz_net_frame's invariant).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_body = kMaxBody) : max_body_(max_body) {}

  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame, or nullopt when more bytes are needed (or
  /// the decoder is poisoned).
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool error() const noexcept { return poisoned_; }
  [[nodiscard]] const std::string& error_message() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed as frames (bounded by
  /// kHeaderSize + max_body between next() calls).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::size_t max_body_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already returned
  bool poisoned_ = false;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Little-endian primitives (shared by the encoders, tests and fuzz).

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

/// Bounds-checked sequential reader over a frame body. After a failed
/// read `ok` is false and every later read returns zero values.
struct ByteReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);
  [[nodiscard]] bool done() const noexcept { return ok && pos == data.size(); }
};

// ---------------------------------------------------------------------------
// Message structs and their encode/parse pairs. Encoders append a whole
// frame (header + body) to `out`; parsers take the frame *body* and
// return nullopt on any structural violation, storing a deterministic
// reason in `error` (the text the server echoes in its ERROR frame).

/// The Key wire unit (see header comment). Full-length keys are address
/// lookups; shorter ones are whole-prefix LPM lookups.
void put_key(std::vector<std::uint8_t>& out, const Prefix& key);
[[nodiscard]] std::optional<Prefix> read_key(ByteReader& reader, std::string* error);

struct QueryRequest {
  std::uint32_t request_id = 0;
  std::vector<Prefix> keys;  // full-length = address query

  [[nodiscard]] friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

struct QueryResponse {
  std::uint32_t request_id = 0;
  std::uint64_t generation = 0;  // 0 = no snapshot was loaded
  std::vector<std::optional<serve::SiblingAnswer>> answers;

  [[nodiscard]] friend bool operator==(const QueryResponse&, const QueryResponse&) = default;
};

struct ReloadRequest {
  std::string path;  // empty = bare reload of the current snapshot

  [[nodiscard]] friend bool operator==(const ReloadRequest&, const ReloadRequest&) = default;
};

struct ReloadResponse {
  bool ok = false;
  std::uint64_t generation = 0;  // when ok
  std::string error;             // when !ok

  [[nodiscard]] friend bool operator==(const ReloadResponse&, const ReloadResponse&) = default;
};

/// The fixed-layout STATS body: 15 u64 counters, 3 f64 quantiles and one
/// u64 max, in declaration order — 152 bytes. Every field is exact and
/// deterministic for a given traffic history, so conformance vectors can
/// pin the bytes of a fresh server's answer.
struct StatsPayload {
  std::uint64_t generation = 0;
  std::uint64_t reloads = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t queries = 0;  // keys answered across all QUERY frames
  std::uint64_t hits = 0;
  std::uint64_t batches = 0;  // QUERY frames answered
  std::uint64_t protocol_errors = 0;
  std::uint64_t reads_paused = 0;  // backpressure pause events
  std::uint64_t idle_evictions = 0;
  std::uint64_t http_requests = 0;
  double frame_p50_us = 0.0;  // per-QUERY-frame service time quantiles
  double frame_p90_us = 0.0;
  double frame_p99_us = 0.0;
  std::uint64_t frame_max_us = 0;

  [[nodiscard]] friend bool operator==(const StatsPayload&, const StatsPayload&) = default;
};

void encode_query_request(std::vector<std::uint8_t>& out, const QueryRequest& request);
void encode_query_response(std::vector<std::uint8_t>& out, const QueryResponse& response);
void encode_reload_request(std::vector<std::uint8_t>& out, const ReloadRequest& request);
void encode_reload_response(std::vector<std::uint8_t>& out, const ReloadResponse& response);
void encode_stats_request(std::vector<std::uint8_t>& out);
void encode_stats_response(std::vector<std::uint8_t>& out, const StatsPayload& stats);
void encode_metrics_request(std::vector<std::uint8_t>& out);
void encode_metrics_response(std::vector<std::uint8_t>& out, std::string_view json);
void encode_error(std::vector<std::uint8_t>& out, std::string_view message);

[[nodiscard]] std::optional<QueryRequest> parse_query_request(
    std::span<const std::uint8_t> body, std::string* error);
[[nodiscard]] std::optional<QueryResponse> parse_query_response(
    std::span<const std::uint8_t> body, std::string* error);
[[nodiscard]] std::optional<ReloadRequest> parse_reload_request(
    std::span<const std::uint8_t> body, std::string* error);
[[nodiscard]] std::optional<ReloadResponse> parse_reload_response(
    std::span<const std::uint8_t> body, std::string* error);
[[nodiscard]] std::optional<StatsPayload> parse_stats_response(
    std::span<const std::uint8_t> body, std::string* error);
[[nodiscard]] std::optional<std::string> parse_error_frame(std::span<const std::uint8_t> body,
                                                           std::string* error);

}  // namespace sp::net
