// sp::net::Client — a small blocking TCP client for the binary protocol.
//
// This is the consumer side the conformance tests and the load generator
// share: connect, write raw frame bytes, read frames back through the
// same incremental FrameDecoder the server uses. It is deliberately
// synchronous (poll-guarded reads/writes with deadlines) — pipelining is
// expressed by writing several request frames before reading responses,
// which TCP and the server's in-order dispatch make safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/protocol.h"

namespace sp::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (either address family) within `timeout`.
  [[nodiscard]] static std::optional<Client> connect(
      const std::string& host, std::uint16_t port, std::string* error,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Writes all of `bytes` (blocking, poll-guarded). False on error.
  [[nodiscard]] bool send_bytes(std::span<const std::uint8_t> bytes, std::string* error);

  /// Reads until one complete frame is decoded or `timeout` elapses.
  /// Returns nullopt on timeout, EOF or a framing error (reason in
  /// `error`; "" + eof()==true distinguishes a clean close).
  [[nodiscard]] std::optional<Frame> read_frame(
      std::string* error,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// True once the server closed its end during a read_frame().
  [[nodiscard]] bool eof() const noexcept { return eof_; }

  /// The raw socket, for tests that need shutdown()/partial writes.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  bool eof_ = false;
};

}  // namespace sp::net
