// sp::net load generator — the measurement half of the TCP front-end
// (the ROADMAP's "millions of users becomes a measured number").
//
// Closed-loop and seeded-deterministic: every connection keeps exactly
// `pipeline` QUERY frames in flight and sends the next one only when a
// response arrives, so the offered load self-regulates to what the
// server sustains. Every key is a pure function of
// (seed, connection, frame, slot) via sp::synth::mix — with a fixed
// `requests` count the byte stream each connection writes is identical
// across runs (the per-connection FNV-1a64 hashes in the report and the
// net_loadgen determinism test pin this). In duration mode the stream
// prefix is still deterministic; only its length varies with timing.
//
// Client-side latency is recorded per QUERY frame round trip into an
// obs histogram owned by the run (a private MetricsRegistry, so
// back-to-back runs in one process start from zero), and the report's
// p50/p90/p99 come from that histogram's log₂ quantile estimate.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "netbase/prefix.h"

namespace sp::net {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned connections = 4;
  unsigned pipeline = 8;  // QUERY frames in flight per connection
  unsigned batch = 256;   // keys per QUERY frame (<= kMaxBatch)
  std::uint64_t seed = 1;
  /// Key mix: fraction of keys drawn from the v6 space (by seeded hash,
  /// so the mix is exact in expectation and deterministic in sequence).
  double v6_share = 0.25;
  /// Keys are uniform addresses inside these spaces (host bits seeded).
  Prefix v4_space = Prefix();  // 0.0.0.0/0
  Prefix v6_space = Prefix::of(IPAddress(IPv6Address()), 0);  // ::/0
  /// Frames per connection; 0 = run for `duration` instead (the byte
  /// stream is then a timing-dependent prefix of the seeded stream).
  std::uint64_t requests = 0;
  std::chrono::milliseconds duration{5000};
};

struct LoadGenReport {
  bool ok = false;
  std::string error;  // first connection failure, when !ok

  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t keys_sent = 0;
  std::uint64_t keys_answered = 0;
  std::uint64_t hits = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;  // keys_answered / elapsed_s — the headline number

  // Client-side per-frame round-trip latency (µs), from the run's
  // private obs histogram.
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t max_us = 0;

  /// FNV-1a64 over each connection's full request byte stream, index =
  /// connection id. Equal across runs for equal (seed, config) with a
  /// fixed `requests` count.
  std::vector<std::uint64_t> request_stream_hash;

  /// The report as a JSON object (BENCH_net.json's format).
  [[nodiscard]] std::string to_json(const LoadGenConfig& config) const;
};

/// Runs the closed loop against host:port. Blocks until done.
[[nodiscard]] LoadGenReport run_loadgen(const LoadGenConfig& config);

}  // namespace sp::net
