#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "lint/lock_order.h"
#include "stream/reload.h"

namespace sp::net {

namespace {

/// Read chunk size; also the unit the backpressure check runs at, so a
/// connection's output buffer is bounded by high_water plus the
/// expansion of one chunk.
constexpr std::size_t kReadChunk = 64 * 1024;

/// HTTP request heads larger than this are dropped — the only routes
/// are one-line GETs.
constexpr std::size_t kMaxHttpHead = 8 * 1024;

obs::MetricsRegistry& pick_registry(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::MetricsRegistry::global();
}

std::string hex_byte(std::uint8_t value) {
  constexpr char digits[] = "0123456789abcdef";
  return {'0', 'x', digits[value >> 4], digits[value & 0xf]};
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  bool sniffed = false;
  bool http = false;
  std::string http_head;
  bool paused = false;            // reads dropped by backpressure
  bool close_after_flush = false; // error/HTTP response queued; close on drain
  std::uint32_t armed = 0;        // epoll events currently registered
  std::chrono::steady_clock::time_point last_read;
  std::chrono::steady_clock::time_point last_write_progress;

  explicit Connection(int socket_fd, std::size_t max_body)
      : fd(socket_fd), decoder(max_body) {}

  [[nodiscard]] std::size_t pending_out() const noexcept { return out.size() - out_pos; }
};

struct Server::Worker {
  unsigned id = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  // lock-order: 60 net.server.inbox_mutex (hand-off of accepted fds from
  // the acceptor to this worker; leaf — nothing is acquired under it)
  std::mutex inbox_mutex_;
  std::vector<int> inbox_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections;
  std::chrono::steady_clock::time_point last_sweep{};
};

Server::Server(serve::SiblingService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      worker_count_(0),
      frame_us_(pick_registry(config_.registry).histogram("net.frame_us")),
      obs_queries_(pick_registry(config_.registry).counter("net.queries")),
      obs_query_frames_(pick_registry(config_.registry).counter("net.frames.query")),
      obs_reload_frames_(pick_registry(config_.registry).counter("net.frames.reload")),
      obs_stats_frames_(pick_registry(config_.registry).counter("net.frames.stats")),
      obs_metrics_frames_(pick_registry(config_.registry).counter("net.frames.metrics")),
      obs_accept_errors_(pick_registry(config_.registry).counter("net.accept_errors")) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }

  const auto host = IPAddress::from_string(config_.host);
  if (!host) {
    if (error != nullptr) *error = "cannot parse listen host '" + config_.host + "'";
    return false;
  }
  const int family = host->is_v4() ? AF_INET : AF_INET6;
  listen_fd_ = ::socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_storage address{};
  socklen_t address_len = 0;
  if (host->is_v4()) {
    auto* v4 = reinterpret_cast<sockaddr_in*>(&address);
    v4->sin_family = AF_INET;
    v4->sin_port = htons(config_.port);
    v4->sin_addr.s_addr = htonl(host->v4().value());
    address_len = sizeof(sockaddr_in);
  } else {
    auto* v6 = reinterpret_cast<sockaddr_in6*>(&address);
    v6->sin6_family = AF_INET6;
    v6->sin6_port = htons(config_.port);
    std::memcpy(v6->sin6_addr.s6_addr, host->v6().bytes().data(), 16);
    address_len = sizeof(sockaddr_in6);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), address_len) != 0) {
    return fail("bind " + config_.host + ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 256) != 0) return fail("listen");
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(host->is_v4() ? reinterpret_cast<sockaddr_in*>(&bound)->sin_port
                                    : reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);

  worker_count_ = config_.workers;
  if (worker_count_ == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    worker_count_ = hardware == 0 ? 1 : (hardware > 8 ? 8 : hardware);
  }
  workers_.clear();
  for (unsigned id = 0; id < worker_count_; ++id) {
    auto worker = std::make_unique<Worker>();
    worker->id = id;
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->epoll_fd < 0 || worker->event_fd < 0) {
      workers_.clear();
      return fail("epoll/eventfd");
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.fd = worker->event_fd;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->event_fd, &wake);
    if (id == 0) {  // the single acceptor
      epoll_event accept_event{};
      accept_event.events = EPOLLIN;
      accept_event.data.fd = listen_fd_;
      ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &accept_event);
    }
    workers_.push_back(std::move(worker));
  }

  accept_paused_ = false;
  stopping_.store(false);
  running_.store(true);
  // The event loops are pinned to WorkerPool threads: one fork-join run()
  // hosts all of them until stop(); worker 0 executes on the driver
  // thread, so worker_count_ == 1 serves from a single extra thread.
  pool_ = std::make_unique<core::WorkerPool>(worker_count_);
  driver_ = std::thread([this] { pool_->run([this](unsigned id) { worker_loop(id); }); });
  return true;
}

void Server::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  for (const auto& worker : workers_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto ignored = ::write(worker->event_fd, &one, sizeof(one));
  }
  if (driver_.joinable()) driver_.join();
  pool_.reset();
  for (const auto& worker : workers_) {
    if (worker->event_fd >= 0) ::close(worker->event_fd);
    if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void Server::worker_loop(unsigned worker_id) {
  Worker& worker = *workers_[worker_id];
  worker.last_sweep = std::chrono::steady_clock::now();
  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    const int ready = ::epoll_wait(worker.epoll_fd, events.data(),
                                   static_cast<int>(events.size()), 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (worker.id == 0 && accept_paused_ &&
        std::chrono::steady_clock::now() >= accept_resume_at_) {
      // Backoff elapsed: re-register the listen fd and drain whatever
      // queued while the acceptor was parked. Level-triggered epoll
      // would re-fire anyway; accepting now just shaves the latency.
      epoll_event accept_event{};
      accept_event.events = EPOLLIN;
      accept_event.data.fd = listen_fd_;
      if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &accept_event) == 0) {
        accept_paused_ = false;
        accept_ready(worker);
      }
    }
    for (int i = 0; i < ready; ++i) {
      const epoll_event& event = events[static_cast<std::size_t>(i)];
      if (event.data.fd == worker.event_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const auto ignored =
            ::read(worker.event_fd, &drained, sizeof(drained));
        adopt_inbox(worker);
        continue;
      }
      if (event.data.fd == listen_fd_) {
        accept_ready(worker);
        continue;
      }
      // Look the connection up per event: an earlier event in this batch
      // may have closed it (stale events on a reused fd at worst trigger
      // one spurious EAGAIN read).
      const auto it = worker.connections.find(event.data.fd);
      if (it == worker.connections.end()) continue;
      Connection& connection = *it->second;
      if ((event.events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (event.events & (EPOLLIN | EPOLLOUT)) == 0) {
        close_connection(worker, connection);
        continue;
      }
      if ((event.events & EPOLLOUT) != 0) connection_writable(worker, connection);
      if (worker.connections.find(event.data.fd) == worker.connections.end()) continue;
      if ((event.events & EPOLLIN) != 0) connection_readable(worker, connection);
    }
    sweep_timeouts(worker);
  }
  // Shutdown: close every connection this loop owns.
  while (!worker.connections.empty()) {
    close_connection(worker, *worker.connections.begin()->second);
  }
}

void Server::adopt_inbox(Worker& worker) {
  std::vector<int> adopted;
  {
    std::lock_guard lock(worker.inbox_mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("net.server.inbox_mutex");
    adopted.swap(worker.inbox_);
  }
  const auto now = std::chrono::steady_clock::now();
  for (const int fd : adopted) {
    if (stopping_.load()) {
      ::close(fd);
      active_.fetch_sub(1);
      continue;
    }
    auto connection = std::make_unique<Connection>(fd, config_.max_body);
    connection->last_read = now;
    connection->last_write_progress = now;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    connection->armed = EPOLLIN;
    if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      active_.fetch_sub(1);
      continue;
    }
    worker.connections.emplace(fd, std::move(connection));
  }
}

void Server::accept_ready(Worker& worker) {
  while (!accept_paused_) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // backlog drained
      if (errno == ECONNABORTED || errno == EPROTO) {
        // The peer vanished between SYN and accept — count it and keep
        // draining; the rest of the backlog is still acceptable.
        accept_errors_.fetch_add(1);
        obs_accept_errors_.add();
        continue;
      }
      // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) or another
      // persistent failure. Under level-triggered epoll the listen fd
      // re-arms on every epoll_wait, so `break` alone becomes a 100% CPU
      // hot loop until a descriptor frees up. Park the acceptor instead:
      // unregister the listen fd and let worker 0's loop re-add it after
      // `accept_backoff`. Pending SYNs wait in the kernel backlog.
      accept_errors_.fetch_add(1);
      obs_accept_errors_.add();
      ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      accept_paused_ = true;
      accept_resume_at_ = std::chrono::steady_clock::now() + config_.accept_backoff;
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1);
    active_.fetch_add(1);
    const unsigned target =
        static_cast<unsigned>(next_worker_.fetch_add(1) % worker_count_);
    Worker& owner = *workers_[target];
    {
      std::lock_guard lock(owner.inbox_mutex_);
      [[maybe_unused]] const lint::LockOrderScope held("net.server.inbox_mutex");
      owner.inbox_.push_back(fd);
    }
    if (target == worker.id) {
      adopt_inbox(owner);  // self-delivery: no eventfd round trip needed
    } else {
      const std::uint64_t wake = 1;
      [[maybe_unused]] const auto ignored =
          ::write(owner.event_fd, &wake, sizeof(wake));
    }
  }
}

void Server::connection_readable(Worker& worker, Connection& connection) {
  std::uint8_t chunk[kReadChunk];
  while (!connection.paused && !connection.close_after_flush) {
    const ssize_t got = ::read(connection.fd, chunk, sizeof(chunk));
    if (got == 0) {
      close_connection(worker, connection);
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(worker, connection);
      return;
    }
    bytes_in_.fetch_add(static_cast<std::uint64_t>(got));
    connection.last_read = std::chrono::steady_clock::now();
    std::span<const std::uint8_t> bytes(chunk, static_cast<std::size_t>(got));
    if (!connection.sniffed) {
      connection.sniffed = true;
      // First byte of the connection routes it: 'G' (never a frame type)
      // means a curl-style HTTP GET, anything else the binary protocol.
      connection.http = bytes[0] == 'G';
    }
    if (connection.http) {
      connection.http_head.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
      if (connection.http_head.size() > kMaxHttpHead) {
        close_connection(worker, connection);
        return;
      }
      if (connection.http_head.find("\r\n\r\n") != std::string::npos) {
        handle_http(connection);
        break;
      }
      continue;
    }
    connection.decoder.feed(bytes);
    while (auto frame = connection.decoder.next()) {
      frames_in_.fetch_add(1);
      dispatch_frame(connection, *frame);
      if (connection.close_after_flush) break;
    }
    if (connection.decoder.error() && !connection.close_after_flush) {
      fail_connection(connection, connection.decoder.error_message());
    }
    // Backpressure inside the read loop: a coalesced pipeline may expand
    // far past the buffered input, so the output bound must be enforced
    // per chunk, not per wakeup.
    if (!connection.close_after_flush &&
        connection.pending_out() > config_.high_water && !connection.paused) {
      connection.paused = true;
      reads_paused_.fetch_add(1);
    }
  }
  flush_output(worker, connection);
}

void Server::connection_writable(Worker& worker, Connection& connection) {
  flush_output(worker, connection);
}

void Server::dispatch_frame(Connection& connection, const Frame& frame) {
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kQuery: {
      const auto start = std::chrono::steady_clock::now();
      std::string reason;
      const auto request = parse_query_request(frame.body, &reason);
      if (!request) {
        fail_connection(connection, reason);
        return;
      }
      obs_query_frames_.add();
      // Pin the RCU snapshot once for the whole batch (the SiblingService
      // discipline): every key answers from the same generation even if a
      // RELOAD swaps mid-frame, and the per-generation tally stays exact.
      const auto snapshot = service_.snapshot();
      QueryResponse response;
      response.request_id = request->request_id;
      response.generation = snapshot ? snapshot->generation : 0;
      response.answers.reserve(request->keys.size());
      std::uint64_t hit_count = 0;
      for (const Prefix& key : request->keys) {
        std::optional<serve::SiblingAnswer> answer;
        if (snapshot) {
          // Full-length keys are address lookups (FlatLpm4 fast path for
          // v4); shorter keys are whole-prefix LPM lookups.
          answer = key.length() == key.max_length()
                       ? snapshot->engine.query(key.address())
                       : snapshot->engine.query(key);
        }
        hit_count += answer.has_value() ? 1 : 0;
        response.answers.push_back(std::move(answer));
      }
      if (snapshot) snapshot->count(request->keys.size(), hit_count);
      queries_.fetch_add(request->keys.size());
      hits_.fetch_add(hit_count);
      batches_.fetch_add(1);
      obs_queries_.add(static_cast<std::int64_t>(request->keys.size()));
      encode_query_response(connection.out, response);
      frames_out_.fetch_add(1);
      frame_us_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      return;
    }
    case FrameType::kReload: {
      std::string reason;
      const auto request = parse_reload_request(frame.body, &reason);
      if (!request) {
        fail_connection(connection, reason);
        return;
      }
      obs_reload_frames_.add();
      ReloadResponse response;
      std::string error;
      if (request->path.empty()) {
        response.ok = service_.reload(&error);
      } else if (stream::is_spdl_path(request->path)) {
        // A delta log: patch the currently served snapshot and swap the
        // result in, instead of loading a full snapshot from the path.
        response.ok = stream::apply_delta_and_reload(service_, request->path, &error);
      } else {
        response.ok = service_.load(request->path, &error);
      }
      if (response.ok) {
        const auto snapshot = service_.snapshot();
        response.generation = snapshot ? snapshot->generation : 0;
        reloads_ok_.fetch_add(1);
      } else {
        response.error = error;
        reloads_failed_.fetch_add(1);
      }
      encode_reload_response(connection.out, response);
      frames_out_.fetch_add(1);
      return;
    }
    case FrameType::kStats: {
      if (!frame.body.empty()) {
        fail_connection(connection, "STATS body must be empty");
        return;
      }
      obs_stats_frames_.add();
      encode_stats_response(connection.out, stats_payload());
      frames_out_.fetch_add(1);
      return;
    }
    case FrameType::kMetrics: {
      if (!frame.body.empty()) {
        fail_connection(connection, "METRICS body must be empty");
        return;
      }
      obs_metrics_frames_.add();
      std::string json = pick_registry(config_.registry).scrape().to_json();
      if (json.size() > config_.max_body) {
        json = "{\"error\":\"metrics scrape exceeds frame limit\"}";
      }
      encode_metrics_response(connection.out, json);
      frames_out_.fetch_add(1);
      return;
    }
    default:
      fail_connection(connection, "unknown frame type " + hex_byte(frame.type));
      return;
  }
}

void Server::handle_http(Connection& connection) {
  http_requests_.fetch_add(1);
  const std::size_t line_end = connection.http_head.find("\r\n");
  const std::string request_line = connection.http_head.substr(0, line_end);
  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end = request_line.find(' ', method_end + 1);
  std::string target;
  if (method_end != std::string::npos && target_end != std::string::npos) {
    target = request_line.substr(method_end + 1, target_end - method_end - 1);
  }
  const bool is_get = request_line.compare(0, 4, "GET ") == 0;
  std::string body;
  std::string status;
  std::string content_type;
  if (is_get && (target == "/metrics" || target.rfind("/metrics?", 0) == 0)) {
    body = pick_registry(config_.registry).scrape().to_json();
    status = "200 OK";
    content_type = "application/json";
  } else {
    body = "not found\n";
    status = "404 Not Found";
    content_type = "text/plain";
  }
  std::string head = "HTTP/1.1 " + status + "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  connection.out.insert(connection.out.end(), head.begin(), head.end());
  connection.out.insert(connection.out.end(), body.begin(), body.end());
  // Only queue here: the flush at the end of connection_readable sends
  // and — with close_after_flush set — closes. Flushing now would
  // destroy the connection while the read loop still holds it.
  connection.close_after_flush = true;
}

void Server::flush_output(Worker& worker, Connection& connection) {
  while (connection.out_pos < connection.out.size()) {
    // MSG_NOSIGNAL: a peer that reset the connection must surface as
    // EPIPE/ECONNRESET from send, never as a process-killing SIGPIPE —
    // the server's liveness cannot depend on the CLI having installed
    // SIG_IGN or on which errno the kernel reports first.
    const ssize_t sent =
        ::send(connection.fd, connection.out.data() + connection.out_pos,
               connection.out.size() - connection.out_pos, MSG_NOSIGNAL);
    if (sent > 0) {
      bytes_out_.fetch_add(static_cast<std::uint64_t>(sent));
      connection.out_pos += static_cast<std::size_t>(sent);
      connection.last_write_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(worker, connection);  // peer is gone (EPIPE, reset)
    return;
  }
  if (connection.out_pos == connection.out.size()) {
    connection.out.clear();
    connection.out_pos = 0;
    if (connection.close_after_flush) {
      close_connection(worker, connection);
      return;
    }
  } else if (connection.out_pos >= connection.out.size() / 2) {
    // Bound the buffer under sustained partial writes.
    connection.out.erase(connection.out.begin(),
                         connection.out.begin() + static_cast<std::ptrdiff_t>(connection.out_pos));
    connection.out_pos = 0;
  }
  // Resume reading once a paused connection drains below half the mark.
  if (connection.paused && connection.pending_out() < config_.high_water / 2) {
    connection.paused = false;
  }
  update_interest(worker, connection);
}

void Server::update_interest(Worker& worker, Connection& connection) {
  std::uint32_t wanted = 0;
  if (!connection.paused && !connection.close_after_flush) wanted |= EPOLLIN;
  if (connection.pending_out() > 0) wanted |= EPOLLOUT;
  if (wanted == connection.armed) return;
  epoll_event event{};
  event.events = wanted;
  event.data.fd = connection.fd;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, connection.fd, &event) == 0) {
    connection.armed = wanted;
  }
}

void Server::fail_connection(Connection& connection, const std::string& message) {
  protocol_errors_.fetch_add(1);
  encode_error(connection.out, message);
  frames_out_.fetch_add(1);
  connection.close_after_flush = true;
}

void Server::close_connection(Worker& worker, Connection& connection) {
  const int fd = connection.fd;
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  worker.connections.erase(fd);  // destroys `connection`
  active_.fetch_sub(1);
}

void Server::sweep_timeouts(Worker& worker) {
  const auto now = std::chrono::steady_clock::now();
  if (now - worker.last_sweep < std::chrono::milliseconds(50)) return;
  worker.last_sweep = now;
  std::vector<int> expired_idle;
  std::vector<int> expired_write;
  for (const auto& [fd, connection] : worker.connections) {
    if (connection->pending_out() > 0) {
      if (now - connection->last_write_progress > config_.write_timeout) {
        expired_write.push_back(fd);
      }
    } else if (now - connection->last_read > config_.idle_timeout) {
      expired_idle.push_back(fd);
    }
  }
  // Count each eviction only after close_connection has dropped the
  // active count: a stats() poller that observes the eviction counter
  // must never still see the evicted connection as active.
  for (const int fd : expired_idle) {
    const auto it = worker.connections.find(fd);
    if (it == worker.connections.end()) continue;
    close_connection(worker, *it->second);
    idle_evictions_.fetch_add(1);
  }
  for (const int fd : expired_write) {
    const auto it = worker.connections.find(fd);
    if (it == worker.connections.end()) continue;
    close_connection(worker, *it->second);
    write_timeouts_.fetch_add(1);
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = accepted_.load();
  out.connections_active = active_.load();
  out.frames_in = frames_in_.load();
  out.frames_out = frames_out_.load();
  out.bytes_in = bytes_in_.load();
  out.bytes_out = bytes_out_.load();
  out.queries = queries_.load();
  out.hits = hits_.load();
  out.batches = batches_.load();
  out.reloads_ok = reloads_ok_.load();
  out.reloads_failed = reloads_failed_.load();
  out.protocol_errors = protocol_errors_.load();
  out.reads_paused = reads_paused_.load();
  out.idle_evictions = idle_evictions_.load();
  out.write_timeouts = write_timeouts_.load();
  out.http_requests = http_requests_.load();
  out.accept_errors = accept_errors_.load();
  return out;
}

StatsPayload Server::stats_payload() const {
  StatsPayload stats;
  const serve::ServiceStats service = service_.stats();
  stats.generation = service.generation;
  stats.reloads = service.reloads;
  stats.connections_accepted = accepted_.load();
  stats.connections_active = active_.load();
  stats.frames_in = frames_in_.load();
  stats.frames_out = frames_out_.load();
  stats.bytes_in = bytes_in_.load();
  stats.bytes_out = bytes_out_.load();
  stats.queries = queries_.load();
  stats.hits = hits_.load();
  stats.batches = batches_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.reads_paused = reads_paused_.load();
  stats.idle_evictions = idle_evictions_.load();
  stats.http_requests = http_requests_.load();
  const auto histogram = obs::HistogramSnapshot::of(frame_us_);
  stats.frame_p50_us = histogram.quantile(0.50);
  stats.frame_p90_us = histogram.quantile(0.90);
  stats.frame_p99_us = histogram.quantile(0.99);
  stats.frame_max_us = histogram.max;
  return stats;
}

}  // namespace sp::net
