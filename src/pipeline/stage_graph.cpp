#include "pipeline/stage_graph.h"

#include <chrono>
#include <deque>
#include <stdexcept>
#include <utility>

#include "lint/lock_order.h"
#include "obs/rss.h"
#include "obs/trace.h"

namespace sp::pipeline {

namespace {

long current_peak_rss_kb() { return obs::peak_rss_kb(); }

}  // namespace

std::string_view to_string(StageStatus status) noexcept {
  switch (status) {
    case StageStatus::Pending: return "pending";
    case StageStatus::Running: return "running";
    case StageStatus::Done: return "done";
    case StageStatus::Cached: return "cached";
    case StageStatus::Failed: return "failed";
    case StageStatus::Skipped: return "skipped";
  }
  return "unknown";
}

StageGraph::StageId StageGraph::add(std::string name, std::vector<StageId> deps, StageFn fn) {
  const StageId id = stages_.size();
  Stage stage;
  stage.name = std::move(name);
  stage.fn = std::move(fn);
  stage.deps = std::move(deps);
  stages_.push_back(std::move(stage));
  return id;
}

void StageGraph::set_observer(std::function<void(const StageResult&)> observer) {
  observer_ = std::move(observer);
}

void StageGraph::verify_acyclic() const {
  // Kahn's algorithm; anything left over sits on a cycle.
  std::vector<std::size_t> indegree(stages_.size(), 0);
  for (const Stage& stage : stages_) {
    for (const StageId dep : stage.deps) {
      if (dep >= stages_.size()) {
        throw std::out_of_range("StageGraph: dependency id out of range");
      }
    }
    indegree[&stage - stages_.data()] = stage.deps.size();
  }
  std::vector<std::vector<StageId>> dependents(stages_.size());
  for (StageId id = 0; id < stages_.size(); ++id) {
    for (const StageId dep : stages_[id].deps) dependents[dep].push_back(id);
  }
  std::deque<StageId> queue;
  for (StageId id = 0; id < stages_.size(); ++id) {
    if (indegree[id] == 0) queue.push_back(id);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const StageId id = queue.front();
    queue.pop_front();
    ++processed;
    for (const StageId child : dependents[id]) {
      if (--indegree[child] == 0) queue.push_back(child);
    }
  }
  if (processed != stages_.size()) {
    for (StageId id = 0; id < stages_.size(); ++id) {
      if (indegree[id] != 0) {
        throw std::logic_error("StageGraph: dependency cycle involving stage '" +
                               stages_[id].name + "'");
      }
    }
  }
}

void StageGraph::finish(StageId id, StageStatus status, std::string error, double wall_ms,
                        long rss_kb, std::vector<StageId>& newly_ready,
                        std::vector<StageId>& finalized) {
  // Caller holds mutex_. Skip propagation is processed iteratively so a
  // failure fanning out over a long chain cannot overflow the stack.
  struct Terminal {
    StageId id;
    StageStatus status;
    std::string error;
    double wall_ms;
    long rss_kb;
  };
  std::vector<Terminal> stack;
  stack.push_back({id, status, std::move(error), wall_ms, rss_kb});
  while (!stack.empty()) {
    Terminal terminal = std::move(stack.back());
    stack.pop_back();
    StageResult& result = results_[terminal.id];
    result.status = terminal.status;
    result.error = std::move(terminal.error);
    result.wall_ms = terminal.wall_ms;
    result.peak_rss_kb = terminal.rss_kb;
    ++finished_;
    finalized.push_back(terminal.id);
    const bool ok =
        terminal.status == StageStatus::Done || terminal.status == StageStatus::Cached;
    for (const StageId child_id : stages_[terminal.id].dependents) {
      Stage& child = stages_[child_id];
      if (!ok && !child.doomed) {
        child.doomed = true;
        child.doom_reason = "dependency '" + stages_[terminal.id].name + "' " +
                            std::string(to_string(terminal.status));
      }
      if (--child.waiting == 0) {
        if (child.doomed) {
          stack.push_back({child_id, StageStatus::Skipped, child.doom_reason, 0.0, 0});
        } else {
          newly_ready.push_back(child_id);
        }
      }
    }
  }
  if (finished_ == stages_.size()) done_cv_.notify_all();
}

void StageGraph::execute(StageId id) {
  // Graceful stop: a stage may reach the pool queue before the stop flag
  // flips and execute after — skip its body here so "stop" means "no new
  // stage work starts", regardless of queue depth.
  if (stop_requested()) {
    finalize(id, StageStatus::Skipped, "stop requested", 0.0, 0);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  // One trace span per stage execution, on the worker thread that ran it —
  // the Perfetto view of the DAG schedule (cached stages are near-zero
  // slivers, the evolve chain is the critical path).
  const obs::ScopedSpan span(stages_[id].name, "stage");
  const StageOutcome outcome = stages_[id].fn ? stages_[id].fn() : StageOutcome::success();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  const long rss_kb = current_peak_rss_kb();

  const StageStatus status = !outcome.ok          ? StageStatus::Failed
                             : outcome.cached     ? StageStatus::Cached
                                                  : StageStatus::Done;
  finalize(id, status, outcome.error, wall_ms, rss_kb);
}

void StageGraph::finalize(StageId id, StageStatus status, std::string error, double wall_ms,
                          long rss_kb) {
  std::vector<StageId> ready;
  std::vector<StageId> finalized;
  std::vector<StageResult> observed;
  {
    std::lock_guard lock(mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("pipeline.stage_graph.mutex");
    finish(id, status, std::move(error), wall_ms, rss_kb, ready, finalized);
    observed.reserve(finalized.size());
    for (const StageId finished_id : finalized) observed.push_back(results_[finished_id]);
  }
  if (observer_) {
    std::lock_guard lock(observer_mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("pipeline.stage_graph.observer_mutex");
    for (const StageResult& result : observed) observer_(result);
  }
  dispatch_ready(ready);
}

void StageGraph::dispatch_ready(std::vector<StageId>& ready) {
  for (const StageId id : ready) {
    if (stop_requested()) {
      // Finalize as Skipped without dispatching. finish() dooms the
      // stage's descendants itself, so the recursion through finalize →
      // dispatch_ready stays shallow: skipped stages surface no new
      // ready work.
      finalize(id, StageStatus::Skipped, "stop requested", 0.0, 0);
      continue;
    }
    {
      std::lock_guard lock(mutex_);
      [[maybe_unused]] const lint::LockOrderScope held("pipeline.stage_graph.mutex");
      results_[id].status = StageStatus::Running;
    }
    // With a 1-thread pool submit() executes inline: the whole graph runs
    // serially, in a valid topological order, on the calling thread.
    pool_->submit([this, id] { execute(id); });
  }
}

bool StageGraph::run(core::WorkerPool& pool) {
  if (ran_) throw std::logic_error("StageGraph::run called twice");
  ran_ = true;
  verify_acyclic();

  results_.assign(stages_.size(), {});
  for (StageId id = 0; id < stages_.size(); ++id) results_[id].name = stages_[id].name;

  pool_ = &pool;
  std::vector<StageId> ready;
  {
    std::lock_guard lock(mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("pipeline.stage_graph.mutex");
    for (StageId id = 0; id < stages_.size(); ++id) {
      Stage& stage = stages_[id];
      stage.waiting = stage.deps.size();
      for (const StageId dep : stage.deps) stages_[dep].dependents.push_back(id);
    }
    for (StageId id = 0; id < stages_.size(); ++id) {
      if (stages_[id].waiting == 0) ready.push_back(id);
    }
  }
  dispatch_ready(ready);

  {
    std::unique_lock lock(mutex_);
    [[maybe_unused]] const lint::LockOrderScope held("pipeline.stage_graph.mutex");
    done_cv_.wait(lock, [&] { return finished_ == stages_.size(); });
  }
  // The worker that finalized the last stage may still be inside its
  // observer callback; drain the pool so observers (and any state they
  // write, like the manifest) are quiesced before run() returns.
  pool.wait_idle();
  for (const StageResult& result : results_) {
    if (result.status != StageStatus::Done && result.status != StageStatus::Cached) {
      return false;
    }
  }
  return true;
}

}  // namespace sp::pipeline
