#include "pipeline/manifest.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pipeline/checkpoint.h"

namespace sp::pipeline {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// --- Minimal recursive-descent parser for the manifest schema. ---------

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) error = what + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("truncated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (value > 0x7F) return fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(value);
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_number(double& out) {
    skip_ws();
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    out = std::strtod(std::string(text.substr(start, pos - start)).c_str(), nullptr);
    return true;
  }

  /// Iterates "key": <value> members of an object; `member` must consume
  /// the value and may dispatch on the key.
  template <typename Fn>
  bool parse_object(Fn&& member) {
    if (!consume('{')) return false;
    if (peek('}')) return consume('}');
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      if (!member(key)) return false;
      if (peek(',')) {
        if (!consume(',')) return false;
        continue;
      }
      return consume('}');
    }
  }

  template <typename Fn>
  bool parse_array(Fn&& element) {
    if (!consume('[')) return false;
    if (peek(']')) return consume(']');
    for (;;) {
      if (!element()) return false;
      if (peek(',')) {
        if (!consume(',')) return false;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_hash(std::uint64_t& out) {
    std::string hex;
    if (!parse_string(hex)) return false;
    const auto value = parse_hash_hex(hex);
    if (!value) return fail("bad hash '" + hex + "'");
    out = *value;
    return true;
  }
};

bool parse_output(Parser& parser, OutputRecord& output) {
  return parser.parse_object([&](const std::string& key) {
    if (key == "path") return parser.parse_string(output.path);
    if (key == "hash") return parser.parse_hash(output.hash);
    return parser.fail("unknown output key '" + key + "'");
  });
}

bool parse_stage(Parser& parser, StageRecord& stage) {
  return parser.parse_object([&](const std::string& key) {
    if (key == "name") return parser.parse_string(stage.name);
    if (key == "status") return parser.parse_string(stage.status);
    if (key == "inputs_hash") return parser.parse_hash(stage.inputs_hash);
    if (key == "error") return parser.parse_string(stage.error);
    if (key == "wall_ms") {
      double value = 0;
      if (!parser.parse_number(value)) return false;
      stage.wall_ms = value;
      return true;
    }
    if (key == "peak_rss_kb") {
      double value = 0;
      if (!parser.parse_number(value)) return false;
      stage.peak_rss_kb = static_cast<long>(value);
      return true;
    }
    if (key == "outputs") {
      return parser.parse_array([&] {
        OutputRecord output;
        if (!parse_output(parser, output)) return false;
        stage.outputs.push_back(std::move(output));
        return true;
      });
    }
    return parser.fail("unknown stage key '" + key + "'");
  });
}

}  // namespace

const StageRecord* RunManifest::find(std::string_view name) const noexcept {
  for (const StageRecord& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

std::string RunManifest::config_value(std::string_view key) const {
  for (const auto& [k, v] : config) {
    if (k == key) return v;
  }
  return {};
}

void RunManifest::upsert(StageRecord record) {
  for (StageRecord& stage : stages) {
    if (stage.name == record.name) {
      stage = std::move(record);
      return;
    }
  }
  stages.push_back(std::move(record));
}

std::string RunManifest::to_json() const {
  std::string out;
  out += "{\n  \"version\": " + std::to_string(version) + ",\n  \"campaign\": ";
  append_escaped(out, campaign);
  out += ",\n  \"config\": {";
  for (std::size_t i = 0; i < config.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_escaped(out, config[i].first);
    out += ": ";
    append_escaped(out, config[i].second);
  }
  out += config.empty() ? "},\n" : "\n  },\n";
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageRecord& stage = stages[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\n      \"name\": ";
    append_escaped(out, stage.name);
    out += ",\n      \"status\": ";
    append_escaped(out, stage.status);
    out += ",\n      \"inputs_hash\": ";
    append_escaped(out, hash_hex(stage.inputs_hash));
    out += ",\n      \"outputs\": [";
    for (std::size_t j = 0; j < stage.outputs.size(); ++j) {
      out += j == 0 ? " " : ", ";
      out += "{ \"path\": ";
      append_escaped(out, stage.outputs[j].path);
      out += ", \"hash\": ";
      append_escaped(out, hash_hex(stage.outputs[j].hash));
      out += " }";
    }
    out += stage.outputs.empty() ? "]," : " ],";
    char number[64];
    std::snprintf(number, sizeof number, "%.3f", stage.wall_ms);
    out += "\n      \"wall_ms\": ";
    out += number;
    out += ",\n      \"peak_rss_kb\": " + std::to_string(stage.peak_rss_kb);
    if (!stage.error.empty()) {
      out += ",\n      \"error\": ";
      append_escaped(out, stage.error);
    }
    out += "\n    }";
  }
  out += stages.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::optional<RunManifest> RunManifest::from_json(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  RunManifest manifest;
  manifest.version = 0;
  const bool ok = parser.parse_object([&](const std::string& key) {
    if (key == "version") {
      double value = 0;
      if (!parser.parse_number(value)) return false;
      manifest.version = static_cast<int>(value);
      return true;
    }
    if (key == "campaign") return parser.parse_string(manifest.campaign);
    if (key == "config") {
      return parser.parse_object([&](const std::string& config_key) {
        std::string value;
        if (!parser.parse_string(value)) return false;
        manifest.config.emplace_back(config_key, std::move(value));
        return true;
      });
    }
    if (key == "stages") {
      return parser.parse_array([&] {
        StageRecord stage;
        if (!parse_stage(parser, stage)) return false;
        manifest.stages.push_back(std::move(stage));
        return true;
      });
    }
    return parser.fail("unknown manifest key '" + key + "'");
  });
  if (!ok) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr) *error = "trailing bytes after manifest";
    return std::nullopt;
  }
  if (manifest.version != 1) {
    if (error != nullptr) {
      *error = "unsupported manifest version " + std::to_string(manifest.version);
    }
    return std::nullopt;
  }
  return manifest;
}

bool RunManifest::save(const std::string& path, std::string* error) const {
  return atomic_write_file(path, to_json(), error);
}

std::optional<RunManifest> RunManifest::load(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str(), error);
}

}  // namespace sp::pipeline
