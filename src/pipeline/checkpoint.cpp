#include "pipeline/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "io/durable.h"

namespace sp::pipeline {

namespace {

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

std::optional<std::uint64_t> hash_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::uint64_t hash = kFnvBasis;
  std::vector<char> buffer(1 << 16);
  std::size_t got = 0;
  while ((got = std::fread(buffer.data(), 1, buffer.size(), file)) > 0) {
    hash = fnv1a64(std::string_view(buffer.data(), got), hash);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return hash;
}

std::string hash_hex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

std::optional<std::uint64_t> parse_hash_hex(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

bool atomic_write_file(const std::string& path, std::string_view bytes, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    fail(error, "open " + tmp);
    return false;
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t got = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (got < 0) {
      if (errno == EINTR) continue;
      fail(error, "write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(got);
  }
  if (::fsync(fd) != 0) {
    fail(error, "fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    fail(error, "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  return io::sync_parent_dir(path, error);
}

bool finalize_output(const std::string& tmp_path, const std::string& path, std::string* error) {
  return io::durable_rename(tmp_path, path, error);
}

}  // namespace sp::pipeline
