#include "pipeline/campaign.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "bgp/rib.h"
#include "core/corpus.h"
#include "core/corpus_delta.h"
#include "core/detect.h"
#include "core/sibling_diff.h"
#include "core/sibling_list_io.h"
#include "core/sptuner.h"
#include "io/snapshot_csv.h"
#include "lint/lock_order.h"
#include "mrt/file.h"
#include "obs/trace.h"
#include "pipeline/checkpoint.h"
#include "serve/sibdb.h"
#include "stream/spdl.h"
#include "stream/stream_detector.h"
#include "synth/universe.h"

namespace sp::pipeline {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

bool mkdir_p(const std::string& dir, std::string* error) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial += dir[i];
      continue;
    }
    if (i < dir.size()) partial += '/';
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error != nullptr) {
        *error = "mkdir " + partial + ": " + std::strerror(errno);
      }
      return false;
    }
  }
  struct stat info{};
  if (::stat(dir.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
    if (error != nullptr) *error = dir + " is not a directory";
    return false;
  }
  return true;
}

[[nodiscard]] std::string manifest_status(StageStatus status) {
  switch (status) {
    case StageStatus::Done: return "done";
    case StageStatus::Cached: return "cached";
    case StageStatus::Failed: return "failed";
    case StageStatus::Skipped: return "skipped";
    case StageStatus::Pending:
    case StageStatus::Running: break;
  }
  return "pending";  // not reachable for terminal results
}

/// One campaign execution: owns the universe, the graph, and the
/// manifest bookkeeping. Stage bodies run on pool workers; every shared
/// structure below is either sized before run() (states_, months_) with
/// publication ordered by the graph's dependency edges, or guarded by
/// its own mutex (pending_, manifest_, per-month corpus slots).
class Runner {
 public:
  Runner(const CampaignConfig& config, bool resume,
         std::function<void(const StageResult&)> observer)
      : config_(config),
        resume_(resume),
        user_observer_(std::move(observer)),
        universe_(config.synth) {}

  CampaignReport run();

 private:
  using StageId = StageGraph::StageId;

  struct StageState {
    std::uint64_t outputs_hash = kFnvBasis;
  };
  struct MonthContext {
    std::mutex mutex;
    std::shared_ptr<const core::DualStackCorpus> corpus;
  };

  [[nodiscard]] std::string abs(const std::string& rel) const {
    return config_.out_dir + "/" + rel;
  }
  [[nodiscard]] std::string ds(int month) const {
    return universe_.date_of_month(month).to_string();
  }
  [[nodiscard]] std::string rib_name(int m) const { return "rib-" + ds(m) + ".mrt"; }
  [[nodiscard]] std::string updates_name(int m) const { return "updates-" + ds(m) + ".mrt"; }
  [[nodiscard]] std::string snapshot_name(int m) const { return "snapshot-" + ds(m) + ".csv"; }
  [[nodiscard]] std::string corpus_name(int m) const { return "corpus-" + ds(m) + ".txt"; }
  [[nodiscard]] std::string pairs_name(int m) const { return "pairs-" + ds(m) + ".csv"; }
  [[nodiscard]] std::string tuned_name(int m) const { return "tuned-" + ds(m) + ".csv"; }
  [[nodiscard]] std::string list_name(int m) const { return "siblings-" + ds(m) + ".csv"; }
  [[nodiscard]] std::string sibdb_name(int m) const { return "siblings-" + ds(m) + ".sibdb"; }
  [[nodiscard]] std::string diff_name(int m) const { return "diff-" + ds(m) + ".csv"; }
  [[nodiscard]] std::string delta_name(int m) const { return "delta-" + ds(m) + ".spdl"; }

  StageId add_stage(std::string name, std::vector<StageId> deps, std::uint64_t config_hash,
                    std::vector<std::string> outputs, std::function<bool(std::string*)> body);
  void build_graph();
  void on_stage_result(const StageResult& result);

  [[nodiscard]] bool write_mrt(const std::string& rel, std::span<const mrt::MrtRecord> records,
                               std::string* error);
  [[nodiscard]] bool write_pairs(const std::string& rel,
                                 std::span<const core::SiblingPair> pairs, std::string* error);
  [[nodiscard]] std::optional<std::vector<core::SiblingPair>> read_pairs(
      const std::string& rel, std::string* error);
  [[nodiscard]] std::shared_ptr<const core::DualStackCorpus> corpus_for(int month,
                                                                        std::string* error);

  CampaignConfig config_;
  bool resume_;
  std::function<void(const StageResult&)> user_observer_;
  synth::SyntheticInternet universe_;

  StageGraph graph_;
  std::vector<StageState> states_;                  // by StageId, sized pre-run
  std::vector<std::unique_ptr<MonthContext>> months_;

  RunManifest old_;       // resume source (empty on fresh runs)
  RunManifest manifest_;  // being written
  std::string manifest_file_;
  // lock-order: 36 pipeline.campaign.manifest_mutex (taken from the graph
  // observer, after pipeline.stage_graph.observer_mutex; never nested
  // with pending_mutex_)
  std::mutex manifest_mutex_;
  std::string manifest_error_;  // first save failure, surfaced in the report

  /// Stage bodies park their manifest record here; the graph observer —
  /// which alone knows wall_ms/rss — completes and persists it.
  // lock-order: 35 pipeline.campaign.pending_mutex (taken from stage
  // bodies and the graph observer, after
  // pipeline.stage_graph.observer_mutex)
  std::mutex pending_mutex_;
  std::unordered_map<std::string, StageRecord> pending_;

  /// Warm detection state for stream mode: the detector retains month
  /// `stream_month_`'s index and per-source emissions; month m applies a
  /// delta when it directly follows (stream_month_ == m - 1) and falls
  /// back to a full init otherwise (e.g. a resume gap — byte-identical
  /// either way). Stream-mode detect stages are chained in the DAG, so
  /// contention is nil; the mutex makes the hand-off explicit and keeps
  /// the invariant checkable.
  // lock-order: 37 pipeline.campaign.stream_mutex (taken from detect
  // stage bodies only, after the month corpus mutex is released; leaf —
  // nothing is acquired under it)
  std::mutex stream_mutex_;
  int stream_month_ = -1;
  stream::StreamDetector stream_;
};

Runner::StageId Runner::add_stage(std::string name, std::vector<StageId> deps,
                                  std::uint64_t config_hash, std::vector<std::string> outputs,
                                  std::function<bool(std::string*)> body) {
  const StageId id = graph_.size();
  states_.push_back({});
  auto fn = [this, id, name, deps, config_hash, outputs,
             body = std::move(body)]() -> StageOutcome {
    std::uint64_t inputs = fnv1a64(name);
    inputs = fnv1a64_mix(config_hash, inputs);
    // Parents published states_ before this stage became ready (ordered by
    // the graph lock), so the chain below is race-free.
    for (const StageId dep : deps) inputs = fnv1a64_mix(states_[dep].outputs_hash, inputs);

    if (resume_) {
      const StageRecord* checkpoint = old_.find(name);
      if (checkpoint != nullptr &&
          (checkpoint->status == "done" || checkpoint->status == "cached") &&
          checkpoint->inputs_hash == inputs && checkpoint->outputs.size() == outputs.size()) {
        bool valid = true;
        std::uint64_t outputs_hash = kFnvBasis;
        for (std::size_t i = 0; i < outputs.size(); ++i) {
          const OutputRecord& recorded = checkpoint->outputs[i];
          if (recorded.path != outputs[i]) {
            valid = false;
            break;
          }
          const auto on_disk = hash_file(abs(recorded.path));
          if (!on_disk || *on_disk != recorded.hash) {
            valid = false;  // missing/corrupted artifact ⇒ re-run
            break;
          }
          outputs_hash = fnv1a64(recorded.path, outputs_hash);
          outputs_hash = fnv1a64_mix(recorded.hash, outputs_hash);
        }
        if (valid) {
          states_[id].outputs_hash = outputs_hash;
          StageRecord record = *checkpoint;
          record.status = "cached";
          record.error.clear();
          {
            const std::lock_guard<std::mutex> lock(pending_mutex_);
            pending_[name] = std::move(record);
          }
          return StageOutcome::hit();
        }
      }
    }

    std::string error;
    if (!body(&error)) {
      StageRecord record;
      record.name = name;
      record.status = "failed";
      record.inputs_hash = inputs;
      record.error = error;
      {
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_[name] = std::move(record);
      }
      return StageOutcome::failure(std::move(error));
    }

    StageRecord record;
    record.name = name;
    record.status = "done";
    record.inputs_hash = inputs;
    std::uint64_t outputs_hash = kFnvBasis;
    for (const std::string& rel : outputs) {
      const auto hash = hash_file(abs(rel));
      if (!hash) {
        std::string message = "stage completed without producing " + rel;
        StageRecord failed;
        failed.name = name;
        failed.status = "failed";
        failed.inputs_hash = inputs;
        failed.error = message;
        {
          const std::lock_guard<std::mutex> lock(pending_mutex_);
          pending_[name] = std::move(failed);
        }
        return StageOutcome::failure(std::move(message));
      }
      record.outputs.push_back({rel, *hash});
      outputs_hash = fnv1a64(rel, outputs_hash);
      outputs_hash = fnv1a64_mix(*hash, outputs_hash);
    }
    states_[id].outputs_hash = outputs_hash;
    {
      const std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_[name] = std::move(record);
    }
    return StageOutcome::success();
  };
  return graph_.add(std::move(name), std::move(deps), std::move(fn));
}

void Runner::on_stage_result(const StageResult& result) {
  StageRecord record;
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    const auto it = pending_.find(result.name);
    if (it != pending_.end()) {
      record = std::move(it->second);
      pending_.erase(it);
    } else {
      record.name = result.name;  // Skipped: the body never ran
      record.error = result.error;
    }
  }
  record.status = manifest_status(result.status);
  record.wall_ms = result.wall_ms;
  record.peak_rss_kb = result.peak_rss_kb;
  {
    const std::lock_guard<std::mutex> lock(manifest_mutex_);
    manifest_.upsert(std::move(record));
    std::string error;
    if (!manifest_.save(manifest_file_, &error) && manifest_error_.empty()) {
      manifest_error_ = "manifest save failed: " + error;
    }
  }
  if (user_observer_) user_observer_(result);
}

bool Runner::write_mrt(const std::string& rel, std::span<const mrt::MrtRecord> records,
                       std::string* error) {
  const std::string path = abs(rel);
  const std::string tmp = path + ".tmp";
  if (!mrt::write_file(tmp, records)) {
    *error = "cannot write " + tmp;
    return false;
  }
  return finalize_output(tmp, path, error);
}

bool Runner::write_pairs(const std::string& rel, std::span<const core::SiblingPair> pairs,
                         std::string* error) {
  const std::string path = abs(rel);
  const std::string tmp = path + ".tmp";
  if (!core::write_sibling_list(tmp, pairs)) {
    *error = "cannot write " + tmp;
    return false;
  }
  return finalize_output(tmp, path, error);
}

std::optional<std::vector<core::SiblingPair>> Runner::read_pairs(const std::string& rel,
                                                                 std::string* error) {
  core::SiblingListError list_error;
  auto pairs = core::read_sibling_list(abs(rel), &list_error);
  if (!pairs) {
    *error = "cannot read " + rel + ": " + list_error.message +
             (list_error.line != 0 ? " (line " + std::to_string(list_error.line) + ")" : "");
  }
  return pairs;
}

std::shared_ptr<const core::DualStackCorpus> Runner::corpus_for(int month, std::string* error) {
  MonthContext& context = *months_[static_cast<std::size_t>(month)];
  const std::lock_guard<std::mutex> lock(context.mutex);
  if (!context.corpus) {
    std::string parse_error;
    const auto records = mrt::read_file(abs(rib_name(month)), &parse_error);
    if (!records) {
      *error = "cannot read " + rib_name(month) + ": " + parse_error;
      return nullptr;
    }
    const auto snapshot = io::read_snapshot_csv(abs(snapshot_name(month)));
    if (!snapshot) {
      *error = "cannot read " + snapshot_name(month);
      return nullptr;
    }
    const bgp::Rib rib = bgp::Rib::from_mrt(*records);
    context.corpus = std::make_shared<const core::DualStackCorpus>(
        core::DualStackCorpus::build(*snapshot, rib));
  }
  return context.corpus;
}

void Runner::build_graph() {
  const int months = universe_.month_count();
  months_.clear();
  for (int m = 0; m < months; ++m) months_.push_back(std::make_unique<MonthContext>());

  // Per-stage config hash components: only the knobs that shape the
  // stage's bytes, so a changed threshold leaves the detection cone
  // cached (see campaign.h).
  std::uint64_t synth_hash = kFnvBasis;
  for (const auto& [key, value] : describe_config(config_)) {
    if (key.rfind("synth.", 0) != 0) continue;
    synth_hash = fnv1a64(key, synth_hash);
    synth_hash = fnv1a64(value, synth_hash);
  }
  const std::uint64_t detect_hash = fnv1a64("jaccard");
  std::uint64_t tuner_hash = fnv1a64_mix(config_.v4_threshold, kFnvBasis);
  tuner_hash = fnv1a64_mix(config_.v6_threshold, tuner_hash);
  const std::uint64_t sibdb_hash = fnv1a64_mix(serve::kSibDbVersion, kFnvBasis);
  const std::uint64_t spdl_hash =
      fnv1a64_mix(stream::kSpdlVersion, fnv1a64_mix(serve::kSibDbVersion, kFnvBasis));

  std::vector<StageId> evolve_ids(months), export_ids(months), corpus_ids(months),
      detect_ids(months), tuner_ids(months), publish_ids(months), sibdb_ids(months);
  std::vector<StageId> diff_ids;

  for (int m = 0; m < months; ++m) {
    const std::string d = ds(m);

    std::vector<std::string> evolve_outputs =
        m == 0 ? std::vector<std::string>{rib_name(0)}
               : std::vector<std::string>{updates_name(m), rib_name(m)};
    evolve_ids[m] = add_stage(
        "evolve[" + d + "]",
        m == 0 ? std::vector<StageId>{} : std::vector<StageId>{evolve_ids[m - 1]}, synth_hash,
        std::move(evolve_outputs), [this, m](std::string* error) {
          if (m == 0) return write_mrt(rib_name(0), universe_.mrt_dump_at(0), error);
          std::string parse_error;
          const auto previous = [&] {
            const obs::ScopedSpan span("evolve.read_rib", "phase");
            return mrt::read_file(abs(rib_name(m - 1)), &parse_error);
          }();
          if (!previous) {
            *error = "cannot read " + rib_name(m - 1) + ": " + parse_error;
            return false;
          }
          const auto updates = universe_.bgp4mp_updates_at(m);
          const bgp::Rib rib = [&] {
            const obs::ScopedSpan span("evolve.replay", "phase");
            bgp::Rib replayed = bgp::Rib::from_mrt(*previous);
            replayed.apply_updates(updates);
            return replayed;
          }();
          const obs::ScopedSpan span("evolve.write", "phase");
          return write_mrt(updates_name(m), updates, error) &&
                 write_mrt(rib_name(m), rib.to_mrt(), error);
        });

    export_ids[m] = add_stage(
        "export[" + d + "]", {evolve_ids[m]}, synth_hash, {snapshot_name(m)},
        [this, m](std::string* error) {
          const std::string path = abs(snapshot_name(m));
          const std::string tmp = path + ".tmp";
          const auto snapshot = [&] {
            const obs::ScopedSpan span("export.render", "phase");
            return universe_.snapshot_at(m);
          }();
          {
            const obs::ScopedSpan span("export.write_csv", "phase");
            if (!io::write_snapshot_csv(tmp, snapshot)) {
              *error = "cannot write " + tmp;
              return false;
            }
          }
          return finalize_output(tmp, path, error);
        });

    corpus_ids[m] = add_stage(
        "corpus[" + d + "]", {evolve_ids[m], export_ids[m]}, kFnvBasis, {corpus_name(m)},
        [this, m](std::string* error) {
          const auto corpus = corpus_for(m, error);
          if (!corpus) return false;
          const auto& stats = corpus->stats();
          std::string text = "metric,value\n";
          text += "snapshot_domains," + std::to_string(stats.snapshot_domains) + "\n";
          text += "dual_stack_domains," + std::to_string(stats.dual_stack_domains) + "\n";
          text += "v4_prefixes," + std::to_string(stats.v4_prefixes) + "\n";
          text += "v6_prefixes," + std::to_string(stats.v6_prefixes) + "\n";
          text += "discarded_reserved," + std::to_string(stats.discarded_reserved) + "\n";
          text += "unmapped_addresses," + std::to_string(stats.unmapped_addresses) + "\n";
          return atomic_write_file(abs(corpus_name(m)), text, error);
        });

    // Stream mode chains detect[m] on detect[m-1]: the dependency hands
    // month m-1's warm detector state to month m, turning the campaign
    // into a rolling delta pipeline. Full mode keeps the months
    // independent (the original fan-out).
    std::vector<StageId> detect_deps{corpus_ids[m]};
    if (config_.stream_detect && m > 0) detect_deps.push_back(detect_ids[m - 1]);
    detect_ids[m] = add_stage(
        "detect[" + d + "]", std::move(detect_deps), detect_hash, {pairs_name(m)},
        [this, m](std::string* error) {
          const auto corpus = corpus_for(m, error);
          if (!corpus) return false;
          if (!config_.stream_detect) {
            // Serial inner engine: cross-month DAG concurrency is the
            // parallelism; a nested fork-join on the executing pool would
            // deadlock (worker_pool.h).
            core::DetectOptions options;
            options.threads = 1;
            return write_pairs(pairs_name(m), core::detect_sibling_prefixes(*corpus, options),
                               error);
          }
          const std::lock_guard<std::mutex> lock(stream_mutex_);
          // Held across the detector's pool submits (rank 40 > 37): the
          // runtime checker sees the ordered pair on every stream month.
          [[maybe_unused]] const lint::LockOrderScope held("pipeline.campaign.stream_mutex");
          try {
            if (stream_month_ == m - 1 && stream_.initialized()) {
              stream_.apply(
                  core::CorpusDelta::between(stream_.index(), corpus->detect_index()));
            } else {
              // Cold start or resume gap (the previous month was cached):
              // scan from scratch — still byte-identical.
              stream_.init(corpus->detect_index());
            }
          } catch (const std::exception& e) {
            *error = std::string("stream detect: ") + e.what();
            return false;
          }
          stream_month_ = m;
          return write_pairs(pairs_name(m), stream_.pairs(), error);
        });

    tuner_ids[m] = add_stage(
        "sptuner[" + d + "]", {detect_ids[m]}, tuner_hash, {tuned_name(m)},
        [this, m](std::string* error) {
          const auto corpus = corpus_for(m, error);
          if (!corpus) return false;
          const auto pairs = read_pairs(pairs_name(m), error);
          if (!pairs) return false;
          const core::SpTunerMs tuner(*corpus,
                                      {config_.v4_threshold, config_.v6_threshold});
          const bool ok = write_pairs(tuned_name(m), tuner.tune_all(*pairs).pairs, error);
          // Last corpus consumer of the month: release the in-memory
          // corpus so resident memory tracks months in flight.
          const std::lock_guard<std::mutex> lock(
              months_[static_cast<std::size_t>(m)]->mutex);
          months_[static_cast<std::size_t>(m)]->corpus.reset();
          return ok;
        });

    publish_ids[m] = add_stage(
        "publish[" + d + "]", {tuner_ids[m]}, kFnvBasis, {list_name(m)},
        [this, m](std::string* error) {
          const auto pairs = read_pairs(tuned_name(m), error);
          if (!pairs) return false;
          return write_pairs(list_name(m), *pairs, error);
        });

    sibdb_ids[m] = add_stage(
        "sibdb[" + d + "]", {publish_ids[m]}, sibdb_hash, {sibdb_name(m)},
        [this, m](std::string* error) {
          const auto pairs = read_pairs(list_name(m), error);
          if (!pairs) return false;
          const std::string path = abs(sibdb_name(m));
          const std::string tmp = path + ".tmp";
          // The relative CSV name as provenance label keeps .sibdb bytes
          // independent of the run directory (the resume test's
          // byte-identity contract).
          if (!serve::write_sibdb(tmp, *pairs, list_name(m))) {
            *error = "cannot write " + tmp;
            return false;
          }
          return finalize_output(tmp, path, error);
        });

    if (m > 0) {
      // The month's publishable delta log: consecutive .sibdb snapshots
      // diffed into a small .spdl patch (stream/spdl.h). sp_serve applies
      // it to a live service via RELOAD <delta>.spdl, so a rolling
      // campaign ships deltas instead of full snapshots.
      add_stage("sibdelta[" + ds(m - 1) + ".." + d + "]", {sibdb_ids[m - 1], sibdb_ids[m]},
                spdl_hash, {delta_name(m)}, [this, m](std::string* error) {
                  std::string load_error;
                  const auto base = [&] {
                    const obs::ScopedSpan span("sibdelta.load", "phase");
                    return serve::SiblingDB::load(abs(sibdb_name(m - 1)), &load_error);
                  }();
                  if (!base) {
                    *error = "cannot load " + sibdb_name(m - 1) + ": " + load_error;
                    return false;
                  }
                  const auto target = [&] {
                    const obs::ScopedSpan span("sibdelta.load", "phase");
                    return serve::SiblingDB::load(abs(sibdb_name(m)), &load_error);
                  }();
                  if (!target) {
                    *error = "cannot load " + sibdb_name(m) + ": " + load_error;
                    return false;
                  }
                  const auto delta = [&] {
                    const obs::ScopedSpan span("sibdelta.diff", "phase");
                    return stream::diff_sibdb(*base, *target, error);
                  }();
                  if (!delta) return false;
                  const std::string path = abs(delta_name(m));
                  const std::string tmp = path + ".tmp";
                  {
                    const obs::ScopedSpan span("sibdelta.write", "phase");
                    if (!stream::write_spdl(tmp, *delta)) {
                      *error = "cannot write " + tmp;
                      return false;
                    }
                  }
                  return finalize_output(tmp, path, error);
                });

      diff_ids.push_back(add_stage(
          "diff[" + ds(m - 1) + ".." + d + "]", {publish_ids[m - 1], publish_ids[m]},
          kFnvBasis, {diff_name(m)}, [this, m](std::string* error) {
            const auto old_list = read_pairs(list_name(m - 1), error);
            if (!old_list) return false;
            const auto new_list = read_pairs(list_name(m), error);
            if (!new_list) return false;
            const auto diff = core::diff_sibling_lists(*old_list, *new_list);
            std::string text = "metric,value\n";
            text += "added," + std::to_string(diff.added.size()) + "\n";
            text += "removed," + std::to_string(diff.removed.size()) + "\n";
            text += "changed," + std::to_string(diff.changed.size()) + "\n";
            text += "unchanged," + std::to_string(diff.unchanged.size()) + "\n";
            return atomic_write_file(abs(diff_name(m)), text, error);
          }));
    }
  }

  std::vector<StageId> fan_in = publish_ids;
  fan_in.insert(fan_in.end(), diff_ids.begin(), diff_ids.end());
  add_stage("longitudinal", std::move(fan_in), kFnvBasis, {"longitudinal.csv"},
            [this, months](std::string* error) {
              std::string text =
                  "date,pairs,mean_similarity,v4_prefixes,v6_prefixes,added,removed,"
                  "changed,unchanged\n";
              std::vector<core::SiblingPair> previous;
              for (int m = 0; m < months; ++m) {
                const auto pairs = read_pairs(list_name(m), error);
                if (!pairs) return false;
                double similarity_sum = 0.0;
                for (const auto& pair : *pairs) similarity_sum += pair.similarity;
                const double mean =
                    pairs->empty() ? 0.0 : similarity_sum / static_cast<double>(pairs->size());
                char mean_text[32];
                std::snprintf(mean_text, sizeof mean_text, "%.6f", mean);
                text += ds(m) + "," + std::to_string(pairs->size()) + "," + mean_text + "," +
                        std::to_string(core::unique_prefix_count(*pairs, Family::v4)) + "," +
                        std::to_string(core::unique_prefix_count(*pairs, Family::v6));
                if (m == 0) {
                  text += ",0,0,0,0\n";
                } else {
                  const auto diff = core::diff_sibling_lists(previous, *pairs);
                  text += "," + std::to_string(diff.added.size()) + "," +
                          std::to_string(diff.removed.size()) + "," +
                          std::to_string(diff.changed.size()) + "," +
                          std::to_string(diff.unchanged.size()) + "\n";
                }
                previous = std::move(*pairs);
              }
              return atomic_write_file(abs("longitudinal.csv"), text, error);
            });
}

CampaignReport Runner::run() {
  CampaignReport report;
  if (!mkdir_p(config_.out_dir, &report.error)) return report;
  manifest_file_ = Campaign::manifest_path(config_.out_dir);
  report.manifest_path = manifest_file_;

  if (resume_) {
    // A missing or corrupt manifest simply means nothing can be skipped.
    if (auto loaded = RunManifest::load(manifest_file_)) old_ = std::move(*loaded);
  }
  manifest_.campaign = "sibling-prefixes " + std::to_string(universe_.month_count()) +
                       "-month campaign ending " + ds(universe_.month_count() - 1);
  manifest_.config = describe_config(config_);

  build_graph();
  graph_.set_observer([this](const StageResult& result) { on_stage_result(result); });
  graph_.set_stop_flag(config_.stop_flag);

  core::WorkerPool pool(config_.threads);
  const bool graph_ok = graph_.run(pool);

  {
    const std::lock_guard<std::mutex> lock(manifest_mutex_);
    report.error = manifest_error_;
  }
  report.ok = graph_ok && report.error.empty();
  report.stages = graph_.results();
  for (const StageResult& stage : report.stages) {
    switch (stage.status) {
      case StageStatus::Done: ++report.done_count; break;
      case StageStatus::Cached: ++report.cached_count; break;
      case StageStatus::Failed: ++report.failed_count; break;
      case StageStatus::Skipped: ++report.skipped_count; break;
      case StageStatus::Pending:
      case StageStatus::Running: break;
    }
    report.peak_rss_kb = std::max(report.peak_rss_kb, stage.peak_rss_kb);
  }
  return report;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> describe_config(const CampaignConfig& config) {
  std::vector<std::pair<std::string, std::string>> kvs;
  const synth::SynthConfig& s = config.synth;
  const auto put = [&kvs](const char* key, std::string value) {
    kvs.emplace_back(key, std::move(value));
  };
  put("synth.seed", std::to_string(s.seed));
  put("synth.months", std::to_string(s.months));
  put("synth.end_date", s.end_date.to_string());
  put("synth.organization_count", std::to_string(s.organization_count));
  put("synth.eyeball_share", format_double(s.eyeball_share));
  put("synth.hg_prefix_scale", format_double(s.hg_prefix_scale));
  put("synth.domains_per_org", format_double(s.domains_per_org));
  put("synth.ds_share_start", format_double(s.ds_share_start));
  put("synth.ds_share_end", format_double(s.ds_share_end));
  put("synth.single_prefix_org_share", format_double(s.single_prefix_org_share));
  put("synth.structured_org_share", format_double(s.structured_org_share));
  put("synth.separate_v6_asn_share", format_double(s.separate_v6_asn_share));
  put("synth.multi_org_domain_share", format_double(s.multi_org_domain_share));
  put("synth.monitoring_org", s.monitoring_org ? "true" : "false");
  put("synth.monitoring_v4_prefixes", std::to_string(s.monitoring_v4_prefixes));
  put("synth.monitoring_v6_prefixes", std::to_string(s.monitoring_v6_prefixes));
  put("synth.always_visible_share", format_double(s.always_visible_share));
  put("synth.once_visible_share", format_double(s.once_visible_share));
  put("synth.intermittent_visibility", format_double(s.intermittent_visibility));
  put("synth.v4_prefix_change_share", format_double(s.v4_prefix_change_share));
  put("synth.v6_prefix_change_share", format_double(s.v6_prefix_change_share));
  put("synth.address_change_share", format_double(s.address_change_share));
  put("synth.rpki_adopter_share", format_double(s.rpki_adopter_share));
  put("synth.rpki_wrong_origin_share", format_double(s.rpki_wrong_origin_share));
  put("synth.rpki_short_maxlen_share", format_double(s.rpki_short_maxlen_share));
  put("synth.scan_silent_org_share", format_double(s.scan_silent_org_share));
  put("synth.scan_port_flip_probability", format_double(s.scan_port_flip_probability));
  put("synth.probe_count", std::to_string(s.probe_count));
  put("synth.probe_full_coverage_share", format_double(s.probe_full_coverage_share));
  put("synth.probe_partial_coverage_share", format_double(s.probe_partial_coverage_share));
  put("synth.probe_same_group_share", format_double(s.probe_same_group_share));
  put("v4_threshold", std::to_string(config.v4_threshold));
  put("v6_threshold", std::to_string(config.v6_threshold));
  // detect_mode does not change artifact bytes (the stream engine is
  // byte-identical to the full engine), but it changes the DAG shape a
  // resume must rebuild, so it is manifest content.
  put("detect_mode", config.stream_detect ? "stream" : "full");
  return kvs;
}

CampaignConfig config_from_manifest(const RunManifest& manifest, std::string out_dir,
                                    unsigned threads) {
  CampaignConfig config;
  config.out_dir = std::move(out_dir);
  config.threads = threads;
  synth::SynthConfig& s = config.synth;

  const auto get = [&manifest](const char* key) { return manifest.config_value(key); };
  const auto get_u64 = [&get](const char* key, std::uint64_t& out) {
    const std::string value = get(key);
    if (!value.empty()) out = std::strtoull(value.c_str(), nullptr, 10);
  };
  const auto get_int = [&get](const char* key, int& out) {
    const std::string value = get(key);
    if (!value.empty()) out = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
  };
  const auto get_unsigned = [&get](const char* key, unsigned& out) {
    const std::string value = get(key);
    if (!value.empty()) out = static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
  };
  const auto get_double = [&get](const char* key, double& out) {
    const std::string value = get(key);
    if (!value.empty()) out = std::strtod(value.c_str(), nullptr);
  };
  const auto get_bool = [&get](const char* key, bool& out) {
    const std::string value = get(key);
    if (!value.empty()) out = value == "true";
  };

  get_u64("synth.seed", s.seed);
  get_int("synth.months", s.months);
  const std::string end_date = get("synth.end_date");
  int year = 0, month = 0, day = 0;
  if (std::sscanf(end_date.c_str(), "%d-%d-%d", &year, &month, &day) == 3) {
    s.end_date = Date{year, month, day};
  }
  get_int("synth.organization_count", s.organization_count);
  get_double("synth.eyeball_share", s.eyeball_share);
  get_double("synth.hg_prefix_scale", s.hg_prefix_scale);
  get_double("synth.domains_per_org", s.domains_per_org);
  get_double("synth.ds_share_start", s.ds_share_start);
  get_double("synth.ds_share_end", s.ds_share_end);
  get_double("synth.single_prefix_org_share", s.single_prefix_org_share);
  get_double("synth.structured_org_share", s.structured_org_share);
  get_double("synth.separate_v6_asn_share", s.separate_v6_asn_share);
  get_double("synth.multi_org_domain_share", s.multi_org_domain_share);
  get_bool("synth.monitoring_org", s.monitoring_org);
  get_int("synth.monitoring_v4_prefixes", s.monitoring_v4_prefixes);
  get_int("synth.monitoring_v6_prefixes", s.monitoring_v6_prefixes);
  get_double("synth.always_visible_share", s.always_visible_share);
  get_double("synth.once_visible_share", s.once_visible_share);
  get_double("synth.intermittent_visibility", s.intermittent_visibility);
  get_double("synth.v4_prefix_change_share", s.v4_prefix_change_share);
  get_double("synth.v6_prefix_change_share", s.v6_prefix_change_share);
  get_double("synth.address_change_share", s.address_change_share);
  get_double("synth.rpki_adopter_share", s.rpki_adopter_share);
  get_double("synth.rpki_wrong_origin_share", s.rpki_wrong_origin_share);
  get_double("synth.rpki_short_maxlen_share", s.rpki_short_maxlen_share);
  get_double("synth.scan_silent_org_share", s.scan_silent_org_share);
  get_double("synth.scan_port_flip_probability", s.scan_port_flip_probability);
  get_int("synth.probe_count", s.probe_count);
  get_double("synth.probe_full_coverage_share", s.probe_full_coverage_share);
  get_double("synth.probe_partial_coverage_share", s.probe_partial_coverage_share);
  get_double("synth.probe_same_group_share", s.probe_same_group_share);
  get_unsigned("v4_threshold", config.v4_threshold);
  get_unsigned("v6_threshold", config.v6_threshold);
  const std::string detect_mode = get("detect_mode");
  if (!detect_mode.empty()) config.stream_detect = detect_mode != "full";
  return config;
}

std::vector<StaleStage> stale_stages(const RunManifest& manifest, const std::string& out_dir) {
  std::vector<StaleStage> stale;
  for (const StageRecord& stage : manifest.stages) {
    if (stage.status != "done" && stage.status != "cached") continue;
    for (const OutputRecord& output : stage.outputs) {
      const auto on_disk = hash_file(out_dir + "/" + output.path);
      if (!on_disk) {
        stale.push_back({stage.name, output.path, "missing"});
      } else if (*on_disk != output.hash) {
        stale.push_back({stage.name, output.path, "hash mismatch"});
      }
    }
  }
  return stale;
}

CampaignReport Campaign::run(bool resume, std::function<void(const StageResult&)> observer) {
  const auto start = std::chrono::steady_clock::now();
  CampaignReport report;
  if (config_.out_dir.empty()) {
    report.error = "out_dir must be set";
    return report;
  }
  if (config_.synth.months <= 0) {
    report.error = "campaign needs at least one month";
    return report;
  }
  // With a trace path, every stage execution (and any detect/serve span
  // beneath it) lands in one Chrome-trace file next to the manifest's
  // records. The recorder is installed for the duration of the run only;
  // a trace write failure is reported but does not fail the campaign.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!config_.trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::set_active(recorder.get());
  }
  Runner runner(config_, resume, std::move(observer));
  report = runner.run();
  if (recorder) {
    obs::TraceRecorder::set_active(nullptr);
    std::string trace_error;
    if (!recorder->write(config_.trace_path, &trace_error) && report.error.empty()) {
      report.error = "trace write failed: " + trace_error;
    }
  }
  report.total_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace sp::pipeline
