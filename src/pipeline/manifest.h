// RunManifest — the campaign's durable, observable state.
//
// One JSON document per run directory (`manifest.json`), rewritten
// atomically (temp file + fsync + rename, see checkpoint.h) after every
// stage completion, so a kill at any instant leaves a manifest listing
// exactly the stages that durably completed — the resume contract.
//
// Schema (version 1):
//
//   {
//     "version": 1,
//     "campaign": "<human-readable description>",
//     "config": { "<key>": "<value>", ... },        // campaign config kvs
//     "stages": [
//       {
//         "name": "detect[2024-09]",
//         "status": "done" | "cached" | "failed" | "skipped",
//         "inputs_hash": "<16 hex digits>",          // FNV-1a64, see checkpoint.h
//         "outputs": [ { "path": "pairs-2024-09.csv",
//                        "hash": "<16 hex digits>" }, ... ],
//         "wall_ms": 12.25,
//         "peak_rss_kb": 48212,                      // getrusage high-water
//         "error": "..."                             // present when failed
//       }, ...
//     ]
//   }
//
// Hashes are strings, not numbers: 64-bit values do not survive the
// double-precision number type of generic JSON tooling. Stage order is
// completion order — an interrupted run's manifest is always a prefix of
// the completion order, which is exactly what the crash-resume test
// truncates.
//
// The parser below reads only this schema (plus arbitrary whitespace);
// it is not a general JSON library, but it rejects malformed documents
// instead of misreading them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sp::pipeline {

struct OutputRecord {
  std::string path;          // relative to the run directory
  std::uint64_t hash = 0;    // FNV-1a64 of the file bytes

  friend bool operator==(const OutputRecord&, const OutputRecord&) = default;
};

struct StageRecord {
  std::string name;
  std::string status;                  // "done", "cached", "failed", "skipped"
  std::uint64_t inputs_hash = 0;
  std::vector<OutputRecord> outputs;
  double wall_ms = 0.0;
  long peak_rss_kb = 0;
  std::string error;

  friend bool operator==(const StageRecord&, const StageRecord&) = default;
};

struct RunManifest {
  int version = 1;
  std::string campaign;
  std::vector<std::pair<std::string, std::string>> config;  // ordered kvs
  std::vector<StageRecord> stages;                          // completion order

  [[nodiscard]] const StageRecord* find(std::string_view name) const noexcept;
  [[nodiscard]] std::string config_value(std::string_view key) const;

  /// Replaces the record with the same name or appends a new one.
  void upsert(StageRecord record);

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static std::optional<RunManifest> from_json(std::string_view text,
                                                            std::string* error = nullptr);

  /// Atomic durable save / load (see checkpoint.h for the write protocol).
  [[nodiscard]] bool save(const std::string& path, std::string* error = nullptr) const;
  [[nodiscard]] static std::optional<RunManifest> load(const std::string& path,
                                                       std::string* error = nullptr);
};

}  // namespace sp::pipeline
