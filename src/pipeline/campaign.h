// Campaign — the paper's longitudinal workflow (49 monthly snapshots,
// Sep 2020 → Sep 2024) as a checkpointed stage DAG.
//
// Per month m (dated d):
//
//   evolve[d]   month-0: full synthetic TABLE_DUMP_V2 dump; month-m:
//               parse the month-(m-1) RIB artifact, replay that month's
//               BGP4MP updates, export the evolved RIB (bgp::Rib::to_mrt)
//               → rib-<d>.mrt (+ updates-<d>.mrt). Depends on
//               evolve[m-1]: the cross-month chain of the DAG.
//   export[d]   resolution snapshot CSV → snapshot-<d>.csv
//   corpus[d]   rib + snapshot files → DualStackCorpus (kept in memory
//               for the month's detect/sptuner stages) + corpus-<d>.txt
//               stats marker
//   detect[d]   sibling pair detection → pairs-<d>.csv
//   sptuner[d]  SP-Tuner-MS refinement  → tuned-<d>.csv
//   publish[d]  canonical published list → siblings-<d>.csv
//   sibdb[d]    binary serving snapshot → siblings-<d>.sibdb (directly
//               RELOAD-able by sp_serve)
//   diff[d',d]  release diff of consecutive published lists → diff-<d>.csv
//   longitudinal  fan-in over every published list + diff → longitudinal.csv
//
// Months are independent except for the evolve chain, so a multi-worker
// pool pipelines them: month 3 can be detecting while month 5 exports and
// month 2's checkpoints fsync.
//
// Checkpointing (see checkpoint.h): every stage's inputs hash chains the
// stage name, its config component (synth config for evolve/export,
// SP-Tuner thresholds for sptuner, the .sibdb format version for sibdb)
// and its parents' output hashes; the manifest (manifest.h) records them
// after each completion. Resume skips stages whose recorded inputs hash
// matches and whose output files still hash to their recorded values, so
// a changed threshold re-runs only the sptuner→…→longitudinal cone while
// the detection cone stays cached.
//
// A skipped corpus stage does not rebuild its in-memory corpus; if a
// downstream stage of that month does run, it lazily re-materializes the
// corpus from the (checkpoint-verified) rib/snapshot artifacts. The
// corpus is dropped once the month's sptuner stage — its last consumer —
// completes, bounding resident memory to the months in flight.
//
// The synthetic universe is rebuilt at the start of every run (it is a
// pure function of the synth config and is not serialized); checkpoints
// cover the per-stage artifact work, which is where the wall-clock goes.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/manifest.h"
#include "pipeline/stage_graph.h"
#include "synth/config.h"

namespace sp::pipeline {

struct CampaignConfig {
  /// The synthetic universe; `synth.months` is the campaign length.
  synth::SynthConfig synth;
  /// SP-Tuner thresholds (the paper's /28 and /96 defaults).
  unsigned v4_threshold = 28;
  unsigned v6_threshold = 96;
  /// DAG worker pool size; 0 picks the hardware concurrency, 1 runs the
  /// graph serially (the bench baseline).
  unsigned threads = 1;
  /// Detection mode. `true` (the default) chains the months through one
  /// sp::stream::StreamDetector: month m's detect stage applies the
  /// corpus delta against month m-1's retained state and re-scores only
  /// the dirty sources — the warm rolling pipeline. `false` re-runs the
  /// exact engine from scratch every month. The pairs CSV bytes are
  /// identical either way (the stream engine's byte-identity contract);
  /// only the DAG shape differs (stream mode serializes the detect
  /// chain), so the manifest records "detect_mode" and a cross-mode
  /// resume re-runs just the detect stages.
  bool stream_detect = true;
  /// Run directory: artifacts + manifest.json (created if missing).
  std::string out_dir;
  /// When non-empty, run() records one Chrome-trace span per stage
  /// execution and writes the trace JSON here (obs/trace.h). Like
  /// threads/out_dir this shapes observation, not artifact bytes, so it
  /// is excluded from describe_config.
  std::string trace_path;
  /// Graceful-stop hook (SIGINT/SIGTERM in sp_pipeline): when non-null
  /// and the pointee flips true, the in-flight stage finishes, every
  /// not-yet-started stage is finalized as Skipped (still recorded in
  /// the manifest), and run() reports !ok — a later resume re-runs
  /// exactly the skipped cone to byte-identical artifacts. Shapes
  /// scheduling, not content, so excluded from describe_config. Must
  /// outlive run().
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Ordered key=value view of every config field that shapes artifact
/// bytes (threads and out_dir change scheduling/placement, not content,
/// and are excluded). Stored in the manifest so `resume` and `status`
/// need no flags repeated.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> describe_config(
    const CampaignConfig& config);

/// Rebuilds a config from a manifest's stored kvs (unknown keys are
/// ignored, absent keys keep their defaults). `out_dir` and `threads`
/// come from the caller — they are not manifest content.
[[nodiscard]] CampaignConfig config_from_manifest(const RunManifest& manifest,
                                                  std::string out_dir, unsigned threads);

/// A manifest record whose checkpoint looks healthy ("done"/"cached")
/// but whose on-disk artifact no longer matches it.
struct StaleStage {
  std::string name;    // stage name, e.g. "sibdb[2020-09-11]"
  std::string path;    // out_dir-relative artifact path
  std::string reason;  // "missing" or "hash mismatch"
};

/// Revalidates every done/cached stage's recorded outputs against the
/// files in `out_dir` (the same hash_file check resume performs).
/// `sp_pipeline status` uses this to flag stages whose checkpoint hash
/// is valid but whose artifact was deleted or corrupted since — "stale"
/// rather than "done".
[[nodiscard]] std::vector<StaleStage> stale_stages(const RunManifest& manifest,
                                                   const std::string& out_dir);

struct CampaignReport {
  bool ok = false;
  std::string error;  // setup-level failure (bad out_dir, manifest I/O)
  std::vector<StageResult> stages;
  std::size_t done_count = 0;
  std::size_t cached_count = 0;
  std::size_t failed_count = 0;
  std::size_t skipped_count = 0;
  double total_wall_ms = 0.0;  // whole run() call, universe build included
  long peak_rss_kb = 0;
  std::string manifest_path;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_(std::move(config)) {}

  /// Executes the campaign. With `resume` false every stage runs; with
  /// `resume` true, stages whose checkpoints validate against
  /// `out_dir`/manifest.json are skipped as Cached. `observer`, when set,
  /// sees every terminal StageResult as it lands (the CLI progress line).
  [[nodiscard]] CampaignReport run(bool resume,
                                   std::function<void(const StageResult&)> observer = {});

  [[nodiscard]] static std::string manifest_path(const std::string& out_dir) {
    return out_dir + "/manifest.json";
  }

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

 private:
  CampaignConfig config_;
};

}  // namespace sp::pipeline
