// Content-addressed checkpointing primitives for the campaign runner.
//
// A stage's checkpoint identity is an FNV-1a64 hash (the same scheme as
// the .sibdb whole-file checksum) chained over:
//
//   inputs_hash = fnv(stage name, stage-local config string,
//                     parent₁ outputs_hash, parent₂ outputs_hash, ...)
//   outputs_hash = fnv((relative path, file content hash) of every
//                      output, in declaration order)
//
// A completed stage recorded in the RunManifest is skipped on resume iff
// its recorded inputs_hash matches the recomputed one AND every recorded
// output file still hashes to its recorded value — so byte-identical
// inputs are never recomputed, while a changed config, a changed parent
// artifact, or a corrupted/truncated output file forces a re-run of
// exactly the affected downstream cone.
//
// Durability: outputs are written through atomic_write_file / finalized
// via fsync+rename, so a kill at any instant leaves either the old bytes,
// no file, or the complete new bytes — never a torn artifact that a
// recorded hash could false-positively match after page-cache loss.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sp::pipeline {

inline constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

/// FNV-1a64 over a byte string, chainable via `hash`.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                              std::uint64_t hash = kFnvBasis) noexcept {
  for (const char byte : bytes) {
    hash ^= static_cast<std::uint8_t>(byte);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Folds a 64-bit value into a running FNV-1a64 hash (little-endian bytes).
[[nodiscard]] constexpr std::uint64_t fnv1a64_mix(std::uint64_t value,
                                                  std::uint64_t hash) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

/// FNV-1a64 of a file's full contents; nullopt when the file cannot be
/// read (missing output ⇒ checkpoint invalid).
[[nodiscard]] std::optional<std::uint64_t> hash_file(const std::string& path);

/// 16-digit lowercase hex encoding (manifest JSON stores hashes as
/// strings: 64-bit values do not survive double-precision JSON numbers).
[[nodiscard]] std::string hash_hex(std::uint64_t value);
[[nodiscard]] std::optional<std::uint64_t> parse_hash_hex(std::string_view text);

/// Durable atomic file write: the bytes land in `path + ".tmp"`, are
/// fsync'd, and replace `path` via rename(2); the containing directory is
/// fsync'd so the rename itself survives a crash. Returns false (reason
/// in `error`) on any syscall failure.
[[nodiscard]] bool atomic_write_file(const std::string& path, std::string_view bytes,
                                     std::string* error = nullptr);

/// Durable atomic publish of an already-written temp file: fsync(tmp),
/// rename(tmp → path), fsync(dir). For writers that stream to a path
/// themselves (mrt::write_file, write_snapshot_csv, convert_sibling_list):
/// point them at `path + ".tmp"`, then finalize.
[[nodiscard]] bool finalize_output(const std::string& tmp_path, const std::string& path,
                                   std::string* error = nullptr);

}  // namespace sp::pipeline
